#!/usr/bin/env python
"""Scenario drift walkthrough: non-stationary workloads through the engine.

The paper's pooled windowed statistics (Figure 3) assume every window of a
trace is drawn from one stationary traffic graph.  This example measures
what happens when that assumption is deliberately broken:

1. run the ``stationary`` control scenario — one PALU graph, one rate law —
   and confirm the adjacent-phase drift statistic reads ~0 (trivially: one
   phase),
2. run ``alpha-drift``, where the core's power-law exponent drifts
   1.7 → 2.0 → 2.6 across three cross-faded phases, and watch the per-phase
   pooled distributions (and the drift statistic) move,
3. run ``flash-crowd`` on the bounded-memory *streaming* backend — the
   scenario trace is never materialized; chunks flow from the generator
   through the windower into the engine, with peak buffering bounded by the
   chunk size — and see the drift spike when the star-burst hits,
4. define and register a custom scenario inline, showing the declarative
   `Phase`/`Scenario` API and registration-time validation.

Run with ``python examples/scenario_drift.py``.
"""

from __future__ import annotations

import repro
from repro.analysis.summary import format_table
from repro.scenarios import Phase, Scenario, analyze_scenario, register_scenario

QUANTITY = "source_fanout"


def report(title: str, run) -> None:
    print(f"\n=== {title} ===")
    stats = run.engine_stats
    print(f"backend={stats['backend']}  windows={run.analysis.n_windows}  "
          f"peak buffered packets={stats.get('max_buffered_packets')}")
    print(format_table(run.phases.as_rows(QUANTITY)))
    print(f"max adjacent-phase drift ({QUANTITY}): {run.phases.max_drift(QUANTITY):.4f}")


def main() -> None:
    print("registered scenarios:", ", ".join(repro.scenario_names()))

    # 1. the stationary control: the paper's regime, drift ≈ 0 by construction
    control = analyze_scenario("stationary", n_valid=5_000, seed=42)
    report("stationary (control)", control)

    # 2. slow drift: the core exponent moves phase to phase, and the pooled
    #    head probability D(d=1) moves with it
    drift = analyze_scenario("alpha-drift", n_valid=5_000, seed=42)
    report("alpha-drift", drift)

    # 3. a flash crowd on the streaming backend: bounded-memory end to end
    crowd = analyze_scenario(
        "flash-crowd", n_valid=5_000, seed=42, backend="streaming", chunk_packets=10_000
    )
    report("flash-crowd (streaming backend)", crowd)
    burst = max(crowd.phases.drift(QUANTITY), key=lambda d: d.score)
    print(f"the burst is phase {burst.phase_a} → {burst.phase_b}: "
          f"drift {burst.score:.2f}, vs {control.phases.max_drift(QUANTITY):.2f} when stationary")

    # 4. a custom scenario: declarative phases, validated at registration
    custom = register_scenario(
        Scenario(
            name="example-custom",
            description="ER warm-up, then a preferential-attachment regime with heavy zipf rates",
            phases=(
                Phase("erdos-renyi", 25_000, {"n_nodes": 1_500, "p": 0.004}),
                Phase("preferential-attachment", 25_000, {"n_nodes": 1_500, "alpha": 2.3},
                      rate_exponent=1.6),
            ),
            crossfade_packets=2_500,
        ),
        replace=True,
    )
    run = analyze_scenario(custom, n_valid=5_000, seed=42)
    report("example-custom", run)


if __name__ == "__main__":
    main()
