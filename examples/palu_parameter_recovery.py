#!/usr/bin/env python
"""Parameter recovery: fit the Section IV-B recipe and invert back to (C, L, U, λ).

The PALU model's key structural claim is that the underlying parameters
``(C, L, U, λ, α)`` do not depend on the window size — only the edge-survival
probability ``p`` changes as the observation window grows.  This example:

1. fixes one set of underlying parameters,
2. produces observed degree distributions at several window sizes ``p``,
3. runs the reduced-parameter fit (tail fit → moment-ratio Λ estimate →
   degree-1 equation) at each ``p``, and
4. inverts each fit back to underlying parameters, which should agree across
   windows (the "window-size invariance" the paper stipulates in Section III-A).

Run with ``python examples/palu_parameter_recovery.py``.
"""

from __future__ import annotations


import repro
from repro.analysis.summary import format_table
from repro.core.palu_model import degree_distribution
from repro.experiments import run_window_invariance_ablation

# Examples honour REPRO_EXAMPLE_SCALE in (0, 1] so the docs smoke test
# (tests/test_examples.py) can execute them at tiny sizes.
from repro._util.examples import scaled  # noqa: E402


def main() -> None:
    params = repro.PALUParameters.from_weights(0.55, 0.25, 0.20, lam=2.0, alpha=2.0)
    print("true underlying parameters:", {k: round(v, 4) for k, v in params.as_dict().items()})

    # --- direct demonstration at one window -------------------------------
    p = 0.6
    dist = degree_distribution(params, p, dmax=30_000, form="poisson")
    hist = repro.degree_histogram(dist.sample(scaled(1_000_000, 60_000), rng=21))
    fit = repro.fit_palu(hist)
    print(f"\nreduced fit at p={p}:", fit.as_row())
    recovered = fit.to_underlying(p)
    print("recovered underlying parameters:",
          {k: round(v, 4) for k, v in recovered.as_dict().items()})

    # --- window-size invariance sweep --------------------------------------
    print("\nwindow-size invariance sweep (underlying parameters should not drift with p):")
    rows = run_window_invariance_ablation(
        parameters=params,
        p_values=(0.2, 0.4, 0.6, 0.8),
        n_samples=scaled(800_000, 60_000),
        dmax=30_000,
        rng=22,
    )
    print(format_table(rows))

    # --- estimator comparison (the paper's variance argument) --------------
    from repro.experiments import run_lambda_estimator_ablation

    print("\nΛ estimator comparison (moment-ratio vs point-wise, 20 repeats):")
    summary = run_lambda_estimator_ablation(
        parameters=params, p=0.5, n_samples=scaled(300_000, 40_000),
        n_repeats=scaled(20, 4), dmax=20_000, rng=23
    )
    print(format_table([summary]))


if __name__ == "__main__":
    main()
