#!/usr/bin/env python
"""Botnet scenario: how unattached (bot-like) traffic distorts the degree laws.

The paper's motivation (Section I) is that a growing share of observed
traffic comes from bots — connections that "tend to form links only with
similar (bot-like) connections", showing up as leaves and unattached links
rather than as part of the preferential-attachment core.  This example:

1. builds a *clean* world (core + leaves, no unattached stars) and a
   *bot-heavy* world (same core, 40% of nodes in unattached stars),
2. observes both through the same window and the same webcrawl,
3. shows that the crawl barely notices the bots while the trunk view's
   degree-1 mass and unattached-link count jump, and
4. shows the fitted Zipf–Mandelbrot offset δ moving negative as the bot
   share grows — the model's fingerprint of unattached traffic.

Run with ``python examples/botnet_scenario.py``.
"""

from __future__ import annotations


import repro
from repro.analysis.summary import format_table
from repro.analysis.topology import decompose_topology
from repro.core.palu_zm_connection import delta_from_model
from repro.generators.sampling import sample_edges, webcrawl_sample

# Examples honour REPRO_EXAMPLE_SCALE in (0, 1] so the docs smoke test
# (tests/test_examples.py) can execute them at tiny sizes.
from repro._util.examples import scaled  # noqa: E402


def observe(name: str, params: repro.PALUParameters, *, p: float, seed: int) -> dict:
    """Build one world, observe it both ways, and summarise."""
    palu = repro.generate_palu_graph(params, n_nodes=scaled(40_000, 3_000), rng=seed)
    trunk = sample_edges(palu.graph, p, rng=seed + 1)
    crawl = webcrawl_sample(palu.graph, n_seeds=3)

    trunk_hist = repro.degree_histogram([d for _, d in trunk.degree() if d > 0])
    crawl_hist = repro.degree_histogram([d for _, d in crawl.degree() if d > 0])
    trunk_fit = repro.fit_zipf_mandelbrot_histogram(trunk_hist)
    crawl_fit = repro.fit_zipf_mandelbrot_histogram(crawl_hist)
    decomposition = decompose_topology(trunk)

    predicted_delta = delta_from_model(
        params.core, params.unattached, params.lam, p, params.alpha
    ) if params.unattached > 0 else 0.0

    return {
        "world": name,
        "bot_share": round(params.unattached_node_fraction(), 3),
        "trunk P(d=1)": round(trunk_hist.fraction_at(1), 3),
        "crawl P(d=1)": round(crawl_hist.fraction_at(1), 3),
        "unattached links": decomposition.n_unattached_links,
        "trunk delta": round(trunk_fit.delta, 3),
        "crawl delta": round(crawl_fit.delta, 3),
        "predicted delta": round(predicted_delta, 3),
        "trunk alpha": round(trunk_fit.alpha, 2),
    }


def main() -> None:
    p = 0.6
    clean = repro.PALUParameters.from_weights(0.70, 0.30, 0.0, lam=1.0, alpha=2.0)
    mild = repro.PALUParameters.from_weights(0.55, 0.25, 0.20, lam=1.5, alpha=2.0)
    bot_heavy = repro.PALUParameters.from_weights(0.35, 0.25, 0.40, lam=1.5, alpha=2.0)

    rows = [
        observe("clean (no bots)", clean, p=p, seed=31),
        observe("mild bot traffic", mild, p=p, seed=32),
        observe("bot-heavy", bot_heavy, p=p, seed=33),
    ]
    print(f"observation window p = {p}\n")
    print(format_table(rows))
    print(
        "\nReading the table: the webcrawl view barely changes across worlds "
        "(it never reaches the unattached components), while the trunk view's "
        "degree-1 mass, unattached-link count, and fitted |δ| all grow with the "
        "bot share — the distortion the PALU model was built to explain."
    )


if __name__ == "__main__":
    main()
