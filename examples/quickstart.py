#!/usr/bin/env python
"""Quickstart: generate a PALU network, observe it, and fit the models.

This walks the shortest path through the library:

1. choose PALU parameters ``(C, L, U, λ, α)``,
2. build the underlying network,
3. observe it through an edge-sampling window ``p`` (trunk-line style),
4. histogram the observed degrees,
5. fit the modified Zipf–Mandelbrot model and the reduced PALU parameters,
6. compare against the single-exponent power-law baseline.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations


import repro
from repro.analysis.comparison import compare_models
from repro.analysis.pooling import pool_differential_cumulative
from repro.analysis.summary import format_table
from repro.core.distributions import DiscretePowerLaw

# Examples honour REPRO_EXAMPLE_SCALE in (0, 1] so the docs smoke test
# (tests/test_examples.py) can execute them at tiny sizes.
from repro._util.examples import scaled  # noqa: E402


def main() -> None:
    # 1. the five PALU parameters: half the nodes in the PA core, a quarter
    #    leaves, the rest in unattached Poisson(2) stars, tail exponent 2
    params = repro.PALUParameters.from_weights(0.5, 0.25, 0.25, lam=2.0, alpha=2.0)
    print("PALU parameters:", params.as_dict())
    print("normalisation constraint C + L + U(1 + λ - e^-λ) =", round(params.constraint_value(), 6))

    # 2. the underlying network (~50k nodes)
    palu = repro.generate_palu_graph(params, n_nodes=scaled(50_000, 2_000), seed=1)
    print(f"\nunderlying network: {palu.n_nodes} nodes, {palu.n_edges} edges")
    print("class counts:", palu.class_counts())

    # 3. observe through a window: each edge survives with probability p
    p = 0.5
    observed = repro.sample_edges(palu.graph, p, seed=2)
    print(f"\nobserved network at p={p}: {observed.number_of_nodes()} nodes, "
          f"{observed.number_of_edges()} edges")

    # 4. degree histogram of the observed network
    hist = repro.degree_histogram([d for _, d in observed.degree() if d > 0])
    print(f"degree-1 fraction (leaves + unattached signature): {hist.fraction_at(1):.3f}")
    print(f"largest observed degree d_max = {hist.dmax}")

    # 5a. modified Zipf-Mandelbrot fit (the paper's empirical model)
    zm_fit = repro.fit_zipf_mandelbrot_histogram(hist)
    print("\nZipf-Mandelbrot fit:", zm_fit.as_row())

    # 5b. reduced PALU fit (Section IV-B recipe) and the implied underlying parameters
    palu_fit = repro.fit_palu(hist)
    print("reduced PALU fit:  ", palu_fit.as_row())
    recovered = palu_fit.to_underlying(p)
    print("implied underlying parameters:", {k: round(v, 4) for k, v in recovered.as_dict().items()})

    # 6. compare models against the pooled observation (Figure-3 style)
    pooled = pool_differential_cumulative(hist)
    baseline = repro.fit_power_law(hist, d_min=1)
    comparison = compare_models(
        hist,
        pooled,
        {
            "zipf_mandelbrot": zm_fit.model().distribution(),
            "palu": palu_fit.distribution(hist.dmax),
            "power_law": DiscretePowerLaw(baseline.alpha, hist.dmax),
        },
        n_parameters={"zipf_mandelbrot": 2, "palu": 5, "power_law": 1},
    )
    print("\nmodel comparison (best first):")
    print(format_table([c.as_row() for c in comparison]))


if __name__ == "__main__":
    main()
