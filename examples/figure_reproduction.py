#!/usr/bin/env python
"""Regenerate every table and figure of the paper in one run.

Runs the full experiment catalogue (Table I, Figures 1–4, the Section-IV
expectation checks, the Section-IV-B recovery, and the three ablations) on
laptop-scale synthetic workloads and prints the resulting rows.  This is the
script behind EXPERIMENTS.md; the pytest-benchmark harnesses in
``benchmarks/`` run the same drivers with timing attached.

Run with ``python examples/figure_reproduction.py [--quick]``.
"""

from __future__ import annotations

import argparse

from repro.analysis.summary import format_table
from repro.experiments import (
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_lambda_estimator_ablation,
    run_palu_expectations,
    run_palu_recovery,
    run_table1,
    run_webcrawl_ablation,
    run_window_invariance_ablation,
)


# Examples honour REPRO_EXAMPLE_SCALE in (0, 1] so the docs smoke test
# (tests/test_examples.py) can execute them at tiny sizes.
from repro._util.examples import example_scale  # noqa: E402

SCALE = example_scale()


def section(title: str) -> None:
    print(f"\n{'=' * 78}\n{title}\n{'=' * 78}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="run a reduced sweep (fewer Figure-3 panels, smaller samples)",
    )
    args = parser.parse_args()
    quick = args.quick or SCALE < 1
    fig3_limit = (1 if SCALE < 1 else 3) if quick else None
    n_samples = max(50_000, int((300_000 if quick else 1_000_000) * SCALE))

    section("Table I — aggregate network properties (matrix vs summation notation)")
    print(format_table(run_table1()))

    section("Figure 1 — streaming network quantities of one N_V window")
    print(format_table(run_fig1()))

    section("Figure 2 — traffic network topologies across class mixes")
    print(format_table(run_fig2()))

    section("Figure 3 — measured distributions and Zipf-Mandelbrot fits")
    print(format_table(run_fig3(limit=fig3_limit, n_workers=4)))

    section("Figure 4 — PALU curve families converging to Zipf-Mandelbrot")
    print(format_table(run_fig4()))

    section("Section IV — observed-network expectations vs simulation")
    print(format_table(run_palu_expectations()))

    section("Section IV-B — reduced-parameter recovery")
    print(format_table(run_palu_recovery(n_samples=n_samples)))

    section("Ablation — window-size invariance of the underlying parameters")
    print(format_table(run_window_invariance_ablation(n_samples=n_samples)))

    section("Ablation — Λ estimator variance (moment-ratio vs point-wise)")
    print(format_table([run_lambda_estimator_ablation()]))

    section("Ablation — webcrawl vs trunk-line observation")
    print(format_table(run_webcrawl_ablation()))


if __name__ == "__main__":
    main()
