#!/usr/bin/env python
"""Sketch tier vs exact kernel: bounded-error window analysis side by side.

The exact fused kernel sorts every window, so its time and memory grow with
``N_V``.  The sketch tier (``mode="sketch"``) replaces the sort with
fixed-size mergeable summaries — Count-Min tables for the per-endpoint
packet counts, HyperLogLog registers and spread bitmaps for the distinct
counts — trading integer exactness for a priori (ε, δ) error bounds and an
O(1)-per-window footprint.  This script runs both tiers on the same
heavy-tailed trace and shows:

1. the two analyses side by side: wall time and the Table-I aggregates,
   with the sketch's estimates landing inside their published bounds,
2. the per-quantity error-bound table every sketch analysis carries
   (``analysis.bounds``), and how tightening ``epsilon`` buys accuracy
   with a bigger (but still window-size-independent) table,
3. the constant sketch payload: the merged cross-window sketch is the
   same few hundred KiB whatever the window size,
4. online drift detection running **unchanged** on the sketched
   histograms: a flash-crowd scenario raises the same style of alarms in
   both modes (the detectors consume histogram summaries, not raw ids).

Run with ``python examples/sketch_vs_exact.py``.
"""

from __future__ import annotations

import time

import repro
from repro.analysis.summary import format_table
from repro.scenarios import analyze_scenario
from repro.streaming import SketchConfig
from repro.streaming.trace_generator import TraceConfig, generate_trace_from_graph

# Examples honour REPRO_EXAMPLE_SCALE in (0, 1] so the docs smoke test
# (tests/test_examples.py) can execute them at tiny sizes.
from repro._util.examples import scaled  # noqa: E402

AGGREGATE_FIELDS = ("unique_sources", "unique_destinations", "unique_links", "valid_packets")


def _timed_analysis(trace, n_valid: int, **kwargs):
    start = time.perf_counter()
    analysis = repro.analyze_trace(trace, n_valid, **kwargs)
    return analysis, time.perf_counter() - start


def _bounds_rows(bounds) -> list:
    rows = []
    for quantity in sorted(bounds):
        bound = bounds[quantity]
        rows.append(
            {
                "quantity": quantity,
                "estimator": bound.estimator,
                "epsilon": "-" if bound.epsilon is None else f"{bound.epsilon:.2e}",
                "delta": "-" if bound.delta is None else f"{bound.delta:.3f}",
                "rel_err": "-" if bound.relative_error is None else f"{bound.relative_error:.4f}",
            }
        )
    return rows


def main() -> None:
    params = repro.PALUParameters.from_weights(0.5, 0.25, 0.25, lam=1.5, alpha=2.0)
    palu = repro.generate_palu_graph(params, n_nodes=scaled(30_000, 2_000), seed=7)
    config = TraceConfig(
        n_packets=scaled(400_000, 30_000),
        rate_model="zipf",
        rate_exponent=1.25,
        invalid_fraction=0.02,
    )
    trace = generate_trace_from_graph(palu, config, rng=13)
    n_valid = scaled(80_000, 5_000)
    print(f"trace: {trace.n_packets} packets over {palu.n_nodes} nodes, "
          f"windows of N_V = {n_valid} valid packets")

    exact, exact_seconds = _timed_analysis(trace, n_valid)
    sketchy, sketch_seconds = _timed_analysis(trace, n_valid, mode="sketch")
    print(f"\nexact  mode: {exact.n_windows} windows in {exact_seconds * 1e3:.1f} ms")
    print(f"sketch mode: {sketchy.n_windows} windows in {sketch_seconds * 1e3:.1f} ms")

    # Table-I aggregates, last window: exact values vs bounded estimates
    exact_row, sketch_row = exact.aggregates_table()[-1], sketchy.aggregates_table()[-1]
    comparison = [
        {
            "aggregate": field,
            "exact": exact_row[field],
            "sketch": sketch_row[field],
            "error": sketch_row[field] - exact_row[field],
        }
        for field in AGGREGATE_FIELDS
    ]
    print("\nTable-I aggregates, last window (valid_packets is always exact):")
    print(format_table(comparison))

    print("\nerror bounds carried by the sketch analysis:")
    print(format_table(_bounds_rows(sketchy.bounds)))

    # the merged cross-window sketch is O(1) in the window size
    sketch = sketchy.sketch
    print(f"\nmerged sketch payload: {sketch.nbytes / 2**10:.0f} KiB "
          f"(independent of N_V; the exact kernel's working set is O(N_V))")

    # tighter epsilon -> tenfold-wider Count-Min tables, tighter bounds
    tight = SketchConfig(epsilon=1e-4)
    tightened = repro.analyze_trace(trace, n_valid, mode="sketch", sketch=tight)
    default_eps = sketchy.bounds["source_packets"].epsilon
    tight_eps = tightened.bounds["source_packets"].epsilon
    print(f"\ntightening epsilon {default_eps:.2e} -> {tight_eps:.2e} grows the "
          f"payload to {tightened.sketch.nbytes / 2**10:.0f} KiB — still constant per window")

    # drift detection consumes histogram summaries, so it runs unchanged
    # on the sketch tier: same detectors, same alarm semantics.  The window
    # size is fixed (not scaled): the flash crowd spans a set number of
    # windows, so N_V sets detection granularity, not workload size.
    detect_nv = 2_000
    print(f"\nflash-crowd drift detection on both tiers (N_V = {detect_nv}):")
    for mode in ("exact", "sketch"):
        run = analyze_scenario(
            "flash-crowd", detect_nv, seed=5, detectors=("ewma", "page-hinkley"),
            mode=mode,
        )
        alarms = {name: list(windows) for name, windows in run.detection.alarms.items()}
        print(f"  {mode:6s}: alarms at windows {alarms}")


if __name__ == "__main__":
    main()
