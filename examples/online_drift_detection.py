#!/usr/bin/env python
"""Online drift detection: flagging regime changes as the stream flows.

PR 2's scenarios score drift *offline* — the per-phase ``|Δmean|/σ``
statistic needs the whole run and the ground-truth phase layout in hand.
This example shows the *online* counterpart (``repro.detect``): streaming
change-point detectors that watch the per-window pooled vectors as the
single-pass engine folds them, in O(bins) memory, without being told where
(or whether) the phases change:

1. run the ``stationary`` control with all three detectors — EWMA, CUSUM,
   Page–Hinkley — and confirm none of them alarm,
2. run ``alpha-drift`` and ``flash-crowd`` and watch the alarms land within
   a few windows of the true phase boundaries the detectors never saw,
3. score each detector against the scenario's ground truth — detection
   latency, precision/recall, false-alarm rate — with ``evaluate_run``,
4. run the same detection on the bounded-memory streaming backend and
   confirm the alarm sequence is bit-identical (detection inherits the
   engine's cross-backend guarantee).

Run with ``python examples/online_drift_detection.py``.
"""

from __future__ import annotations

import repro
from repro._util.examples import example_scale
from repro.analysis.summary import format_table
from repro.detect import DETECTOR_NAMES, evaluate_run
from repro.detect.evaluate import true_change_windows

#: The window size the detector defaults are tuned at — fixed, not scaled:
#: thresholds are validated at this N_V, so ``REPRO_EXAMPLE_SCALE`` shrinks
#: the number of scenario runs instead of the per-run workload.
N_VALID = 2_000
DRIFT_SCENARIOS = (
    ("alpha-drift", "flash-crowd") if example_scale() >= 1.0 else ("flash-crowd",)
)


def report(title: str, run) -> None:
    print(f"\n=== {title} ===")
    stats = run.engine_stats
    boundaries = true_change_windows(run.phases.window_phase)
    print(f"backend={stats['backend']}  windows={run.detection.n_windows}  "
          f"true boundaries: {' '.join(map(str, boundaries)) or 'none'}")
    print(format_table(run.detection.as_rows()))
    print(format_table([ev.as_row() for ev in evaluate_run(run)]))


def main() -> None:
    print("detectors:", ", ".join(DETECTOR_NAMES))

    # 1. the stationary control: every detector must stay silent
    control = repro.analyze_scenario(
        "stationary", N_VALID, seed=7, detectors=DETECTOR_NAMES
    )
    report("stationary (control)", control)
    assert all(not control.detection.alarms[name] for name in DETECTOR_NAMES)

    # 2–3. regime changes: alarms land near boundaries the detectors never saw
    for scenario in DRIFT_SCENARIOS:
        run = repro.analyze_scenario(scenario, N_VALID, seed=7, detectors=DETECTOR_NAMES)
        report(scenario, run)

    # 4. the streaming backend produces the identical alarm sequence
    serial = repro.analyze_scenario("flash-crowd", N_VALID, seed=7, detectors=DETECTOR_NAMES)
    streaming = repro.analyze_scenario(
        "flash-crowd", N_VALID, seed=7, detectors=DETECTOR_NAMES,
        backend="streaming", chunk_packets=10_000,
    )
    assert serial.detection.alarms == streaming.detection.alarms
    print(f"\nstreaming backend (peak buffering "
          f"{streaming.engine_stats['max_buffered_packets']} packets) reproduced the "
          f"serial alarm sequence bit-identically: {dict(streaming.detection.alarms)}")


if __name__ == "__main__":
    main()
