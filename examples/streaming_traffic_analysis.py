#!/usr/bin/env python
"""Streaming traffic analysis: the Figure-3 workflow on a synthetic observatory.

Reproduces the measurement pipeline of Section II end to end, driven through
the single-pass analysis engine:

1. build a PALU underlying network standing in for "who talks to whom",
2. replay a multi-window synthetic packet trace over it (heavy-tailed
   per-link rates, a sprinkle of invalid packets),
3. run the trace through the engine on the *process* backend — windows are
   cut lazily, analysed across worker processes, and folded into running
   pooled aggregates as results stream back,
4. compute the Table-I aggregates and all five Figure-1 quantities,
5. fit the modified Zipf–Mandelbrot model to every quantity, printing the
   per-panel (α, δ) exactly like the annotations of Figure 3, and
6. repeat the analysis out-of-core: the trace is written as a v2 *sharded*
   directory and re-analysed with the bounded-memory *streaming* backend,
   which reads one chunk at a time — the pooled distributions come out
   bit-identical to the in-memory run.

Run with ``python examples/streaming_traffic_analysis.py``.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.analysis.summary import format_table
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.trace_generator import TraceConfig, generate_trace_from_graph

# Examples honour REPRO_EXAMPLE_SCALE in (0, 1] so the docs smoke test
# (tests/test_examples.py) can execute them at tiny sizes.
from repro._util.examples import scaled  # noqa: E402


def main() -> None:
    params = repro.PALUParameters.from_weights(0.5, 0.25, 0.25, lam=1.5, alpha=2.0)
    palu = repro.generate_palu_graph(params, n_nodes=scaled(40_000, 2_000), seed=11)
    print(f"underlying network: {palu.n_nodes} nodes, {palu.n_edges} edges")

    config = TraceConfig(
        n_packets=scaled(600_000, 30_000),
        rate_model="zipf",
        rate_exponent=1.25,
        invalid_fraction=0.02,
    )
    trace = generate_trace_from_graph(palu, config, rng=12)
    print(f"trace: {trace.n_packets} packets ({trace.n_valid} valid), "
          f"duration {trace.duration:.2f}s")

    n_valid = scaled(100_000, 5_000)
    analysis = repro.analyze_trace(trace, n_valid, backend="process", n_workers=4)
    print(f"\nanalysed {analysis.n_windows} windows of N_V = {n_valid} valid packets "
          f"on the {analysis.engine_stats['backend']} backend")

    print("\nTable-I aggregates per window:")
    print(format_table(analysis.aggregates_table()))

    rows = []
    for quantity in QUANTITY_NAMES:
        pooled = analysis.pooled(quantity)
        fit = analysis.fit_zipf_mandelbrot(quantity)
        rows.append(
            {
                "quantity": quantity,
                "alpha": round(fit.alpha, 2),
                "delta": round(fit.delta, 3),
                "D(d=1)": round(float(pooled.values[0]), 3),
                "dmax": analysis.dmax(quantity),
                "log_mse": round(fit.error, 4),
            }
        )
    print("\nZipf-Mandelbrot fits per quantity (Figure-3 style annotations):")
    print(format_table(rows))

    # show one pooled distribution with error bars, textual rendition of a panel
    quantity = "source_fanout"
    pooled = analysis.pooled(quantity)
    print(f"\npooled differential cumulative distribution for {quantity} (mean ± σ):")
    panel = [
        {
            "bin (d_i)": int(edge),
            "D(d_i)": f"{value:.3e}",
            "sigma": f"{sigma:.1e}",
        }
        for edge, value, sigma in zip(pooled.bin_edges, pooled.values, pooled.sigma)
        if value > 0
    ]
    print(format_table(panel))

    # out-of-core rerun: shard the trace to disk and stream it back through
    # the bounded-memory backend — only one chunk is ever resident
    with tempfile.TemporaryDirectory() as tmp:
        shard_packets = scaled(50_000, 5_000)
        sharded = repro.save_trace_sharded(trace, Path(tmp) / "trace-v2", shard_packets=shard_packets)
        streamed = repro.analyze_trace(
            sharded, n_valid, backend="streaming", chunk_packets=shard_packets
        )
        stats = streamed.engine_stats
        print(f"\nout-of-core rerun: {stats['n_chunks']} chunks, "
              f"peak buffer {stats['max_buffered_packets']} packets "
              f"(trace is {trace.n_packets})")
        identical = all(
            np.array_equal(analysis.pooled(q).values, streamed.pooled(q).values)
            and np.array_equal(analysis.pooled(q).sigma, streamed.pooled(q).sigma)
            for q in QUANTITY_NAMES
        )
        print(f"pooled distributions bit-identical to the in-memory run: {identical}")


if __name__ == "__main__":
    main()
