#!/usr/bin/env python
"""Campaign sweep walkthrough: grids, the result store, resume, and reports.

PR 1 made one run fast and PR 2 made workloads declarative; campaigns make
*fleets* of runs cheap to own.  This example:

1. declares a campaign — a grid of scenarios × seeds × backends — and runs
   it cold into an on-disk content-addressed result store,
2. re-runs the identical campaign and shows that **nothing** is recomputed
   (every cell is a warm O(read) hit),
3. simulates an interrupted sweep with ``max_cells`` and shows the next run
   resuming exactly the missing cells,
4. shows that cells differing only in execution backend share one stored
   result — the engine's cross-backend bit-identity guarantee doing real
   work — and
5. assembles the cross-seed comparison report from the store alone.

Run with ``python examples/campaign_sweep.py``.
"""

from __future__ import annotations

import os
import tempfile

from repro.campaigns import Campaign, CampaignReport, run_campaign

# Examples honour REPRO_EXAMPLE_SCALE in (0, 1] so the docs smoke test
# (tests/test_examples.py) can execute them at tiny sizes.
from repro._util.examples import scaled  # noqa: E402


def main() -> None:
    campaign = Campaign(
        "drift-sweep",
        scenarios=("stationary", "alpha-drift", "flash-crowd"),
        seeds=(0, 1, 2),
        n_valids=(scaled(5_000, 500),),
        backends=("serial", "streaming"),
        chunk_packets=scaled(10_000, 1_000),
        description="does the drift statistic separate regimes across seeds?",
    )
    print(f"campaign {campaign.name!r}: {campaign.n_cells} cells, "
          f"{len(campaign.unique_keys())} unique results "
          "(the backend axis shares results — bit-identity at work)")

    with tempfile.TemporaryDirectory() as tmp:
        store = os.path.join(tmp, "results")

        # 1. cold sweep: every unique cell is computed and persisted as it
        #    finishes (atomically — a kill loses at most the cell in flight)
        cold = run_campaign(campaign, store, pool="process")
        print(f"\ncold run:   computed {cold.n_computed}, cached {cold.n_cached}")

        # 2. warm sweep: the same grid again — zero recomputation
        warm = run_campaign(campaign, store)
        print(f"warm run:   computed {warm.n_computed}, cached {warm.n_cached}")

        # 3. an 'interrupted' sweep elsewhere, then resume
        partial_store = os.path.join(tmp, "partial")
        partial = run_campaign(campaign, partial_store, max_cells=2)
        resumed = run_campaign(campaign, partial_store)
        print(f"interrupted: computed {partial.n_computed}, skipped {partial.n_skipped}; "
              f"resume computed {resumed.n_computed} (only the missing cells)")

        # 4+5. the report is assembled from the store alone — and because it
        #      is a pure function of stored results, re-rendering a finished
        #      campaign is byte-identical
        report = CampaignReport.from_store(store, "drift-sweep")
        print()
        print(report.render("source_fanout"))


if __name__ == "__main__":
    main()
