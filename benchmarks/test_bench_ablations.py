"""Benchmarks: the three DESIGN.md ablations.

* window-size invariance — recovered underlying parameters must not drift
  with the window parameter p,
* Λ-estimator variance — the moment-ratio estimator versus the point-wise
  log-regression estimator over repeated samples,
* webcrawl versus trunk observation — the observation bias that motivates
  the whole model.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_lambda_estimator_ablation,
    run_webcrawl_ablation,
    run_window_invariance_ablation,
)

# full ablation drivers — deselected by `pytest -m "not slow"` (fast local loop)
pytestmark = pytest.mark.slow


def test_window_invariance_ablation(run_once):
    rows = run_once(
        run_window_invariance_ablation,
        p_values=(0.2, 0.4, 0.6, 0.8),
        n_samples=1_000_000,
        dmax=20_000,
        rng=1,
    )
    alphas = [row["alpha_hat"] for row in rows]
    assert max(alphas) - min(alphas) < 0.2
    lambdas = [row["lambda_hat"] for row in rows if row["lambda_hat"] == row["lambda_hat"]]
    assert max(lambdas) - min(lambdas) < 1.0
    print()
    for row in rows:
        print("Window invariance:", row)


def test_lambda_estimator_ablation(run_once):
    summary = run_once(
        run_lambda_estimator_ablation,
        p=0.5,
        n_samples=300_000,
        n_repeats=20,
        dmax=20_000,
        rng=2,
    )
    # the paper's claim: the moment estimator has (substantially) less variance
    assert summary["moment_std"] <= summary["pointwise_std"]
    print()
    print("Lambda estimator ablation:", summary)


def test_webcrawl_ablation(run_once):
    rows = run_once(run_webcrawl_ablation, n_nodes=40_000, p=0.6, rng=3)
    by_obs = {row["observation"]: row for row in rows}
    trunk, crawl = by_obs["trunk_edge_sample"], by_obs["webcrawl"]
    assert trunk["n_small_components"] > crawl["n_small_components"]
    trunk_gain = trunk["powerlaw_log_mse"] - trunk["zm_log_mse"]
    crawl_gain = crawl["powerlaw_log_mse"] - crawl["zm_log_mse"]
    assert trunk_gain >= crawl_gain - 0.01
    print()
    for row in rows:
        print("Webcrawl vs trunk:", row)
