"""Benchmark: Section IV — observed-network expectations versus simulation.

Times the expectation-vs-simulation sweep (generate a PALU network, edge
sample it at several p, compare measured class fractions, unattached-link
fraction, and degree-1 fraction against the closed-form predictions) and the
closed-form evaluation kernels themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.palu_model import expected_degree_fractions
from repro.experiments import run_palu_expectations
from repro.experiments.config import default_palu_parameters

# full expectation sweep — deselected by `pytest -m "not slow"` (fast local loop)
pytestmark = pytest.mark.slow



def test_palu_expectation_sweep(run_once):
    rows = run_once(run_palu_expectations, n_nodes=60_000, p_values=(0.25, 0.5, 0.75, 1.0), rng=1)
    assert len(rows) == 4
    for row in rows:
        assert row["V_pred"] == 0.0 or abs(row["V_pred"] - row["V_sim"]) / row["V_sim"] < 0.15
        assert abs(row["deg1_pred"] - row["deg1_sim"]) < 0.1
    print()
    for row in rows:
        print("Section IV expectations:", row)


def test_expected_degree_fraction_kernel_paper(benchmark):
    params = default_palu_parameters()
    degrees = np.arange(1, 10_001)
    fractions = benchmark(expected_degree_fractions, params, 0.5, degrees, method="paper")
    assert fractions.shape == (10_000,)


def test_expected_degree_fraction_kernel_exact(benchmark):
    params = default_palu_parameters()
    degrees = np.arange(1, 101)
    fractions = benchmark(expected_degree_fractions, params, 0.5, degrees, method="exact")
    assert fractions.shape == (100,)
