"""Benchmark — online drift detection overhead over plain analysis.

Times :func:`repro.scenarios.analyze_scenario` with and without the full
detector set riding the fold, on the scenario-subsystem reference grid
(``N_V = 5000``, serial and streaming backends), and writes a
``BENCH_detection.json`` artifact recording the per-case seconds and the
aggregate overhead ratio.  The acceptance contract — detection costs at
most 25% over plain analysis — is asserted here on min-of-N timings (the
detectors add one O(bins) scalar fold per window, so the observed overhead
is a few percent; the generous bound absorbs timer noise, not real cost).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.detect import DETECTOR_NAMES
from repro.scenarios import analyze_scenario, get_scenario

# 24 full N_V=5000 scenario analyses — deselected by `pytest -m "not slow"` (fast local loop)
pytestmark = pytest.mark.slow

SEED = 20210329
N_VALID = 5_000
CHUNK_PACKETS = 10_000
SCENARIOS = ("stationary", "alpha-drift")
BACKENDS = ("serial", "streaming")
ROUNDS = 3
MAX_OVERHEAD_RATIO = 1.25
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_detection.json"

_RESULTS: dict[str, dict] = {}


def _run(scenario: str, backend: str, detectors):
    kwargs = {"backend": backend, "keep_windows": False, "detectors": detectors}
    if backend == "streaming":
        kwargs["chunk_packets"] = CHUNK_PACKETS
    return analyze_scenario(scenario, N_VALID, seed=SEED, **kwargs)


def _best_of(scenario: str, backend: str, detectors) -> tuple[float, object]:
    best = float("inf")
    run = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run = _run(scenario, backend, detectors)
        best = min(best, time.perf_counter() - start)
    return best, run


@pytest.fixture(scope="module", autouse=True)
def _warm_engine():
    """One throwaway run so the first timed case does not absorb one-time
    costs (imports, numpy init)."""
    _run(SCENARIOS[0], "serial", None)


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_bench_detection_overhead(benchmark, scenario, backend):
    plain_seconds, plain = _best_of(scenario, backend, None)

    def detecting():
        return _run(scenario, backend, DETECTOR_NAMES)

    start = time.perf_counter()
    run = benchmark.pedantic(detecting, rounds=1, iterations=1)
    first = time.perf_counter() - start
    detect_seconds = first
    for _ in range(ROUNDS - 1):
        start = time.perf_counter()
        _run(scenario, backend, DETECTOR_NAMES)
        detect_seconds = min(detect_seconds, time.perf_counter() - start)

    assert run.detection is not None
    assert run.analysis == plain.analysis  # detection never perturbs analysis

    row = {
        "scenario": scenario,
        "backend": backend,
        "n_packets": get_scenario(scenario).n_packets,
        "n_windows": run.analysis.n_windows,
        "plain_seconds": round(plain_seconds, 4),
        "detect_seconds": round(detect_seconds, 4),
        "overhead_ratio": round(detect_seconds / plain_seconds, 4),
        "alarms": {name: list(run.detection.alarms[name]) for name in DETECTOR_NAMES},
    }
    _RESULTS[f"{scenario}/{backend}"] = row
    benchmark.extra_info["rows"] = [json.loads(json.dumps(row, default=str))]


def test_bench_detection_artifact(machine_meta):
    """Aggregate, assert the ≤25% overhead contract, write the artifact."""
    if not _RESULTS:
        pytest.skip("no detection timings collected in this run")
    plain_total = sum(row["plain_seconds"] for row in _RESULTS.values())
    detect_total = sum(row["detect_seconds"] for row in _RESULTS.values())
    overall = detect_total / plain_total
    report = {
        "benchmark": "detection_overhead",
        "n_valid": N_VALID,
        "chunk_packets": CHUNK_PACKETS,
        "seed": SEED,
        "detectors": list(DETECTOR_NAMES),
        "max_overhead_ratio": MAX_OVERHEAD_RATIO,
        "overall_overhead_ratio": round(overall, 4),
        "machine": machine_meta("best-of-1 wall clock (time.perf_counter), rounds=1"),
        "cases": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    assert overall <= MAX_OVERHEAD_RATIO, (
        f"detection overhead {overall:.3f}× exceeds the {MAX_OVERHEAD_RATIO}× contract"
    )
