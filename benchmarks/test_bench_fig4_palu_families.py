"""Benchmark: Figure 4 — PALU model curve families versus Zipf–Mandelbrot.

Regenerates the paper's five (α, δ) panels with their exact r sweeps and
times both the full-figure sweep and the single-curve kernel of Equation (5).
The printed rows give, for every (panel, r), the log-space distance to the
ZM reference — the quantitative form of the figure's visual convergence.
"""

from __future__ import annotations

from repro.core.palu_zm_connection import FIG4_PANELS, palu_zm_differential_cumulative
from repro.experiments import run_fig4


def test_fig4_reproduction(run_once):
    rows = run_once(run_fig4, dmax=100_000)
    panels = {(r["panel_alpha"], r["panel_delta"]) for r in rows}
    assert len(panels) == 5
    for alpha, delta in panels:
        errors = [
            r["log_mse_vs_ZM"]
            for r in rows
            if r["panel_alpha"] == alpha and r["panel_delta"] == delta
        ]
        assert errors[-1] < errors[0]
    print()
    for row in rows:
        print("Figure 4:", row)


def test_equation_five_curve_kernel(benchmark):
    alpha, delta, r_values = FIG4_PANELS[2]
    pooled = benchmark(palu_zm_differential_cumulative, 1_000_000, alpha, delta, r_values[-1])
    assert abs(pooled.probability_sum() - 1.0) < 1e-9
