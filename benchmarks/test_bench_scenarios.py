"""Benchmark — scenario generation + analysis through the engine backends.

Times :func:`repro.scenarios.analyze_scenario` (generation, windowing, and
the per-phase fold in one pass) for a representative slice of the built-in
catalogue on the serial and streaming backends, and writes a
``BENCH_scenarios.json`` artifact so the scenario subsystem's perf
trajectory is tracked across PRs.  Backend equality of the pooled output is
asserted as the cases run.

Timing method: each case is run ``ROUNDS`` times after one untimed warm-up
and the **best** wall-clock is recorded, mirroring the streaming-engine
bench — the per-case warm-up matters because the streaming backend pays
one-time costs (prefetch machinery, code paths) on its first use, and
without it whichever streaming case happens to run first reports a
several-fold inflated number that trips ``tools/check_bench.py``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.scenarios import analyze_scenario, get_scenario
from repro.streaming.aggregates import QUANTITY_NAMES

SEED = 20210329
N_VALID = 5_000
CHUNK_PACKETS = 10_000
SCENARIOS = ("stationary", "alpha-drift", "flash-crowd")
ROUNDS = 3
TIMING = f"best-of-{ROUNDS} wall clock (time.perf_counter), 1 warm-up round per case"
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_scenarios.json"

_RESULTS: dict[str, dict] = {}
_SERIAL_POOLED: dict[str, dict[str, np.ndarray]] = {}


def _run(name: str, backend: str):
    kwargs = {"backend": backend, "keep_windows": False}
    if backend == "streaming":
        kwargs["chunk_packets"] = CHUNK_PACKETS
    return analyze_scenario(name, N_VALID, seed=SEED, **kwargs)


@pytest.mark.parametrize("backend", ["serial", "streaming"])
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_bench_scenarios(scenario, backend):
    _run(scenario, backend)  # warm-up: imports, caches, backend machinery
    elapsed = float("inf")
    run = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run = _run(scenario, backend)
        elapsed = min(elapsed, time.perf_counter() - start)

    assert run.analysis.n_windows > 0
    if backend == "serial":
        _SERIAL_POOLED[scenario] = {
            q: run.analysis.pooled(q).values for q in QUANTITY_NAMES
        }
    elif scenario in _SERIAL_POOLED:
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(
                run.analysis.pooled(quantity).values, _SERIAL_POOLED[scenario][quantity]
            )

    row = {
        "scenario": scenario,
        "backend": backend,
        "seconds": round(elapsed, 4),
        "n_windows": run.analysis.n_windows,
        "n_packets": get_scenario(scenario).n_packets,
        "max_drift_source_fanout": round(run.phases.max_drift("source_fanout"), 4),
        "engine_stats": dict(run.engine_stats),
    }
    _RESULTS[f"{scenario}/{backend}"] = row


def test_bench_scenarios_artifact(machine_meta):
    """Write the scenario benchmark artifact (runs after the timed cases)."""
    if not _RESULTS:
        pytest.skip("no scenario timings collected in this run")
    report = {
        "benchmark": "scenario_subsystem",
        "n_valid": N_VALID,
        "chunk_packets": CHUNK_PACKETS,
        "seed": SEED,
        "machine": machine_meta(TIMING),
        "cases": _RESULTS,
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    assert ARTIFACT_PATH.is_file()
