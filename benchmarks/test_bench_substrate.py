"""Micro-benchmarks of the substrate kernels.

These are not tied to a specific table or figure; they track the performance
of the hot paths every experiment goes through — trace generation, windowing,
degree histogramming, pooling, sampling from the discrete distributions, and
the zeta normalisers — so regressions in the vectorised kernels are caught by
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import degree_histogram
from repro.analysis.pooling import pool_differential_cumulative
from repro.core.distributions import PALUDegreeDistribution, ZipfMandelbrotDistribution
from repro.core.zeta import riemann_zeta, truncated_hurwitz
from repro.experiments.config import default_palu_parameters
from repro.generators.configuration_model import configuration_model_edges
from repro.generators.degree_sequence import sample_power_law_degrees
from repro.generators.palu_graph import generate_palu_graph
from repro.generators.sampling import sample_edges_array
from repro.streaming.trace_generator import generate_trace
from repro.streaming.window import window_boundaries


@pytest.fixture(scope="module")
def palu_graph():
    return generate_palu_graph(default_palu_parameters(), n_nodes=30_000, rng=1)


@pytest.fixture(scope="module")
def big_trace(palu_graph):
    return generate_trace(palu_graph.graph, 500_000, rate_model="zipf", rng=2)


def test_trace_generation_500k_packets(benchmark, palu_graph):
    trace = benchmark.pedantic(
        generate_trace, args=(palu_graph.graph, 500_000), kwargs={"rng": 3}, rounds=1, iterations=2
    )
    assert trace.n_packets == 500_000


def test_window_boundary_computation(benchmark, big_trace):
    boundaries = benchmark(window_boundaries, big_trace, 100_000)
    assert boundaries.size == 6


def test_degree_histogram_of_million_values(benchmark):
    values = ZipfMandelbrotDistribution(2.0, -0.5, 100_000).sample(1_000_000, rng=4)
    hist = benchmark(degree_histogram, values)
    assert hist.total == 1_000_000


def test_log_pooling_kernel(benchmark):
    hist = degree_histogram(ZipfMandelbrotDistribution(2.0, -0.5, 100_000).sample(1_000_000, rng=5))
    pooled = benchmark(pool_differential_cumulative, hist)
    assert abs(pooled.probability_sum() - 1.0) < 1e-9


def test_inverse_cdf_sampling_kernel(benchmark):
    dist = PALUDegreeDistribution(c=0.3, l=0.4, u=0.05, alpha=2.0, Lambda=2.5, dmax=100_000)
    sample = benchmark(dist.sample, 1_000_000, rng=6)
    assert sample.size == 1_000_000


def test_configuration_model_kernel(benchmark):
    degrees = sample_power_law_degrees(100_000, 2.0, dmax=10_000, rng=7)
    edges = benchmark(configuration_model_edges, degrees, rng=8)
    assert edges.shape[0] > 0


def test_edge_sampling_kernel(benchmark):
    edges = np.column_stack(
        [np.arange(1_000_000, dtype=np.int64), np.arange(1, 1_000_001, dtype=np.int64)]
    )
    kept = benchmark(sample_edges_array, edges, 0.5, 9)
    assert 0.45 * 1_000_000 < kept.shape[0] < 0.55 * 1_000_000


def test_zeta_evaluation_kernel(benchmark):
    alphas = np.linspace(1.5, 3.0, 256)
    values = benchmark(riemann_zeta, alphas)
    assert np.all(values > 1.0)


def test_truncated_hurwitz_kernel(benchmark):
    value = benchmark(truncated_hurwitz, 2.1, -0.5, 10_000_000)
    assert value > 0
