"""Benchmark: Figure 3 — measured distributions and Zipf–Mandelbrot fits.

Runs the synthetic scenario catalogue (one scenario per annotated panel of
Figure 3) through the full pipeline and times (a) a representative
single-panel reproduction, (b) the ZM fitting kernel on pooled data, and
(c) the windowed-analysis pipeline with and without worker processes.
The printed rows mirror the per-panel (α, δ) annotations of the figure.
"""

from __future__ import annotations

import pytest

from repro.analysis.pooling import pool_differential_cumulative
from repro.core.zm_fit import fit_zipf_mandelbrot
from repro.experiments import FIG3_SCENARIOS, run_fig3, run_fig3_scenario
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.pipeline import analyze_trace
from repro.streaming.trace_generator import generate_trace

# the full Figure-3 sweep takes ~10s — deselected by `pytest -m "not slow"` (fast local loop)
pytestmark = pytest.mark.slow



def test_fig3_single_panel(run_once):
    row = run_once(run_fig3_scenario, FIG3_SCENARIOS[0])
    assert row["zm_log_mse"] < row["powerlaw_log_mse"]
    print()
    print("Figure 3 panel:", row)


def test_fig3_full_sweep(run_once):
    rows = run_once(run_fig3, n_workers=4)
    assert len(rows) == len(FIG3_SCENARIOS)
    # the ZM model must beat the single-exponent baseline on every panel
    assert all(r["zm_log_mse"] <= r["powerlaw_log_mse"] for r in rows)
    # fitted exponents stay in the paper's observed range
    assert all(1.0 < r["alpha_fit"] < 3.5 for r in rows)
    print()
    for row in rows:
        print("Figure 3:", row)


@pytest.fixture(scope="module")
def pooled_observation():
    params = default_palu_parameters()
    graph = generate_palu_graph(params, n_nodes=20_000, rng=11)
    trace = generate_trace(graph.graph, 200_000, rate_model="zipf", rng=12)
    analysis = analyze_trace(trace, 100_000)
    hist = analysis.merged_histogram("source_fanout")
    return pool_differential_cumulative(hist), hist.dmax


def test_zm_fit_kernel(benchmark, pooled_observation):
    pooled, dmax = pooled_observation
    fit = benchmark(fit_zipf_mandelbrot, pooled, dmax)
    assert 1.0 < fit.alpha < 4.0


@pytest.mark.parametrize("n_workers", [1, 4])
def test_pipeline_throughput(benchmark, n_workers):
    """Window-analysis throughput, serial vs multiprocessing."""
    params = default_palu_parameters()
    graph = generate_palu_graph(params, n_nodes=20_000, rng=13)
    trace = generate_trace(graph.graph, 400_000, rate_model="zipf", rng=14)
    result = benchmark.pedantic(
        analyze_trace, args=(trace, 50_000), kwargs={"n_workers": n_workers}, rounds=1, iterations=1
    )
    assert result.n_windows == 8
