"""Benchmark: Table I — aggregate network properties.

Times the Table-I reproduction (synthetic windows aggregated into ``A_t``,
both notations computed and cross-checked) and the underlying sparse-matrix
aggregate kernels on a 10^5-packet window.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_table1
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import compute_aggregates, compute_aggregates_summation
from repro.streaming.sparse_image import traffic_image
from repro.streaming.trace_generator import generate_trace
from repro.streaming.window import iter_windows


def test_table1_reproduction(run_once):
    rows = run_once(run_table1, window_sizes=(10_000, 100_000), n_nodes=20_000, rng=1)
    assert all(row["notations_agree"] for row in rows)
    assert all(row["valid_packets"] == row["NV"] for row in rows)
    print()
    for row in rows:
        print("Table I:", row)


@pytest.fixture(scope="module")
def window_image():
    params = default_palu_parameters()
    graph = generate_palu_graph(params, n_nodes=20_000, rng=2)
    trace = generate_trace(graph.graph, 105_000, rng=3)
    window = next(iter_windows(trace, 100_000))
    return traffic_image(window)


def test_matrix_notation_kernel(benchmark, window_image):
    agg = benchmark(compute_aggregates, window_image)
    assert agg.valid_packets == 100_000


def test_summation_notation_kernel(benchmark, window_image):
    agg = benchmark(compute_aggregates_summation, window_image)
    assert agg.valid_packets == 100_000


def test_sparse_image_construction(benchmark):
    params = default_palu_parameters()
    graph = generate_palu_graph(params, n_nodes=20_000, rng=4)
    trace = generate_trace(graph.graph, 105_000, rng=5)
    window = next(iter_windows(trace, 100_000))
    image = benchmark(traffic_image, window)
    assert image.n_valid == 100_000
