"""Benchmark: Section IV-B — reduced-parameter fitting and recovery.

Times the parameter-recovery sweep (sample from a known reduced PALU law,
run the three-step fitting recipe, invert back to underlying parameters) and
the individual fitting kernels (the full recipe and the baseline power-law
MLE) on a one-million-sample histogram.
"""

from __future__ import annotations

import pytest

from repro.analysis.histogram import degree_histogram
from repro.core.palu_fit import fit_palu
from repro.core.palu_model import degree_distribution
from repro.core.powerlaw_fit import fit_power_law
from repro.experiments import run_palu_recovery
from repro.experiments.config import default_palu_parameters


def test_palu_recovery_sweep(run_once):
    rows = run_once(run_palu_recovery, p_values=(0.3, 0.6, 0.9), n_samples=1_000_000, rng=1)
    assert len(rows) == 3
    for row in rows:
        assert abs(row["alpha_fit"] - row["alpha_true"]) < 0.2
        assert abs(row["l_fit"] - row["l_true"]) / row["l_true"] < 0.25
    print()
    for row in rows:
        print("Section IV-B recovery:", row)


@pytest.fixture(scope="module")
def sampled_histogram():
    params = default_palu_parameters()
    dist = degree_distribution(params, 0.5, dmax=50_000, form="poisson")
    return degree_histogram(dist.sample(1_000_000, rng=2))


def test_palu_fit_kernel(benchmark, sampled_histogram):
    fit = benchmark(fit_palu, sampled_histogram)
    assert 1.5 < fit.alpha < 2.5


def test_power_law_mle_kernel(benchmark, sampled_histogram):
    fit = benchmark(fit_power_law, sampled_histogram, d_min=10)
    assert 1.5 < fit.alpha < 2.5
