"""Benchmark: Figure 1 — streaming network traffic quantities.

Times the extraction of the five per-entity quantities (source packets,
source fan-out, link packets, destination fan-in, destination packets) from
one ``N_V = 10^5`` window and prints the quantity breakdown the figure
illustrates.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_fig1
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import network_quantities
from repro.streaming.sparse_image import traffic_image
from repro.streaming.trace_generator import generate_trace
from repro.streaming.window import iter_windows


def test_fig1_reproduction(run_once):
    rows = run_once(run_fig1, n_valid=100_000, n_nodes=20_000, rng=1)
    by_name = {r["quantity"]: r for r in rows}
    assert by_name["source_packets"]["total"] == 100_000
    assert by_name["destination_packets"]["total"] == 100_000
    assert by_name["link_packets"]["total"] == 100_000
    print()
    for row in rows:
        print("Figure 1:", row)


@pytest.fixture(scope="module")
def window_image():
    params = default_palu_parameters()
    graph = generate_palu_graph(params, n_nodes=20_000, rng=2)
    trace = generate_trace(graph.graph, 105_000, rate_model="zipf", rng=3)
    return traffic_image(next(iter_windows(trace, 100_000)))


def test_quantity_extraction_kernel(benchmark, window_image):
    quantities = benchmark(network_quantities, window_image)
    assert quantities["source_packets"].sum() == 100_000
