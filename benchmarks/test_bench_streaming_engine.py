"""Benchmark — the backend × transport grid, at scales where parallelism is decidable.

Times :func:`repro.streaming.pipeline.analyze_trace` on seeded traces under
every execution case (serial, process+shm, process+pickle, streaming) and
writes a ``BENCH_streaming_engine.json`` artifact of per-scale rows so the
perf trajectory of the engine can be tracked across PRs.  All cases must
agree with the serial run bit-for-bit — the benchmark asserts identity as
it times.

The old single-scale benchmark timed 96k packets, where pool start-up
dwarfs the work and "process ≈ serial" is noise, not a finding.  The grid
fixes that two ways:

* **Scale.** ``REPRO_BENCH_SCALE=full`` adds millions-of-packets cases
  (the ``large``/``xlarge`` rows) where the parallel fraction dominates
  and a speedup claim is decidable.  The default (``quick``) keeps tier-1
  runs fast with the ``small``/``medium`` rows only.
* **Honesty.** Every row records the payload transport and the worker
  count the engine actually resolved to, and the artifact's machine block
  records ``usable_cpus``.  On a 1-CPU box the process rows are in-process
  by design and say so; ``tools/check_bench.py`` refuses to treat such an
  artifact as evidence of parallel speedup.

``test_bench_parallel_wins`` is the gate: on a machine with ≥ 4 usable
CPUs the process backend must beat serial at the largest scale run.  On
smaller boxes it skips loudly — a skip is a statement that the machine
cannot decide the claim, not that the claim holds.

Timing method: each case is run once to warm pools/caches, then
``ROUNDS[scale]`` times, and the **best** wall-clock is recorded.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.parallel import default_worker_count, shutdown_shared_pools, usable_cpu_count
from repro.streaming.pipeline import analyze_trace

SEED = 20210329
TIMING = "best-of-k wall clock (time.perf_counter), 1 warm-up round, scale grid v2"
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming_engine.json"

#: scale name → trace/window geometry.  ``large``/``xlarge`` are the
#: millions-of-packets rows where a parallel speedup claim is decidable.
SCALES: dict[str, dict] = {
    "small": {"n_valid": 3_000, "n_windows": 32, "n_nodes": 6_000, "rounds": 5},
    "medium": {"n_valid": 10_000, "n_windows": 48, "n_nodes": 20_000, "rounds": 5},
    "large": {"n_valid": 50_000, "n_windows": 40, "n_nodes": 40_000, "rounds": 2},
    "xlarge": {"n_valid": 100_000, "n_windows": 40, "n_nodes": 60_000, "rounds": 1},
}

#: case name → ``analyze_trace`` keyword arguments.
CASES: dict[str, dict] = {
    "serial": {"backend": "serial"},
    "process-shm": {"backend": "process", "payload_transport": "shm"},
    "process-pickle": {"backend": "process", "payload_transport": "pickle"},
    "streaming": {"backend": "streaming"},
}


def scales_to_run() -> tuple[str, ...]:
    """The scale names selected by ``REPRO_BENCH_SCALE`` (default: quick)."""
    value = os.environ.get("REPRO_BENCH_SCALE", "quick").strip().lower()
    if value in ("", "quick"):
        return ("small", "medium")
    if value == "full":
        return tuple(SCALES)
    names = tuple(name.strip() for name in value.split(",") if name.strip())
    unknown = [name for name in names if name not in SCALES]
    if unknown:
        raise ValueError(
            f"REPRO_BENCH_SCALE names unknown scales {unknown}; "
            f"choose from {sorted(SCALES)} or 'quick'/'full'"
        )
    return names


_RESULTS: dict[str, dict[str, dict]] = {}
_BASELINE_POOLED: dict[str, dict[str, np.ndarray]] = {}
_TRACES: dict[str, object] = {}


@pytest.fixture(scope="module")
def bench_trace():
    """Build (and cache) the seeded trace for one scale on demand."""
    from repro.streaming.trace_generator import generate_trace

    def _get(scale: str):
        if scale not in _TRACES:
            spec = SCALES[scale]
            graph = generate_palu_graph(
                default_palu_parameters(), n_nodes=spec["n_nodes"], rng=SEED
            )
            _TRACES[scale] = generate_trace(
                graph.graph, spec["n_valid"] * spec["n_windows"],
                rate_model="zipf", rng=SEED + 1,
            )
        return _TRACES[scale]

    yield _get
    _TRACES.clear()


def _run(trace, scale: str, case: str):
    kwargs = dict(CASES[case], keep_windows=False)
    if case == "streaming":
        kwargs["chunk_packets"] = 4 * SCALES[scale]["n_valid"]
    return analyze_trace(trace, SCALES[scale]["n_valid"], **kwargs)


@pytest.mark.parametrize("case", list(CASES))
@pytest.mark.parametrize("scale", list(SCALES))
def test_bench_streaming_engine(bench_trace, scale, case):
    if scale not in scales_to_run():
        pytest.skip(f"scale {scale!r} not selected (REPRO_BENCH_SCALE)")
    trace = bench_trace(scale)
    _run(trace, scale, case)  # warm-up: pools, caches, code paths
    elapsed = float("inf")
    analysis = None
    for _ in range(SCALES[scale]["rounds"]):
        start = time.perf_counter()
        analysis = _run(trace, scale, case)
        elapsed = min(elapsed, time.perf_counter() - start)

    assert analysis.n_windows == SCALES[scale]["n_windows"]
    if case == "serial":
        _BASELINE_POOLED[scale] = {
            quantity: analysis.pooled(quantity).values for quantity in QUANTITY_NAMES
        }
    else:
        baseline = _BASELINE_POOLED.get(scale, {})
        for quantity, values in baseline.items():
            assert analysis.pooled(quantity).values.tobytes() == values.tobytes(), (
                f"{case} diverged from serial on {quantity} at scale {scale}"
            )

    row = {
        "case": case,
        "seconds": round(elapsed, 4),
        "rounds": SCALES[scale]["rounds"],
        "n_windows": analysis.n_windows,
        "n_valid": SCALES[scale]["n_valid"],
        "packets": int(trace.n_packets),
        "engine_stats": dict(analysis.engine_stats),
        "pooled_d1": float(analysis.pooled("source_fanout").values[0]),
    }
    if case.startswith("process"):
        # the worker count the engine resolved to on this machine — with one
        # usable CPU this is 1 and the run is in-process by design, so the
        # row must say so rather than imply a multi-process measurement
        row["resolved_workers"] = default_worker_count()
        row["payload_transport"] = analysis.engine_stats.get("payload_transport")
    _RESULTS.setdefault(scale, {})[case] = row


def test_bench_parallel_wins():
    """Gate: process+shm beats serial where the machine can decide the claim."""
    usable = usable_cpu_count()
    if not _RESULTS:
        pytest.skip("no timings collected in this run")
    if usable < 4:
        reason = (
            f"PARALLEL SPEEDUP NOT DECIDABLE on this machine: usable_cpus={usable} < 4. "
            "Timings are recorded for the trajectory but prove nothing about parallel "
            "scaling — run on a multi-core box (CI does) to gate the claim."
        )
        print(f"\n{reason}")
        pytest.skip(reason)
    scale = [name for name in SCALES if name in _RESULTS][-1]
    serial = _RESULTS[scale]["serial"]["seconds"]
    process = _RESULTS[scale]["process-shm"]["seconds"]
    assert process < serial, (
        f"process+shm ({process:.3f}s) did not beat serial ({serial:.3f}s) at scale "
        f"{scale} with usable_cpus={usable} — the parallel engine is not paying for itself"
    )


def test_bench_streaming_engine_artifact(machine_meta):
    """Write the grid artifact (runs after the timed cases)."""
    if not _RESULTS:
        pytest.skip("no timings collected in this run")
    shutdown_shared_pools()
    usable = usable_cpu_count()
    speedups: dict[str, dict[str, float]] = {}
    for scale, rows in _RESULTS.items():
        serial = rows.get("serial", {}).get("seconds")
        if not serial:
            continue
        speedups[scale] = {
            case: round(serial / row["seconds"], 3)
            for case, row in rows.items()
            if row["seconds"] > 0
        }
    report = {
        "benchmark": "streaming_engine_backends",
        "scales_run": [name for name in SCALES if name in _RESULTS],
        "scale_grid": {
            name: {k: v for k, v in spec.items() if k != "rounds"}
            for name, spec in SCALES.items()
        },
        "machine": machine_meta(TIMING),
        "parallel_decidable": usable >= 4,
        "cases": _RESULTS,
        "speedup_vs_serial": speedups,
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    assert ARTIFACT_PATH.is_file()
