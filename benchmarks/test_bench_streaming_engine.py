"""Benchmark — serial vs process vs streaming execution backends.

Times :func:`repro.streaming.pipeline.analyze_trace` on the same seeded
32-window trace under each :class:`~repro.streaming.parallel.ExecutionBackend`
and writes a ``BENCH_streaming_engine.json`` artifact (backend → seconds,
plus the engine's buffering statistics and the machine metadata) so the
perf trajectory of the engine can be tracked across PRs.  All backends must
agree on the pooled output — the benchmark asserts bit-identity as it
times.

Timing method: each backend is run ``ROUNDS`` times after one warm-up and
the **best** wall-clock is recorded — steady-state numbers, with pool
start-up and first-touch effects amortised the way a long-running analysis
service would amortise them.  The process backend picks its own worker
count (the engine caps it to the usable CPUs and degrades to in-process
execution when there is no parallel hardware), so the recorded speedup is
what the engine actually delivers on the machine, not what a hard-coded
worker count costs it.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.parallel import default_worker_count, shutdown_shared_pools
from repro.streaming.pipeline import analyze_trace
from repro.streaming.trace_generator import generate_trace

SEED = 20210329
N_VALID = 3_000
N_WINDOWS = 32
CHUNK_PACKETS = 12_000
ROUNDS = 3
TIMING = f"best-of-{ROUNDS} wall clock (time.perf_counter), 1 warm-up round"
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming_engine.json"

_RESULTS: dict[str, dict] = {}
_BASELINE_POOLED: dict[str, np.ndarray] = {}


@pytest.fixture(scope="module")
def bench_trace():
    """A seeded trace holding exactly 32 complete 3k-valid-packet windows."""
    graph = generate_palu_graph(default_palu_parameters(), n_nodes=6_000, rng=SEED)
    return generate_trace(graph.graph, N_VALID * N_WINDOWS, rate_model="zipf", rng=SEED + 1)


def _run(trace, backend: str):
    kwargs = {"backend": backend, "keep_windows": False}
    if backend == "streaming":
        kwargs["chunk_packets"] = CHUNK_PACKETS
    return analyze_trace(trace, N_VALID, **kwargs)


@pytest.mark.parametrize("backend", ["serial", "process", "streaming"])
def test_bench_streaming_engine(bench_trace, backend):
    _run(bench_trace, backend)  # warm-up: pools, caches, code paths
    elapsed = float("inf")
    analysis = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        analysis = _run(bench_trace, backend)
        elapsed = min(elapsed, time.perf_counter() - start)

    assert analysis.n_windows == N_WINDOWS
    pooled = analysis.pooled("source_fanout")
    if backend == "serial":
        for quantity in QUANTITY_NAMES:
            _BASELINE_POOLED[quantity] = analysis.pooled(quantity).values
    elif _BASELINE_POOLED:
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(analysis.pooled(quantity).values, _BASELINE_POOLED[quantity])

    row = {
        "backend": backend,
        "seconds": round(elapsed, 4),
        "n_windows": analysis.n_windows,
        "n_valid": N_VALID,
        "engine_stats": {k: v for k, v in analysis.engine_stats.items()},
        "pooled_d1": float(pooled.values[0]),
    }
    if backend == "process":
        # how many workers the engine resolved to on this machine — with one
        # usable CPU this is 1 and the run is in-process by design, so the
        # row must say so rather than imply a multi-process measurement
        row["resolved_workers"] = default_worker_count()
    _RESULTS[backend] = row


def test_bench_streaming_engine_artifact(machine_meta):
    """Write the backend-comparison artifact (runs after the timed cases)."""
    if not _RESULTS:
        pytest.skip("no backend timings collected in this run")
    shutdown_shared_pools()
    serial = _RESULTS.get("serial", {}).get("seconds")
    report = {
        "benchmark": "streaming_engine_backends",
        "n_valid": N_VALID,
        "n_windows": N_WINDOWS,
        "chunk_packets": CHUNK_PACKETS,
        "machine": machine_meta(TIMING),
        "backends": _RESULTS,
        "speedup_vs_serial": {
            name: round(serial / row["seconds"], 3)
            for name, row in _RESULTS.items()
            if serial and row["seconds"] > 0
        },
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    assert ARTIFACT_PATH.is_file()
