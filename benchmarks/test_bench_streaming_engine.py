"""Benchmark — serial vs process vs streaming execution backends.

Times :func:`repro.streaming.pipeline.analyze_trace` on the same seeded
32-window trace under each :class:`~repro.streaming.parallel.ExecutionBackend`
and writes a ``BENCH_streaming_engine.json`` artifact (backend → seconds,
plus the engine's buffering statistics) so the perf trajectory of the
engine can be tracked across PRs.  All backends must agree on the pooled
output — the benchmark asserts bit-identity as it times.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.pipeline import analyze_trace
from repro.streaming.trace_generator import generate_trace

SEED = 20210329
N_VALID = 3_000
N_WINDOWS = 32
CHUNK_PACKETS = 12_000
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_streaming_engine.json"

_RESULTS: dict[str, dict] = {}
_BASELINE_POOLED: dict[str, np.ndarray] = {}


@pytest.fixture(scope="module")
def bench_trace():
    """A seeded trace holding exactly 32 complete 3k-valid-packet windows."""
    graph = generate_palu_graph(default_palu_parameters(), n_nodes=6_000, rng=SEED)
    return generate_trace(graph.graph, N_VALID * N_WINDOWS, rate_model="zipf", rng=SEED + 1)


def _run(trace, backend: str):
    kwargs = {"backend": backend, "keep_windows": False}
    if backend == "process":
        kwargs["n_workers"] = 4
    if backend == "streaming":
        kwargs["chunk_packets"] = CHUNK_PACKETS
    return analyze_trace(trace, N_VALID, **kwargs)


@pytest.mark.parametrize("backend", ["serial", "process", "streaming"])
def test_bench_streaming_engine(benchmark, bench_trace, backend):
    start = time.perf_counter()
    analysis = benchmark.pedantic(_run, args=(bench_trace, backend), rounds=1, iterations=1)
    elapsed = time.perf_counter() - start

    assert analysis.n_windows == N_WINDOWS
    pooled = analysis.pooled("source_fanout")
    if backend == "serial":
        for quantity in QUANTITY_NAMES:
            _BASELINE_POOLED[quantity] = analysis.pooled(quantity).values
    elif _BASELINE_POOLED:
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(analysis.pooled(quantity).values, _BASELINE_POOLED[quantity])

    row = {
        "backend": backend,
        "seconds": round(elapsed, 4),
        "n_windows": analysis.n_windows,
        "n_valid": N_VALID,
        "engine_stats": {k: v for k, v in analysis.engine_stats.items()},
        "pooled_d1": float(pooled.values[0]),
    }
    _RESULTS[backend] = row
    benchmark.extra_info["rows"] = [json.loads(json.dumps(row, default=str))]


def test_bench_streaming_engine_artifact():
    """Write the backend-comparison artifact (runs after the timed cases)."""
    if not _RESULTS:
        pytest.skip("no backend timings collected in this run")
    serial = _RESULTS.get("serial", {}).get("seconds")
    report = {
        "benchmark": "streaming_engine_backends",
        "n_valid": N_VALID,
        "n_windows": N_WINDOWS,
        "chunk_packets": CHUNK_PACKETS,
        "backends": _RESULTS,
        "speedup_vs_serial": {
            name: round(serial / row["seconds"], 3)
            for name, row in _RESULTS.items()
            if serial and row["seconds"] > 0
        },
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    assert ARTIFACT_PATH.is_file()
