"""Benchmark — campaign sweeps cold vs. warm through the result store.

Runs one moderate campaign grid (3 scenarios × 2 seeds) three ways — cold
serial, cold with process-pool fan-out, and warm (every cell already
stored) — and writes a ``BENCH_campaigns.json`` artifact recording the
cold/warm wall-clock ratio: the operational point of the store is that the
warm sweep costs O(read) per cell, orders of magnitude under recompute.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.campaigns import Campaign, run_campaign

# cold campaign sweeps across pools — deselected by `pytest -m "not slow"` (fast local loop)
pytestmark = pytest.mark.slow


SEEDS = (0, 1)
SCENARIOS = ("stationary", "alpha-drift", "flash-crowd")
N_VALID = 5_000
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaigns.json"

_RESULTS: dict[str, dict] = {}


def _campaign() -> Campaign:
    return Campaign(
        "bench-sweep",
        scenarios=SCENARIOS,
        seeds=SEEDS,
        n_valids=(N_VALID,),
        backends=("streaming",),
        chunk_packets=10_000,
    )


@pytest.fixture(scope="module", autouse=True)
def _warm_engine():
    """Prime imports/numpy once so the first timed case is not inflated."""
    from repro.scenarios import analyze_scenario

    analyze_scenario("stationary", N_VALID, seed=0, keep_windows=False)


@pytest.mark.parametrize(
    "case, pool, prewarm",
    [
        ("cold/serial-pool", None, False),
        ("cold/process-pool", "process", False),
        ("warm", None, True),
    ],
)
def test_bench_campaign_sweep(benchmark, tmp_path, case, pool, prewarm):
    campaign = _campaign()
    store = tmp_path / "store"
    if prewarm:
        run_campaign(campaign, store)

    start = time.perf_counter()
    run = benchmark.pedantic(
        run_campaign, args=(campaign, store), kwargs={"pool": pool}, rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start

    assert run.complete
    assert run.n_computed == (0 if prewarm else len(campaign.unique_keys()))
    row = {
        "case": case,
        "seconds": round(elapsed, 4),
        "n_cells": run.n_cells,
        "n_computed": run.n_computed,
        "n_cached": run.n_cached,
    }
    _RESULTS[case] = row
    benchmark.extra_info["rows"] = [json.loads(json.dumps(row, default=str))]


def test_bench_campaign_artifact(machine_meta):
    """Write the campaign benchmark artifact (runs after the timed cases)."""
    if not _RESULTS:
        pytest.skip("no campaign timings collected in this run")
    cold = _RESULTS.get("cold/serial-pool", {}).get("seconds")
    warm = _RESULTS.get("warm", {}).get("seconds")
    report = {
        "benchmark": "campaign_orchestrator",
        "grid": {"scenarios": list(SCENARIOS), "seeds": list(SEEDS), "n_valid": N_VALID},
        "machine": machine_meta("best-of-1 wall clock (time.perf_counter), rounds=1"),
        "cases": _RESULTS,
        "cold_over_warm": round(cold / warm, 2) if cold and warm else None,
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    assert ARTIFACT_PATH.exists()
