"""Benchmark — sketch tier vs exact fused kernel, one core, one window.

Times :func:`repro.streaming.sketch.sketch_products` against the exact
:func:`repro.streaming.kernel.fused_products` on the same high-diversity
heavy-tailed window at growing ``N_V``, and writes ``BENCH_sketch.json``
(per-size wall time, peak per-window working memory via ``tracemalloc``,
the time crossover, and the machine metadata).  The artifact asserts the
tentpole claim of the sketch tier: at the largest benched window the sketch
is faster than the exact kernel **and** uses less peak working memory —
the exact kernel's sort/unique pipeline is O(N_V) temporaries, the
sketch's tables and block scratch are O(1) in the window.

Workload: ``zipf(1.2) mod N_V/2`` ids on both columns — hundreds of
thousands of distinct endpoints at the largest size, the diversity regime
observatory traffic lives in and the worst case for the exact kernel's
sort.  The sketch's runtime is data-independent (same table walks whatever
the ids), so a skewed workload handicaps the sketch, not the oracle.

Timing method: best of ``ROUNDS`` wall-clock runs after one warm-up, with
``tracemalloc`` **off**; memory is measured in one separate traced run per
tier.  ``REPRO_BENCH_SCALE=smoke`` drops the largest window size for CI
smoke runs (the win assertion then applies to the largest smoke size).
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.streaming.kernel import fused_products
from repro.streaming.sketch import DEFAULT_SKETCH_CONFIG, build_sketch, sketch_products

SEED = 20210329
# best-of-5: the 250k case's sketch-vs-exact margin is ~1.25x on a quiet
# box but the absolute times are single-digit milliseconds, so fewer
# rounds let scheduler noise flip the recorded crossover between runs
ROUNDS = 5
TIMING = f"best-of-{ROUNDS} wall clock (time.perf_counter), 1 warm-up round"
ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "BENCH_sketch.json"

_FULL_SIZES = (250_000, 1_000_000, 4_000_000)
_SMOKE_SIZES = (250_000, 1_000_000)
SIZES = _SMOKE_SIZES if os.environ.get("REPRO_BENCH_SCALE") == "smoke" else _FULL_SIZES

_RESULTS: dict[int, dict] = {}


def _workload(n_valid: int) -> tuple[np.ndarray, np.ndarray]:
    """High-diversity heavy-tailed id columns for one window."""
    rng = np.random.default_rng(SEED)
    modulus = max(n_valid // 2, 1)
    src = rng.zipf(1.2, n_valid).astype(np.int64) % modulus
    dst = rng.zipf(1.2, n_valid).astype(np.int64) % modulus
    return src, dst


def _best_seconds(func) -> float:
    func()  # warm-up: caches, lazy allocations, code paths
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _peak_bytes(func) -> int:
    tracemalloc.start()
    try:
        func()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


@pytest.mark.parametrize("n_valid", SIZES)
def test_bench_sketch_vs_exact(n_valid):
    src, dst = _workload(n_valid)

    exact_seconds = _best_seconds(lambda: fused_products(src, dst))
    sketch_seconds = _best_seconds(lambda: sketch_products(src, dst))
    exact_peak = _peak_bytes(lambda: fused_products(src, dst))
    sketch_peak = _peak_bytes(lambda: sketch_products(src, dst))

    # correctness rides the timing run: the sketch must be deterministic,
    # count packets exactly, and land its distinct estimates near the oracle
    exact_agg, _ = fused_products(src, dst)
    agg, hists, bounds, sketch = sketch_products(src, dst)
    assert sketch == build_sketch(src, dst)
    assert agg.valid_packets == exact_agg.valid_packets == n_valid
    for name in ("source_packets", "destination_packets", "link_packets"):
        assert int((hists[name].degrees * hists[name].counts).sum()) == n_valid
    hll_tolerance = 6 * DEFAULT_SKETCH_CONFIG.hll_relative_error
    for field in ("unique_sources", "unique_destinations", "unique_links"):
        true, got = getattr(exact_agg, field), getattr(agg, field)
        assert abs(got - true) <= max(3, hll_tolerance * true), field

    _RESULTS[n_valid] = {
        "n_valid": n_valid,
        "exact_seconds": round(exact_seconds, 4),
        "sketch_seconds": round(sketch_seconds, 4),
        "speedup": round(exact_seconds / sketch_seconds, 3),
        "exact_ns_per_packet": round(exact_seconds / n_valid * 1e9, 1),
        "sketch_ns_per_packet": round(sketch_seconds / n_valid * 1e9, 1),
        "exact_peak_mib": round(exact_peak / 2**20, 2),
        "sketch_peak_mib": round(sketch_peak / 2**20, 2),
        "unique_sources_exact": exact_agg.unique_sources,
        "unique_sources_sketch": agg.unique_sources,
    }


def test_bench_sketch_artifact(machine_meta):
    """Write ``BENCH_sketch.json`` and assert the crossover claim."""
    if not _RESULTS:
        pytest.skip("no sketch timings collected in this run")
    largest = max(_RESULTS)
    top = _RESULTS[largest]
    # the tentpole claim, asserted where it matters: at the largest benched
    # window the sketch beats the exact kernel on wall time AND peak memory
    assert top["sketch_seconds"] < top["exact_seconds"], (
        f"sketch lost on time at N_V={largest}: {top}"
    )
    assert top["sketch_peak_mib"] < top["exact_peak_mib"], (
        f"sketch lost on peak memory at N_V={largest}: {top}"
    )
    time_wins = [n for n, row in sorted(_RESULTS.items()) if row["speedup"] > 1.0]
    report = {
        "benchmark": "sketch_vs_exact_window_analysis",
        "workload": "zipf(1.2) mod N_V/2 on both id columns (high diversity)",
        "sketch_config": DEFAULT_SKETCH_CONFIG.as_key_payload(),
        "sketch_payload_bytes": build_sketch([], []).nbytes,
        # a float on purpose: the crossover is a *measured* quantity (the
        # smallest benched window where the sketch won this run), and the
        # docs-freshness gate masks floats as noisy while holding integers
        # byte-stable across re-runs
        "time_crossover_n_valid": float(time_wins[0]) if time_wins else None,
        "largest_n_valid": largest,
        "largest_speedup": top["speedup"],
        "machine": machine_meta(TIMING),
        "cases": {str(n): _RESULTS[n] for n in sorted(_RESULTS)},
    }
    ARTIFACT_PATH.write_text(json.dumps(report, indent=1) + "\n", encoding="utf-8")
    assert ARTIFACT_PATH.is_file()
