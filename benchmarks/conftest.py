"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one ablation
from DESIGN.md) and attaches the resulting rows to the pytest-benchmark
``extra_info`` so that ``pytest benchmarks/ --benchmark-only`` both times the
experiment and records what it produced.  Heavy experiment drivers are run
with ``rounds=1`` (they are experiments, not micro-benchmarks); the substrate
micro-benchmarks use pytest-benchmark's default calibration.
"""

from __future__ import annotations

import json
import os
import platform

import numpy as np
import pytest

from repro.streaming.parallel import usable_cpu_count


def machine_metadata(timing: str) -> dict:
    """Machine/toolchain context recorded in every ``BENCH_*.json`` artifact.

    The perf trajectory compares numbers committed across PRs; without the
    CPU budget, platform, and library versions those comparisons are
    guesswork.  *timing* documents how the harness measured (e.g.
    ``"best-of-3 wall clock (time.perf_counter)"``) so best-of-k and
    single-shot artifacts are never conflated.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "usable_cpus": usable_cpu_count(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "timing": timing,
    }


@pytest.fixture()
def machine_meta():
    """The :func:`machine_metadata` helper, injectable into artifact writers."""
    return machine_metadata


def attach_rows(benchmark, rows) -> None:
    """Record experiment output rows on the benchmark for the JSON report."""
    try:
        benchmark.extra_info["rows"] = json.loads(json.dumps(rows, default=str))
    except Exception:  # pragma: no cover - defensive: extra_info is best-effort
        benchmark.extra_info["rows"] = str(rows)


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment driver exactly once under timing and return its result."""

    def _run(func, *args, **kwargs):
        result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
        attach_rows(benchmark, result)
        return result

    return _run
