"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (or one ablation
from DESIGN.md) and attaches the resulting rows to the pytest-benchmark
``extra_info`` so that ``pytest benchmarks/ --benchmark-only`` both times the
experiment and records what it produced.  Heavy experiment drivers are run
with ``rounds=1`` (they are experiments, not micro-benchmarks); the substrate
micro-benchmarks use pytest-benchmark's default calibration.
"""

from __future__ import annotations

import json

import pytest


def attach_rows(benchmark, rows) -> None:
    """Record experiment output rows on the benchmark for the JSON report."""
    try:
        benchmark.extra_info["rows"] = json.loads(json.dumps(rows, default=str))
    except Exception:  # pragma: no cover - defensive: extra_info is best-effort
        benchmark.extra_info["rows"] = str(rows)


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment driver exactly once under timing and return its result."""

    def _run(func, *args, **kwargs):
        result = benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
        attach_rows(benchmark, result)
        return result

    return _run
