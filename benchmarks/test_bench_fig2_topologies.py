"""Benchmark: Figure 2 — traffic network topologies.

Times the topology decomposition (supernodes / supernode leaves / core /
core leaves / unattached links) of observed PALU networks across the class
mixes of the Figure-2 reproduction, plus the PALU graph generator itself.
"""

from __future__ import annotations

from repro.analysis.topology import decompose_topology
from repro.experiments import run_fig2
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.generators.sampling import sample_edges


def test_fig2_reproduction(run_once):
    rows = run_once(run_fig2, n_nodes=20_000, p=0.6, rng=1)
    by_mix = {r["mix"]: r for r in rows}
    assert by_mix["bot-heavy"]["n_unattached_links"] > by_mix["core-heavy"]["n_unattached_links"]
    print()
    for row in rows:
        print("Figure 2:", row)


def test_palu_graph_generation_kernel(benchmark):
    params = default_palu_parameters()
    palu = benchmark(generate_palu_graph, params, 30_000, rng=2)
    assert palu.n_nodes >= 30_000 * 0.9


def test_topology_decomposition_kernel(benchmark):
    params = default_palu_parameters()
    palu = generate_palu_graph(params, n_nodes=30_000, rng=3)
    observed = sample_edges(palu.graph, 0.6, rng=4)
    decomposition = benchmark(decompose_topology, observed)
    assert decomposition.n_nodes > 0
