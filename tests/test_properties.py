"""Property-based tests (hypothesis) on the core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.analysis.moments import poisson_moment_rhs
from repro.analysis.pooling import (
    aggregate_pooled,
    log2_bin_index,
    pool_differential_cumulative,
    pool_probability_vector,
)
from repro.core.distributions import (
    DiscretePowerLaw,
    PALUDegreeDistribution,
    ZipfMandelbrotDistribution,
)
from repro.core.palu_fit import solve_lambda_from_ratio
from repro.core.palu_model import PALUParameters, expected_class_fractions, visible_fraction
from repro.core.palu_zm_connection import palu_zm_probability, u_over_c_from_delta
from repro.core.zeta import riemann_zeta, truncated_hurwitz, truncated_zeta
from repro.core.zipf_mandelbrot import zm_probability
from repro.streaming.packet import PacketTrace
from repro.streaming.window import iter_windows

# example counts come from the dev/ci profiles in conftest.py (selected via
# --hypothesis-profile); pinning max_examples here would override the CI
# profile and silently shrink its search
_SETTINGS = settings(deadline=None, suppress_health_check=[HealthCheck.too_slow])

degree_lists = st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=300)
alphas = st.floats(min_value=1.2, max_value=3.5, allow_nan=False)
deltas = st.floats(min_value=-0.95, max_value=3.0, allow_nan=False)
fractions = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)


class TestZetaProperties:
    @_SETTINGS
    @given(alpha=st.floats(min_value=1.05, max_value=6.0))
    def test_riemann_zeta_bounds(self, alpha):
        """ζ(α) is finite, > 1, and bounded by 1 + 1/(α-1) + 1 (integral bound)."""
        value = riemann_zeta(alpha)
        assert 1.0 < value
        assert value <= 1.0 + 1.0 / (alpha - 1.0) + 1e-9

    @_SETTINGS
    @given(alpha=st.floats(min_value=0.1, max_value=4.0), dmax=st.integers(min_value=1, max_value=3000))
    def test_truncated_zeta_matches_direct_sum(self, alpha, dmax):
        direct = float(np.sum(np.arange(1, dmax + 1, dtype=float) ** (-alpha)))
        assert truncated_zeta(alpha, dmax) == pytest.approx(direct, rel=1e-9)

    @_SETTINGS
    @given(alpha=alphas, delta=deltas, dmax=st.integers(min_value=2, max_value=2000))
    def test_truncated_hurwitz_positive_and_monotone_in_dmax(self, alpha, delta, dmax):
        small = truncated_hurwitz(alpha, delta, dmax)
        larger = truncated_hurwitz(alpha, delta, dmax + 1)
        assert small > 0
        assert larger > small


class TestHistogramProperties:
    @_SETTINGS
    @given(values=degree_lists)
    def test_histogram_conserves_total(self, values):
        hist = degree_histogram(values)
        assert hist.total == len(values)
        assert hist.probability().sum() == pytest.approx(1.0)

    @_SETTINGS
    @given(values=degree_lists)
    def test_dense_round_trip(self, values):
        hist = degree_histogram(values)
        rebuilt = DegreeHistogram.from_dense(hist.dense_counts())
        np.testing.assert_array_equal(rebuilt.degrees, hist.degrees)
        np.testing.assert_array_equal(rebuilt.counts, hist.counts)

    @_SETTINGS
    @given(values=degree_lists, other=degree_lists)
    def test_merge_total_and_commutativity(self, values, other):
        a, b = degree_histogram(values), degree_histogram(other)
        merged = a.merge(b)
        assert merged.total == a.total + b.total
        swapped = b.merge(a)
        np.testing.assert_array_equal(merged.counts, swapped.counts)


class TestPoolingProperties:
    @_SETTINGS
    @given(values=degree_lists)
    def test_pooling_conserves_probability(self, values):
        pooled = pool_differential_cumulative(degree_histogram(values))
        assert pooled.probability_sum() == pytest.approx(1.0)

    @_SETTINGS
    @given(values=degree_lists)
    def test_first_bin_equals_degree_one_fraction(self, values):
        hist = degree_histogram(values)
        pooled = pool_differential_cumulative(hist)
        assert pooled.values[0] == pytest.approx(hist.fraction_at(1))

    @_SETTINGS
    @given(degrees=st.lists(st.integers(min_value=1, max_value=10**6), min_size=1, max_size=100))
    def test_bin_index_brackets_degree(self, degrees):
        arr = np.asarray(degrees)
        idx = log2_bin_index(arr)
        upper = 2.0**idx
        lower = 2.0 ** (idx - 1)
        assert np.all(arr <= upper)
        assert np.all((arr > lower) | (arr == 1))

    @_SETTINGS
    @given(values_list=st.lists(degree_lists, min_size=1, max_size=5))
    def test_aggregate_pooled_mean_conserves_probability(self, values_list):
        pooled = [pool_differential_cumulative(degree_histogram(v)) for v in values_list]
        agg = aggregate_pooled(pooled)
        assert agg.probability_sum() == pytest.approx(1.0)
        assert agg.sigma is not None and np.all(agg.sigma >= 0)


class TestDistributionProperties:
    @_SETTINGS
    @given(alpha=alphas, dmax=st.integers(min_value=2, max_value=5000))
    def test_power_law_normalised_and_monotone(self, alpha, dmax):
        dist = DiscretePowerLaw(alpha, dmax)
        pmf = dist.probabilities()
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(np.diff(pmf) <= 1e-15)

    @_SETTINGS
    @given(alpha=alphas, delta=deltas, dmax=st.integers(min_value=2, max_value=5000))
    def test_zm_normalised_and_monotone(self, alpha, delta, dmax):
        pmf = zm_probability(np.arange(1, dmax + 1, dtype=float), alpha, delta)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(np.diff(pmf) <= 1e-15)

    @_SETTINGS
    @given(
        c=st.floats(min_value=0.0, max_value=1.0),
        l=st.floats(min_value=0.0, max_value=1.0),
        u=st.floats(min_value=0.0, max_value=1.0),
        alpha=alphas,
        Lambda=st.floats(min_value=0.0, max_value=8.0),
        form=st.sampled_from(["stirling", "poisson"]),
    )
    def test_palu_distribution_valid_whenever_some_weight(self, c, l, u, alpha, Lambda, form):
        if c + l + u <= 0:
            with pytest.raises(ValueError):
                PALUDegreeDistribution(c=c, l=l, u=u, alpha=alpha, Lambda=Lambda, dmax=200, form=form)
            return
        dist = PALUDegreeDistribution(c=c, l=l, u=u, alpha=alpha, Lambda=Lambda, dmax=200, form=form)
        pmf = dist.probabilities()
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)

    @_SETTINGS
    @given(alpha=alphas, delta=deltas, dmax=st.integers(min_value=10, max_value=2000))
    def test_zm_sampling_stays_in_support(self, alpha, delta, dmax):
        dist = ZipfMandelbrotDistribution(alpha, delta, dmax)
        sample = dist.sample(500, rng=0)
        assert sample.min() >= 1 and sample.max() <= dmax


class TestPALUModelProperties:
    @_SETTINGS
    @given(
        cw=st.floats(min_value=0.05, max_value=1.0),
        lw=st.floats(min_value=0.0, max_value=1.0),
        uw=st.floats(min_value=0.0, max_value=1.0),
        lam=st.floats(min_value=0.0, max_value=10.0),
        alpha=st.floats(min_value=1.5, max_value=3.0),
        p=fractions,
    )
    def test_constraint_and_fractions(self, cw, lw, uw, lam, alpha, p):
        try:
            params = PALUParameters.from_weights(cw, lw, uw, lam=lam, alpha=alpha)
        except ValueError:
            # an unattached share unreachable for this λ is rejected up front
            assume(False)
        assert params.constraint_value() == pytest.approx(1.0, abs=1e-6)
        fr = expected_class_fractions(params, p)
        assert fr["core"] + fr["leaves"] + fr["unattached"] == pytest.approx(1.0)
        assert all(v >= -1e-12 for v in fr.values())
        assert 0.0 < visible_fraction(params, p) <= 1.5

    @_SETTINGS
    @given(
        lam=st.floats(min_value=0.0, max_value=10.0),
        p1=st.floats(min_value=0.01, max_value=0.5),
        p2=st.floats(min_value=0.5, max_value=1.0),
    )
    def test_visible_fraction_monotone_in_p(self, lam, p1, p2):
        try:
            params = PALUParameters.from_weights(0.5, 0.2, 0.3, lam=lam, alpha=2.0)
        except ValueError:
            assume(False)
        assert visible_fraction(params, p1) <= visible_fraction(params, p2) + 1e-12


class TestMomentAndConnectionProperties:
    @_SETTINGS
    @given(m=st.floats(min_value=0.0, max_value=60.0))
    def test_moment_rhs_round_trip(self, m):
        rhs = poisson_moment_rhs(m)
        assert solve_lambda_from_ratio(rhs, m_max=100.0) == pytest.approx(m, abs=1e-4, rel=1e-4)

    @_SETTINGS
    @given(alpha=alphas, delta=deltas.filter(lambda d: abs(d) > 1e-6))
    def test_u_over_c_sign_matches_delta_sign(self, alpha, delta):
        value = u_over_c_from_delta(alpha, delta)
        if delta < 0:
            assert value > 0
        else:
            assert value < 0

    @_SETTINGS
    @given(alpha=alphas, delta=st.floats(min_value=-0.9, max_value=0.0), r=st.floats(min_value=1.01, max_value=100.0))
    def test_equation_five_is_a_distribution(self, alpha, delta, r):
        pmf = palu_zm_probability(2000, alpha, delta, r)
        assert pmf.sum() == pytest.approx(1.0)
        assert np.all(pmf >= 0)


class TestWindowingProperties:
    @_SETTINGS
    @given(
        n_packets=st.integers(min_value=1, max_value=2000),
        n_valid=st.integers(min_value=1, max_value=300),
        invalid_every=st.integers(min_value=2, max_value=50),
    )
    def test_every_window_has_exactly_nv_valid_packets(self, n_packets, n_valid, invalid_every):
        valid = np.ones(n_packets, dtype=bool)
        valid[::invalid_every] = False
        trace = PacketTrace.from_arrays(
            np.arange(n_packets) % 11, (np.arange(n_packets) + 3) % 11, valid=valid
        )
        windows = list(iter_windows(trace, n_valid))
        assert len(windows) == trace.n_valid // n_valid
        for w in windows:
            assert w.n_valid == n_valid
        # windows partition a prefix of the trace without overlap
        assert sum(len(w) for w in windows) <= n_packets


class TestProbabilityVectorPooling:
    @_SETTINGS
    @given(weights=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=200))
    def test_pool_probability_vector_conserves_mass(self, weights):
        arr = np.asarray(weights)
        total = arr.sum()
        if total <= 0:
            return
        pooled = pool_probability_vector(arr / total)
        assert pooled.probability_sum() == pytest.approx(1.0)
