"""Unit tests of the service layer: job configs, batch validation, engine.

The daemon-level behaviour (HTTP routes, fault containment, lifecycle)
lives in ``test_service_faults.py``; the incremental-vs-one-shot
bit-identity property harness lives in ``test_service_properties.py``.
This module covers the building blocks directly: the versioned
:class:`~repro.service.config.JobConfig` schema, strict batch validation,
the :class:`~repro.service.engine.JobEngine` fold, and the registry's
result-store flush.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.campaigns.store import ResultStore
from repro.scenarios import analyze_scenario, get_scenario
from repro.scenarios.source import ScenarioTraceSource
from repro.service import (
    JOB_CONFIG_VERSION,
    JobConfig,
    JobConfigError,
    JobEngine,
    JobRegistry,
    load_job_config,
    packet_batch_from_json,
)
from repro.service.config import DetectionSection, SketchSection, WindowSection
from repro.service.engine import MAX_ENDPOINT_ID, BatchError

N_VALID = 2_000
SCENARIO = "stationary"


def _config(**overrides) -> JobConfig:
    data = {"name": "t", "window": {"n_valid": N_VALID}}
    data.update(overrides)
    return JobConfig.from_dict(data)


class TestJobConfig:
    """The versioned schema: round-trip, validation paths, hashing."""

    def test_defaults_round_trip(self):
        config = JobConfig(name="job-1")
        rebuilt = JobConfig.from_dict(config.as_dict())
        assert rebuilt == config
        assert rebuilt.config_hash() == config.config_hash()
        assert config.version == JOB_CONFIG_VERSION

    def test_as_dict_is_json_serialisable(self):
        config = _config(detection={"detectors": ["cusum"], "quantity": "source_fanout"})
        dumped = json.dumps(config.as_dict())
        assert JobConfig.from_dict(json.loads(dumped)) == config

    def test_hash_distinguishes_knobs(self):
        assert _config().config_hash() != _config(
            window={"n_valid": N_VALID + 1}
        ).config_hash()

    def test_detectors_deduped_and_order_normalised(self):
        a = _config(detection={"detectors": ["cusum", "cusum"]})
        b = _config(detection={"detectors": ["cusum"]})
        assert a.detection.detectors == ("cusum",)
        assert a.config_hash() == b.config_hash()

    @pytest.mark.parametrize(
        ("data", "needle"),
        [
            ({"name": ""}, "non-empty"),
            ({"name": "a/b"}, "URL path segment"),
            ({"name": "t", "version": 99}, "version"),
            ({"name": "t", "bogus": 1}, "unknown job-config key"),
            ({"name": "t", "window": {"bogus": 1}}, "window.bogus"),
            ({"name": "t", "window": {"n_valid": 0}}, "window.n_valid"),
            ({"name": "t", "window": {"n_valid": True}}, "window.n_valid"),
            ({"name": "t", "window": {"mode": "psychic"}}, "window.mode"),
            ({"name": "t", "window": {"quantities": ["nope"]}}, "window.quantities"),
            ({"name": "t", "window": {"quantities": []}}, "window.quantities"),
            ({"name": "t", "detection": {"detectors": ["nope"]}}, "detection.detectors"),
            ({"name": "t", "detection": {"quantity": "source_fanout"}}, "detection.quantity"),
            ({"name": "t", "source": {"scenario": "no-such"}}, "source.scenario"),
            ({"name": "t", "sketch": {"epsilon": 1e-3}}, "window.mode is 'exact'"),
            ({"name": "t", "window": "nope"}, "window"),
            ({}, "name"),
        ],
    )
    def test_path_qualified_rejections(self, data, needle):
        with pytest.raises(JobConfigError, match=".*") as excinfo:
            JobConfig.from_dict(data)
        assert needle in str(excinfo.value)

    def test_sketch_mode_accepts_knobs(self):
        config = _config(
            window={"n_valid": N_VALID, "mode": "sketch"},
            sketch={"epsilon": 1e-3, "seed": 7},
        )
        sketch = config.sketch_config()
        assert sketch is not None and sketch.epsilon == 1e-3 and sketch.seed == 7
        assert JobConfig.from_dict(config.as_dict()) == config

    def test_exact_mode_has_no_sketch_config(self):
        assert _config().sketch_config() is None

    def test_load_job_config(self, tmp_path):
        path = tmp_path / "job.json"
        config = _config()
        path.write_text(json.dumps(config.as_dict()))
        assert load_job_config(path) == config

    def test_load_job_config_missing_file(self, tmp_path):
        with pytest.raises(JobConfigError, match="cannot read job config"):
            load_job_config(tmp_path / "nope.json")

    def test_load_job_config_bad_json(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text("{not json")
        with pytest.raises(JobConfigError, match="not valid JSON"):
            load_job_config(path)

    def test_load_job_config_bad_schema_names_file(self, tmp_path):
        path = tmp_path / "job.json"
        path.write_text(json.dumps({"name": "t", "version": 99}))
        with pytest.raises(JobConfigError) as excinfo:
            load_job_config(path)
        assert str(path) in str(excinfo.value)
        assert "version" in str(excinfo.value)

    def test_sections_validate_standalone(self):
        WindowSection().validate()
        SketchSection().validate()
        DetectionSection().validate()
        with pytest.raises(JobConfigError, match="w.n_valid"):
            WindowSection(n_valid=-1).validate("w")


class TestPacketBatchFromJson:
    """Strict pre-fold validation of ingested batches."""

    def test_minimal_batch(self):
        trace = packet_batch_from_json({"src": [1, 2, 3], "dst": [4, 5, 6]})
        assert trace.n_packets == 3
        assert trace.n_valid == 3

    def test_full_batch(self):
        trace = packet_batch_from_json(
            {
                "src": [1, 2],
                "dst": [3, 4],
                "time": [0.5, 1.5],
                "size": [100, 200],
                "valid": [True, False],
            }
        )
        assert trace.n_packets == 2
        assert trace.n_valid == 1

    @pytest.mark.parametrize(
        ("batch", "needle"),
        [
            ([1, 2], "JSON object"),
            ({"dst": [1]}, "missing the 'src'"),
            ({"src": [1]}, "missing the 'dst'"),
            ({"src": [1, 2], "dst": [3]}, "has 1 entries but 'src' has 2"),
            ({"src": [], "dst": []}, "empty"),
            ({"src": [1.5], "dst": [2]}, "must be integers"),
            ({"src": [[1]], "dst": [[2]]}, "1-D"),
            ({"src": [-1], "dst": [2]}, "out-of-range"),
            ({"src": [MAX_ENDPOINT_ID + 1], "dst": [2]}, "out-of-range"),
            ({"src": [1], "dst": [2], "payload": "x"}, "unknown batch column"),
            ({"src": [1], "dst": [2], "time": [1.0, 2.0]}, "length 1"),
            ({"src": [1], "dst": [2], "valid": [1]}, "booleans"),
            ({"src": [1], "dst": [2], "size": ["big"]}, "numbers"),
        ],
    )
    def test_rejections(self, batch, needle):
        with pytest.raises(BatchError) as excinfo:
            packet_batch_from_json(batch)
        assert needle in str(excinfo.value)

    def test_boundary_ids_accepted(self):
        trace = packet_batch_from_json({"src": [0], "dst": [MAX_ENDPOINT_ID]})
        assert trace.n_packets == 1


def _scenario_chunks(chunk_packets: int):
    scenario = get_scenario(SCENARIO)
    return list(ScenarioTraceSource(scenario, seed=0, chunk_packets=chunk_packets))


class TestJobEngine:
    """The push-driven engine folds exactly like a one-shot run."""

    def test_incremental_matches_one_shot(self):
        engine = JobEngine(_config())
        for chunk in _scenario_chunks(7_777):
            engine.ingest(chunk)
        one_shot = analyze_scenario(SCENARIO, N_VALID, seed=0)
        assert engine.windows_folded == one_shot.analysis.n_windows
        assert engine.result() == one_shot.analysis

    def test_detection_matches_one_shot(self):
        config = _config(detection={"detectors": ["cusum"], "quantity": "source_fanout"})
        engine = JobEngine(config)
        for chunk in _scenario_chunks(9_999):
            engine.ingest(chunk)
        one_shot = analyze_scenario(
            SCENARIO, N_VALID, seed=0, detectors=("cusum",), detect_quantity="source_fanout"
        )
        detection = engine.detection()
        assert detection is not None
        assert detection.alarms == one_shot.detection.alarms
        assert engine.alarms_raised == sum(
            len(a) for a in one_shot.detection.alarms.values()
        )

    def test_counters_and_buffering(self):
        engine = JobEngine(_config())
        chunk = _scenario_chunks(N_VALID // 2)[0]
        folded = engine.ingest(chunk)
        assert folded == 0
        assert engine.windows_folded == 0
        assert engine.packets_buffered == chunk.n_packets
        assert engine.packets_ingested == chunk.n_packets
        assert engine.batches_ingested == 1

    def test_result_before_any_window_raises(self):
        engine = JobEngine(_config())
        with pytest.raises(ValueError):
            engine.result()

    def test_no_detection_means_none(self):
        assert JobEngine(_config()).detection() is None


class TestJobRegistry:
    """The daemon's job table and its shutdown flush."""

    def test_duplicate_names_rejected(self):
        registry = JobRegistry()
        registry.add(_config())
        with pytest.raises(ValueError, match="already exists"):
            registry.add(_config())

    def test_unknown_job_raises(self):
        with pytest.raises(KeyError, match="no such job"):
            JobRegistry().get("nope")

    def test_status_shape(self):
        registry = JobRegistry()
        job = registry.add(_config())
        status = registry.status()
        assert status["n_jobs"] == 1
        (entry,) = status["jobs"]
        assert entry["name"] == "t"
        assert entry["config_hash"] == job.config_hash
        assert entry["windows_folded"] == 0
        assert entry["uptime_seconds"] >= 0

    def test_flush_stores_under_config_hash(self, tmp_path):
        registry = JobRegistry()
        job = registry.add(_config())
        for chunk in _scenario_chunks(10_000):
            job.engine.ingest(chunk)
        empty = registry.add(JobConfig.from_dict({"name": "empty"}))
        store = ResultStore(tmp_path / "store")
        keys = registry.flush(store)
        assert keys == [job.config_hash]
        payload = store.get(job.config_hash)
        assert payload["config_hash"] == job.config_hash
        assert payload["n_windows"] == job.engine.windows_folded
        assert payload["service_job"] == job.config.as_dict()
        pooled = payload["pooled"]["source_fanout"]
        one_shot = analyze_scenario(SCENARIO, N_VALID, seed=0).analysis
        assert pooled["values"] == one_shot.pooled("source_fanout").values.tolist()
        assert np.isfinite(pooled["values"]).all()
        assert empty.flush_payload() is None
