"""Unit tests for repro.core.zipf_mandelbrot."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.zipf_mandelbrot import (
    ZipfMandelbrotModel,
    zm_cumulative,
    zm_differential_cumulative,
    zm_probability,
    zm_unnormalized,
    zm_unnormalized_gradient_delta,
)


class TestUnnormalized:
    def test_formula(self):
        assert zm_unnormalized(4, 2.0, 0.5) == pytest.approx((4 + 0.5) ** -2.0)

    def test_vectorised(self):
        d = np.array([1, 2, 4, 8])
        out = zm_unnormalized(d, 1.5, -0.25)
        np.testing.assert_allclose(out, (d - 0.25) ** -1.5)

    def test_monotone_decreasing_in_d(self):
        d = np.arange(1, 100)
        out = zm_unnormalized(d, 2.0, -0.5)
        assert np.all(np.diff(out) < 0)

    def test_rejects_nonpositive_shifted_degree(self):
        with pytest.raises(ValueError):
            zm_unnormalized(1, 2.0, -1.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            zm_unnormalized(1, 0.0, 0.0)

    def test_scalar_return_type(self):
        assert isinstance(zm_unnormalized(3, 2.0, 0.1), float)


class TestGradient:
    def test_matches_paper_identity(self):
        # ∂δ ρ(d; α, δ) = -α ρ(d; α+1, δ)
        d = np.array([1, 3, 10, 50])
        grad = zm_unnormalized_gradient_delta(d, 2.0, 0.3)
        np.testing.assert_allclose(grad, -2.0 * zm_unnormalized(d, 3.0, 0.3))

    def test_matches_finite_difference(self):
        eps = 1e-6
        d = 5
        numeric = (zm_unnormalized(d, 2.0, 0.2 + eps) - zm_unnormalized(d, 2.0, 0.2 - eps)) / (2 * eps)
        assert zm_unnormalized_gradient_delta(d, 2.0, 0.2) == pytest.approx(numeric, rel=1e-5)

    def test_negative_everywhere(self):
        d = np.arange(1, 20)
        assert np.all(zm_unnormalized_gradient_delta(d, 2.5, -0.5) < 0)


class TestProbability:
    def test_sums_to_one(self):
        degrees = np.arange(1, 5001, dtype=float)
        p = zm_probability(degrees, 2.0, -0.5)
        assert p.sum() == pytest.approx(1.0)

    def test_zero_total_mass_impossible(self):
        degrees = np.arange(1, 100, dtype=float)
        p = zm_probability(degrees, 2.0, 5.0)
        assert np.all(p > 0)

    def test_cumulative_endpoints(self):
        cdf = zm_cumulative(1000, 2.0, -0.5)
        assert cdf[-1] == pytest.approx(1.0)
        assert cdf[0] == pytest.approx(zm_probability(np.arange(1, 1001, dtype=float), 2.0, -0.5)[0])


class TestDifferentialCumulative:
    def test_conserves_probability(self):
        pooled = zm_differential_cumulative(10_000, 2.0, -0.5)
        assert pooled.probability_sum() == pytest.approx(1.0)

    def test_first_bin_is_degree_one_probability(self):
        dmax = 4096
        pooled = zm_differential_cumulative(dmax, 2.0, -0.5)
        p1 = zm_probability(np.arange(1, dmax + 1, dtype=float), 2.0, -0.5)[0]
        assert pooled.values[0] == pytest.approx(p1)

    def test_bin_edges_are_powers_of_two(self):
        pooled = zm_differential_cumulative(1000, 2.0, 0.0)
        np.testing.assert_array_equal(pooled.bin_edges, 2 ** np.arange(pooled.n_bins))

    def test_matches_manual_cumulative_differences(self):
        dmax = 512
        pooled = zm_differential_cumulative(dmax, 1.8, 0.2)
        cdf = zm_cumulative(dmax, 1.8, 0.2)
        # D(d_i) = P(2^i) - P(2^(i-1)) for i >= 1
        for i in range(1, pooled.n_bins):
            expected = cdf[2**i - 1] - cdf[2 ** (i - 1) - 1]
            assert pooled.values[i] == pytest.approx(expected, abs=1e-12)

    def test_tail_slope_reflects_one_minus_alpha(self):
        # pooled log-log slope should be ~ (1 - alpha) for large bins
        alpha = 2.2
        pooled = zm_differential_cumulative(2**20, alpha, 0.0)
        x = np.log(pooled.bin_edges[8:18].astype(float))
        y = np.log(pooled.values[8:18])
        slope = np.polyfit(x, y, 1)[0]
        assert slope == pytest.approx(1 - alpha, abs=0.05)


class TestModelObject:
    def test_distribution_matches_probability(self):
        model = ZipfMandelbrotModel(alpha=2.0, delta=-0.3, dmax=500)
        np.testing.assert_allclose(model.probability(), model.distribution().probabilities(), rtol=1e-12)

    def test_degree_one_probability(self):
        model = ZipfMandelbrotModel(alpha=2.0, delta=-0.3, dmax=500)
        assert model.degree_one_probability() == pytest.approx(model.probability()[0])

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValueError):
            ZipfMandelbrotModel(alpha=2.0, delta=-1.5, dmax=100)

    def test_invalid_dmax_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            ZipfMandelbrotModel(alpha=2.0, delta=0.0, dmax=0)
