"""Property-based tests (hypothesis) of the scenario layer's invariants.

Three invariants hold for *any* registered scenario, not just the built-in
catalogue, so they are tested over randomly drawn scenarios:

1. **Budget conservation** — the emitted trace holds exactly the sum of the
   phase packet budgets, regardless of phases, cross-fade, or chunking.
2. **Chunking invariance** — the chunk stream concatenates to the identical
   trace eager generation produces for the same seed, for every chunk size
   (chunks are a pure re-cut of the generation, never part of its identity).
3. **Attribution partition** — phase attribution assigns every analysis
   window to exactly one phase, in stream order (monotone non-decreasing),
   covering all windows.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scenarios import Phase, Scenario, ScenarioTraceSource
from repro.analysis.phases import PhaseSegmentedAnalyzer
from repro.streaming.pipeline import StreamAnalyzer, analyze_window
from repro.streaming.window import ChunkedWindower

# each example generates and windows full scenario traces — deselected by `pytest -m "not slow"` (fast local loop)
pytestmark = pytest.mark.slow


# deliberately tiny substrates: properties are structural, not statistical
_FAMILIES = st.sampled_from(
    [
        ("erdos-renyi", {"n_nodes": 120, "p": 0.08}),
        ("poisson-stars", {"n_stars": 60, "lam": 3.0}),
        ("configuration", {"n_nodes": 150, "alpha": 2.2, "dmax": 50}),
    ]
)


@st.composite
def phases(draw) -> Phase:
    family, params = draw(_FAMILIES)
    return Phase(
        family,
        n_packets=draw(st.integers(min_value=300, max_value=2_500)),
        graph_params=params,
        rate_model=draw(st.sampled_from(["uniform", "zipf", "lognormal"])),
        invalid_fraction=draw(st.sampled_from([0.0, 0.0, 0.15])),
    )


@st.composite
def scenarios(draw) -> Scenario:
    phase_list = draw(st.lists(phases(), min_size=1, max_size=3))
    shortest = min(p.n_packets for p in phase_list)
    fade = draw(st.integers(min_value=0, max_value=shortest)) if len(phase_list) > 1 else 0
    return Scenario(name="prop", phases=tuple(phase_list), crossfade_packets=fade)


# example counts and deadlines are governed by the dev/ci profiles registered
# in conftest.py — do NOT pin max_examples here, it would override the
# --hypothesis-profile=ci selection and silently shrink the CI search


class TestBudgetConservation:
    @given(scenario=scenarios(), seed=st.integers(min_value=0, max_value=2**31))
    def test_phases_sum_to_requested_budget(self, scenario, seed):
        source = ScenarioTraceSource(scenario, seed=seed)
        chunks = list(source)
        assert sum(c.n_packets for c in chunks) == scenario.n_packets
        assert scenario.n_packets == sum(p.n_packets for p in scenario.phases)
        # the per-phase valid tally never exceeds the phase budgets
        assert np.all(source.valid_emitted_per_phase
                      <= [p.n_packets for p in scenario.phases])
        boundaries = scenario.phase_packet_boundaries()
        assert boundaries[-1] == scenario.n_packets

    @given(scenario=scenarios(), seed=st.integers(min_value=0, max_value=2**31),
           block=st.integers(min_value=128, max_value=4_096))
    def test_budget_independent_of_block_size(self, scenario, seed, block):
        trace = scenario.generate(seed=seed, block_packets=block)
        assert trace.n_packets == scenario.n_packets


class TestChunkingInvariance:
    @given(
        scenario=scenarios(),
        seed=st.integers(min_value=0, max_value=2**31),
        chunk_packets=st.integers(min_value=1, max_value=3_000),
    )
    def test_chunks_concatenate_to_eager_trace(self, scenario, seed, chunk_packets):
        eager = scenario.generate(seed=seed)
        chunks = list(ScenarioTraceSource(scenario, seed=seed, chunk_packets=chunk_packets))
        assert all(c.n_packets == chunk_packets for c in chunks[:-1])
        concatenated = np.concatenate([c.packets for c in chunks])
        assert np.array_equal(concatenated, eager.packets)

    @given(scenario=scenarios(), seed=st.integers(min_value=0, max_value=2**31))
    def test_same_seed_reproduces_identical_trace(self, scenario, seed):
        a = scenario.generate(seed=seed)
        b = scenario.generate(seed=seed)
        assert np.array_equal(a.packets, b.packets)


class TestAttributionPartition:
    @given(
        scenario=scenarios(),
        seed=st.integers(min_value=0, max_value=2**31),
        n_valid=st.integers(min_value=50, max_value=600),
    )
    def test_every_window_in_exactly_one_phase(self, scenario, seed, n_valid):
        source = ScenarioTraceSource(scenario, seed=seed, chunk_packets=512)
        windower = ChunkedWindower(iter(source), n_valid)
        analyzer = StreamAnalyzer(n_valid, ("source_fanout",))
        segmenter = PhaseSegmentedAnalyzer(
            n_valid, scenario.n_phases, source.phase_of_valid_index, ("source_fanout",)
        )
        n_windows = 0
        for window in windower:
            result = analyze_window(window)
            analyzer.update(result)
            segmenter.update(result)
            n_windows += 1
        seg = segmenter.result()
        # a partition: one phase per window, every window covered...
        assert seg.window_phase.size == n_windows
        assert sum(seg.windows_in_phase(p) for p in range(seg.n_phases)) == n_windows
        assert np.all((seg.window_phase >= 0) & (seg.window_phase < scenario.n_phases))
        # ...in stream order, so attribution is monotone non-decreasing
        assert np.all(np.diff(seg.window_phase) >= 0)
        # and the occupied phases' pooled distributions are all retrievable
        for phase in seg.occupied_phases():
            pooled = seg.pooled(phase, "source_fanout")
            assert pooled.total > 0
