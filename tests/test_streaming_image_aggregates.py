"""Unit tests for repro.streaming.sparse_image and aggregates (Table I, Fig. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.aggregates import (
    QUANTITY_NAMES,
    compute_aggregates,
    compute_aggregates_summation,
    network_quantities,
    quantity_histograms,
)
from repro.streaming.packet import PacketTrace
from repro.streaming.sparse_image import traffic_image


def _tiny_window() -> PacketTrace:
    """Hand-constructed window with known aggregates.

    Packets: 5->7 (x3), 5->8 (x1), 6->7 (x2), plus one invalid packet.
    """
    src = [5, 5, 5, 5, 6, 6, 99]
    dst = [7, 7, 7, 8, 7, 7, 99]
    valid = [True] * 6 + [False]
    return PacketTrace.from_arrays(src, dst, valid=valid)


class TestTrafficImage:
    def test_matrix_values(self):
        image = traffic_image(_tiny_window())
        dense = image.to_dense()
        # rows: sources [5, 6]; cols: destinations [7, 8]
        np.testing.assert_array_equal(dense, [[3, 1], [2, 0]])

    def test_invalid_packets_excluded(self):
        image = traffic_image(_tiny_window())
        assert 99 not in image.source_ids
        assert image.n_valid == 6

    def test_counts(self):
        image = traffic_image(_tiny_window())
        assert image.n_sources == 2
        assert image.n_destinations == 2
        assert image.n_links == 3

    def test_empty_window(self):
        image = traffic_image(PacketTrace.empty())
        assert image.n_valid == 0
        assert image.n_links == 0

    def test_undirected_edges_lists_links(self):
        image = traffic_image(_tiny_window())
        edges = image.undirected_edges()
        assert edges.shape == (3, 2)
        assert {tuple(e) for e in edges.tolist()} == {(5, 7), (5, 8), (6, 7)}

    def test_sum_equals_nv(self, small_trace):
        window = small_trace.slice(0, 10_000)
        image = traffic_image(window)
        assert image.n_valid == window.n_valid


class TestTableIAggregates:
    def test_known_values(self):
        image = traffic_image(_tiny_window())
        agg = compute_aggregates(image)
        assert agg.valid_packets == 6
        assert agg.unique_links == 3
        assert agg.unique_sources == 2
        assert agg.unique_destinations == 2

    def test_matrix_and_summation_notations_agree_on_tiny_window(self):
        image = traffic_image(_tiny_window())
        assert compute_aggregates(image) == compute_aggregates_summation(image)

    def test_matrix_and_summation_notations_agree_on_synthetic_window(self, small_trace):
        image = traffic_image(small_trace.slice(0, 50_000))
        assert compute_aggregates(image) == compute_aggregates_summation(image)

    def test_empty_window(self):
        agg = compute_aggregates(traffic_image(PacketTrace.empty()))
        assert agg == compute_aggregates_summation(traffic_image(PacketTrace.empty()))
        assert agg.valid_packets == 0

    def test_as_row_keys(self):
        row = compute_aggregates(traffic_image(_tiny_window())).as_row()
        assert set(row) == {"valid_packets", "unique_links", "unique_sources", "unique_destinations"}

    def test_valid_packet_conservation(self, small_trace):
        """Σ_ij A_t(i,j) must equal N_V exactly (the paper's defining identity)."""
        window = small_trace.slice(0, 30_000)
        agg = compute_aggregates(traffic_image(window))
        assert agg.valid_packets == window.n_valid


class TestFigure1Quantities:
    def test_known_values(self):
        image = traffic_image(_tiny_window())
        q = network_quantities(image)
        np.testing.assert_array_equal(sorted(q["source_packets"].tolist()), [2, 4])
        np.testing.assert_array_equal(sorted(q["source_fanout"].tolist()), [1, 2])
        np.testing.assert_array_equal(sorted(q["link_packets"].tolist()), [1, 2, 3])
        np.testing.assert_array_equal(sorted(q["destination_fanin"].tolist()), [1, 2])
        np.testing.assert_array_equal(sorted(q["destination_packets"].tolist()), [1, 5])

    def test_all_quantities_present(self):
        q = network_quantities(traffic_image(_tiny_window()))
        assert set(q) == set(QUANTITY_NAMES)

    def test_packet_quantities_sum_to_nv(self, small_trace):
        image = traffic_image(small_trace.slice(0, 20_000))
        q = network_quantities(image)
        nv = image.n_valid
        assert q["source_packets"].sum() == nv
        assert q["destination_packets"].sum() == nv
        assert q["link_packets"].sum() == nv

    def test_fanout_fanin_sum_to_unique_links(self, small_trace):
        image = traffic_image(small_trace.slice(0, 20_000))
        q = network_quantities(image)
        assert q["source_fanout"].sum() == image.n_links
        assert q["destination_fanin"].sum() == image.n_links

    def test_fanout_bounded_by_packets(self, small_trace):
        image = traffic_image(small_trace.slice(0, 20_000))
        q = network_quantities(image)
        assert np.all(q["source_fanout"] <= q["source_packets"])
        assert np.all(q["destination_fanin"] <= q["destination_packets"])

    def test_empty_window(self):
        q = network_quantities(traffic_image(PacketTrace.empty()))
        assert all(v.size == 0 for v in q.values())

    def test_quantity_histograms(self):
        hists = quantity_histograms(traffic_image(_tiny_window()))
        assert hists["link_packets"].total == 3
        assert hists["source_packets"].dmax == 4
