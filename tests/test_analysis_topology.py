"""Unit tests for repro.analysis.topology (Figure-2 decomposition)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.analysis.topology import (
    count_unattached_links,
    decompose_topology,
    find_supernodes,
    max_degree,
)


def _star_plus_debris() -> nx.Graph:
    """A supernode star with leaves, a small core triangle, and unattached debris."""
    g = nx.Graph()
    # supernode 0 with 30 leaves
    g.add_edges_from((0, i) for i in range(1, 31))
    # attach a small clique to the supernode so it is one large component
    g.add_edges_from([(0, 100), (100, 101), (101, 102), (102, 100)])
    # a core leaf attached to a non-supernode core node
    g.add_edge(101, 200)
    # unattached links (isolated edges)
    g.add_edges_from([(300, 301), (302, 303)])
    # a small unattached star of 3 nodes
    g.add_edges_from([(400, 401), (400, 402)])
    return g


class TestMaxDegree:
    def test_simple(self):
        # supernode 0 has 30 leaves plus the edge into the clique
        assert max_degree(_star_plus_debris()) == 31

    def test_empty(self):
        assert max_degree(nx.Graph()) == 0

    def test_edge_array_input(self):
        edges = np.array([[0, 1], [0, 2], [3, 4]])
        assert max_degree(edges) == 2

    def test_bad_edge_array_shape(self):
        with pytest.raises(ValueError):
            max_degree(np.array([[1, 2, 3]]))


class TestFindSupernodes:
    def test_detects_hub(self):
        supernodes = find_supernodes(_star_plus_debris(), quantile=0.95, min_degree=10)
        assert supernodes == [0]

    def test_min_degree_filters_small_graphs(self):
        g = nx.path_graph(5)
        assert find_supernodes(g, quantile=0.5, min_degree=10) == []

    def test_empty_graph(self):
        assert find_supernodes(nx.Graph()) == []

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            find_supernodes(nx.path_graph(3), quantile=1.5)


class TestCountUnattachedLinks:
    def test_counts_isolated_edges_only(self):
        assert count_unattached_links(_star_plus_debris()) == 2

    def test_larger_component_threshold(self):
        # raising the threshold to 3 also counts the 3-node star's 2 edges
        assert count_unattached_links(_star_plus_debris(), max_component_size=3) == 4

    def test_empty(self):
        assert count_unattached_links(nx.Graph()) == 0


class TestDecomposeTopology:
    @pytest.fixture()
    def decomposition(self):
        return decompose_topology(
            _star_plus_debris(), supernode_quantile=0.95, supernode_min_degree=10
        )

    def test_all_figure2_classes_present(self, decomposition):
        assert len(decomposition.supernodes) == 1
        assert len(decomposition.supernode_leaves) == 30
        assert len(decomposition.core) > 0
        assert len(decomposition.core_leaves) == 1
        assert len(decomposition.unattached) == 7
        assert decomposition.n_unattached_links == 2

    def test_classes_are_disjoint_and_cover_graph(self, decomposition):
        g = _star_plus_debris()
        classes = [
            decomposition.supernodes,
            decomposition.supernode_leaves,
            decomposition.core,
            decomposition.core_leaves,
            decomposition.unattached,
        ]
        union = set().union(*classes)
        assert union == set(g.nodes())
        assert sum(len(c) for c in classes) == g.number_of_nodes()

    def test_fractions_sum_to_one(self, decomposition):
        assert sum(decomposition.fractions().values()) == pytest.approx(1.0)

    def test_summary_keys(self, decomposition):
        summary = decomposition.summary()
        assert summary["n_edges"] == _star_plus_debris().number_of_edges()
        assert {"n_supernodes", "n_core", "n_unattached_links"} <= set(summary)

    def test_leaf_fraction(self, decomposition):
        expected = (30 + 1) / decomposition.n_nodes
        assert decomposition.leaf_fraction() == pytest.approx(expected)

    def test_isolated_nodes_recorded_separately(self):
        decomp = decompose_topology(_star_plus_debris(), include_isolated=[999, 998])
        assert len(decomp.isolated) == 2
        # isolated nodes are not counted among observable nodes
        assert 999 not in decomp.unattached

    def test_empty_graph(self):
        decomp = decompose_topology(nx.Graph())
        assert decomp.n_nodes == 0
        assert decomp.n_edges == 0

    def test_edge_array_input(self):
        edges = np.array([[0, 1], [1, 2], [2, 0], [0, 3], [0, 4], [10, 11]])
        decomp = decompose_topology(edges, large_component_threshold=4)
        assert decomp.n_edges == 6
        assert len(decomp.unattached) == 2

    def test_palu_graph_decomposition_matches_generation(self, medium_palu_graph):
        """On a generated PALU network the decomposition recovers the class structure."""
        decomp = decompose_topology(medium_palu_graph.graph)
        counts = medium_palu_graph.class_counts()
        # every star component is small, so unattached nodes ~ centres + star
        # leaves; the decomposition may add small fragments of the
        # configuration-model core and misses zero-leaf (isolated) centres,
        # so require agreement only up to a modest factor
        generated_unattached = counts["star_centres"] + counts["star_leaves"]
        assert 0.5 * generated_unattached <= len(decomp.unattached) <= 1.6 * generated_unattached
        # leaves of the big component come from the generated leaf class (plus
        # degree-1 core nodes), so the decomposition must find at least as many
        assert decomp.leaf_fraction() > 0.1
