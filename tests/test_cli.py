"""Tests for the command-line interface (repro.cli / python -m repro)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.streaming.trace_io import load_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A small trace produced through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "trace.npz"
    code = main(
        [
            "generate",
            str(path),
            "--nodes", "4000",
            "--packets", "60000",
            "--seed", "3",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.npz"])
        assert args.nodes == 30_000
        assert args.alpha == 2.0

    def test_analyze_quantity_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "t.npz", "--quantities", "bogus"])

    def test_experiments_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "fig9"])


class TestGenerate:
    def test_trace_written_and_loadable(self, trace_file):
        trace = load_trace(trace_file)
        assert trace.n_packets == 60_000
        assert trace.n_valid == 60_000

    def test_invalid_fraction_respected(self, tmp_path):
        path = tmp_path / "t.npz"
        code = main(
            [
                "generate", str(path),
                "--nodes", "2000", "--packets", "20000",
                "--invalid-fraction", "0.25", "--seed", "4",
            ]
        )
        assert code == 0
        trace = load_trace(path)
        assert trace.n_valid == pytest.approx(15_000, rel=0.05)


class TestAnalyze:
    def test_analyze_prints_fits(self, trace_file, capsys):
        code = main(["analyze", str(trace_file), "--nv", "20000", "--quantities", "source_fanout"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table-I aggregates" in out
        assert "source_fanout" in out
        assert "alpha" in out

    def test_analyze_panel_rendering(self, trace_file, capsys):
        code = main(
            ["analyze", str(trace_file), "--nv", "20000", "--quantities", "source_fanout", "--panel"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "█" in out

    def test_analyze_backend_choices_validated(self, trace_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", str(trace_file), "--backend", "gpu"])

    def test_analyze_streaming_backend(self, trace_file, capsys):
        code = main(
            [
                "analyze", str(trace_file),
                "--nv", "20000",
                "--quantities", "source_fanout",
                "--backend", "streaming",
                "--chunk-packets", "10000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=streaming" in out
        assert "Table-I aggregates" in out

    def test_backends_print_identical_fits(self, trace_file, capsys):
        main(["analyze", str(trace_file), "--nv", "20000", "--backend", "serial"])
        serial_out = capsys.readouterr().out
        main(
            [
                "analyze", str(trace_file),
                "--nv", "20000",
                "--backend", "streaming",
                "--chunk-packets", "15000",
            ]
        )
        streaming_out = capsys.readouterr().out
        # everything after the engine banner (fits, tables) must agree exactly
        marker = "windows of N_V"
        assert serial_out.split(marker)[1] == streaming_out.split(marker)[1]


class TestGenerateSharded:
    def test_sharded_generate_and_streaming_analyze(self, tmp_path, capsys):
        path = tmp_path / "trace-v2"
        code = main(
            [
                "generate", str(path),
                "--nodes", "2000", "--packets", "30000",
                "--seed", "5", "--shard-packets", "8000",
            ]
        )
        assert code == 0
        assert (path / "manifest.json").is_file()
        code = main(
            [
                "analyze", str(path),
                "--nv", "10000",
                "--quantities", "source_fanout",
                "--backend", "streaming",
            ]
        )
        assert code == 0
        assert "backend=streaming" in capsys.readouterr().out


class TestShmAndMmapFlags:
    @pytest.fixture(scope="class")
    def npy_trace_dir(self, tmp_path_factory):
        """A v2 sharded trace written with the mmappable npy layout."""
        path = tmp_path_factory.mktemp("cli-npy") / "trace-v2"
        code = main(
            [
                "generate", str(path),
                "--nodes", "2000", "--packets", "30000",
                "--seed", "6", "--shard-packets", "8000", "--layout", "npy",
            ]
        )
        assert code == 0
        return path

    def test_layout_requires_shard_packets(self, tmp_path, capsys):
        code = main(
            ["generate", str(tmp_path / "t.npz"), "--nodes", "2000",
             "--packets", "20000", "--layout", "npy"]
        )
        assert code == 2
        assert "--shard-packets" in capsys.readouterr().out

    def test_mmap_analyze_matches_eager(self, npy_trace_dir, capsys):
        code = main(
            ["analyze", str(npy_trace_dir), "--nv", "10000",
             "--quantities", "source_fanout"]
        )
        assert code == 0
        eager_out = capsys.readouterr().out
        code = main(
            ["analyze", str(npy_trace_dir), "--nv", "10000",
             "--quantities", "source_fanout", "--mmap"]
        )
        assert code == 0
        mmap_out = capsys.readouterr().out
        assert "mapping trace shards" in mmap_out
        marker = "windows of N_V"
        assert eager_out.split(marker)[1] == mmap_out.split(marker)[1]

    def test_payload_transport_printed_and_identical(self, npy_trace_dir, capsys):
        outputs = {}
        for transport in ("pickle", "shm"):
            code = main(
                ["analyze", str(npy_trace_dir), "--nv", "10000",
                 "--quantities", "source_fanout", "--backend", "process",
                 "--workers", "2", "--payload-transport", transport]
            )
            assert code == 0
            outputs[transport] = capsys.readouterr().out
            assert f"transport={transport}" in outputs[transport]
        marker = "windows of N_V"
        assert outputs["pickle"].split(marker)[1] == outputs["shm"].split(marker)[1]

    def test_streaming_backend_rejects_transport(self, npy_trace_dir, capsys):
        code = main(
            ["analyze", str(npy_trace_dir), "--nv", "10000",
             "--backend", "streaming", "--payload-transport", "shm"]
        )
        assert code == 2
        assert "payload-transport" in capsys.readouterr().out

    def test_detect_run_accepts_transport(self, capsys):
        code = main(
            ["detect", "run", "flash-crowd", "--nv", "2000",
             "--backend", "process", "--workers", "2",
             "--payload-transport", "shm"]
        )
        assert code == 0
        assert "transport=shm" in capsys.readouterr().out


class TestFit:
    def test_fit_prints_model_comparison(self, trace_file, capsys):
        code = main(["fit", str(trace_file), "--nv", "20000", "--quantity", "source_fanout"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Zipf-Mandelbrot" in out
        assert "model comparison" in out
        assert "power_law" in out


class TestExperiments:
    def test_experiments_subset_runs(self, capsys):
        code = main(["experiments", "fig4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "log_mse_vs_ZM" in out


class TestScenarios:
    def test_list_prints_catalogue(self, capsys):
        code = main(["scenarios", "list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("stationary", "alpha-drift", "flash-crowd", "generator-mix"):
            assert name in out

    def test_run_streaming_prints_phases_and_drift(self, capsys):
        code = main(
            [
                "scenarios", "run", "alpha-drift",
                "--nv", "5000",
                "--backend", "streaming",
                "--chunk-packets", "9000",
                "--quantities", "source_fanout",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=streaming" in out
        assert "phase summary — source_fanout" in out
        assert "max adjacent-phase drift" in out

    def test_run_single_phase_reports_no_drift(self, capsys):
        code = main(["scenarios", "run", "stationary", "--nv", "10000",
                     "--quantities", "source_fanout"])
        assert code == 0
        assert "single occupied phase" in capsys.readouterr().out

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["scenarios", "run", "does-not-exist"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])


class TestDetect:
    def test_list_prints_catalogue(self, capsys):
        code = main(["detect", "list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("ewma", "cusum", "page-hinkley"):
            assert name in out
        assert "threshold" in out

    def test_run_reports_alarms_and_scores(self, capsys):
        code = main(
            [
                "detect", "run", "alpha-drift",
                "--nv", "2000",
                "--backend", "streaming",
                "--chunk-packets", "9000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=streaming" in out
        assert "true phase-boundary windows: 15 30" in out
        assert "alarms per detector" in out
        assert "evaluation vs ground truth" in out
        for column in ("precision", "recall", "false/window", "latency"):
            assert column in out

    def test_run_detector_subset_and_quantity(self, capsys):
        code = main(
            [
                "detect", "run", "stationary",
                "--nv", "5000",
                "--detectors", "cusum",
                "--quantity", "link_packets",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "monitoring 'link_packets'" in out
        assert "none (single regime)" in out
        assert "ewma" not in out

    def test_backends_print_identical_reports(self, capsys):
        args = ["detect", "run", "flash-crowd", "--nv", "2000", "--seed", "3"]
        main(args)
        serial_out = capsys.readouterr().out
        main([*args, "--backend", "streaming", "--chunk-packets", "7000"])
        streaming_out = capsys.readouterr().out
        marker = "true phase-boundary windows"
        assert serial_out.split(marker)[1] == streaming_out.split(marker)[1]

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect"])

    def test_detector_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "run", "stationary", "--detectors", "bogus"])

    def test_repeated_detector_names_deduped(self, capsys):
        code = main(["detect", "run", "stationary", "--nv", "10000",
                     "--detectors", "cusum", "cusum"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("cusum") == 2  # one alarm-table row + one eval row


class TestFailurePaths:
    """Unknown names and missing stores exit non-zero with a one-line
    actionable message — never a traceback."""

    @staticmethod
    def _assert_clean_error(capsys, code, *needles):
        assert code == 2
        captured = capsys.readouterr()
        out = captured.out + captured.err
        assert "Traceback" not in out
        [error_line] = [line for line in out.splitlines() if line.startswith("error:")]
        for needle in needles:
            assert needle in error_line

    def test_scenarios_run_unknown_scenario(self, capsys):
        code = main(["scenarios", "run", "no-such-scenario"])
        self._assert_clean_error(capsys, code, "unknown scenario", "registered:")

    def test_detect_run_unknown_scenario(self, capsys):
        code = main(["detect", "run", "no-such-scenario"])
        self._assert_clean_error(capsys, code, "unknown scenario", "registered:")

    def test_detect_run_negative_max_latency(self, capsys):
        code = main(["detect", "run", "stationary", "--max-latency", "-1"])
        self._assert_clean_error(capsys, code, "--max-latency", ">= 0")

    def test_campaign_status_missing_store(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        code = main(["campaign", "status", "--store", str(missing)])
        self._assert_clean_error(capsys, code, "no result store", "repro campaign run")
        assert not missing.exists()

    def test_campaign_report_missing_store(self, tmp_path, capsys):
        missing = tmp_path / "nope"
        code = main(["campaign", "report", "--store", str(missing), "anything"])
        self._assert_clean_error(capsys, code, "no result store", "repro campaign run")
        assert not missing.exists()


class TestVersionFlag:
    def test_version_prints_package_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestCampaign:
    GRID = [
        "--scenarios", "stationary", "invalid-storm",
        "--seeds", "0", "1",
        "--nv", "2000",
        "--quantities", "source_fanout",
    ]

    def test_run_status_report_roundtrip(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["campaign", "run", "--store", store, "--name", "cli-demo", *self.GRID])
        assert code == 0
        out = capsys.readouterr().out
        assert "computed 4, cached 0" in out

        code = main(["campaign", "run", "--store", store, "--name", "cli-demo", *self.GRID])
        assert code == 0
        assert "computed 0, cached 4" in capsys.readouterr().out

        code = main(["campaign", "status", "--store", store])
        assert code == 0
        status = capsys.readouterr().out
        assert "cli-demo" in status and "True" in status

        code = main(["campaign", "report", "--store", store, "cli-demo",
                     "--quantity", "source_fanout"])
        assert code == 0
        report = capsys.readouterr().out
        assert "cross-seed summary — source_fanout" in report
        assert "0 missing" in report

    def test_partial_run_reports_missing_and_resumes(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["campaign", "run", "--store", store, "--name", "partial",
                     "--max-cells", "1", *self.GRID])
        assert code == 0
        assert "re-run to resume" in capsys.readouterr().out

        code = main(["campaign", "report", "--store", store, "partial"])
        assert code == 0
        assert "cells missing" in capsys.readouterr().out

        code = main(["campaign", "run", "--store", store, "--name", "partial", *self.GRID])
        assert code == 0
        assert "computed 3, cached 1" in capsys.readouterr().out

    def test_unknown_scenario_fails_cleanly(self, tmp_path, capsys):
        code = main(["campaign", "run", "--store", str(tmp_path / "s"),
                     "--scenarios", "does-not-exist"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_detectors_axis_is_result_defining(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        base = ["campaign", "run", "--store", store, "--name", "det",
                "--scenarios", "stationary", "--nv", "2000",
                "--quantities", "source_fanout"]
        code = main([*base, "--detectors", "cusum"])
        assert code == 0
        assert "computed 1, cached 0" in capsys.readouterr().out
        # same grid plus detection is a different cell; without detectors it
        # must compute anew, not warm-hit the detecting cell
        code = main(base)
        assert code == 0
        assert "computed 1, cached 0" in capsys.readouterr().out

    def test_unknown_campaign_report_fails_cleanly(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        code = main(["campaign", "run", "--store", store, "--name", "exists",
                     "--scenarios", "stationary", "--seeds", "0", "--nv", "2000",
                     "--quantities", "source_fanout"])
        assert code == 0
        capsys.readouterr()
        code = main(["campaign", "status", "--store", store, "ghost"])
        assert code == 2
        assert "no campaign" in capsys.readouterr().out

    def test_report_on_unanalysed_quantity_fails_cleanly(self, tmp_path, capsys):
        store = str(tmp_path / "s")
        code = main(["campaign", "run", "--store", store, "--name", "lp",
                     "--scenarios", "stationary", "--seeds", "0", "--nv", "2000",
                     "--quantities", "link_packets"])
        assert code == 0
        capsys.readouterr()
        # default --quantity is source_fanout, which this campaign never analysed
        code = main(["campaign", "report", "--store", store, "lp"])
        assert code == 2
        assert "was not analysed" in capsys.readouterr().out

    def test_status_on_missing_store_does_not_create_it(self, tmp_path, capsys):
        missing = tmp_path / "typo"
        code = main(["campaign", "status", "--store", str(missing)])
        assert code == 2
        assert "no result store" in capsys.readouterr().out
        assert not missing.exists()

    def test_report_on_missing_store_does_not_create_it(self, tmp_path, capsys):
        missing = tmp_path / "typo"
        code = main(["campaign", "report", "--store", str(missing), "anything"])
        assert code == 2
        assert "no result store" in capsys.readouterr().out
        assert not missing.exists()

    def test_process_cells_under_process_pool_fails_cleanly(self, tmp_path, capsys):
        code = main(["campaign", "run", "--store", str(tmp_path / "s"),
                     "--scenarios", "stationary", "--nv", "2000",
                     "--backends", "process", "--pool", "process"])
        assert code == 2
        assert "error:" in capsys.readouterr().out

    def test_experiments_store_caches_rows(self, tmp_path, capsys):
        store = str(tmp_path / "exp-store")
        code = main(["experiments", "fig4", "--store", store])
        assert code == 0
        assert "[computed]" in capsys.readouterr().out
        code = main(["experiments", "fig4", "--store", store])
        assert code == 0
        assert "[cached]" in capsys.readouterr().out


class TestCampaignFleet:
    GRID = [
        "--scenarios", "stationary", "invalid-storm",
        "--seeds", "0",
        "--nv", "2000",
        "--quantities", "source_fanout",
    ]

    def test_failed_cell_exits_nonzero_and_contains_the_failure(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.campaigns.runner as runner_module

        real = runner_module.analyze_scenario

        def exploding(scenario, *args, **kwargs):
            if scenario.name == "invalid-storm":
                raise RuntimeError("boom")
            return real(scenario, *args, **kwargs)

        monkeypatch.setattr(runner_module, "analyze_scenario", exploding)
        store = str(tmp_path / "store")
        code = main(["campaign", "run", "--store", store, "--name", "f", *self.GRID])
        assert code == 1
        out = capsys.readouterr().out
        assert "computed 1, cached 0, failed 1" in out
        assert "failed invalid-storm seed=0" in out and "RuntimeError: boom" in out
        # the failure was contained: the good cell is stored, and a re-run
        # with the bug gone retries exactly the failed cell
        monkeypatch.setattr(runner_module, "analyze_scenario", real)
        code = main(["campaign", "run", "--store", store, "--name", "f", *self.GRID])
        assert code == 0
        assert "computed 1, cached 1" in capsys.readouterr().out

    def test_invalid_worker_id_exits_cleanly(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        for bad in ("nope", "3/2", "0/2"):
            code = main(["campaign", "run", "--store", store, "--name", "w",
                         "--worker-id", bad, *self.GRID])
            assert code == 2
            assert "worker id" in capsys.readouterr().out
        code = main(["campaign", "run", "--store", store, "--name", "w",
                     "--workers", "4", "--worker-id", "1/2", *self.GRID])
        assert code == 2
        assert "fleet" in capsys.readouterr().out
        assert not (tmp_path / "store").exists()  # nothing ran

    def test_lone_fleet_member_steals_the_whole_grid(self, tmp_path, capsys):
        """One worker of a declared fleet of two finishes everything: its
        own shard first, the absent partner's cells via the stealing tail."""
        store = str(tmp_path / "store")
        code = main(["campaign", "run", "--store", store, "--name", "fleet",
                     "--worker-id", "1/2", "--lease-ttl", "5", *self.GRID])
        assert code == 0
        out = capsys.readouterr().out
        assert "(worker 1/2)" in out
        assert "computed 2, cached 0" in out

    def test_status_check_gates_on_completeness_and_leases(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        code = main(["campaign", "run", "--store", store, "--name", "gate",
                     "--max-cells", "1", *self.GRID])
        assert code == 0
        capsys.readouterr()
        code = main(["campaign", "status", "--store", store, "--check"])
        assert code == 1
        out = capsys.readouterr().out
        assert "check failed" in out and "incomplete" in out
        code = main(["campaign", "run", "--store", store, "--name", "gate", *self.GRID])
        assert code == 0
        capsys.readouterr()
        code = main(["campaign", "status", "--store", store, "--check"])
        assert code == 0
        out = capsys.readouterr().out
        assert "check passed" in out
        assert "gate" in out

    def test_status_reports_outstanding_leases(self, tmp_path, capsys):
        from repro.campaigns import ResultStore

        store = str(tmp_path / "store")
        code = main(["campaign", "run", "--store", store, "--name", "held",
                     "--max-cells", "1", *self.GRID])
        assert code == 0
        capsys.readouterr()
        # simulate a fleet member computing the missing cell right now
        held = ResultStore(store)
        missing = [cell["key"] for cell in held.load_campaign("held")["cells"]
                   if cell["key"] not in held]
        assert held.acquire_lease(missing[0], "worker-x", ttl=30)
        code = main(["campaign", "status", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "outstanding leases" in out and "worker-x" in out
        code = main(["campaign", "status", "--store", store, "--check"])
        assert code == 1
        assert "outstanding lease" in capsys.readouterr().out


class TestServeAndJobs:
    """``repro serve`` / ``repro jobs``: failure paths stay one clean line,
    and the daemon round-trip works through the console commands."""

    @staticmethod
    def _assert_clean_error(capsys, code, *needles):
        assert code == 2
        captured = capsys.readouterr()
        out = captured.out + captured.err
        assert "Traceback" not in out
        [error_line] = [line for line in out.splitlines() if line.startswith("error:")]
        for needle in needles:
            assert needle in error_line

    @staticmethod
    def _job_file(tmp_path, name="cli-job", n_valid=200):
        import json

        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps({"name": name, "window": {"n_valid": n_valid}}))
        return path

    def test_serve_missing_job_config(self, tmp_path, capsys):
        code = main(["serve", "--job", str(tmp_path / "nope.json"), "--port", "0"])
        self._assert_clean_error(capsys, code, "cannot read job config")

    def test_serve_invalid_job_config(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x", "version": 99}')
        code = main(["serve", "--job", str(path), "--port", "0"])
        self._assert_clean_error(capsys, code, "version")

    def test_serve_config_not_json(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        code = main(["serve", "--job", str(path), "--port", "0"])
        self._assert_clean_error(capsys, code, "not valid JSON")

    def test_serve_duplicate_job_names(self, tmp_path, capsys):
        a = self._job_file(tmp_path, "same")
        b = tmp_path / "same-again.json"
        b.write_text(a.read_text())
        code = main(["serve", "--job", str(a), "--job", str(b), "--port", "0"])
        self._assert_clean_error(capsys, code, "duplicate job names")

    def test_serve_store_path_is_a_file(self, tmp_path, capsys):
        job = self._job_file(tmp_path)
        bogus = tmp_path / "store-file"
        bogus.write_text("not a directory")
        code = main(["serve", "--job", str(job), "--port", "0",
                     "--store", str(bogus)])
        self._assert_clean_error(capsys, code, "--store", "not a directory")

    def test_serve_port_already_bound(self, tmp_path, capsys):
        import socket

        job = self._job_file(tmp_path)
        with socket.socket() as holder:
            holder.bind(("127.0.0.1", 0))
            holder.listen(1)
            port = holder.getsockname()[1]
            code = main(["serve", "--job", str(job), "--port", str(port)])
        self._assert_clean_error(capsys, code, "cannot serve", str(port))

    def test_serve_bad_max_batch_bytes(self, tmp_path, capsys):
        job = self._job_file(tmp_path)
        code = main(["serve", "--job", str(job), "--port", "0",
                     "--max-batch-bytes", "0"])
        self._assert_clean_error(capsys, code, "--max-batch-bytes")

    def test_jobs_submit_bad_config(self, tmp_path, capsys):
        code = main(["jobs", "submit", str(tmp_path / "nope.json"),
                     "--url", "http://127.0.0.1:1"])
        self._assert_clean_error(capsys, code, "cannot read job config")

    def test_jobs_unreachable_daemon(self, tmp_path, capsys):
        job = self._job_file(tmp_path)
        # port 1 is never listening; the client must fail cleanly, fast
        code = main(["jobs", "submit", str(job), "--url", "http://127.0.0.1:1"])
        self._assert_clean_error(capsys, code, "cannot reach daemon")
        code = main(["jobs", "status", "--url", "http://127.0.0.1:1"])
        self._assert_clean_error(capsys, code, "cannot reach daemon")

    def test_jobs_status_min_windows_requires_name(self, capsys):
        code = main(["jobs", "status", "--url", "http://127.0.0.1:1",
                     "--min-windows", "1"])
        self._assert_clean_error(capsys, code, "--min-windows", "job name")

    def test_jobs_feed_unknown_scenario(self, capsys):
        code = main(["jobs", "feed", "j", "--url", "http://127.0.0.1:1",
                     "--scenario", "no-such-scenario"])
        self._assert_clean_error(capsys, code, "unknown scenario")

    def test_jobs_feed_bad_batch_packets(self, capsys):
        code = main(["jobs", "feed", "j", "--url", "http://127.0.0.1:1",
                     "--scenario", "stationary", "--batch-packets", "0"])
        self._assert_clean_error(capsys, code, "--batch-packets")

    def test_round_trip_through_console_commands(self, tmp_path, capsys):
        import threading

        from repro.service import ServiceDaemon, load_job_config

        daemon = ServiceDaemon([load_job_config(self._job_file(tmp_path))])
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        assert daemon.wait_ready(10)
        url = f"http://127.0.0.1:{daemon.port}"
        try:
            extra = self._job_file(tmp_path, "second", n_valid=500)
            assert main(["jobs", "submit", str(extra), "--url", url]) == 0
            out = capsys.readouterr().out
            assert "submitted job 'second'" in out
            assert main(["jobs", "feed", "cli-job", "--url", url,
                         "--scenario", "stationary",
                         "--batch-packets", "5000"]) == 0
            out = capsys.readouterr().out
            assert "windows folded" in out
            assert main(["jobs", "status", "cli-job", "--url", url,
                         "--min-windows", "1", "--timeout", "10"]) == 0
            out = capsys.readouterr().out
            assert "cli-job" in out
            # daemon-side rejection (unknown job) is a non-zero exit with the
            # daemon's structured message, not a traceback
            code = main(["jobs", "status", "ghost", "--url", url])
            assert code == 1
            out = capsys.readouterr().out
            assert "unknown_job" in out and "Traceback" not in out
        finally:
            daemon.request_shutdown()
            thread.join(timeout=30)
        assert not thread.is_alive()
