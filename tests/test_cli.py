"""Tests for the command-line interface (repro.cli / python -m repro)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.streaming.trace_io import load_trace


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    """A small trace produced through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "trace.npz"
    code = main(
        [
            "generate",
            str(path),
            "--nodes", "4000",
            "--packets", "60000",
            "--seed", "3",
        ]
    )
    assert code == 0
    return path


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "out.npz"])
        assert args.nodes == 30_000
        assert args.alpha == 2.0

    def test_analyze_quantity_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", "t.npz", "--quantities", "bogus"])

    def test_experiments_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "fig9"])


class TestGenerate:
    def test_trace_written_and_loadable(self, trace_file):
        trace = load_trace(trace_file)
        assert trace.n_packets == 60_000
        assert trace.n_valid == 60_000

    def test_invalid_fraction_respected(self, tmp_path):
        path = tmp_path / "t.npz"
        code = main(
            [
                "generate", str(path),
                "--nodes", "2000", "--packets", "20000",
                "--invalid-fraction", "0.25", "--seed", "4",
            ]
        )
        assert code == 0
        trace = load_trace(path)
        assert trace.n_valid == pytest.approx(15_000, rel=0.05)


class TestAnalyze:
    def test_analyze_prints_fits(self, trace_file, capsys):
        code = main(["analyze", str(trace_file), "--nv", "20000", "--quantities", "source_fanout"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table-I aggregates" in out
        assert "source_fanout" in out
        assert "alpha" in out

    def test_analyze_panel_rendering(self, trace_file, capsys):
        code = main(
            ["analyze", str(trace_file), "--nv", "20000", "--quantities", "source_fanout", "--panel"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "█" in out

    def test_analyze_backend_choices_validated(self, trace_file):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["analyze", str(trace_file), "--backend", "gpu"])

    def test_analyze_streaming_backend(self, trace_file, capsys):
        code = main(
            [
                "analyze", str(trace_file),
                "--nv", "20000",
                "--quantities", "source_fanout",
                "--backend", "streaming",
                "--chunk-packets", "10000",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=streaming" in out
        assert "Table-I aggregates" in out

    def test_backends_print_identical_fits(self, trace_file, capsys):
        main(["analyze", str(trace_file), "--nv", "20000", "--backend", "serial"])
        serial_out = capsys.readouterr().out
        main(
            [
                "analyze", str(trace_file),
                "--nv", "20000",
                "--backend", "streaming",
                "--chunk-packets", "15000",
            ]
        )
        streaming_out = capsys.readouterr().out
        # everything after the engine banner (fits, tables) must agree exactly
        marker = "windows of N_V"
        assert serial_out.split(marker)[1] == streaming_out.split(marker)[1]


class TestGenerateSharded:
    def test_sharded_generate_and_streaming_analyze(self, tmp_path, capsys):
        path = tmp_path / "trace-v2"
        code = main(
            [
                "generate", str(path),
                "--nodes", "2000", "--packets", "30000",
                "--seed", "5", "--shard-packets", "8000",
            ]
        )
        assert code == 0
        assert (path / "manifest.json").is_file()
        code = main(
            [
                "analyze", str(path),
                "--nv", "10000",
                "--quantities", "source_fanout",
                "--backend", "streaming",
            ]
        )
        assert code == 0
        assert "backend=streaming" in capsys.readouterr().out


class TestFit:
    def test_fit_prints_model_comparison(self, trace_file, capsys):
        code = main(["fit", str(trace_file), "--nv", "20000", "--quantity", "source_fanout"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Zipf-Mandelbrot" in out
        assert "model comparison" in out
        assert "power_law" in out


class TestExperiments:
    def test_experiments_subset_runs(self, capsys):
        code = main(["experiments", "fig4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "log_mse_vs_ZM" in out


class TestScenarios:
    def test_list_prints_catalogue(self, capsys):
        code = main(["scenarios", "list"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("stationary", "alpha-drift", "flash-crowd", "generator-mix"):
            assert name in out

    def test_run_streaming_prints_phases_and_drift(self, capsys):
        code = main(
            [
                "scenarios", "run", "alpha-drift",
                "--nv", "5000",
                "--backend", "streaming",
                "--chunk-packets", "9000",
                "--quantities", "source_fanout",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend=streaming" in out
        assert "phase summary — source_fanout" in out
        assert "max adjacent-phase drift" in out

    def test_run_single_phase_reports_no_drift(self, capsys):
        code = main(["scenarios", "run", "stationary", "--nv", "10000",
                     "--quantities", "source_fanout"])
        assert code == 0
        assert "single occupied phase" in capsys.readouterr().out

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        code = main(["scenarios", "run", "does-not-exist"])
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().out

    def test_subcommand_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenarios"])
