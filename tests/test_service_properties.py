"""Property harness: incremental service folds are bit-identical to one-shot.

Hypothesis draws arbitrary re-batchings of a scenario's packet stream and
feeds them through the service engine the way the daemon would — batch by
batch, windows cut incrementally.  Whatever the batching, the pooled
output vectors must be **bit-identical** (``tobytes()`` equality, not
allclose) to the one-shot :func:`repro.scenarios.run.analyze_scenario`
over the same stream, and every detector's alarm sequence must match
window-for-window.  This is the service-layer extension of the engine's
headline invariant: backends, chunkings — and now arbitrary client
batchings — never change results.

The final test drives the property over the real HTTP wire: one daemon,
newline-delimited JSON batches, flush to a result store, stored floats
compared exactly.
"""

from __future__ import annotations

import http.client
import json
import threading
from functools import lru_cache

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns.store import ResultStore
from repro.detect.detectors import DETECTOR_NAMES
from repro.scenarios import analyze_scenario, get_scenario
from repro.scenarios.source import ScenarioTraceSource
from repro.service import JobConfig, JobEngine, ServiceDaemon, packet_batch_from_json
from repro.streaming.packet import PacketTrace, concatenate_traces

N_VALID = 2_000
SCENARIO = "flash-crowd"
QUANTITIES = ("source_fanout", "destination_fanin")


@lru_cache(maxsize=1)
def _full_stream() -> PacketTrace:
    """The scenario's entire packet stream as one trace (cached)."""
    scenario = get_scenario(SCENARIO)
    return concatenate_traces(list(ScenarioTraceSource(scenario, seed=0)))


@lru_cache(maxsize=2)
def _one_shot(with_detection: bool):
    """The one-shot reference run (cached across hypothesis examples)."""
    kwargs = {"quantities": QUANTITIES}
    if with_detection:
        kwargs.update(detectors=tuple(DETECTOR_NAMES), detect_quantity="source_fanout")
    return analyze_scenario(SCENARIO, N_VALID, seed=0, **kwargs)


def _config(with_detection: bool) -> JobConfig:
    data = {
        "name": "prop",
        "window": {"n_valid": N_VALID, "quantities": list(QUANTITIES)},
    }
    if with_detection:
        data["detection"] = {
            "detectors": list(DETECTOR_NAMES),
            "quantity": "source_fanout",
        }
    return JobConfig.from_dict(data)


def _rebatch(cuts: list[int]) -> list[PacketTrace]:
    """Slice the full stream at *cuts* (arbitrary client batching)."""
    packets = _full_stream().packets
    bounds = [0, *sorted(set(cuts)), len(packets)]
    return [
        PacketTrace(packets[a:b]) for a, b in zip(bounds, bounds[1:]) if b > a
    ]


def _cuts():
    n = _full_stream().n_packets
    return st.lists(st.integers(1, n - 1), min_size=0, max_size=24, unique=True)


def _assert_bit_identical(analysis, reference) -> None:
    for quantity in QUANTITIES:
        mine, theirs = analysis.pooled(quantity), reference.pooled(quantity)
        assert mine.values.tobytes() == theirs.values.tobytes()
        assert mine.sigma.tobytes() == theirs.sigma.tobytes()
        assert np.array_equal(mine.bin_edges, theirs.bin_edges)
        assert mine.total == theirs.total


class TestRebatchingInvariance:
    """Any client batching folds to the one-shot result, bit for bit."""

    @given(cuts=_cuts())
    @settings(max_examples=15, deadline=None)
    def test_pooled_output_bit_identical(self, cuts):
        engine = JobEngine(_config(with_detection=False))
        for batch in _rebatch(cuts):
            engine.ingest(batch)
        reference = _one_shot(with_detection=False)
        assert engine.windows_folded == reference.analysis.n_windows
        _assert_bit_identical(engine.result(), reference.analysis)

    @given(cuts=_cuts())
    @settings(max_examples=10, deadline=None)
    def test_alarm_sequences_identical(self, cuts):
        engine = JobEngine(_config(with_detection=True))
        for batch in _rebatch(cuts):
            engine.ingest(batch)
        reference = _one_shot(with_detection=True).detection
        detection = engine.detection()
        assert detection.alarms == reference.alarms
        assert detection.quantity == reference.quantity
        _assert_bit_identical(engine.result(), _one_shot(True).analysis)

    @given(cuts=_cuts())
    @settings(max_examples=10, deadline=None)
    def test_json_wire_format_is_lossless(self, cuts):
        """Serialising batches through the NDJSON wire changes nothing."""
        engine = JobEngine(_config(with_detection=False))
        for batch in _rebatch(cuts):
            packets = batch.packets
            wire = json.dumps(
                {
                    "src": packets["src"].tolist(),
                    "dst": packets["dst"].tolist(),
                    "time": packets["time"].tolist(),
                    "size": packets["size"].tolist(),
                    "valid": packets["valid"].tolist(),
                }
            )
            engine.ingest(packet_batch_from_json(json.loads(wire)))
        _assert_bit_identical(engine.result(), _one_shot(with_detection=False).analysis)


class TestDaemonOverHttp:
    """The property holds over the real wire, end to end."""

    def test_http_fed_job_matches_one_shot(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        daemon = ServiceDaemon([_config(with_detection=True)], store=store)
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        assert daemon.wait_ready(10)
        try:
            # an awkward batching on purpose: prime-sized slices, several
            # NDJSON lines per request
            packets = _full_stream().packets
            step, lines = 7_919, []
            for start in range(0, len(packets), step):
                part = packets[start : start + step]
                lines.append(
                    json.dumps(
                        {
                            "src": part["src"].tolist(),
                            "dst": part["dst"].tolist(),
                            "time": part["time"].tolist(),
                            "size": part["size"].tolist(),
                            "valid": part["valid"].tolist(),
                        }
                    )
                )
            for i in range(0, len(lines), 3):
                body = "\n".join(lines[i : i + 3]) + "\n"
                conn = http.client.HTTPConnection("127.0.0.1", daemon.port, timeout=10)
                conn.request("POST", "/ingest/prop", body=body)
                response = conn.getresponse()
                assert response.status == 200, response.read()
                response.read()
                conn.close()
        finally:
            daemon.request_shutdown()
            thread.join(timeout=30)
        assert not thread.is_alive()
        reference = _one_shot(with_detection=True)
        payload = store.get(daemon.registry.get("prop").config_hash)
        assert payload["n_windows"] == reference.analysis.n_windows
        for quantity in QUANTITIES:
            stored = payload["pooled"][quantity]
            expected = reference.analysis.pooled(quantity)
            # exact float equality: the wire and the flush are lossless
            assert stored["values"] == expected.values.tolist()
            assert stored["sigma"] == expected.sigma.tolist()
            assert stored["total"] == expected.total
        alarms = payload["detection"]["alarms"]
        assert {k: tuple(v) for k, v in alarms.items()} == dict(reference.detection.alarms)
