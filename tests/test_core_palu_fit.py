"""Unit tests for repro.core.palu_fit (the Section IV-B fitting recipe)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy.stats import poisson

from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.analysis.moments import poisson_moment_rhs
from repro.core.palu_fit import PALUFitResult, fit_palu, solve_lambda_from_ratio
from repro.core.palu_model import PALUParameters, degree_distribution, reduced_parameters


def _exact_palu_histogram(
    c: float, l: float, u: float, alpha: float, m: float, dmax: int, total: int = 10**10
) -> DegreeHistogram:
    """Histogram with counts following the reduced PALU law *exactly*.

    Degree 1 carries ``c + l + u`` (Eq. 2); degrees ``d >= 2`` carry
    ``c·d^{-α} + u·m^d/d!`` with the exact Poisson form (not the Stirling
    approximation) so the moment-based estimator can be validated against
    its own model assumptions.
    """
    d = np.arange(1, dmax + 1, dtype=np.float64)
    weights = c * d ** (-alpha)
    weights[1:] += u * poisson.pmf(d[1:], m) / math.exp(-m)  # u * m^d / d!
    weights[0] += l + u
    weights /= weights.sum()
    counts = np.round(weights * total).astype(np.int64)
    return DegreeHistogram.from_dense(counts)


class TestSolveLambdaFromRatio:
    def test_round_trip(self):
        for m in (0.1, 0.5, 1.0, 2.5, 6.0):
            assert solve_lambda_from_ratio(poisson_moment_rhs(m)) == pytest.approx(m, rel=1e-6)

    def test_ratio_at_or_below_two_maps_to_zero(self):
        assert solve_lambda_from_ratio(2.0) == 0.0
        assert solve_lambda_from_ratio(1.5) == 0.0

    def test_nan_ratio_maps_to_zero(self):
        assert solve_lambda_from_ratio(float("nan")) == 0.0

    def test_huge_ratio_clamped(self):
        assert solve_lambda_from_ratio(1e9, m_max=50.0) == 50.0

    def test_monotone(self):
        values = [solve_lambda_from_ratio(r) for r in (2.1, 2.5, 3.0, 4.0, 6.0)]
        assert all(a < b for a, b in zip(values, values[1:]))


class TestFitOnExactMixture:
    """The recipe must recover parameters from its own model, noise-free."""

    @pytest.mark.parametrize(
        "c,l,u,alpha,m",
        [
            (0.3, 0.4, 0.05, 2.0, 1.5),
            (0.2, 0.5, 0.10, 2.5, 1.0),
            (0.4, 0.2, 0.08, 1.8, 2.5),
        ],
    )
    def test_recovers_parameters(self, c, l, u, alpha, m):
        hist = _exact_palu_histogram(c, l, u, alpha, m, dmax=20_000)
        # the mixture weights are normalised when building the histogram, so
        # recover the normalisation to compare in the same units
        d = np.arange(1, 20_001, dtype=np.float64)
        norm = float(
            (c * d ** (-alpha)).sum()
            + (u * poisson.pmf(d[1:], m) / math.exp(-m)).sum()
            + l
            + u
        )
        fit = fit_palu(hist, method="moment")
        assert fit.alpha == pytest.approx(alpha, abs=0.05)
        assert fit.c == pytest.approx(c / norm, rel=0.1)
        assert fit.poisson_mean == pytest.approx(m, rel=0.15)
        assert fit.u == pytest.approx(u / norm, rel=0.3)
        assert fit.l == pytest.approx(l / norm, rel=0.1)

    def test_lambda_paper_parameterisation(self):
        hist = _exact_palu_histogram(0.3, 0.4, 0.05, 2.0, 1.5, dmax=20_000)
        fit = fit_palu(hist)
        assert fit.Lambda == pytest.approx(math.e * fit.poisson_mean)

    def test_no_unattached_component_detected_when_absent(self):
        hist = _exact_palu_histogram(0.4, 0.5, 0.0, 2.0, 1.0, dmax=20_000)
        fit = fit_palu(hist, method="moment")
        assert fit.u == pytest.approx(0.0, abs=1e-3)
        assert fit.poisson_mean == pytest.approx(0.0, abs=0.3)


class TestFitOnSampledPALU:
    def test_recovery_from_sampled_distribution(self, palu_sample_histogram):
        # fixture: 800k draws from PALUDegreeDistribution(c=0.3, l=0.4, u=0.05,
        # alpha=2.0, Lambda=2.5); note the weights are normalised by ~0.75+
        fit = fit_palu(palu_sample_histogram)
        assert fit.alpha == pytest.approx(2.0, abs=0.1)
        assert fit.l > fit.u  # leaves dominate the unattached weight
        assert fit.c > 0

    def test_pointwise_method_runs(self, palu_sample_histogram):
        fit = fit_palu(palu_sample_histogram, method="pointwise")
        assert fit.method == "pointwise"
        assert np.isfinite(fit.poisson_mean)

    def test_distribution_round_trip_close_to_data(self, palu_sample_histogram):
        fit = fit_palu(palu_sample_histogram)
        refit = fit.distribution()
        observed_p1 = palu_sample_histogram.fraction_at(1)
        assert refit.pmf(1) == pytest.approx(observed_p1, rel=0.1)


class TestToUnderlying:
    def test_round_trip_through_reduced_parameters(self):
        params = PALUParameters.from_weights(0.5, 0.25, 0.25, lam=2.0, alpha=2.0)
        p = 0.6
        red = reduced_parameters(params, p)
        fit = PALUFitResult(
            c=red.c,
            l=red.l,
            u=red.u,
            alpha=params.alpha,
            poisson_mean=red.poisson_mean,
            Lambda=red.Lambda,
            tail_r_squared=1.0,
            residual_mass=0.0,
            method="moment",
            dmax=10_000,
        )
        recovered = fit.to_underlying(p)
        assert recovered.core == pytest.approx(params.core, rel=1e-6)
        assert recovered.leaves == pytest.approx(params.leaves, rel=1e-6)
        assert recovered.unattached == pytest.approx(params.unattached, rel=1e-6)
        assert recovered.lam == pytest.approx(params.lam, rel=1e-9)

    def test_rejects_p_zero_or_one_boundary(self, palu_sample_histogram):
        fit = fit_palu(palu_sample_histogram)
        with pytest.raises(ValueError):
            fit.to_underlying(0.0)

    def test_rejects_implied_lambda_out_of_range(self):
        fit = PALUFitResult(
            c=0.3, l=0.3, u=0.05, alpha=2.0, poisson_mean=5.0, Lambda=math.e * 5.0,
            tail_r_squared=1.0, residual_mass=0.0, method="moment", dmax=100,
        )
        with pytest.raises(ValueError, match="exceeds the model range"):
            fit.to_underlying(0.01)


class TestValidation:
    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            fit_palu(degree_histogram([]))

    def test_unknown_method_rejected(self, palu_sample_histogram):
        with pytest.raises(ValueError):
            fit_palu(palu_sample_histogram, method="bayesian")

    def test_as_row_keys(self, palu_sample_histogram):
        row = fit_palu(palu_sample_histogram).as_row()
        assert {"c", "l", "u", "alpha", "Lambda", "m", "tail_R2", "method"} <= set(row)

    def test_short_support_falls_back_to_smaller_tail_cutoff(self):
        # dmax < 10: the tail regression must degrade gracefully
        d = np.arange(1, 9)
        counts = (1e6 * d ** -2.0).astype(np.int64)
        hist = DegreeHistogram.from_dense(counts)
        fit = fit_palu(hist)
        assert np.isfinite(fit.alpha)
