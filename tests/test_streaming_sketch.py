"""Property harness pinning the sketch tier to the exact kernel oracle.

The sketch tier (:mod:`repro.streaming.sketch`) trades exactness for
sub-linear per-window memory, so unlike the fused kernel it is **not**
pinned to integer equality — it is pinned to its *guarantees*:

* Count-Min point estimates never undercount, and overcount by more than
  ``effective_epsilon * n_packets`` on at most an ``effective_delta``
  fraction of queries (the classic ``(eps, delta)`` bound);
* the packet-count histograms conserve mass exactly —
  ``sum(degree * count) == n_valid`` — whatever the collisions did;
* the valid-packet aggregate is exact, and the HyperLogLog distinct
  aggregates land within a few standard errors of the exact kernel's;
* merging is associative and **bit-identical** to sketching the
  concatenated window, for every split — the property that makes the
  StreamAnalyzer fold backend- and chunking-invariant.

The hypothesis strategies deliberately cover the adversarial corners the
kernel harness covers: empty windows, all-invalid windows, duplicate-heavy
traffic, and heavy-hitter-skewed workloads.  The exact kernel
(:func:`repro.streaming.pipeline.analyze_window`) serves as the oracle
throughout.
"""

from __future__ import annotations

import math
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.pooling import pool_differential_cumulative
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.packet import PacketTrace
from repro.streaming.pipeline import (
    MODE_NAMES,
    StreamAnalyzer,
    analyze_trace,
    analyze_window,
    analyze_window_sketch,
)
from repro.streaming.sketch import (
    DEFAULT_SKETCH_CONFIG,
    SketchConfig,
    WindowSketch,
    build_sketch,
    sketch_products,
)

#: Quantities served by Count-Min bucket histograms (mass-conserving).
CMS_QUANTITIES = ("source_packets", "link_packets", "destination_packets")

#: A deliberately tiny, collision-heavy configuration: every structural
#: invariant (mass conservation, mergeability, determinism) must survive
#: heavy collisions, not just the roomy default tables.
TINY_CONFIG = SketchConfig(epsilon=0.05, delta=0.3, hll_p=4, spread_rows=8, spread_cols=8)

# -- strategies ---------------------------------------------------------------

_SMALL_IDS = st.integers(min_value=0, max_value=4)  # duplicate-heavy
_MEDIUM_IDS = st.integers(min_value=0, max_value=10_000)
_WIDE_IDS = st.integers(min_value=-(2**62), max_value=2**62)  # arbitrary int64 ids
_HEAVY_HITTER_IDS = st.sampled_from([7] * 8 + [11, 13, 17, 1_000_003])  # skewed

_ID_POOLS = st.sampled_from([_SMALL_IDS, _MEDIUM_IDS, _WIDE_IDS, _HEAVY_HITTER_IDS])


@st.composite
def windows(draw) -> PacketTrace:
    """An adversarial window: empty / all-invalid / duplicate- or hitter-heavy."""
    n = draw(st.integers(min_value=0, max_value=120))
    ids = draw(_ID_POOLS)
    src = draw(st.lists(ids, min_size=n, max_size=n))
    dst = draw(st.lists(ids, min_size=n, max_size=n))
    valid = draw(
        st.one_of(
            st.just([True] * n),
            st.just([False] * n),
            st.lists(st.booleans(), min_size=n, max_size=n),
        )
    )
    return PacketTrace.from_arrays(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        valid=np.asarray(valid, dtype=bool),
    )


@st.composite
def columns(draw) -> tuple[np.ndarray, np.ndarray]:
    """Valid ``(src, dst)`` id columns (the post-filter build input)."""
    n = draw(st.integers(min_value=0, max_value=150))
    ids = draw(_ID_POOLS)
    src = np.asarray(draw(st.lists(ids, min_size=n, max_size=n)), dtype=np.int64)
    dst = np.asarray(draw(st.lists(ids, min_size=n, max_size=n)), dtype=np.int64)
    return src, dst


def _zipf_columns(n: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """A heavy-tailed workload with many distinct entities (HLL accuracy runs)."""
    rng = np.random.default_rng(seed)
    src = rng.zipf(1.2, n).astype(np.int64) % max(n // 2, 1)
    dst = rng.zipf(1.2, n).astype(np.int64) % max(n // 2, 1)
    return src, dst


# -- the (eps, delta) Count-Min guarantee -------------------------------------


class TestCountMinGuarantee:
    @given(cols=columns())
    @settings(max_examples=150)
    def test_point_estimates_respect_eps_delta(self, cols):
        """Never undercounts; overcount > eps*n on <= a delta fraction of queries."""
        src, dst = cols
        sketch = build_sketch(src, dst)
        n = int(src.size)
        slack = DEFAULT_SKETCH_CONFIG.effective_epsilon * n
        delta = DEFAULT_SKETCH_CONFIG.effective_delta
        for kind, ids in (("source", src), ("destination", dst)):
            uniq, true = np.unique(ids, return_counts=True)
            if not uniq.size:
                continue
            est = sketch.query(kind, uniq)
            err = est - true
            assert (err >= 0).all(), f"{kind}: Count-Min undercounted"
            violations = int((err > slack).sum())
            assert violations <= math.ceil(delta * uniq.size), (
                f"{kind}: {violations}/{uniq.size} queries exceeded eps*n = {slack:.3f}"
            )

    @given(cols=columns())
    @settings(max_examples=100)
    def test_link_estimates_never_undercount(self, cols):
        src, dst = cols
        if not src.size:
            return
        sketch = build_sketch(src, dst)
        pairs = np.stack([src, dst], axis=1)
        _, first, true = np.unique(pairs, axis=0, return_index=True, return_counts=True)
        est = sketch.query("link", src[first], dst[first])
        assert (est >= true).all()

    def test_absent_keys_read_as_pure_overcount(self):
        src = np.arange(50, dtype=np.int64)
        sketch = build_sketch(src, src + 1)
        est = sketch.query("source", np.arange(10**6, 10**6 + 64, dtype=np.int64))
        assert (est >= 0).all()
        # width 4096, 50 occupied buckets: almost every probe must miss
        assert int((est == 0).sum()) >= 32


# -- structural invariants ----------------------------------------------------


class TestSketchInvariants:
    @given(cols=columns(), config=st.sampled_from([DEFAULT_SKETCH_CONFIG, TINY_CONFIG]))
    @settings(max_examples=150)
    def test_packet_histograms_conserve_mass_exactly(self, cols, config):
        src, dst = cols
        _, hists, _, sketch = sketch_products(src, dst, config)
        assert sketch.n_packets == src.size
        for name in CMS_QUANTITIES:
            hist = hists[name]
            mass = int((hist.degrees * hist.counts).sum())
            assert mass == src.size, f"{name}: {mass} != {src.size}"

    @given(
        cols=columns(),
        cut=st.integers(min_value=0, max_value=150),
        config=st.sampled_from([DEFAULT_SKETCH_CONFIG, TINY_CONFIG]),
    )
    @settings(max_examples=150)
    def test_merge_is_bit_identical_to_whole_build(self, cols, cut, config):
        """Sketching chunks and merging == sketching the concatenation."""
        src, dst = cols
        cut = min(cut, src.size)
        parts = build_sketch(src[:cut], dst[:cut], config).merge(
            build_sketch(src[cut:], dst[cut:], config)
        )
        assert parts == build_sketch(src, dst, config)

    @given(cols=columns(), config=st.sampled_from([DEFAULT_SKETCH_CONFIG, TINY_CONFIG]))
    @settings(max_examples=60)
    def test_merge_is_associative(self, cols, config):
        src, dst = cols
        a_end, b_end = src.size // 3, 2 * src.size // 3
        a = build_sketch(src[:a_end], dst[:a_end], config)
        b = build_sketch(src[a_end:b_end], dst[a_end:b_end], config)
        c = build_sketch(src[b_end:], dst[b_end:], config)
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_merge_rejects_mismatched_configs(self):
        a = WindowSketch.empty(DEFAULT_SKETCH_CONFIG)
        b = WindowSketch.empty(TINY_CONFIG)
        with pytest.raises(ValueError, match="config"):
            a.merge(b)

    def test_different_seeds_sketch_differently(self):
        src = np.arange(200, dtype=np.int64)
        a = build_sketch(src, src + 1, SketchConfig(seed=1))
        b = build_sketch(src, src + 1, SketchConfig(seed=2))
        assert a != b  # different salts place keys in different cells

    def test_empty_and_all_invalid_windows(self):
        for window in (
            PacketTrace.empty(),
            PacketTrace.from_arrays([1, 2, 3], [4, 5, 6], valid=[False] * 3),
        ):
            result = analyze_window_sketch(window)
            assert result.aggregates.valid_packets == 0
            assert result.aggregates.unique_links == 0
            assert all(h.total == 0 for h in result.histograms.values())
            assert result.sketch == WindowSketch.empty()

    def test_sketch_pickles_round_trip(self):
        src, dst = _zipf_columns(5_000, seed=7)
        sketch = build_sketch(src, dst)
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone == sketch
        assert clone.config == sketch.config
        assert clone.aggregates() == sketch.aggregates()

    def test_footprint_is_data_independent(self):
        small = build_sketch(*_zipf_columns(100, seed=1))
        large = build_sketch(*_zipf_columns(50_000, seed=1))
        assert small.nbytes == large.nbytes  # sub-linear: fixed tables


# -- accuracy against the exact oracle ----------------------------------------


class TestAccuracyAgainstExactOracle:
    @pytest.mark.parametrize("seed", [3, 11])
    def test_distinct_aggregates_within_hll_error(self, seed):
        src, dst = _zipf_columns(40_000, seed=seed)
        window = PacketTrace.from_arrays(src, dst)
        exact = analyze_window(window).aggregates
        est = analyze_window_sketch(window).aggregates
        assert est.valid_packets == exact.valid_packets  # exact by construction
        tolerance = 5 * DEFAULT_SKETCH_CONFIG.hll_relative_error
        for field in ("unique_sources", "unique_destinations", "unique_links"):
            true, got = getattr(exact, field), getattr(est, field)
            assert abs(got - true) <= max(3, tolerance * true), (
                f"{field}: estimated {got} vs exact {true}"
            )

    def test_bounds_describe_every_estimate(self):
        _, _, bounds, _ = sketch_products(*_zipf_columns(2_000, seed=5))
        assert set(QUANTITY_NAMES) <= set(bounds)
        assert bounds["valid_packets"].relative_error == 0.0
        for name in CMS_QUANTITIES:
            assert bounds[name].estimator == "count-min"
            assert bounds[name].epsilon == DEFAULT_SKETCH_CONFIG.effective_epsilon
            assert bounds[name].delta == DEFAULT_SKETCH_CONFIG.effective_delta
        for name in ("unique_links", "unique_sources", "unique_destinations"):
            assert bounds[name].estimator == "hyperloglog"
            assert bounds[name].relative_error == DEFAULT_SKETCH_CONFIG.hll_relative_error
        for name in ("source_fanout", "destination_fanin"):
            assert bounds[name].estimator == "spread-bitmap"
            assert 0.0 < bounds[name].relative_error < 1.0

    def test_tighter_epsilon_means_wider_table(self):
        loose, tight = SketchConfig(epsilon=1e-2), SketchConfig(epsilon=1e-4)
        assert tight.width > loose.width
        assert tight.effective_epsilon < loose.effective_epsilon <= 1e-2
        assert SketchConfig(delta=0.01).depth > SketchConfig(delta=0.5).depth


# -- configuration ------------------------------------------------------------


class TestSketchConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epsilon": 0.0},
            {"epsilon": 1.0},
            {"delta": 0.0},
            {"delta": 1.5},
            {"hll_p": 3},
            {"hll_p": 19},
            {"spread_rows": 6},
            {"spread_cols": 48},
        ],
    )
    def test_invalid_knobs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SketchConfig(**kwargs)

    def test_key_payload_covers_every_accuracy_knob(self):
        payload = SketchConfig().as_key_payload()
        assert set(payload) == {
            "epsilon", "delta", "hll_p", "spread_rows", "spread_cols", "seed"
        }
        assert payload == SketchConfig().as_key_payload()  # stable across instances
        assert SketchConfig(seed=1).as_key_payload() != payload


# -- the engine fold ----------------------------------------------------------


class TestSketchModeEngine:
    @pytest.fixture(scope="class")
    def trace(self) -> PacketTrace:
        src, dst = _zipf_columns(30_000, seed=9)
        return PacketTrace.from_arrays(src, dst)

    def test_backends_and_batching_are_bit_identical(self, trace):
        reference = analyze_trace(trace, 5_000, mode="sketch")
        assert reference.mode == "sketch"
        for kwargs in (
            {"backend": "serial", "batch_windows": 3},
            {"backend": "process", "n_workers": 2},
            {"backend": "streaming", "chunk_packets": 7_000},
        ):
            other = analyze_trace(trace, 5_000, mode="sketch", **kwargs)
            assert other.sketch == reference.sketch, kwargs
            for name in QUANTITY_NAMES:
                mine = other.merged_histogram(name)
                theirs = reference.merged_histogram(name)
                assert np.array_equal(mine.degrees, theirs.degrees), (kwargs, name)
                assert np.array_equal(mine.counts, theirs.counts), (kwargs, name)
                assert np.array_equal(
                    other.pooled(name).values, reference.pooled(name).values
                ), (kwargs, name)

    def test_merged_sketch_equals_whole_trace_sketch(self, trace):
        """The fold across windows == one sketch of all valid packets."""
        analysis = analyze_trace(trace, 5_000, mode="sketch")
        n_folded = analysis.n_windows * 5_000
        whole = build_sketch(
            trace.packets["src"][:n_folded], trace.packets["dst"][:n_folded]
        )
        assert analysis.sketch == whole

    def test_exact_mode_is_unchanged_default(self, trace):
        analysis = analyze_trace(trace, 10_000)
        assert analysis.mode == "exact"
        assert analysis.sketch is None
        assert analysis.bounds is None

    def test_window_results_carry_bounds_and_sketch(self, trace):
        result = analyze_window_sketch(PacketTrace.from_arrays([1, 2], [3, 4]))
        assert result.sketch is not None
        assert result.bounds is not None
        assert set(QUANTITY_NAMES) <= set(result.bounds)
        # exact-mode results keep the fields empty (payload stays lean)
        exact = analyze_window(PacketTrace.from_arrays([1, 2], [3, 4]))
        assert exact.sketch is None and exact.bounds is None

    def test_pooled_vectors_follow_sketched_histograms(self, trace):
        analysis = analyze_trace(trace, 5_000, mode="sketch")
        merged = analysis.merged_histogram("source_packets")
        # pooling runs per window then folds; merged histogram pools too
        assert pool_differential_cumulative(merged).total == merged.total

    def test_mode_names_constant(self):
        assert MODE_NAMES == ("exact", "sketch")

    def test_unknown_mode_rejected(self, trace):
        with pytest.raises(ValueError, match="mode"):
            analyze_trace(trace, 5_000, mode="bogus")

    def test_sketch_config_in_exact_mode_rejected(self, trace):
        with pytest.raises(ValueError, match="exact"):
            analyze_trace(trace, 5_000, sketch=SketchConfig())

    def test_sketch_mode_analyzer_rejects_exact_results(self):
        analyzer = StreamAnalyzer(100, mode="sketch")
        exact_result = analyze_window(PacketTrace.from_arrays([1], [2]))
        with pytest.raises(ValueError, match="sketch"):
            analyzer.update(exact_result)

    def test_sketch_mode_analyzer_rejects_foreign_config(self):
        analyzer = StreamAnalyzer(100, mode="sketch", sketch=SketchConfig(seed=1))
        other = analyze_window_sketch(
            PacketTrace.from_arrays([1], [2]), config=SketchConfig(seed=2)
        )
        with pytest.raises(ValueError, match="SketchConfig"):
            analyzer.update(other)

    def test_analysis_pickles_with_sketch(self, trace):
        analysis = analyze_trace(trace, 10_000, mode="sketch")
        clone = pickle.loads(pickle.dumps(analysis))
        assert clone.sketch == analysis.sketch
        assert clone.bounds == analysis.bounds
