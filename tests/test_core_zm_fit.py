"""Unit tests for repro.core.zm_fit (Zipf–Mandelbrot parameter fitting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import degree_histogram
from repro.analysis.pooling import pool_differential_cumulative, PooledDistribution
from repro.core.distributions import ZipfMandelbrotDistribution
from repro.core.zipf_mandelbrot import zm_differential_cumulative
from repro.core.zm_fit import ZMFitResult, fit_zipf_mandelbrot, fit_zipf_mandelbrot_histogram


def _pooled_from_model(alpha: float, delta: float, dmax: int) -> PooledDistribution:
    return zm_differential_cumulative(dmax, alpha, delta)


class TestFitOnAnalyticCurves:
    """Fitting the model to its own (noise-free) pooled curve must recover (α, δ)."""

    @pytest.mark.parametrize(
        "alpha,delta",
        [(2.0, -0.5), (1.7, -0.8), (2.3, 0.6), (1.5, 0.0), (2.8, -0.3)],
    )
    def test_recovers_parameters(self, alpha, delta):
        dmax = 20_000
        pooled = _pooled_from_model(alpha, delta, dmax)
        fit = fit_zipf_mandelbrot(pooled, dmax)
        assert fit.alpha == pytest.approx(alpha, abs=0.05)
        assert fit.delta == pytest.approx(delta, abs=0.1)

    def test_fit_error_is_tiny_on_exact_curve(self):
        pooled = _pooled_from_model(2.0, -0.5, 10_000)
        fit = fit_zipf_mandelbrot(pooled, 10_000)
        assert fit.error < 1e-4

    def test_result_model_roundtrip(self):
        pooled = _pooled_from_model(2.0, -0.5, 5_000)
        fit = fit_zipf_mandelbrot(pooled, 5_000)
        model = fit.model()
        assert model.alpha == fit.alpha
        assert model.dmax == 5_000


class TestFitOnSampledData:
    def test_recovers_parameters_from_large_sample(self, zm_sample_histogram):
        # histogram fixture: 500k draws from ZM(alpha=2.0, delta=-0.5)
        fit = fit_zipf_mandelbrot_histogram(zm_sample_histogram)
        assert fit.alpha == pytest.approx(2.0, abs=0.15)
        assert fit.delta == pytest.approx(-0.5, abs=0.2)

    def test_sigma_weighting_runs(self, zm_sample_histogram):
        pooled = pool_differential_cumulative(zm_sample_histogram)
        sigma = np.full(pooled.n_bins, 0.01)
        weighted = PooledDistribution(
            bin_edges=pooled.bin_edges, values=pooled.values, sigma=sigma, total=pooled.total
        )
        fit = fit_zipf_mandelbrot(weighted, zm_sample_histogram.dmax, use_sigma_weights=True)
        assert np.isfinite(fit.error)

    def test_alpha_ordering_preserved(self):
        """A heavier-tailed sample must fit a smaller alpha."""
        rng = np.random.default_rng(1)
        heavy = degree_histogram(ZipfMandelbrotDistribution(1.6, -0.5, 20_000).sample(200_000, rng=rng))
        light = degree_histogram(ZipfMandelbrotDistribution(2.6, -0.5, 20_000).sample(200_000, rng=rng))
        fit_heavy = fit_zipf_mandelbrot_histogram(heavy)
        fit_light = fit_zipf_mandelbrot_histogram(light)
        assert fit_heavy.alpha < fit_light.alpha


class TestFitValidation:
    def test_empty_histogram_rejected(self):
        empty = degree_histogram([])
        with pytest.raises(ValueError):
            fit_zipf_mandelbrot_histogram(empty)

    def test_empty_grid_rejected(self):
        pooled = _pooled_from_model(2.0, 0.0, 100)
        with pytest.raises(ValueError):
            fit_zipf_mandelbrot(pooled, 100, alpha_grid=[])

    def test_refine_false_still_reasonable(self):
        pooled = _pooled_from_model(2.0, -0.5, 5000)
        fit = fit_zipf_mandelbrot(pooled, 5000, refine=False)
        assert fit.alpha == pytest.approx(2.0, abs=0.2)
        assert fit.converged is False

    def test_as_row_keys(self):
        pooled = _pooled_from_model(2.0, -0.5, 1000)
        fit = fit_zipf_mandelbrot(pooled, 1000)
        row = fit.as_row()
        assert {"alpha", "delta", "dmax", "log_mse", "bins", "converged"} <= set(row)

    def test_result_is_frozen(self):
        pooled = _pooled_from_model(2.0, -0.5, 1000)
        fit = fit_zipf_mandelbrot(pooled, 1000)
        with pytest.raises(AttributeError):
            fit.alpha = 3.0  # type: ignore[misc]

    def test_custom_grids_used(self):
        pooled = _pooled_from_model(2.0, -0.5, 2000)
        fit = fit_zipf_mandelbrot(
            pooled, 2000, alpha_grid=[1.9, 2.0, 2.1], delta_grid=[-0.6, -0.5, -0.4], refine=False
        )
        assert fit.alpha in (1.9, 2.0, 2.1)
        assert fit.delta in (-0.6, -0.5, -0.4)
