"""End-to-end integration tests across subpackages.

These exercise the full story of the paper on one synthetic world:
generate a PALU underlying network → emit traffic → window → aggregate →
pool → fit (power law, Zipf–Mandelbrot, PALU) → check the qualitative claims
(d=1 excess, ZM superiority, parameter consistency, PALU→ZM convergence).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.analysis.comparison import compare_models, pooled_relative_error
from repro.analysis.pooling import pool_probability_vector
from repro.core.distributions import DiscretePowerLaw, ZipfMandelbrotDistribution
from repro.core.palu_zm_connection import delta_from_model
from repro.generators.sampling import sample_edges, webcrawl_sample
from repro.streaming.pipeline import analyze_trace
from repro.streaming.trace_generator import generate_trace


@pytest.fixture(scope="module")
def world(palu_params):
    """One shared synthetic world: underlying network + traffic + analysis."""
    graph = repro.generate_palu_graph(palu_params, n_nodes=20_000, rng=101)
    trace = generate_trace(graph.graph, 300_000, rate_model="zipf", rate_exponent=1.2, rng=102)
    analysis = analyze_trace(trace, 100_000)
    return {"params": palu_params, "graph": graph, "trace": trace, "analysis": analysis}


class TestEndToEndPipeline:
    def test_windows_and_aggregates(self, world):
        analysis = world["analysis"]
        assert analysis.n_windows == 3
        for row in analysis.aggregates_table():
            assert row["valid_packets"] == 100_000

    def test_degree_one_excess_is_visible(self, world):
        """Trunk-style observation shows the d=1 spike (red dots of Figure 3)."""
        pooled = world["analysis"].pooled("source_fanout")
        assert pooled.values[0] > 0.3

    def test_zm_fit_beats_power_law_on_every_quantity(self, world):
        analysis = world["analysis"]
        for quantity in ("source_fanout", "destination_fanin", "link_packets"):
            pooled = analysis.pooled(quantity)
            hist = analysis.merged_histogram(quantity)
            zm_fit = analysis.fit_zipf_mandelbrot(quantity)
            pl_fit = repro.fit_power_law(hist, d_min=1)
            comparison = compare_models(
                hist,
                pooled,
                {
                    "zipf_mandelbrot": zm_fit.model().distribution(),
                    "power_law": DiscretePowerLaw(pl_fit.alpha, hist.dmax),
                },
                n_parameters={"zipf_mandelbrot": 2, "power_law": 1},
            )
            assert comparison[0].name == "zipf_mandelbrot"

    def test_palu_fit_on_observed_degrees_matches_generator_alpha(self, world):
        observed = sample_edges(world["graph"].graph, 0.6, rng=103)
        degrees = [d for _, d in observed.degree() if d > 0]
        hist = repro.degree_histogram(degrees)
        fit = repro.fit_palu(hist)
        assert fit.alpha == pytest.approx(world["params"].alpha, abs=0.35)
        # leaves plus unattached mass dominates the degree-1 bin
        assert fit.l + fit.u > fit.c * 0.5

    def test_window_size_changes_only_p(self, world):
        """Re-analysing with a smaller window lowers the effective p but keeps the tail exponent."""
        analysis_small = analyze_trace(world["trace"], 50_000)
        big = world["analysis"].fit_zipf_mandelbrot("source_fanout")
        small = analysis_small.fit_zipf_mandelbrot("source_fanout")
        assert small.alpha == pytest.approx(big.alpha, abs=0.4)
        # a smaller window sees fewer distinct links per window
        assert analysis_small.dmax("source_fanout") <= world["analysis"].dmax("source_fanout")

    def test_webcrawl_view_hides_the_unattached_debris(self, world):
        graph = world["graph"]
        crawled = webcrawl_sample(graph.graph, n_seeds=3)
        trunk = sample_edges(graph.graph, 0.6, rng=104)
        crawl_degrees = repro.degree_histogram([d for _, d in crawled.degree() if d > 0])
        trunk_degrees = repro.degree_histogram([d for _, d in trunk.degree() if d > 0])
        assert trunk_degrees.fraction_at(1) > crawl_degrees.fraction_at(1)

    def test_zm_delta_sign_matches_model_prediction(self, world):
        """Section VI: unattached mass pushes the fitted δ negative."""
        params = world["params"]
        predicted_delta = delta_from_model(
            params.core, params.unattached, params.lam, 0.5, params.alpha
        )
        assert predicted_delta < 0
        observed = sample_edges(world["graph"].graph, 0.5, rng=105)
        hist = repro.degree_histogram([d for _, d in observed.degree() if d > 0])
        fit = repro.fit_zipf_mandelbrot_histogram(hist)
        assert fit.delta < 0

    def test_fitted_zm_model_reproduces_pooled_curve(self, world):
        analysis = world["analysis"]
        pooled = analysis.pooled("source_fanout")
        fit = analysis.fit_zipf_mandelbrot("source_fanout")
        model_pooled = pool_probability_vector(fit.model().probability())
        assert pooled_relative_error(pooled, model_pooled) < 0.1


class TestCrossModuleConsistency:
    def test_expected_fractions_match_simulation_at_two_windows(self, world):
        params = world["params"]
        graph = world["graph"]
        class_of = graph.class_of()
        for p in (0.4, 0.9):
            observed = sample_edges(graph.graph, p, rng=int(p * 1000))
            visible = [n for n, d in observed.degree() if d > 0]
            sim_v = len(visible) / graph.n_nodes
            pred_v = repro.visible_fraction(params, p, method="exact")
            assert pred_v == pytest.approx(sim_v, rel=0.1)
            sim_leaves = np.mean([class_of[n] == "leaf" for n in visible])
            pred = repro.expected_class_fractions(params, p, method="exact")
            assert pred["leaves"] == pytest.approx(sim_leaves, abs=0.05)

    def test_generated_trace_replays_into_same_graph_edges(self, world):
        trace = world["trace"]
        graph_edges = {
            tuple(sorted(e)) for e in world["graph"].graph.edges()
        }
        sample = trace.packets[:5000]
        for src, dst in zip(sample["src"], sample["dst"]):
            assert tuple(sorted((int(src), int(dst)))) in graph_edges

    def test_zipf_mandelbrot_distribution_sampling_round_trip(self):
        """Sampling from a fitted model and re-fitting recovers the parameters."""
        original = ZipfMandelbrotDistribution(1.9, -0.6, 20_000)
        hist = repro.degree_histogram(original.sample(300_000, rng=106))
        fit = repro.fit_zipf_mandelbrot_histogram(hist)
        resampled = repro.degree_histogram(fit.model().distribution().sample(300_000, rng=107))
        refit = repro.fit_zipf_mandelbrot_histogram(resampled)
        assert refit.alpha == pytest.approx(fit.alpha, abs=0.15)
        assert refit.delta == pytest.approx(fit.delta, abs=0.2)
