"""Unit tests for the basic generators: degree sequences, configuration model,
Erdős–Rényi, and Poisson stars."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.generators.configuration_model import (
    configuration_model_edges,
    generate_configuration_model,
)
from repro.generators.degree_sequence import (
    make_sum_even,
    sample_power_law_degrees,
    sample_zipf_mandelbrot_degrees,
)
from repro.generators.erdos_renyi import erdos_renyi_edges, generate_erdos_renyi
from repro.generators.poisson_stars import generate_poisson_stars, poisson_star_edges


class TestDegreeSequences:
    def test_power_law_sample_range(self):
        degrees = sample_power_law_degrees(10_000, 2.0, dmax=1000, rng=0)
        assert degrees.min() >= 1
        assert degrees.max() <= 1000

    def test_power_law_degree_one_fraction(self):
        degrees = sample_power_law_degrees(200_000, 2.0, dmax=100_000, rng=1)
        # P(d=1) = 1/zeta(2) ~ 0.608 for the (barely) truncated law
        assert np.mean(degrees == 1) == pytest.approx(0.608, abs=0.01)

    def test_zipf_mandelbrot_sample_shifts_head(self):
        plain = sample_power_law_degrees(100_000, 2.0, dmax=10_000, rng=2)
        shifted = sample_zipf_mandelbrot_degrees(100_000, 2.0, -0.8, dmax=10_000, rng=2)
        assert np.mean(shifted == 1) > np.mean(plain == 1)

    def test_zero_samples(self):
        assert sample_power_law_degrees(0, 2.0, rng=0).size == 0

    def test_make_sum_even_fixes_odd_sum(self):
        degrees = np.array([1, 1, 1])
        fixed = make_sum_even(degrees, rng=0)
        assert fixed.sum() % 2 == 0
        assert fixed.sum() == 4

    def test_make_sum_even_leaves_even_sum(self):
        degrees = np.array([2, 1, 1])
        np.testing.assert_array_equal(make_sum_even(degrees, rng=0), degrees)

    def test_make_sum_even_does_not_mutate_input(self):
        degrees = np.array([1, 1, 1])
        make_sum_even(degrees, rng=0)
        assert degrees.sum() == 3


class TestConfigurationModel:
    def test_edges_reference_valid_nodes(self):
        degrees = sample_power_law_degrees(500, 2.0, dmax=100, rng=3)
        edges = configuration_model_edges(degrees, rng=4)
        assert edges.min() >= 0
        assert edges.max() < 500

    def test_no_self_loops(self):
        degrees = np.array([3, 3, 3, 3, 2, 2])
        edges = configuration_model_edges(degrees, rng=5)
        assert np.all(edges[:, 0] != edges[:, 1])

    def test_no_duplicate_edges(self):
        degrees = sample_power_law_degrees(300, 1.8, dmax=50, rng=6)
        edges = configuration_model_edges(degrees, rng=7)
        assert np.unique(edges, axis=0).shape[0] == edges.shape[0]

    def test_degree_distribution_roughly_preserved(self):
        degrees = sample_power_law_degrees(20_000, 2.0, dmax=2000, rng=8)
        graph = generate_configuration_model(degrees, rng=9)
        realised = np.array([d for _, d in graph.degree()])
        # the fraction of degree-1 nodes survives the stub pairing almost exactly
        assert np.mean(realised == 1) == pytest.approx(np.mean(degrees == 1), abs=0.03)

    def test_graph_has_all_nodes(self):
        degrees = np.array([0, 1, 1, 2, 2])
        graph = generate_configuration_model(degrees, rng=10)
        assert graph.number_of_nodes() == 5

    def test_empty_sequence(self):
        edges = configuration_model_edges(np.array([], dtype=np.int64), rng=0)
        assert edges.shape == (0, 2)


class TestErdosRenyi:
    def test_p_zero_gives_no_edges(self):
        assert erdos_renyi_edges(100, 0.0, rng=0).shape == (0, 2)

    def test_p_one_gives_complete_graph(self):
        edges = erdos_renyi_edges(20, 1.0, rng=0)
        assert edges.shape[0] == 20 * 19 // 2

    def test_edge_count_matches_expectation_dense_path(self):
        n, p = 400, 0.05
        edges = erdos_renyi_edges(n, p, rng=1)
        expected = p * n * (n - 1) / 2
        assert edges.shape[0] == pytest.approx(expected, rel=0.1)

    def test_edge_count_matches_expectation_sparse_path(self):
        n, p = 20_000, 2e-5
        edges = erdos_renyi_edges(n, p, rng=2)
        expected = p * n * (n - 1) / 2
        assert edges.shape[0] == pytest.approx(expected, rel=0.15)

    def test_sparse_path_edges_valid(self):
        n = 10_000
        edges = erdos_renyi_edges(n, 5e-5, rng=3)
        assert edges.min() >= 0
        assert edges.max() < n
        assert np.all(edges[:, 0] < edges[:, 1])
        assert np.unique(edges, axis=0).shape[0] == edges.shape[0]

    def test_graph_wrapper_node_count(self):
        graph = generate_erdos_renyi(50, 0.1, rng=4)
        assert graph.number_of_nodes() == 50

    def test_mean_degree_poisson_like(self):
        graph = generate_erdos_renyi(2000, 0.005, rng=5)
        degrees = np.array([d for _, d in graph.degree()])
        assert degrees.mean() == pytest.approx(0.005 * 1999, rel=0.1)


class TestPoissonStars:
    def test_edge_and_node_counts_consistent(self):
        batch = poisson_star_edges(1000, 2.0, rng=0)
        assert batch.n_nodes == 1000 + batch.leaf_counts.sum()
        assert batch.edges.shape[0] == batch.leaf_counts.sum()

    def test_mean_leaf_count_matches_lambda(self):
        batch = poisson_star_edges(50_000, 3.0, rng=1)
        assert batch.leaf_counts.mean() == pytest.approx(3.0, rel=0.02)

    def test_isolated_fraction_matches_poisson_zero_probability(self):
        lam = 1.5
        batch = poisson_star_edges(50_000, lam, rng=2)
        assert batch.n_isolated / 50_000 == pytest.approx(np.exp(-lam), rel=0.05)

    def test_single_edge_star_fraction(self):
        lam = 1.5
        batch = poisson_star_edges(50_000, lam, rng=3)
        assert batch.n_single_edge_stars / 50_000 == pytest.approx(lam * np.exp(-lam), rel=0.05)

    def test_zero_stars(self):
        batch = poisson_star_edges(0, 2.0, rng=4)
        assert batch.n_nodes == 0
        assert batch.edges.shape == (0, 2)

    def test_graph_excludes_isolated_by_default(self):
        graph = generate_poisson_stars(2000, 0.5, rng=5)
        assert all(d >= 1 for _, d in graph.degree())

    def test_graph_keeps_isolated_when_requested(self):
        graph = generate_poisson_stars(2000, 0.5, keep_isolated=True, rng=6)
        isolated = [n for n, d in graph.degree() if d == 0]
        assert len(isolated) > 0

    def test_components_are_stars(self):
        graph = generate_poisson_stars(500, 2.0, rng=7)
        for component in nx.connected_components(graph):
            sub = graph.subgraph(component)
            # a star on k nodes has k-1 edges and max degree k-1
            assert sub.number_of_edges() == sub.number_of_nodes() - 1

    def test_lambda_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            poisson_star_edges(10, 30.0, rng=0)
