"""Smoke test: every example script must run clean at tiny sizes.

The examples are the executable half of the documentation — README and the
docs site both point at them — so they are executed here end to end (as
real subprocesses, the way a reader would run them) with
``REPRO_EXAMPLE_SCALE`` shrinking their workloads to smoke size.  A change
that breaks an example now breaks the test suite instead of rotting
silently in the docs.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

# every example runs as a real subprocess — deselected by `pytest -m "not slow"` (fast local loop)
pytestmark = pytest.mark.slow


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = Path(__file__).resolve().parent.parent / "src"

#: Workload shrink factor the examples honour (see the scaled() helper each
#: example defines); small enough that the whole sweep is smoke-test fast.
TINY_SCALE = "0.02"

EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_discovered():
    """The glob must see the examples; an empty sweep would pass vacuously."""
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "campaign_sweep.py", "scenario_drift.py"} <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean_at_tiny_scale(example):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_SCALE"] = TINY_SCALE
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(example)],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{example.name} failed (exit {result.returncode})\n"
        f"--- stdout ---\n{result.stdout[-2000:]}\n"
        f"--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{example.name} printed nothing"
