"""Unit tests for repro.streaming.weighted (byte-weighted quantities)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.pooling import pool_differential_cumulative
from repro.core.zm_fit import fit_zipf_mandelbrot
from repro.streaming.packet import PacketTrace
from repro.streaming.weighted import (
    WEIGHTED_QUANTITY_NAMES,
    byte_histograms,
    byte_image,
    weighted_quantities,
)


def _tiny_window() -> PacketTrace:
    """5->7 (100 + 200 bytes), 5->8 (50 bytes), 6->7 (300 bytes), one invalid."""
    return PacketTrace.from_arrays(
        src=[5, 5, 5, 6, 9],
        dst=[7, 7, 8, 7, 9],
        size=[100, 200, 50, 300, 999],
        valid=[True, True, True, True, False],
    )


class TestByteImage:
    def test_entries_accumulate_bytes(self):
        image = byte_image(_tiny_window())
        dense = image.to_dense()
        np.testing.assert_array_equal(dense, [[300, 50], [300, 0]])

    def test_total_equals_valid_bytes(self):
        window = _tiny_window()
        image = byte_image(window)
        assert image.matrix.sum() == window.total_bytes()

    def test_invalid_packets_excluded(self):
        image = byte_image(_tiny_window())
        assert 9 not in image.source_ids

    def test_empty_window(self):
        image = byte_image(PacketTrace.empty())
        assert image.matrix.shape == (0, 0)


class TestWeightedQuantities:
    def test_known_values(self):
        q = weighted_quantities(byte_image(_tiny_window()))
        assert sorted(q["source_bytes"].tolist()) == [300, 350]
        assert sorted(q["link_bytes"].tolist()) == [50, 300, 300]
        assert sorted(q["destination_bytes"].tolist()) == [50, 600]

    def test_all_names_present(self):
        q = weighted_quantities(byte_image(_tiny_window()))
        assert set(q) == set(WEIGHTED_QUANTITY_NAMES)

    def test_byte_conservation(self, small_trace):
        window = small_trace.slice(0, 20_000)
        image = byte_image(window)
        q = weighted_quantities(image)
        total = window.total_bytes()
        assert q["source_bytes"].sum() == total
        assert q["link_bytes"].sum() == total
        assert q["destination_bytes"].sum() == total

    def test_empty(self):
        q = weighted_quantities(byte_image(PacketTrace.empty()))
        assert all(v.size == 0 for v in q.values())


class TestByteHistograms:
    def test_bucketing_floor_is_one(self):
        hists = byte_histograms(byte_image(_tiny_window()), bucket_bytes=1024)
        # every byte total is below 1024, so all land in bucket 1
        assert hists["link_bytes"].dmax == 1
        assert hists["link_bytes"].total == 3

    def test_bucket_size_changes_support(self):
        hists = byte_histograms(byte_image(_tiny_window()), bucket_bytes=100)
        assert hists["source_bytes"].dmax == 4  # 350 bytes -> bucket 4

    def test_invalid_bucket_size_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            byte_histograms(byte_image(_tiny_window()), bucket_bytes=0)

    def test_weighted_pipeline_fits_like_packet_pipeline(self, small_trace):
        """The weighted extension runs through pooling + ZM fitting unchanged."""
        window = small_trace.slice(0, 60_000)
        hists = byte_histograms(byte_image(window), bucket_bytes=512)
        hist = hists["source_bytes"]
        pooled = pool_differential_cumulative(hist)
        assert pooled.probability_sum() == pytest.approx(1.0)
        fit = fit_zipf_mandelbrot(pooled, dmax=hist.dmax)
        assert np.isfinite(fit.alpha)
        assert fit.alpha > 0.5
