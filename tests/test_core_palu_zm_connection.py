"""Unit tests for repro.core.palu_zm_connection (Equation 5 / Figure 4)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.palu_zm_connection import (
    FIG4_PANELS,
    curve_family,
    delta_from_model,
    palu_zm_differential_cumulative,
    palu_zm_probability,
    palu_zm_unnormalized,
    u_over_c_from_delta,
    zm_convergence_error,
)
from repro.core.zeta import riemann_zeta


class TestCoupling:
    def test_u_over_c_formula(self):
        assert u_over_c_from_delta(2.0, -0.5) == pytest.approx(0.5**-2.0 - 1.0)

    def test_negative_delta_gives_positive_coupling(self):
        assert u_over_c_from_delta(2.0, -0.5) > 0

    def test_positive_delta_gives_negative_coupling(self):
        assert u_over_c_from_delta(2.0, 1.0) < 0

    def test_zero_delta_gives_zero_coupling(self):
        assert u_over_c_from_delta(2.0, 0.0) == pytest.approx(0.0)

    def test_rejects_delta_at_minus_one(self):
        with pytest.raises(ValueError):
            u_over_c_from_delta(2.0, -1.0)


class TestDeltaFromModel:
    def test_inverts_the_paper_relation(self):
        # (1+δ)^{-α} = (U/C) e^{-λp} ζ(α) p^{-α} + 1
        C, U, lam, p, alpha = 0.5, 0.1, 2.0, 0.5, 2.0
        delta = delta_from_model(C, U, lam, p, alpha)
        lhs = (1.0 + delta) ** (-alpha)
        rhs = (U / C) * math.exp(-lam * p) * riemann_zeta(alpha) * p ** (-alpha) + 1.0
        assert lhs == pytest.approx(rhs)

    def test_delta_is_negative_when_unattached_present(self):
        # any positive U makes the rhs exceed 1, forcing δ < 0
        assert delta_from_model(0.5, 0.1, 2.0, 0.5, 2.0) < 0

    def test_no_unattached_gives_zero_delta(self):
        assert delta_from_model(0.5, 0.0, 2.0, 0.5, 2.0) == pytest.approx(0.0)

    def test_more_unattached_means_more_negative_delta(self):
        small = delta_from_model(0.5, 0.05, 2.0, 0.5, 2.0)
        large = delta_from_model(0.5, 0.30, 2.0, 0.5, 2.0)
        assert large < small


class TestEquationFive:
    def test_formula_at_specific_point(self):
        d = np.array([3.0])
        alpha, delta, r = 2.0, -0.5, 2.0
        expected = 3.0**-2.0 + r ** (1 - 3.0) * ((1 - 0.5) ** -2.0 - 1.0)
        assert palu_zm_unnormalized(d, alpha, delta, r)[0] == pytest.approx(expected)

    def test_degree_one_value_independent_of_r(self):
        # at d = 1 the geometric factor is 1, so PALU(1) = 1 + ((1+δ)^{-α} - 1) = (1+δ)^{-α}
        for r in (1.1, 2.0, 10.0):
            value = palu_zm_unnormalized(np.array([1.0]), 2.0, -0.5, r)[0]
            assert value == pytest.approx(0.5**-2.0)

    def test_rejects_r_at_or_below_one(self):
        with pytest.raises(ValueError):
            palu_zm_unnormalized(np.array([1.0]), 2.0, -0.5, 1.0)

    def test_rejects_degrees_below_one(self):
        with pytest.raises(ValueError):
            palu_zm_unnormalized(np.array([0.5]), 2.0, -0.5, 2.0)

    def test_probability_normalised(self):
        p = palu_zm_probability(10_000, 2.0, -0.75, 3.0)
        assert p.sum() == pytest.approx(1.0)
        assert np.all(p >= 0)

    def test_positive_delta_head_clipped_not_negative(self):
        # with δ > 0 the coupling is negative; small d can dip below zero in
        # the raw formula and must be clipped
        p = palu_zm_probability(1000, 2.25, 0.6, 1.05)
        assert np.all(p >= 0)

    def test_pooled_curve_conserves_probability(self):
        pooled = palu_zm_differential_cumulative(2**14, 2.0, -0.75, 3.0)
        assert pooled.probability_sum() == pytest.approx(1.0)


class TestConvergenceToZM:
    @pytest.mark.parametrize("alpha,delta,r_values", FIG4_PANELS, ids=lambda v: str(v))
    def test_error_decreases_along_paper_r_sweeps(self, alpha, delta, r_values):
        errors = [zm_convergence_error(alpha, delta, r, dmax=5000) for r in r_values]
        # the family tends toward ZM: the last r is much closer than the first
        assert errors[-1] < errors[0]
        assert errors[-1] < 0.05

    def test_tail_matches_zm_regardless_of_r(self):
        # for large d the geometric term vanishes and both curves are d^{-α}
        p_palu = palu_zm_probability(5000, 2.0, -0.75, 1.5)
        ratio = p_palu[2000] / p_palu[1000]
        assert ratio == pytest.approx((2001 / 1001) ** -2.0, rel=1e-2)


class TestCurveFamily:
    def test_family_rows_match_requested_r(self):
        zm, curves = curve_family(2.0, -0.75, (1.05, 3.0, 35.0), dmax=5000)
        assert [c.r for c in curves] == [1.05, 3.0, 35.0]
        assert zm.probability_sum() == pytest.approx(1.0)

    def test_error_monotone_within_family(self):
        _, curves = curve_family(2.5, -0.75, (1.01, 1.2, 5.0, 70.0), dmax=5000)
        errors = [c.zm_error for c in curves]
        assert errors[-1] < errors[0]

    def test_as_row_keys(self):
        _, curves = curve_family(2.0, -0.75, (2.0,), dmax=1000)
        assert {"alpha", "delta", "r", "log_mse_vs_ZM", "D(d=1)"} <= set(curves[0].as_row())

    def test_paper_panel_constants_are_well_formed(self):
        assert len(FIG4_PANELS) == 5
        for alpha, delta, r_values in FIG4_PANELS:
            assert 1.0 < alpha < 3.0
            assert -1.0 < delta < 0.0
            assert all(r > 1.0 for r in r_values)
            assert list(r_values) == sorted(r_values)
