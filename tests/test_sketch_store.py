"""Sketch payloads through the content-addressed result store.

Sketch-mode campaign cells persist a :class:`~repro.scenarios.run.ScenarioRun`
whose analysis carries a merged :class:`~repro.streaming.sketch.WindowSketch`
and its error bounds.  These tests pin the storage contract for that payload:

* the sketch round-trips the store bit-identically (pickle + gzip with
  ``mtime=0``),
* recomputing the same cell serializes to the **same payload digest** —
  the store's files are as content-addressed as its keys, sketch included,
* a torn or corrupted sketch payload reads as *missing* and a resuming
  campaign recomputes it, never crashes on it.
"""

from __future__ import annotations

import pytest

from repro.campaigns.runner import run_campaign
from repro.campaigns.spec import Campaign
from repro.campaigns.store import ResultStore
from repro.scenarios import analyze_scenario


def _sketch_campaign() -> Campaign:
    return Campaign(
        name="sketchy",
        scenarios=("stationary",),
        seeds=(0,),
        n_valids=(400,),
        modes=("sketch",),
        detectors=("ewma",),
    )


@pytest.fixture()
def populated(tmp_path):
    campaign = _sketch_campaign()
    run = run_campaign(campaign, tmp_path)
    assert run.n_computed == 1
    (spec,) = campaign.cells()
    return ResultStore(tmp_path), spec


class TestSketchRoundTrip:
    def test_sketch_and_bounds_survive_the_store(self, populated):
        store, spec = populated
        loaded = store.get(spec.key)
        assert loaded.analysis.mode == "sketch"
        fresh = analyze_scenario(
            spec.scenario, spec.n_valid, seed=spec.seed, detectors=spec.detectors,
            keep_windows=False, mode="sketch", sketch=spec.sketch,
        )
        assert loaded.analysis.sketch == fresh.analysis.sketch
        assert loaded.analysis.bounds == fresh.analysis.bounds
        assert loaded.detection.alarms == fresh.detection.alarms

    def test_payload_digest_is_stable_across_independent_runs(self, tmp_path):
        """Same cell, two cold computations -> byte-identical stored payload."""
        digests = []
        for sub in ("a", "b"):
            campaign = _sketch_campaign()
            run_campaign(campaign, tmp_path / sub)
            (spec,) = campaign.cells()
            record = ResultStore(tmp_path / sub).record(spec.key)
            digests.append((spec.key, record["payload_sha256"]))
        assert digests[0] == digests[1]

    def test_exact_and_sketch_cells_never_share_a_key(self, tmp_path):
        campaign = Campaign(
            name="both", scenarios=("stationary",), n_valids=(400,),
            modes=("exact", "sketch"),
        )
        keys = campaign.unique_keys()
        assert len(keys) == 2


class TestTornSketchPayloads:
    def test_truncated_payload_reads_missing_and_resume_recomputes(self, populated):
        store, spec = populated
        path = store._object_path(spec.key)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])

        fresh_store = ResultStore(store.root)  # new instance: no verify cache
        assert spec.key not in fresh_store
        with pytest.raises(KeyError):
            fresh_store.get(spec.key)

        resumed = run_campaign(_sketch_campaign(), store.root)
        assert resumed.n_computed == 1  # the torn cell was recomputed
        assert ResultStore(store.root).get(spec.key).analysis.mode == "sketch"

    def test_same_size_corruption_is_caught_by_the_digest(self, populated):
        store, spec = populated
        path = store._object_path(spec.key)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert spec.key not in ResultStore(store.root)
