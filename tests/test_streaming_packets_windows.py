"""Unit tests for repro.streaming.packet, window, and trace_io."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.packet import PACKET_DTYPE, PacketTrace, concatenate_traces
from repro.streaming.trace_io import load_trace, save_trace
from repro.streaming.window import count_windows, iter_windows, window_boundaries


def _trace_with_invalid(n: int = 100, every: int = 10) -> PacketTrace:
    """A trace where every *every*-th packet is invalid."""
    valid = np.ones(n, dtype=bool)
    valid[::every] = False
    return PacketTrace.from_arrays(
        src=np.arange(n) % 7,
        dst=(np.arange(n) + 1) % 7,
        valid=valid,
    )


class TestPacketTrace:
    def test_from_arrays_defaults(self):
        trace = PacketTrace.from_arrays([1, 2, 3], [4, 5, 6])
        assert trace.n_packets == 3
        assert trace.n_valid == 3
        assert trace.packets.dtype == PACKET_DTYPE
        np.testing.assert_array_equal(trace.packets["time"], [0.0, 1.0, 2.0])

    def test_from_arrays_shape_mismatch(self):
        with pytest.raises(ValueError):
            PacketTrace.from_arrays([1, 2], [3])

    def test_wrong_dtype_rejected(self):
        with pytest.raises(TypeError):
            PacketTrace(np.zeros(5))

    def test_empty_trace(self):
        trace = PacketTrace.empty()
        assert len(trace) == 0
        assert trace.duration == 0.0
        assert trace.unique_endpoints().size == 0

    def test_valid_only_filters(self):
        trace = _trace_with_invalid(100, 10)
        assert trace.n_valid == 90
        assert trace.valid_only().n_packets == 90

    def test_unique_endpoints(self):
        trace = PacketTrace.from_arrays([1, 1, 2], [5, 6, 5])
        np.testing.assert_array_equal(trace.unique_endpoints(), [1, 2, 5, 6])

    def test_slice_is_view_semantics(self):
        trace = _trace_with_invalid(50)
        window = trace.slice(10, 20)
        assert window.n_packets == 10
        np.testing.assert_array_equal(window.sources, trace.sources[10:20])

    def test_duration(self):
        trace = PacketTrace.from_arrays([1, 2], [2, 3], time=[0.5, 2.0])
        assert trace.duration == pytest.approx(1.5)

    def test_total_bytes_counts_valid_only(self):
        trace = PacketTrace.from_arrays(
            [1, 2], [2, 3], size=[100, 200], valid=[True, False]
        )
        assert trace.total_bytes() == 100

    def test_iter_chunks(self):
        trace = _trace_with_invalid(25)
        chunks = list(trace.iter_chunks(10))
        assert [c.n_packets for c in chunks] == [10, 10, 5]

    def test_iter_chunks_invalid_size(self):
        with pytest.raises(ValueError):
            list(_trace_with_invalid(5).iter_chunks(0))

    def test_concatenate(self):
        a = PacketTrace.from_arrays([1], [2])
        b = PacketTrace.from_arrays([3], [4])
        combined = concatenate_traces([a, b])
        assert combined.n_packets == 2
        np.testing.assert_array_equal(combined.sources, [1, 3])

    def test_concatenate_empty_list(self):
        assert concatenate_traces([]).n_packets == 0


class TestWindowing:
    def test_count_windows(self):
        trace = _trace_with_invalid(100, 10)  # 90 valid packets
        assert count_windows(trace, 30) == 3
        assert count_windows(trace, 91) == 0

    def test_each_window_has_exact_valid_count(self):
        trace = _trace_with_invalid(200, 7)
        for window in iter_windows(trace, 40):
            assert window.n_valid == 40

    def test_windows_are_contiguous_and_ordered(self):
        trace = _trace_with_invalid(200, 9)
        boundaries = window_boundaries(trace, 50)
        assert boundaries[0] == 0
        assert np.all(np.diff(boundaries) > 0)

    def test_partial_window_dropped(self):
        trace = _trace_with_invalid(100, 10)  # 90 valid
        windows = list(iter_windows(trace, 40))
        assert len(windows) == 2
        total_valid = sum(w.n_valid for w in windows)
        assert total_valid == 80

    def test_all_valid_trace_windows_cover_everything(self):
        trace = PacketTrace.from_arrays(np.arange(90), np.arange(90) + 1)
        windows = list(iter_windows(trace, 30))
        assert len(windows) == 3
        assert sum(w.n_packets for w in windows) == 90

    def test_empty_trace(self):
        assert list(iter_windows(PacketTrace.empty(), 10)) == []

    def test_invalid_nv_rejected(self):
        with pytest.raises((ValueError, TypeError)):
            list(iter_windows(_trace_with_invalid(10), 0))


class TestTraceIO:
    def test_round_trip(self, tmp_path):
        trace = _trace_with_invalid(64, 8)
        path = save_trace(trace, tmp_path / "trace.npz")
        loaded = load_trace(path)
        np.testing.assert_array_equal(loaded.packets, trace.packets)

    def test_round_trip_without_npz_suffix(self, tmp_path):
        trace = _trace_with_invalid(16)
        path = save_trace(trace, tmp_path / "capture")
        assert str(path).endswith(".npz")
        loaded = load_trace(path)
        assert loaded.n_packets == 16

    def test_creates_parent_directories(self, tmp_path):
        trace = _trace_with_invalid(8)
        path = save_trace(trace, tmp_path / "nested" / "dir" / "t.npz")
        assert load_trace(path).n_packets == 8

    def test_bad_version_rejected(self, tmp_path):
        trace = _trace_with_invalid(8)
        path = save_trace(trace, tmp_path / "t.npz")
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)
