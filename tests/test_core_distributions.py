"""Unit tests for repro.core.distributions."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.distributions import (
    DiscretePowerLaw,
    GeometricTailDistribution,
    PALUDegreeDistribution,
    PoissonDegreeDistribution,
    ZipfMandelbrotDistribution,
)
from repro.core.zeta import truncated_hurwitz, truncated_zeta

ALL_DISTS = [
    DiscretePowerLaw(2.0, 500),
    ZipfMandelbrotDistribution(2.0, -0.5, 500),
    PoissonDegreeDistribution(3.0, 500),
    GeometricTailDistribution(2.0, 500),
    PALUDegreeDistribution(c=0.3, l=0.4, u=0.05, alpha=2.0, Lambda=2.5, dmax=500),
]


@pytest.mark.parametrize("dist", ALL_DISTS, ids=lambda d: type(d).__name__)
class TestCommonInterface:
    def test_pmf_sums_to_one(self, dist):
        assert dist.probabilities().sum() == pytest.approx(1.0, abs=1e-12)

    def test_pmf_nonnegative(self, dist):
        assert np.all(dist.probabilities() >= 0)

    def test_cdf_final_value_is_one(self, dist):
        assert dist.cdf(dist.dmax) == pytest.approx(1.0)

    def test_cdf_monotone(self, dist):
        cdf = dist.cdf(dist.support())
        assert np.all(np.diff(cdf) >= -1e-15)

    def test_pmf_zero_outside_support(self, dist):
        assert dist.pmf(0) == 0.0
        assert dist.pmf(dist.dmax + 1) == 0.0

    def test_sf_complements_cdf(self, dist):
        d = 17
        assert dist.sf(d) == pytest.approx(1.0 - dist.cdf(d))

    def test_sampling_within_support(self, dist):
        sample = dist.sample(1000, rng=0)
        assert sample.min() >= 1
        assert sample.max() <= dist.dmax

    def test_sampling_reproducible(self, dist):
        a = dist.sample(100, rng=7)
        b = dist.sample(100, rng=7)
        np.testing.assert_array_equal(a, b)

    def test_sample_mean_close_to_model_mean(self, dist):
        sample = dist.sample(200_000, rng=3)
        assert sample.mean() == pytest.approx(dist.mean(), rel=0.05)

    def test_mean_and_var_consistent_with_pmf(self, dist):
        d = dist.support().astype(float)
        p = dist.probabilities()
        assert dist.mean() == pytest.approx(float(np.sum(d * p)))
        assert dist.var() == pytest.approx(float(np.sum(d**2 * p)) - dist.mean() ** 2, abs=1e-10)

    def test_scalar_pmf_returns_float(self, dist):
        assert isinstance(dist.pmf(3), float)

    def test_vector_pmf_shape(self, dist):
        out = dist.pmf(np.array([1, 2, 3, 4]))
        assert out.shape == (4,)


class TestDiscretePowerLaw:
    def test_pmf_matches_formula(self):
        dist = DiscretePowerLaw(2.5, 1000)
        norm = truncated_zeta(2.5, 1000)
        assert dist.pmf(7) == pytest.approx(7**-2.5 / norm)

    def test_normalization_property(self):
        dist = DiscretePowerLaw(1.8, 500)
        assert dist.normalization() == pytest.approx(truncated_zeta(1.8, 500))

    def test_heavier_tail_for_smaller_alpha(self):
        light = DiscretePowerLaw(3.0, 10_000)
        heavy = DiscretePowerLaw(1.6, 10_000)
        assert heavy.sf(100) > light.sf(100)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            DiscretePowerLaw(0.0, 100)


class TestZipfMandelbrot:
    def test_pmf_matches_formula(self):
        dist = ZipfMandelbrotDistribution(2.0, 0.5, 200)
        norm = truncated_hurwitz(2.0, 0.5, 200)
        assert dist.pmf(3) == pytest.approx((3 + 0.5) ** -2.0 / norm)

    def test_negative_delta_raises_degree_one_probability(self):
        base = ZipfMandelbrotDistribution(2.0, 0.0, 1000)
        shifted = ZipfMandelbrotDistribution(2.0, -0.8, 1000)
        assert shifted.pmf(1) > base.pmf(1)

    def test_positive_delta_lowers_degree_one_probability(self):
        base = ZipfMandelbrotDistribution(2.0, 0.0, 1000)
        shifted = ZipfMandelbrotDistribution(2.0, 2.0, 1000)
        assert shifted.pmf(1) < base.pmf(1)

    def test_delta_zero_equals_power_law(self):
        zm = ZipfMandelbrotDistribution(2.2, 0.0, 300)
        pl = DiscretePowerLaw(2.2, 300)
        np.testing.assert_allclose(zm.probabilities(), pl.probabilities(), rtol=1e-12)

    def test_rejects_delta_at_minus_one(self):
        with pytest.raises(ValueError):
            ZipfMandelbrotDistribution(2.0, -1.0, 100)


class TestPoissonDegree:
    def test_matches_conditional_poisson(self):
        from scipy.stats import poisson

        lam, dmax = 3.0, 60
        dist = PoissonDegreeDistribution(lam, dmax)
        d = np.arange(1, dmax + 1)
        raw = poisson.pmf(d, lam)
        expected = raw / raw.sum()
        np.testing.assert_allclose(dist.probabilities(), expected, rtol=1e-9)

    def test_mean_close_to_lambda_for_large_lambda(self):
        # conditioning on d >= 1 barely matters when lambda is large
        dist = PoissonDegreeDistribution(8.0, 200)
        assert dist.mean() == pytest.approx(8.0, rel=1e-3)

    def test_rejects_nonpositive_lambda(self):
        with pytest.raises(ValueError):
            PoissonDegreeDistribution(0.0, 100)


class TestGeometricTail:
    def test_ratio_between_consecutive_degrees(self):
        dist = GeometricTailDistribution(3.0, 100)
        assert dist.pmf(5) / dist.pmf(4) == pytest.approx(1 / 3.0)

    def test_rejects_r_at_or_below_one(self):
        with pytest.raises(ValueError):
            GeometricTailDistribution(1.0, 100)


class TestPALUDegreeDistribution:
    def test_degree_one_collects_all_three_pieces(self):
        dist = PALUDegreeDistribution(c=0.2, l=0.5, u=0.1, alpha=2.0, Lambda=2.0, dmax=1000)
        # unnormalised weight at d=1 is c + l + u; compare via ratio to d=2 weight
        w1 = 0.2 + 0.5 + 0.1
        w2 = 0.2 * 2**-2.0 + 0.1 * (2.0 / 2) ** 2
        assert dist.pmf(1) / dist.pmf(2) == pytest.approx(w1 / w2, rel=1e-9)

    def test_tail_approaches_pure_power_law(self):
        dist = PALUDegreeDistribution(c=0.3, l=0.3, u=0.1, alpha=2.0, Lambda=2.0, dmax=10_000)
        tail = dist.tail_distribution()
        # beyond d ~ 20 the Poisson factor is negligible: ratios should match
        ratio_mixture = dist.pmf(200) / dist.pmf(100)
        ratio_power = tail.pmf(200) / tail.pmf(100)
        assert ratio_mixture == pytest.approx(ratio_power, rel=1e-6)

    def test_component_fractions_sum_to_one(self):
        dist = PALUDegreeDistribution(c=0.3, l=0.4, u=0.05, alpha=2.0, Lambda=2.5, dmax=500)
        fractions = dist.component_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_degree_one_fraction_matches_pmf(self):
        dist = PALUDegreeDistribution(c=0.3, l=0.4, u=0.05, alpha=2.0, Lambda=2.5, dmax=500)
        assert dist.degree_one_fraction() == pytest.approx(dist.pmf(1))

    def test_zero_lambda_means_no_unattached_tail(self):
        dist = PALUDegreeDistribution(c=0.5, l=0.2, u=0.1, alpha=2.0, Lambda=0.0, dmax=100)
        # for d >= 2 only the core term remains
        pl = DiscretePowerLaw(2.0, 100)
        ratio_mixture = dist.pmf(5) / dist.pmf(3)
        ratio_power = pl.pmf(5) / pl.pmf(3)
        assert ratio_mixture == pytest.approx(ratio_power, rel=1e-9)

    def test_requires_some_positive_weight(self):
        with pytest.raises(ValueError):
            PALUDegreeDistribution(c=0.0, l=0.0, u=0.0, alpha=2.0, Lambda=1.0, dmax=100)

    def test_more_unattached_weight_fattens_small_degrees(self):
        low_u = PALUDegreeDistribution(c=0.4, l=0.1, u=0.01, alpha=2.0, Lambda=4.0, dmax=5000)
        high_u = PALUDegreeDistribution(c=0.4, l=0.1, u=0.2, alpha=2.0, Lambda=4.0, dmax=5000)
        # probability of degrees 2..6 relative to the tail grows with u
        assert (high_u.cdf(6) - high_u.cdf(1)) > (low_u.cdf(6) - low_u.cdf(1))
