"""Unit tests for repro.analysis.moments (Λ moment equation ingredients)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy.stats import poisson

from repro.analysis.moments import (
    lambda_moment_rhs,
    poisson_moment_rhs,
    residual_moment_ratio,
    residual_moment_sums,
)


def _mixture_fractions(c: float, u: float, alpha: float, m: float, dmax: int) -> np.ndarray:
    d = np.arange(1, dmax + 1, dtype=np.float64)
    f = c * d ** (-alpha)
    f[1:] += u * poisson.pmf(d[1:], m) / math.exp(-m)
    return f


class TestResidualMomentSums:
    def test_pure_power_law_residuals_are_zero(self):
        d = np.arange(1, 1001, dtype=np.float64)
        f = 0.5 * d ** (-2.0)
        weighted, plain = residual_moment_sums(f, 0.5, 2.0)
        assert weighted == pytest.approx(0.0, abs=1e-12)
        assert plain == pytest.approx(0.0, abs=1e-12)

    def test_poisson_residual_sums_match_analytic_values(self):
        c, u, alpha, m = 0.4, 0.1, 2.0, 1.5
        f = _mixture_fractions(c, u, alpha, m, 500)
        weighted, plain = residual_moment_sums(f, c, alpha, d_min=2)
        # Σ_{d>=2} u m^d/d! = u (e^m - 1 - m);  Σ_{d>=2} d u m^d/d! = u m (e^m - 1)
        assert plain == pytest.approx(u * (math.expm1(m) - m), rel=1e-9)
        assert weighted == pytest.approx(u * m * math.expm1(m), rel=1e-9)

    def test_d_max_restriction(self):
        f = _mixture_fractions(0.4, 0.1, 2.0, 1.5, 500)
        _, plain_all = residual_moment_sums(f, 0.4, 2.0, d_min=2)
        _, plain_cut = residual_moment_sums(f, 0.4, 2.0, d_min=2, d_max=20)
        assert plain_cut <= plain_all + 1e-12
        assert plain_cut == pytest.approx(plain_all, rel=1e-6)  # Poisson mass beyond 20 is negligible

    def test_clip_negative_behaviour(self):
        d = np.arange(1, 101, dtype=np.float64)
        f = 0.5 * d ** (-2.0)
        # overstating c makes every residual negative; clipping keeps sums at zero
        weighted, plain = residual_moment_sums(f, 0.6, 2.0, clip_negative=True)
        assert weighted == 0.0 and plain == 0.0
        weighted_raw, plain_raw = residual_moment_sums(f, 0.6, 2.0, clip_negative=False)
        assert plain_raw < 0

    def test_rejects_bad_inputs(self):
        f = np.ones((2, 2))
        with pytest.raises(ValueError):
            residual_moment_sums(f, 0.1, 2.0)
        with pytest.raises(ValueError):
            residual_moment_sums(np.ones(10), 0.1, 2.0, d_min=0)
        with pytest.raises(ValueError):
            residual_moment_sums(np.ones(10), 0.1, 2.0, d_min=5, d_max=3)


class TestResidualMomentRatio:
    def test_ratio_matches_analytic_rhs(self):
        c, u, alpha, m = 0.4, 0.1, 2.0, 1.5
        f = _mixture_fractions(c, u, alpha, m, 500)
        ratio = residual_moment_ratio(f, c, alpha)
        assert ratio == pytest.approx(poisson_moment_rhs(m), rel=1e-9)

    def test_ratio_nan_when_no_residual(self):
        d = np.arange(1, 101, dtype=np.float64)
        f = 0.5 * d ** (-2.0)
        assert math.isnan(residual_moment_ratio(f, 0.5, 2.0))


class TestAnalyticRHS:
    def test_limit_at_zero_is_two(self):
        assert poisson_moment_rhs(0.0) == pytest.approx(2.0)

    def test_taylor_expansion_small_m(self):
        for m in (1e-4, 1e-3, 1e-2):
            assert poisson_moment_rhs(m) == pytest.approx(2.0 + m / 3.0, abs=1e-3)

    def test_strictly_increasing(self):
        values = [poisson_moment_rhs(m) for m in np.linspace(0, 10, 50)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_large_m_asymptote(self):
        # for large m the ratio approaches m (+1): g(m) = m(e^m-1)/(e^m-1-m) -> m
        assert poisson_moment_rhs(50.0) == pytest.approx(50.0, rel=0.05)

    def test_exact_form_formula(self):
        m = 2.3
        expected = m * math.expm1(m) / (math.expm1(m) - m)
        assert poisson_moment_rhs(m) == pytest.approx(expected)

    def test_lambda_moment_rhs_default_is_exact(self):
        assert lambda_moment_rhs(1.7) == pytest.approx(poisson_moment_rhs(1.7))

    def test_lambda_moment_rhs_paper_form(self):
        lam = 1.7
        expected = (lam + lam**2) / (math.expm1(lam) - lam)
        assert lambda_moment_rhs(lam, form="paper") == pytest.approx(expected)

    def test_paper_form_diverges_at_zero(self):
        assert lambda_moment_rhs(0.0, form="paper") == math.inf

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            lambda_moment_rhs(1.0, form="other")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            poisson_moment_rhs(-0.1)
