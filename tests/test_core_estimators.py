"""Unit tests for repro.core.estimators (log-log regression estimators)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.analysis.pooling import pool_differential_cumulative, pool_probability_vector
from repro.core.distributions import DiscretePowerLaw
from repro.core.estimators import (
    estimate_alpha_from_histogram_pooled,
    estimate_alpha_loglog,
    estimate_alpha_pooled,
    estimate_tail_intercept,
)


def _analytic_histogram(alpha: float, dmax: int, total: int = 10_000_000_000) -> DegreeHistogram:
    """Histogram whose counts follow the power law exactly (no sampling noise)."""
    d = np.arange(1, dmax + 1, dtype=np.float64)
    pmf = d ** (-alpha)
    pmf /= pmf.sum()
    counts = np.round(pmf * total).astype(np.int64)
    return DegreeHistogram.from_dense(counts)


class TestLogLogEstimator:
    @pytest.mark.parametrize("alpha", [1.6, 2.0, 2.5, 3.0])
    def test_recovers_alpha_on_analytic_data(self, alpha):
        hist = _analytic_histogram(alpha, 2000)
        est = estimate_alpha_loglog(hist, d_min=2)
        assert est.alpha == pytest.approx(alpha, abs=0.05)

    def test_slope_sign_convention(self):
        hist = _analytic_histogram(2.0, 1000)
        est = estimate_alpha_loglog(hist)
        assert est.slope == pytest.approx(-est.alpha)
        assert est.pooled is False

    def test_r_squared_near_one_for_exact_power_law(self):
        hist = _analytic_histogram(2.0, 1000)
        est = estimate_alpha_loglog(hist, d_min=2)
        assert est.r_squared > 0.999

    def test_degree_window_restriction(self):
        hist = _analytic_histogram(2.0, 1000)
        est = estimate_alpha_loglog(hist, d_min=10, d_max=100)
        assert est.n_points <= 91

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            estimate_alpha_loglog(degree_histogram([]))

    def test_single_degree_rejected(self):
        with pytest.raises(ValueError):
            estimate_alpha_loglog(degree_histogram([3, 3, 3]))


class TestPooledEstimator:
    @pytest.mark.parametrize("alpha", [1.8, 2.2, 2.8])
    def test_pooling_correction_applied(self, alpha):
        """Pooled slope is 1-α, and the estimator must undo that (Section IV-A)."""
        dist = DiscretePowerLaw(alpha, 2**18)
        pooled = pool_probability_vector(dist.probabilities())
        est = estimate_alpha_pooled(pooled, min_bin_index=5, max_bin_index=15)
        assert est.pooled is True
        assert est.alpha == pytest.approx(alpha, abs=0.08)
        assert est.slope == pytest.approx(1 - alpha, abs=0.08)

    def test_histogram_wrapper(self):
        hist = _analytic_histogram(2.0, 2**16)
        est = estimate_alpha_from_histogram_pooled(hist, min_bin_index=5, max_bin_index=14)
        assert est.alpha == pytest.approx(2.0, abs=0.1)

    def test_pooled_and_unpooled_agree(self):
        """Both estimators target the same underlying α despite different slopes."""
        hist = _analytic_histogram(2.4, 2**16)
        pooled_est = estimate_alpha_from_histogram_pooled(hist, min_bin_index=5, max_bin_index=14)
        raw_est = estimate_alpha_loglog(hist, d_min=32, d_max=16_384)
        assert pooled_est.alpha == pytest.approx(raw_est.alpha, abs=0.1)

    def test_too_few_bins_rejected(self):
        pooled = pool_differential_cumulative(degree_histogram([1, 1, 2, 3]))
        with pytest.raises(ValueError):
            estimate_alpha_pooled(pooled, min_bin_index=3)


class TestTailIntercept:
    def test_recovers_prefactor(self):
        alpha, dmax = 2.0, 5000
        hist = _analytic_histogram(alpha, dmax)
        c_true = 1.0 / np.sum(np.arange(1, dmax + 1, dtype=float) ** -alpha)
        c_est = estimate_tail_intercept(hist, alpha, d_min=10)
        assert c_est == pytest.approx(c_true, rel=0.05)

    def test_requires_tail_data(self):
        hist = degree_histogram([1, 1, 2, 2, 3])
        with pytest.raises(ValueError):
            estimate_tail_intercept(hist, 2.0, d_min=10)
