"""Property harness pinning the fused window kernel to the matrix oracle.

The fused sort-based kernel (:mod:`repro.streaming.kernel`) must be a pure
optimisation: for **every** window, :func:`repro.streaming.pipeline.analyze_window`
(kernel) and :func:`repro.streaming.pipeline.analyze_window_image` (the
sparse ``A_t`` route it replaced) must produce *exactly* equal aggregates
and all five Figure-1 histograms — integer-exact, not approximately.  The
hypothesis strategies below deliberately cover the adversarial corners:
empty windows, all-invalid windows, single-edge windows, duplicate-heavy
traffic, and endpoint ids at the 32-bit packing boundary (including ids
beyond it, which must take the oracle fallback and still agree).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.kernel import (
    KERNEL_MAX_ID,
    fused_products,
    image_products,
    packable,
    payload_columns,
    window_payload,
)
from repro.streaming.packet import PacketTrace
from repro.streaming.pipeline import (
    _analyze_payload_batch,
    analyze_window,
    analyze_window_image,
)

# -- strategies ---------------------------------------------------------------

#: Id pools that stress distinct kernel regimes.
_SMALL_IDS = st.integers(min_value=0, max_value=4)  # duplicate-heavy
_MEDIUM_IDS = st.integers(min_value=0, max_value=10_000)
_BOUNDARY_IDS = st.sampled_from(
    [0, 1, 2**31 - 1, 2**31, 2**32 - 2, KERNEL_MAX_ID]
)
_WIDE_IDS = st.integers(min_value=-5, max_value=2**40)  # exercises the fallback

_ID_POOLS = st.sampled_from([_SMALL_IDS, _MEDIUM_IDS, _BOUNDARY_IDS, _WIDE_IDS])


@st.composite
def windows(draw) -> PacketTrace:
    """An adversarial window: empty / all-invalid / duplicate-heavy / boundary ids."""
    n = draw(st.integers(min_value=0, max_value=120))
    ids = draw(_ID_POOLS)
    src = draw(st.lists(ids, min_size=n, max_size=n))
    dst = draw(st.lists(ids, min_size=n, max_size=n))
    valid = draw(
        st.one_of(
            st.just([True] * n),
            st.just([False] * n),
            st.lists(st.booleans(), min_size=n, max_size=n),
        )
    )
    return PacketTrace.from_arrays(
        np.asarray(src, dtype=np.int64),
        np.asarray(dst, dtype=np.int64),
        valid=np.asarray(valid, dtype=bool),
    )


def assert_products_equal(result, oracle) -> None:
    """Exact equality of aggregates and every histogram, dtypes included."""
    assert result.aggregates == oracle.aggregates
    assert set(result.histograms) == set(oracle.histograms) == set(QUANTITY_NAMES)
    for name in QUANTITY_NAMES:
        mine, theirs = result.histograms[name], oracle.histograms[name]
        assert mine.degrees.dtype == theirs.degrees.dtype == np.int64
        assert mine.counts.dtype == theirs.counts.dtype == np.int64
        assert np.array_equal(mine.degrees, theirs.degrees), name
        assert np.array_equal(mine.counts, theirs.counts), name


# -- kernel ≡ oracle ----------------------------------------------------------


class TestKernelEquivalence:
    @given(window=windows())
    @settings(max_examples=200)
    def test_kernel_matches_image_oracle(self, window):
        assert_products_equal(analyze_window(window), analyze_window_image(window))

    @given(window=windows())
    @settings(max_examples=100)
    def test_payload_roundtrip_matches_direct_analysis(self, window):
        payload = window_payload(window)
        (pairs,) = [_analyze_payload_batch((payload,))]
        result, pooled = pairs[0]
        direct = analyze_window(window)
        assert_products_equal(result, direct)
        # worker-side pooling must be bitwise what the fold would compute
        from repro.analysis.pooling import pool_differential_cumulative

        for name in QUANTITY_NAMES:
            expected = pool_differential_cumulative(direct.histograms[name])
            assert np.array_equal(pooled[name].bin_edges, expected.bin_edges)
            assert np.array_equal(pooled[name].values, expected.values)
            assert pooled[name].total == expected.total

    def test_empty_window(self):
        window = PacketTrace.empty()
        result = analyze_window(window)
        assert result.aggregates.valid_packets == 0
        assert_products_equal(result, analyze_window_image(window))

    def test_all_invalid_window(self):
        window = PacketTrace.from_arrays([1, 2, 3], [4, 5, 6], valid=[False] * 3)
        result = analyze_window(window)
        assert result.aggregates.valid_packets == 0
        assert all(h.total == 0 for h in result.histograms.values())
        assert_products_equal(result, analyze_window_image(window))

    def test_single_edge_window(self):
        window = PacketTrace.from_arrays([7] * 50, [9] * 50)
        result = analyze_window(window)
        assert result.aggregates.valid_packets == 50
        assert result.aggregates.unique_links == 1
        assert result.histograms["link_packets"].degrees.tolist() == [50]
        assert_products_equal(result, analyze_window_image(window))

    def test_boundary_ids_use_fused_path(self):
        src = np.array([0, KERNEL_MAX_ID, KERNEL_MAX_ID, 0], dtype=np.int64)
        dst = np.array([KERNEL_MAX_ID, 0, KERNEL_MAX_ID, 0], dtype=np.int64)
        assert packable(src, dst)
        agg, hists = fused_products(src, dst)
        oracle_agg, oracle_hists = image_products(src, dst)
        assert agg == oracle_agg
        for name in QUANTITY_NAMES:
            assert np.array_equal(hists[name].counts, oracle_hists[name].counts)

    @pytest.mark.parametrize("bad_id", [-1, 2**32, 2**40])
    def test_out_of_range_ids_fall_back_and_agree(self, bad_id):
        window = PacketTrace.from_arrays([bad_id, 3, 3], [5, bad_id, 5])
        src = window.packets["src"]
        dst = window.packets["dst"]
        assert not packable(src, dst)
        assert_products_equal(analyze_window(window), analyze_window_image(window))


# -- payload shape ------------------------------------------------------------


class TestWindowPayload:
    def test_all_valid_elides_mask(self):
        window = PacketTrace.from_arrays([1, 2], [3, 4])
        src, dst, valid = window_payload(window)
        assert valid is None
        assert src.flags["C_CONTIGUOUS"] and dst.flags["C_CONTIGUOUS"]
        out_src, out_dst = payload_columns((src, dst, valid))
        assert np.array_equal(out_src, [1, 2]) and np.array_equal(out_dst, [3, 4])

    def test_mixed_validity_ships_mask_and_filters_in_worker(self):
        window = PacketTrace.from_arrays([1, 2, 3], [4, 5, 6], valid=[True, False, True])
        payload = window_payload(window)
        assert payload[2] is not None
        out_src, out_dst = payload_columns(payload)
        assert out_src.tolist() == [1, 3] and out_dst.tolist() == [4, 6]

    def test_payload_has_no_time_or_size(self):
        window = PacketTrace.from_arrays([1], [2])
        payload = window_payload(window)
        assert len(payload) == 3  # src, dst, valid — nothing else ships
