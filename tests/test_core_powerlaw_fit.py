"""Unit tests for repro.core.powerlaw_fit (single-exponent baseline)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import degree_histogram
from repro.core.distributions import DiscretePowerLaw, ZipfMandelbrotDistribution
from repro.core.powerlaw_fit import (
    fit_discrete_mle,
    fit_power_law,
    mle_score_equation,
    select_dmin,
)


@pytest.fixture(scope="module")
def powerlaw_sample():
    dist = DiscretePowerLaw(2.3, 100_000)
    return degree_histogram(dist.sample(300_000, rng=11))


class TestDiscreteMLE:
    def test_recovers_alpha(self, powerlaw_sample):
        fit = fit_discrete_mle(powerlaw_sample)
        assert fit.alpha == pytest.approx(2.3, abs=0.05)

    @pytest.mark.parametrize("alpha_true", [1.6, 2.0, 2.8])
    def test_recovers_alpha_across_range(self, alpha_true):
        hist = degree_histogram(DiscretePowerLaw(alpha_true, 50_000).sample(200_000, rng=3))
        fit = fit_discrete_mle(hist)
        assert fit.alpha == pytest.approx(alpha_true, abs=0.06)

    def test_loglik_is_maximised_at_fit(self, powerlaw_sample):
        fit = fit_discrete_mle(powerlaw_sample)
        perturbed_low = fit_discrete_mle(powerlaw_sample, alpha_bounds=(fit.alpha - 0.5, fit.alpha - 0.3))
        assert fit.log_likelihood >= perturbed_low.log_likelihood

    def test_score_equation_near_zero_at_mle(self, powerlaw_sample):
        fit = fit_discrete_mle(powerlaw_sample, d_min=1)
        degrees = powerlaw_sample.degrees.astype(float)
        counts = powerlaw_sample.counts.astype(float)
        mean_log = float(np.dot(counts, np.log(degrees)) / counts.sum())
        assert abs(mle_score_equation(fit.alpha, mean_log)) < 5e-3

    def test_d_min_tail_only(self, powerlaw_sample):
        fit = fit_discrete_mle(powerlaw_sample, d_min=5)
        assert fit.d_min == 5
        assert fit.n_tail < powerlaw_sample.total

    def test_empty_tail_rejected(self, powerlaw_sample):
        with pytest.raises(ValueError):
            fit_discrete_mle(powerlaw_sample, d_min=10_000_000)

    def test_ks_in_unit_interval(self, powerlaw_sample):
        fit = fit_discrete_mle(powerlaw_sample)
        assert 0.0 <= fit.ks <= 1.0

    def test_model_round_trip(self, powerlaw_sample):
        fit = fit_discrete_mle(powerlaw_sample)
        model = fit.model(1000)
        assert model.alpha == fit.alpha
        assert model.dmax == 1000


class TestSelectDmin:
    def test_pure_power_law_prefers_small_dmin(self, powerlaw_sample):
        d_min = select_dmin(powerlaw_sample)
        assert d_min <= 4

    def test_zm_contaminated_head_prefers_larger_dmin(self):
        # a large positive delta flattens the head relative to any pure power
        # law, so the KS-optimal cutoff should move past d = 1
        hist = degree_histogram(
            ZipfMandelbrotDistribution(2.0, 3.0, 50_000).sample(300_000, rng=5)
        )
        d_min = select_dmin(hist)
        assert d_min >= 2

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            select_dmin(degree_histogram([]))


class TestFitPowerLaw:
    def test_default_uses_given_dmin(self, powerlaw_sample):
        fit = fit_power_law(powerlaw_sample, d_min=3)
        assert fit.d_min == 3

    def test_select_cutoff_path(self, powerlaw_sample):
        fit = fit_power_law(powerlaw_sample, select_cutoff=True)
        assert fit.d_min >= 1
        assert fit.alpha == pytest.approx(2.3, abs=0.1)

    def test_as_row_keys(self, powerlaw_sample):
        row = fit_power_law(powerlaw_sample).as_row()
        assert {"alpha", "d_min", "ks", "n_tail", "loglik"} <= set(row)

    def test_power_law_fits_worse_on_zm_head(self):
        """A power law matching the tail badly underestimates the d=1 excess.

        This is the paper's motivation for the δ offset: trunk-style data has
        far more degree-1 mass than any power law with the tail's exponent.
        """
        zm_hist = degree_histogram(
            ZipfMandelbrotDistribution(2.0, -0.85, 50_000).sample(400_000, rng=9)
        )
        tail_fit = fit_power_law(zm_hist, d_min=10)
        # the tail exponent is close to the true alpha = 2.0 ...
        assert tail_fit.alpha == pytest.approx(2.0, abs=0.2)
        model = tail_fit.model(zm_hist.dmax)
        observed_p1 = zm_hist.fraction_at(1)
        # ... but a power law with that exponent cannot reproduce the d=1 spike
        assert observed_p1 > model.pmf(1) + 0.2
