"""Golden-file regression tests: pinned pooled vectors for two scenarios.

Extends the backend-equivalence coverage of ``test_streaming_engine.py`` to
*non-stationary* input: for the ``stationary`` and ``alpha-drift`` scenarios
under a fixed seed, the pooled mean/σ vectors (and the window→phase
attribution) are pinned in ``tests/golden/scenario_*.json``, and the serial,
process, and streaming backends must all reproduce them **bit-identically**
— JSON stores Python float ``repr``\\ s, which round-trip float64 exactly,
so equality here is equality of bits, not of approximations.

If a deliberate change to the generator's draw order, the built-in
catalogue, or the pooling fold moves these vectors, regenerate the goldens
and say so in the PR::

    PYTHONPATH=src python tests/test_scenarios_golden.py --write
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.scenarios import analyze_scenario
from repro.streaming.aggregates import QUANTITY_NAMES

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SEED = 20210329
N_VALID = 5_000
GOLDEN_SCENARIOS = ("stationary", "alpha-drift")
BACKENDS = ("serial", "process", "streaming")


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"scenario_{name.replace('-', '_')}.json"


def _run(name: str, backend: str):
    kwargs = {"backend": backend, "keep_windows": False}
    if backend == "process":
        kwargs["n_workers"] = 2
    if backend == "streaming":
        kwargs["chunk_packets"] = 9_000
    return analyze_scenario(name, N_VALID, seed=SEED, **kwargs)


def _snapshot(run) -> dict:
    """The pinned products: global pooled mean/σ per quantity + attribution."""
    pooled = {}
    for quantity in QUANTITY_NAMES:
        dist = run.analysis.pooled(quantity)
        pooled[quantity] = {
            "values": dist.values.tolist(),
            "sigma": dist.sigma.tolist(),
            "total": int(dist.total),
        }
    phase_head = {
        str(phase): run.phases.pooled(phase, "source_fanout").values.tolist()
        for phase in run.phases.occupied_phases()
    }
    return {
        "seed": SEED,
        "n_valid": N_VALID,
        "n_windows": run.analysis.n_windows,
        "window_phase": run.phases.window_phase.tolist(),
        "pooled": pooled,
        "phase_source_fanout": phase_head,
    }


@pytest.fixture(scope="module", params=GOLDEN_SCENARIOS)
def golden_case(request):
    path = _golden_path(request.param)
    if not path.is_file():  # pragma: no cover - regeneration guard
        pytest.fail(f"golden file {path} missing; regenerate with "
                    f"'python tests/test_scenarios_golden.py --write'")
    return request.param, json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_reproduces_golden_bit_identically(golden_case, backend):
    name, golden = golden_case
    run = _run(name, backend)
    assert run.analysis.n_windows == golden["n_windows"]
    np.testing.assert_array_equal(run.phases.window_phase, golden["window_phase"])
    for quantity in QUANTITY_NAMES:
        pinned = golden["pooled"][quantity]
        pooled = run.analysis.pooled(quantity)
        # bit-identical: JSON floats round-trip exactly, so plain equality
        assert pooled.values.tolist() == pinned["values"], (
            f"{name}/{backend}/{quantity}: pooled mean moved off the golden vector"
        )
        assert pooled.sigma.tolist() == pinned["sigma"], (
            f"{name}/{backend}/{quantity}: pooled σ moved off the golden vector"
        )
        assert pooled.total == pinned["total"]
    for phase, values in golden["phase_source_fanout"].items():
        assert run.phases.pooled(int(phase), "source_fanout").values.tolist() == values


def test_goldens_cover_both_regimes():
    """The pinned pair spans the stationarity axis: one single-phase control,
    one multi-phase drift scenario with a non-trivial attribution."""
    stationary = json.loads(_golden_path("stationary").read_text(encoding="utf-8"))
    drift = json.loads(_golden_path("alpha-drift").read_text(encoding="utf-8"))
    assert set(stationary["window_phase"]) == {0}
    assert len(set(drift["window_phase"])) > 1


def _write_goldens() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in GOLDEN_SCENARIOS:
        snapshot = _snapshot(_run(name, "serial"))
        path = _golden_path(name)
        path.write_text(json.dumps(snapshot, indent=1) + "\n", encoding="utf-8")
        print(f"wrote {path} ({snapshot['n_windows']} windows)")


if __name__ == "__main__":
    if "--write" in sys.argv:
        _write_goldens()
    else:
        print(__doc__)
