"""Crash-safe durability: restore + replay is bit-identical to no crash.

The tentpole invariant under test: a daemon killed at *any* point, restarted
with ``--resume``, and fed a replay of every batch the feeder cannot prove
acked produces pooled vectors and alarm sequences ``tobytes()``-identical to
a run that was never interrupted.  Three layers pin it down:

* **snapshot contract** — :meth:`JobEngine.snapshot` round-trips through
  pickle exactly, and :meth:`JobEngine.restore` refuses payloads it would
  misinterpret (wrong format version, different job config, mismatched
  analyzer kind);
* **checkpoint area of the store** — generations, newest-first verified
  fallback, and pruning under ``checkpoints/<key>/``;
* **the property itself** — a hypothesis harness drives the real
  :class:`Job`/:class:`JobCheckpointer`/:func:`resume_job` machinery through
  arbitrary batchings, crash points, and checkpoint cadences, then a
  real-process test does the same with ``kill -9`` against a live
  ``python -m repro serve`` daemon.
"""

from __future__ import annotations

import http.client
import json
import os
import pickle
import socket
import subprocess
import sys
import tempfile
import time
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaigns.store import ResultStore
from repro.detect.detectors import DETECTOR_NAMES
from repro.scenarios import analyze_scenario, get_scenario
from repro.scenarios.source import ScenarioTraceSource
from repro.service import (
    CheckpointPolicy,
    Job,
    JobCheckpointer,
    JobConfig,
    JobEngine,
    packet_batch_from_json,
    resume_job,
)
from repro.streaming.packet import PacketTrace, concatenate_traces
from repro.streaming.pipeline import StreamAnalyzer

N_VALID = 2_000
SCENARIO = "flash-crowd"
QUANTITIES = ("source_fanout", "destination_fanin")


@lru_cache(maxsize=1)
def _full_stream() -> PacketTrace:
    """The scenario's entire packet stream as one trace (cached)."""
    scenario = get_scenario(SCENARIO)
    return concatenate_traces(list(ScenarioTraceSource(scenario, seed=0)))


@lru_cache(maxsize=1)
def _one_shot():
    """The uninterrupted one-shot reference run (cached)."""
    return analyze_scenario(
        SCENARIO,
        N_VALID,
        seed=0,
        quantities=QUANTITIES,
        detectors=tuple(DETECTOR_NAMES),
        detect_quantity="source_fanout",
    )


def _config(name: str = "ckpt") -> JobConfig:
    return JobConfig.from_dict(
        {
            "name": name,
            "window": {"n_valid": N_VALID, "quantities": list(QUANTITIES)},
            "detection": {
                "detectors": list(DETECTOR_NAMES),
                "quantity": "source_fanout",
            },
        }
    )


def _rebatch(cuts: list[int]) -> list[PacketTrace]:
    """Slice the full stream at *cuts* (arbitrary client batching)."""
    packets = _full_stream().packets
    bounds = [0, *sorted(set(cuts)), len(packets)]
    return [PacketTrace(packets[a:b]) for a, b in zip(bounds, bounds[1:]) if b > a]


def _cuts():
    n = _full_stream().n_packets
    return st.lists(st.integers(1, n - 1), min_size=0, max_size=24, unique=True)


def _assert_bit_identical(analysis, reference) -> None:
    for quantity in QUANTITIES:
        mine, theirs = analysis.pooled(quantity), reference.pooled(quantity)
        assert mine.values.tobytes() == theirs.values.tobytes()
        assert mine.sigma.tobytes() == theirs.sigma.tobytes()
        assert np.array_equal(mine.bin_edges, theirs.bin_edges)
        assert mine.total == theirs.total


def _feed(job: Job, batches: list[PacketTrace], seqs: range) -> None:
    """Ingest *batches[seq-1]* for each seq, acking the way the server does."""
    for seq in seqs:
        job.engine.ingest(batches[seq - 1])
        job.engine.acked_seq = seq


# ---------------------------------------------------------------------------
# snapshot contract
# ---------------------------------------------------------------------------


class TestSnapshotContract:
    """snapshot()/restore() is exact, and refuses state it would misread."""

    def test_pickle_roundtrip_restores_exact_state(self):
        batches = _rebatch([10_000, 25_000])
        source = JobEngine(_config())
        for batch in batches[:2]:
            source.ingest(batch)
        source.acked_seq = 2
        frozen = pickle.loads(pickle.dumps(source.snapshot()))

        restored = JobEngine(_config())
        restored.restore(frozen)
        assert restored.acked_seq == 2
        assert restored.windows_folded == source.windows_folded
        assert restored.packets_buffered == source.packets_buffered
        assert restored.batches_ingested == source.batches_ingested
        # both engines continue with the tail and must agree bit for bit
        source.ingest(batches[2])
        restored.ingest(batches[2])
        _assert_bit_identical(restored.result(), source.result())
        assert restored.detection().alarms == source.detection().alarms

    def test_unknown_format_version_refused(self):
        engine = JobEngine(_config())
        snapshot = engine.snapshot()
        snapshot["format"] = 999
        with pytest.raises(ValueError, match="format"):
            JobEngine(_config()).restore(snapshot)

    def test_snapshot_pins_the_job_config(self):
        snapshot = JobEngine(_config()).snapshot()
        other = JobConfig.from_dict(
            {"name": "other", "window": {"n_valid": 500, "quantities": ["source_fanout"]}}
        )
        with pytest.raises(ValueError, match="different job config"):
            JobEngine(other).restore(snapshot)

    def test_folder_kind_mismatch_refused(self):
        engine = JobEngine(_config())
        snapshot = engine.snapshot()
        snapshot["folder"] = dict(snapshot["folder"], kind="stream")
        with pytest.raises(ValueError, match="kind"):
            JobEngine(_config()).restore(snapshot)

    def test_keep_windows_analyzers_cannot_snapshot(self):
        analyzer = StreamAnalyzer(N_VALID, QUANTITIES, keep_windows=True)
        with pytest.raises(ValueError, match="keep_windows"):
            analyzer.snapshot()

    def test_detector_set_mismatch_refused(self):
        """A detecting snapshot only restores onto the same detectors, in order."""
        snapshot = JobEngine(_config()).snapshot()
        folder_state = dict(snapshot["folder"]["state"])
        folder_state["detectors"] = list(reversed(folder_state["detectors"]))
        snapshot["folder"] = dict(snapshot["folder"], state=folder_state)
        with pytest.raises(ValueError, match="detectors"):
            JobEngine(_config()).restore(snapshot)


# ---------------------------------------------------------------------------
# the checkpoint area of the result store
# ---------------------------------------------------------------------------


class TestStoreCheckpointArea:
    def test_roundtrip_and_generations(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put_checkpoint("k" * 64, {"seq": 1}, seq=1)
        store.put_checkpoint("k" * 64, {"seq": 2}, seq=2)
        assert store.checkpoint_seqs("k" * 64) == (1, 2)
        assert store.latest_checkpoint("k" * 64) == (2, {"seq": 2})

    def test_prune_keeps_newest_generations(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for seq in range(1, 6):
            store.put_checkpoint("k" * 64, {"seq": seq}, seq=seq)
        assert store.checkpoint_seqs("k" * 64) == (4, 5)

    def test_corrupted_newest_falls_back_a_generation(self, tmp_path, caplog):
        store = ResultStore(tmp_path / "store")
        store.put_checkpoint("k" * 64, {"seq": 1}, seq=1)
        store.put_checkpoint("k" * 64, {"seq": 2}, seq=2)
        payload_path, _record_path = store._checkpoint_paths("k" * 64, 2)
        payload_path.write_bytes(payload_path.read_bytes()[:8])
        with caplog.at_level("WARNING", logger="repro"):
            assert store.latest_checkpoint("k" * 64) == (1, {"seq": 1})
        assert any("corrupted checkpoint" in r.message for r in caplog.records)

    def test_every_generation_corrupt_means_no_resume(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        for seq in (1, 2):
            store.put_checkpoint("k" * 64, {"seq": seq}, seq=seq)
            payload_path, _record_path = store._checkpoint_paths("k" * 64, seq)
            payload_path.write_bytes(b"not a checkpoint")
        assert store.latest_checkpoint("k" * 64) is None

    def test_missing_key_has_no_checkpoints(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.checkpoint_seqs("a" * 64) == ()
        assert store.latest_checkpoint("a" * 64) is None

    def test_negative_seq_rejected(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(ValueError, match="seq"):
            store.put_checkpoint("k" * 64, {}, seq=-1)

    def test_checkpoints_do_not_shadow_results(self, tmp_path):
        """The checkpoint area is disjoint from the content-addressed cells."""
        store = ResultStore(tmp_path / "store")
        store.put_checkpoint("b" * 64, {"kind": "ckpt"}, seq=3)
        with pytest.raises(KeyError):
            store.get("b" * 64)
        store.put("b" * 64, {"kind": "result"})
        assert store.get("b" * 64) == {"kind": "result"}
        assert store.latest_checkpoint("b" * 64) == (3, {"kind": "ckpt"})


# ---------------------------------------------------------------------------
# checkpoint policy and cadence
# ---------------------------------------------------------------------------


class TestCheckpointCadence:
    def test_policy_validation(self):
        with pytest.raises(ValueError, match="every_batches"):
            CheckpointPolicy(every_batches=0)
        with pytest.raises(ValueError, match="every_seconds"):
            CheckpointPolicy(every_seconds=0.0)
        assert not CheckpointPolicy().periodic
        assert CheckpointPolicy(every_batches=3).periodic
        assert CheckpointPolicy(every_seconds=1.5).periodic

    def test_batch_cadence_counts_batches(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        checkpointer = JobCheckpointer(store, CheckpointPolicy(every_batches=2))
        job = Job(_config())
        batches = _rebatch([4_000, 8_000, 12_000, 16_000])
        written = []
        for seq in range(1, 5):
            _feed(job, batches, range(seq, seq + 1))
            written.append(checkpointer.maybe_checkpoint(job))
        assert written == [False, True, False, True]
        assert job.checkpoints_written == 2
        assert store.checkpoint_seqs(job.config_hash) == (2, 4)

    def test_time_cadence_skips_idle_jobs(self, tmp_path):
        """A due timer alone never rewrites a checkpoint: no new batches, no write."""
        store = ResultStore(tmp_path / "store")
        checkpointer = JobCheckpointer(store, CheckpointPolicy(every_seconds=0.001))
        job = Job(_config())
        _feed(job, _rebatch([]), range(1, 2))
        # the first evaluation arms the job's clock, so nothing is due yet
        assert not checkpointer.maybe_checkpoint(job)
        time.sleep(0.01)
        assert checkpointer.maybe_checkpoint(job)
        time.sleep(0.01)
        # timer due again, but batches_ingested has not moved
        assert not checkpointer.maybe_checkpoint(job)
        assert job.checkpoints_written == 1

    def test_non_periodic_policy_never_auto_checkpoints(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        checkpointer = JobCheckpointer(store, CheckpointPolicy())
        job = Job(_config())
        _feed(job, _rebatch([]), range(1, 2))
        assert not checkpointer.maybe_checkpoint(job)
        # ... but an explicit checkpoint (flush/shutdown path) still writes
        assert checkpointer.checkpoint(job)
        assert store.latest_checkpoint(job.config_hash) is not None


# ---------------------------------------------------------------------------
# the property: crash → resume → replay ≡ never crashed
# ---------------------------------------------------------------------------


class TestCrashRecoveryProperty:
    """Hypothesis drives batching, crash point, and cadence together."""

    @given(cuts=_cuts(), crash_at=st.integers(0, 25), every=st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_restore_and_replay_bit_identical(self, cuts, crash_at, every):
        batches = _rebatch(cuts)
        crash_at = min(crash_at, len(batches))
        with tempfile.TemporaryDirectory() as root:
            store = ResultStore(Path(root) / "store")
            checkpointer = JobCheckpointer(store, CheckpointPolicy(every_batches=every))
            job = Job(_config())
            for seq in range(1, crash_at + 1):
                _feed(job, batches, range(seq, seq + 1))
                checkpointer.maybe_checkpoint(job)
            # SIGKILL: every byte of in-memory state is gone
            del job, checkpointer

            revived = Job(_config())
            resumed = resume_job(store, revived)
            resumed_seq = 0 if resumed is None else resumed
            assert resumed_seq <= crash_at
            assert revived.engine.acked_seq == resumed_seq
            assert revived.resumed_from_seq == resumed
            # the feeder replays the unacked suffix (the daemon would answer
            # seq <= resumed_seq with a duplicate no-op, so skipping them
            # here models exactly what the wire protocol folds)
            _feed(revived, batches, range(resumed_seq + 1, len(batches) + 1))

            reference = _one_shot()
            assert revived.engine.windows_folded == reference.analysis.n_windows
            _assert_bit_identical(revived.engine.result(), reference.analysis)
            assert revived.engine.detection().alarms == reference.detection.alarms

    def test_two_crashes_in_one_run(self, tmp_path):
        """Durability composes: crash, resume, crash again, resume again."""
        n = _full_stream().n_packets
        batches = _rebatch([n // 7, n // 3, n // 2, (3 * n) // 4])
        store = ResultStore(tmp_path / "store")
        policy = CheckpointPolicy(every_batches=1)

        job = Job(_config())
        checkpointer = JobCheckpointer(store, policy)
        for seq in range(1, 3):
            _feed(job, batches, range(seq, seq + 1))
            checkpointer.maybe_checkpoint(job)
        del job, checkpointer  # first crash

        job = Job(_config())
        assert resume_job(store, job) == 2
        checkpointer = JobCheckpointer(store, policy)
        for seq in range(3, 5):
            _feed(job, batches, range(seq, seq + 1))
            checkpointer.maybe_checkpoint(job)
        del job, checkpointer  # second crash

        job = Job(_config())
        assert resume_job(store, job) == 4
        _feed(job, batches, range(5, len(batches) + 1))
        reference = _one_shot()
        _assert_bit_identical(job.engine.result(), reference.analysis)
        assert job.engine.detection().alarms == reference.detection.alarms

    def test_unrestorable_checkpoint_cold_starts_with_warning(self, tmp_path, caplog):
        """A checkpoint that verifies but will not restore never blocks startup."""
        store = ResultStore(tmp_path / "store")
        job = Job(_config())
        _feed(job, _rebatch([]), range(1, 2))
        snapshot = job.engine.snapshot()
        snapshot["format"] = 999  # verifies (size+sha match) but restore refuses
        store.put_checkpoint(job.config_hash, snapshot, seq=1)

        revived = Job(_config())
        with caplog.at_level("WARNING", logger="repro"):
            assert resume_job(store, revived) is None
        assert any("did not restore" in r.message for r in caplog.records)
        assert revived.resumed_from_seq is None
        assert revived.engine.acked_seq == 0
        assert revived.engine.windows_folded == 0


# ---------------------------------------------------------------------------
# the same property against a real daemon killed with SIGKILL
# ---------------------------------------------------------------------------

SRC_DIR = Path(__file__).resolve().parents[1] / "src"
KILL_N_VALID = 500
KILL_QUANTITIES = ("source_fanout", "destination_fanin")


def _free_port() -> int:
    """Pick a port that is free right now (tiny race, fine for tests)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _kill_config() -> dict:
    return {
        "name": "crashy",
        "window": {"n_valid": KILL_N_VALID, "quantities": list(KILL_QUANTITIES)},
        "detection": {"detectors": ["ewma"], "quantity": "source_fanout"},
    }


def _daemon_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _request(port: int, method: str, path: str, body: str | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload
    finally:
        conn.close()


def _wait_ready(port: int, proc: subprocess.Popen, deadline: float = 30.0) -> None:
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited early with {proc.returncode}: "
                f"{proc.stderr.read().decode('utf-8', 'replace')[-2000:]}"
            )
        try:
            status, _ = _request(port, "GET", "/status")
        except OSError:
            time.sleep(0.05)
            continue
        if status == 200:
            return
    raise AssertionError("daemon did not become ready in time")


@pytest.mark.slow
class TestKillMinusNine:
    """kill -9 a live daemon; restart --resume; replay; byte-identical flush."""

    def _batches(self) -> list[str]:
        packets = _full_stream().packets[:10_000]
        lines = []
        for start in range(0, len(packets), 2_000):
            part = packets[start : start + 2_000]
            lines.append(
                json.dumps(
                    {
                        "src": part["src"].tolist(),
                        "dst": part["dst"].tolist(),
                        "time": part["time"].tolist(),
                        "size": part["size"].tolist(),
                        "valid": part["valid"].tolist(),
                    }
                )
            )
        return lines

    def _serve_command(self, config_path: Path, store_path: Path, port: int) -> list[str]:
        return [
            sys.executable, "-m", "repro", "serve",
            "--job", str(config_path),
            "--store", str(store_path),
            "--host", "127.0.0.1", "--port", str(port),
            "--checkpoint-every", "2", "--resume",
        ]

    def test_sigkill_resume_replay_is_byte_identical(self, tmp_path):
        config_path = tmp_path / "crashy.json"
        config_path.write_text(json.dumps(_kill_config()))
        store_path = tmp_path / "store"
        lines = self._batches()
        port = _free_port()
        command = self._serve_command(config_path, store_path, port)

        first = subprocess.Popen(command, env=_daemon_env(),
                                 stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            _wait_ready(port, first)
            for seq, line in enumerate(lines, start=1):
                status, body = _request(
                    port, "POST", f"/ingest/crashy?seq={seq}", body=line + "\n"
                )
                assert status == 200, body
                assert body["acked_seq"] == seq
        finally:
            first.kill()  # SIGKILL — no drain, no shutdown checkpoint
            first.wait(timeout=30)

        second = subprocess.Popen(command, env=_daemon_env(),
                                  stdout=subprocess.PIPE, stderr=subprocess.PIPE)
        try:
            _wait_ready(port, second)
            status, job_status = _request(port, "GET", "/status/crashy")
            assert status == 200
            # 5 batches acked, --checkpoint-every 2: generations at 2 and 4,
            # so the restart resumes from 4 and batch 5 is genuinely replayed
            assert job_status["resumed_from_seq"] == 4
            assert job_status["acked_seq"] == 4
            replayed = folded = 0
            for seq, line in enumerate(lines, start=1):
                status, body = _request(
                    port, "POST", f"/ingest/crashy?seq={seq}", body=line + "\n"
                )
                assert status == 200, body
                if body.get("duplicate"):
                    replayed += 1
                else:
                    folded += 1
            assert (replayed, folded) == (4, 1)
            status, flush = _request(port, "POST", "/jobs/crashy/flush")
            assert status == 200, flush
        finally:
            second.kill()
            second.wait(timeout=30)

        config = JobConfig.from_dict(_kill_config())
        reference = JobEngine(config)
        for line in lines:
            reference.ingest(packet_batch_from_json(json.loads(line)))
        payload = ResultStore(store_path).get(config.config_hash())
        expected = reference.result()
        assert payload["n_windows"] == expected.n_windows
        for quantity in KILL_QUANTITIES:
            stored = payload["pooled"][quantity]
            pooled = expected.pooled(quantity)
            # exact float equality: the wire, the checkpoint, and the flush
            # are all lossless
            assert stored["values"] == pooled.values.tolist()
            assert stored["sigma"] == pooled.sigma.tolist()
            assert stored["total"] == pooled.total
        alarms = payload["detection"]["alarms"]
        assert {k: tuple(v) for k, v in alarms.items()} == dict(
            reference.detection().alarms
        )
