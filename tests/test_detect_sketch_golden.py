"""Golden-file regression tests: detector alarms on *sketched* histograms.

Detection is tier-agnostic — detectors score pooled vectors, never raw
windows — so running a scenario with ``mode="sketch"`` feeds the same
detector arithmetic the sketch-estimated histograms.  For a fixed scenario
seed **and** sketch seed the sketched histograms are deterministic, so the
alarm sequences are pinned here exactly like the exact-tier goldens in
``tests/test_detect_golden.py``, and the serial, process, and streaming
backends must all reproduce them bit-identically (the sketch fold is a
commutative monoid merge, so backend and chunking never leak in).

If a deliberate change moves these sequences — retuned detectors, a new
sketch hash, different default tables — regenerate and say so in the PR::

    PYTHONPATH=src python tests/test_detect_sketch_golden.py --write
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.detect import DETECTOR_NAMES
from repro.detect.evaluate import true_change_windows
from repro.scenarios import analyze_scenario
from repro.streaming.sketch import DEFAULT_SKETCH_CONFIG

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SEED = 20210329
N_VALID = 2_000
GOLDEN_SCENARIOS = ("alpha-drift", "flash-crowd")
BACKENDS = ("serial", "process", "streaming")


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"detect_sketch_{name.replace('-', '_')}.json"


def _run(name: str, backend: str):
    kwargs = {
        "backend": backend,
        "keep_windows": False,
        "detectors": DETECTOR_NAMES,
        "mode": "sketch",
    }
    if backend == "process":
        kwargs["n_workers"] = 2
    if backend == "streaming":
        kwargs["chunk_packets"] = 9_000
    return analyze_scenario(name, N_VALID, seed=SEED, **kwargs)


def _snapshot(run) -> dict:
    """The pinned products: per-detector alarms + the sketch that fed them."""
    return {
        "seed": SEED,
        "n_valid": N_VALID,
        "sketch": DEFAULT_SKETCH_CONFIG.as_key_payload(),
        "n_windows": run.detection.n_windows,
        "quantity": run.detection.quantity,
        "true_boundaries": list(true_change_windows(run.phases.window_phase)),
        "alarms": {name: list(run.detection.alarms[name]) for name in DETECTOR_NAMES},
    }


@pytest.fixture(scope="module", params=GOLDEN_SCENARIOS)
def golden_case(request):
    path = _golden_path(request.param)
    if not path.is_file():  # pragma: no cover - regeneration guard
        pytest.fail(f"golden file {path} missing; regenerate with "
                    f"'python tests/test_detect_sketch_golden.py --write'")
    return request.param, json.loads(path.read_text(encoding="utf-8"))


def test_goldens_pin_the_default_sketch_config():
    """The pins are only comparable while the default knobs stand still."""
    for name in GOLDEN_SCENARIOS:
        golden = json.loads(_golden_path(name).read_text(encoding="utf-8"))
        assert golden["sketch"] == DEFAULT_SKETCH_CONFIG.as_key_payload(), (
            "default SketchConfig changed; regenerate the sketch detect goldens"
        )


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_reproduces_golden_sketch_alarms(golden_case, backend):
    name, golden = golden_case
    run = _run(name, backend)
    assert run.analysis.mode == "sketch"
    assert run.detection.n_windows == golden["n_windows"]
    assert run.detection.quantity == golden["quantity"]
    assert list(true_change_windows(run.phases.window_phase)) == golden["true_boundaries"]
    for detector in DETECTOR_NAMES:
        assert list(run.detection.alarms[detector]) == golden["alarms"][detector], (
            f"{name}/{backend}/{detector}: sketched alarm sequence moved off the pin"
        )


def test_sketched_alarms_still_detect_something():
    """The sketch tier must not blind the detectors: >= 1 alarm per scenario."""
    for name in GOLDEN_SCENARIOS:
        golden = json.loads(_golden_path(name).read_text(encoding="utf-8"))
        assert golden["true_boundaries"], name
        assert any(golden["alarms"][d] for d in DETECTOR_NAMES), (
            f"{name}: no detector alarmed on sketched histograms"
        )


def _write_goldens() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in GOLDEN_SCENARIOS:
        snapshot = _snapshot(_run(name, "serial"))
        path = _golden_path(name)
        path.write_text(json.dumps(snapshot, indent=1) + "\n", encoding="utf-8")
        print(f"wrote {path} ({snapshot['alarms']})")


if __name__ == "__main__":
    if "--write" in sys.argv:
        _write_goldens()
    else:
        print(__doc__)
