"""Tests for the campaign orchestrator and the content-addressed result store.

The determinism contract under test: a cell loaded warm from the store is
**bit-identical** to the same cell recomputed cold — pooled values, sigmas,
per-phase products, everything — and therefore re-running a campaign is a
pure cache sweep (0 recomputed cells, byte-identical report text), and an
interrupted sweep resumes with exactly the missing cells.
"""

from __future__ import annotations

import gzip
import tempfile

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

import repro.campaigns.runner as runner_module
from repro.campaigns import (
    Campaign,
    CampaignReport,
    ResultStore,
    RunSpec,
    content_key,
    fleet_status_rows,
    run_campaign,
    scenario_fingerprint,
)
from repro.scenarios import Phase, Scenario, analyze_scenario

#: A tiny two-phase scenario so every campaign test runs in well under a second.
TINY = Scenario(
    "tiny-campaign-test",
    phases=(
        Phase("erdos-renyi", 6_000, {"n_nodes": 400, "p": 0.02}),
        Phase("palu", 6_000, {"n_nodes": 500, "alpha": 2.2}, rate_exponent=1.4),
    ),
    description="test-only miniature workload",
)

#: Single-phase variant for multi-scenario grids.
TINY_FLAT = Scenario(
    "tiny-campaign-flat",
    phases=(Phase("erdos-renyi", 8_000, {"n_nodes": 400, "p": 0.02}),),
)

QUANTITIES = ("source_fanout", "link_packets")


def tiny_campaign(name="tiny", **overrides) -> Campaign:
    settings = {
        "scenarios": (TINY, TINY_FLAT),
        "seeds": (0, 1),
        "n_valids": (1_000,),
        "quantities": QUANTITIES,
    }
    settings.update(overrides)
    return Campaign(name, **settings)


class TestRunSpecKeys:
    def test_key_is_stable_across_instances(self):
        a = RunSpec(TINY, seed=3, n_valid=1_000, quantities=QUANTITIES)
        b = RunSpec(TINY, seed=3, n_valid=1_000, quantities=QUANTITIES)
        assert a.key == b.key
        assert len(a.key) == 64

    @pytest.mark.parametrize(
        "override",
        [{"seed": 4}, {"n_valid": 2_000}, {"quantities": ("source_fanout",)},
         {"block_packets": 2_048}, {"scenario": TINY_FLAT}],
    )
    def test_result_defining_fields_change_the_key(self, override):
        base = dict(scenario=TINY, seed=3, n_valid=1_000, quantities=QUANTITIES)
        assert RunSpec(**base).key != RunSpec(**{**base, **override}).key

    @pytest.mark.parametrize(
        "override",
        [{"backend": "streaming", "chunk_packets": 2_000}, {"backend": "process", "n_workers": 2}],
    )
    def test_execution_knobs_do_not_change_the_key(self, override):
        base = dict(scenario=TINY, seed=3, n_valid=1_000, quantities=QUANTITIES)
        assert RunSpec(**base).key == RunSpec(**{**base, **override}).key

    def test_description_is_not_result_defining(self):
        renamed = Scenario(TINY.name, phases=TINY.phases, description="different words")
        assert scenario_fingerprint(renamed) == scenario_fingerprint(TINY)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            RunSpec(TINY, seed=0, n_valid=1_000, backend="bogus")
        with pytest.raises(ValueError, match="quantities"):
            RunSpec(TINY, seed=0, n_valid=1_000, quantities=("bogus",))

    def test_content_key_is_canonical(self):
        assert content_key({"b": 1, "a": 2}) == content_key({"a": 2, "b": 1})
        assert content_key({"a": 1}) != content_key({"a": 2})


class TestCampaign:
    def test_expansion_is_deterministic_and_complete(self):
        campaign = tiny_campaign(backends=("serial", "streaming"))
        cells = campaign.cells()
        assert len(cells) == campaign.n_cells == 2 * 2 * 1 * 2
        assert [c.key for c in cells] == [c.key for c in campaign.cells()]

    def test_backend_axis_shares_result_keys(self):
        campaign = tiny_campaign(backends=("serial", "streaming"))
        assert len(campaign.unique_keys()) == campaign.n_cells // 2

    def test_unknown_scenario_fails_at_construction(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            tiny_campaign(scenarios=("no-such-scenario",))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            tiny_campaign(seeds=())
        with pytest.raises(ValueError, match="scenario"):
            Campaign("empty", scenarios=())
        with pytest.raises(ValueError, match="window size"):
            tiny_campaign(n_valids=())
        with pytest.raises(ValueError, match="quantity"):
            tiny_campaign(quantities=())
        with pytest.raises(ValueError, match="backend"):
            tiny_campaign(backends=())


class TestResultStore:
    def test_roundtrip_and_record(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("ab" + "0" * 62, {"rows": [1, 2, 3]}, meta={"n_windows": 7})
        assert "ab" + "0" * 62 in store
        assert store.get("ab" + "0" * 62) == {"rows": [1, 2, 3]}
        record = store.record("ab" + "0" * 62)
        assert record["n_windows"] == 7
        assert record["repro_version"]

    def test_missing_key_raises(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(KeyError):
            store.get("ff" + "0" * 62)
        assert ("ff" + "0" * 62) not in store

    def test_equal_payloads_store_identical_bytes(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = "cd" + "0" * 62
        store.put(key, {"x": 1})
        first = store._object_path(key).read_bytes()
        store.put(key, {"x": 1})
        assert store._object_path(key).read_bytes() == first

    def test_torn_cell_reads_as_missing(self, tmp_path):
        """A payload without its record (crash between writes) is not an entry."""
        store = ResultStore(tmp_path / "store")
        key = "ee" + "0" * 62
        path = store._object_path(key)
        path.parent.mkdir(parents=True)
        with gzip.open(path, "wb") as handle:
            handle.write(b"partial")
        assert key not in store
        assert list(store.keys()) == []

    def test_truncated_payload_reads_as_missing(self, tmp_path):
        """Torn-write mutation: chop bytes off a stored payload on disk."""
        store = ResultStore(tmp_path / "store")
        key = "aa" + "1" * 62
        store.put(key, {"rows": list(range(100))})
        assert key in store
        path = store._object_path(key)
        path.write_bytes(path.read_bytes()[:-7])
        assert key not in store
        with pytest.raises(KeyError):
            store.get(key)
        assert list(store.keys()) == []

    def test_corrupted_payload_reads_as_missing(self, tmp_path):
        """Same-size in-place corruption is caught by the pinned digest."""
        store = ResultStore(tmp_path / "store")
        key = "bb" + "1" * 62
        store.put(key, {"rows": list(range(100))})
        raw = bytearray(store._object_path(key).read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        store._object_path(key).write_bytes(bytes(raw))
        assert key not in store
        with pytest.raises(KeyError):
            store.get(key)

    def test_truncated_record_reads_as_missing(self, tmp_path):
        """Torn-write mutation: the record side, truncated mid-JSON."""
        store = ResultStore(tmp_path / "store")
        key = "cc" + "1" * 62
        store.put(key, {"x": 1})
        record_path = store._record_path(key)
        record_path.write_text(record_path.read_text(encoding="utf-8")[:10], encoding="utf-8")
        assert key not in store
        with pytest.raises(KeyError):
            store.record(key)
        with pytest.raises(KeyError):
            store.get(key)

    def test_undecodable_payload_with_valid_digest_is_a_miss(self, tmp_path):
        """Bytes that match their pins but fail unpickling (e.g. written by
        an incompatible version) must read as missing and be recomputed."""
        import hashlib
        import io

        from repro.streaming.trace_io import write_json_atomic

        store = ResultStore(tmp_path / "store")
        key = "dd" + "1" * 62
        store.put(key, {"x": 1})
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
            handle.write(b"\x80\x05 not a pickle stream")
        raw = buffer.getvalue()
        store._object_path(key).write_bytes(raw)
        write_json_atomic(
            store._record_path(key),
            {"key": key, "payload_bytes": len(raw),
             "payload_sha256": hashlib.sha256(raw).hexdigest()},
        )
        assert key in store          # pins match: only unpickling can tell
        with pytest.raises(KeyError):
            store.get(key)
        payload, cached = store.get_or_compute(key, lambda: {"fresh": True})
        assert payload == {"fresh": True} and not cached
        assert store.get(key) == {"fresh": True}

    @pytest.mark.parametrize("mutate", ["payload", "record"])
    def test_mutated_cell_is_recomputed_on_resume(self, tmp_path, mutate):
        """A campaign resumed over a mutated store recomputes the damaged
        cell (and only it) instead of crashing on it."""
        campaign = tiny_campaign()
        run_campaign(campaign, tmp_path / "store")
        store = ResultStore(tmp_path / "store")
        victim = campaign.unique_keys()[0]
        if mutate == "payload":
            path = store._object_path(victim)
            path.write_bytes(path.read_bytes()[: -5])
        else:
            store._record_path(victim).write_text("{torn", encoding="utf-8")
        assert victim not in store
        resumed = run_campaign(campaign, tmp_path / "store")
        assert resumed.n_computed == 1 and resumed.complete
        assert victim in store
        assert store.get(victim).analysis.n_windows > 0

    def test_stale_temp_files_pruned_on_open(self, tmp_path):
        """Debris of a hard-killed writer is swept; fresh temp files survive."""
        import os
        import time as time_module

        root = tmp_path / "store"
        store = ResultStore(root)
        objects = root / "objects" / "ab"
        objects.mkdir(parents=True)
        stale = objects / ("ab" + "0" * 62 + ".pkl.gz.x1.tmp")
        fresh = objects / ("ab" + "0" * 62 + ".pkl.gz.x2.tmp")
        stale.write_bytes(b"dead")
        fresh.write_bytes(b"in-flight")
        old = time_module.time() - 2 * ResultStore._TEMP_MAX_AGE_SECONDS
        os.utime(stale, (old, old))
        ResultStore(root)
        assert not stale.exists()
        assert fresh.exists()
        assert store is not None

    def test_format_version_checked(self, tmp_path):
        from repro.streaming.trace_io import write_json_atomic

        root = tmp_path / "store"
        ResultStore(root)
        write_json_atomic(root / "store.json", {"format": 999})
        with pytest.raises(ValueError, match="format 999"):
            ResultStore(root)

    def test_cached_rows_hits_on_equal_params(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        calls = []

        def compute():
            calls.append(1)
            return [{"value": 42}]

        rows, cached = store.cached_rows("exp", {"p": 1}, compute)
        again, cached_again = store.cached_rows("exp", {"p": 1}, compute)
        other, other_cached = store.cached_rows("exp", {"p": 2}, compute)
        assert rows == again == other == [{"value": 42}]
        assert (cached, cached_again, other_cached) == (False, True, False)
        assert len(calls) == 2


class TestRunCampaign:
    def test_cold_then_warm(self, tmp_path):
        campaign = tiny_campaign()
        cold = run_campaign(campaign, tmp_path / "store")
        assert cold.n_computed == 4 and cold.n_cached == 0 and cold.complete
        warm = run_campaign(campaign, tmp_path / "store")
        assert warm.n_computed == 0 and warm.n_cached == 4 and warm.complete

    def test_warm_report_is_byte_identical(self, tmp_path):
        campaign = tiny_campaign()
        run_campaign(campaign, tmp_path / "store")
        first = CampaignReport.from_store(tmp_path / "store", campaign.name).render()
        warm = run_campaign(campaign, tmp_path / "store")
        assert warm.n_computed == 0
        second = CampaignReport.from_store(tmp_path / "store", campaign.name).render()
        assert first == second

    def test_cached_cell_is_bit_identical_to_recomputation(self, tmp_path):
        campaign = tiny_campaign(seeds=(5,), scenarios=(TINY,))
        run_campaign(campaign, tmp_path / "store")
        store = ResultStore(tmp_path / "store")
        (key,) = campaign.unique_keys()
        cached = store.get(key)
        fresh = analyze_scenario(
            TINY, 1_000, seed=5, quantities=QUANTITIES, keep_windows=False
        )
        for quantity in QUANTITIES:
            a, b = cached.analysis.pooled(quantity), fresh.analysis.pooled(quantity)
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.sigma, b.sigma)
            assert a.total == b.total
        assert cached.analysis == fresh.analysis
        assert np.array_equal(cached.phases.window_phase, fresh.phases.window_phase)
        for phase in cached.phases.occupied_phases():
            for quantity in QUANTITIES:
                assert np.array_equal(
                    cached.phases.pooled(phase, quantity).values,
                    fresh.phases.pooled(phase, quantity).values,
                )

    def test_backend_axis_deduplicates_compute(self, tmp_path):
        campaign = tiny_campaign(
            backends=("serial", "streaming"), chunk_packets=2_000, seeds=(0,)
        )
        cold = run_campaign(campaign, tmp_path / "store")
        assert cold.n_computed == 2  # one per scenario, not per backend
        assert cold.n_cached == 2   # the streaming twins resolve as hits

    def test_partial_sweep_resumes_missing_cells_only(self, tmp_path):
        campaign = tiny_campaign()
        partial = run_campaign(campaign, tmp_path / "store", max_cells=1)
        assert partial.n_computed == 1 and partial.n_skipped == 3
        assert not partial.complete
        resumed = run_campaign(campaign, tmp_path / "store")
        assert resumed.n_computed == 3 and resumed.n_cached == 1
        assert resumed.complete

    def test_killed_sweep_keeps_finished_cells(self, tmp_path, monkeypatch):
        """A sweep dying mid-run loses only the in-flight cell."""
        campaign = tiny_campaign()
        real = runner_module.analyze_scenario
        calls = []

        def dying(scenario, *args, **kwargs):
            calls.append(scenario)
            if len(calls) == 3:
                raise KeyboardInterrupt("simulated kill")
            return real(scenario, *args, **kwargs)

        monkeypatch.setattr(runner_module, "analyze_scenario", dying)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, tmp_path / "store")
        monkeypatch.setattr(runner_module, "analyze_scenario", real)
        resumed = run_campaign(campaign, tmp_path / "store")
        assert resumed.n_computed == 2  # the interrupted cell and the never-started one
        assert resumed.n_cached == 2    # the two that completed before the kill
        assert resumed.complete

    def test_process_pool_fan_out_matches_serial(self, tmp_path):
        campaign = tiny_campaign()
        run_campaign(campaign, tmp_path / "serial-store")
        pooled = run_campaign(campaign, tmp_path / "pool-store", pool="process", pool_workers=2)
        assert pooled.n_computed == 4
        report_a = CampaignReport.from_store(tmp_path / "serial-store", campaign.name).render()
        report_b = CampaignReport.from_store(tmp_path / "pool-store", campaign.name).render()
        assert report_a == report_b

    def test_process_cells_under_process_pool_rejected(self, tmp_path):
        campaign = tiny_campaign(backends=("process",))
        with pytest.raises(ValueError, match="pool"):
            run_campaign(campaign, tmp_path / "store", pool="process")

    def test_pool_none_is_serial_even_with_pool_workers(self, tmp_path):
        """pool_workers alone must not infer a process pool (pool=None is serial)."""
        campaign = tiny_campaign(backends=("process",), seeds=(0,), scenarios=(TINY_FLAT,))
        run = run_campaign(campaign, tmp_path / "store", pool_workers=4)
        assert run.complete and run.n_computed == 1

    def test_recompute_replaces_entries(self, tmp_path):
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        run_campaign(campaign, tmp_path / "store")
        again = run_campaign(campaign, tmp_path / "store", recompute=True)
        assert again.n_computed == 1 and again.n_cached == 0

    def test_recompute_rejects_max_cells(self, tmp_path):
        """A capped recompute would re-select the same cells forever."""
        campaign = tiny_campaign()
        with pytest.raises(ValueError, match="max_cells"):
            run_campaign(campaign, tmp_path / "store", recompute=True, max_cells=1)

    def test_replacing_a_campaign_with_a_different_grid_warns(self, tmp_path, caplog):
        import logging

        run_campaign(tiny_campaign(scenarios=(TINY,), seeds=(0,)), tmp_path / "store")
        with caplog.at_level(logging.WARNING, logger="repro.campaigns.runner"):
            run_campaign(tiny_campaign(scenarios=(TINY_FLAT,), seeds=(0,)), tmp_path / "store")
        assert any("different grid" in record.message for record in caplog.records)

    def test_rerunning_the_same_grid_does_not_warn(self, tmp_path, caplog):
        import logging

        campaign = tiny_campaign(scenarios=(TINY,), seeds=(0,))
        run_campaign(campaign, tmp_path / "store")
        with caplog.at_level(logging.WARNING, logger="repro.campaigns.runner"):
            run_campaign(campaign, tmp_path / "store")
        assert not any("different grid" in record.message for record in caplog.records)

    def test_rejected_run_records_no_campaign(self, tmp_path):
        campaign = tiny_campaign(backends=("process",))
        with pytest.raises(ValueError, match="pool"):
            run_campaign(campaign, tmp_path / "store", pool="process")
        assert ResultStore(tmp_path / "store").campaign_names() == ()

    def test_cached_record_without_n_windows_reports_none(self, tmp_path):
        """The CellOutcome contract: a cached cell whose stored record
        predates window-count recording (older store, or written by
        ``get_or_compute``) carries ``n_windows=None`` and renders with an
        empty windows column — it must not crash or invent a count."""
        from repro.streaming.trace_io import write_json_atomic

        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        run_campaign(campaign, tmp_path / "store")
        store = ResultStore(tmp_path / "store")
        (key,) = campaign.unique_keys()
        record = store.record(key)
        record.pop("n_windows")
        write_json_atomic(store._record_path(key), record)
        warm = run_campaign(campaign, tmp_path / "store")
        (outcome,) = warm.outcomes
        assert outcome.status == "cached"
        assert outcome.n_windows is None
        assert outcome.as_row()["windows"] == ""

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"workers": 0}, "workers"),
            ({"workers": 2, "worker_index": 3}, "worker_index"),
            ({"workers": 2, "worker_index": 0}, "worker_index"),
            ({"workers": 2, "recompute": True}, "recompute"),
            ({"lease_ttl": 0.0}, "lease_ttl"),
            ({"lease_ttl": 5.0, "heartbeat_seconds": 5.0}, "heartbeat"),
            ({"poll_seconds": 0.0}, "poll_seconds"),
        ],
    )
    def test_fleet_argument_validation(self, tmp_path, kwargs, match):
        campaign = tiny_campaign()
        with pytest.raises(ValueError, match=match):
            run_campaign(campaign, tmp_path / "store", **kwargs)


class TestDeterminismProperty:
    """The store's warm path is indistinguishable from recomputation."""

    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n_valid=st.sampled_from([400, 900, 1_300]),
    )
    def test_cached_equals_recomputed_for_any_cell(self, seed, n_valid):
        spec = RunSpec(TINY_FLAT, seed=seed, n_valid=n_valid, quantities=("source_fanout",))
        with tempfile.TemporaryDirectory() as tmp:
            store = ResultStore(tmp)
            campaign = Campaign(
                "prop", scenarios=(TINY_FLAT,), seeds=(seed,), n_valids=(n_valid,),
                quantities=("source_fanout",),
            )
            run_campaign(campaign, store)
            cached = store.get(spec.key)
        fresh = analyze_scenario(
            TINY_FLAT, n_valid, seed=seed, quantities=("source_fanout",), keep_windows=False
        )
        assert cached.analysis == fresh.analysis
        a, b = cached.analysis.pooled("source_fanout"), fresh.analysis.pooled("source_fanout")
        assert np.array_equal(a.values, b.values) and np.array_equal(a.sigma, b.sigma)


class TestCampaignReport:
    def test_missing_cells_render_as_missing(self, tmp_path):
        campaign = tiny_campaign()
        run_campaign(campaign, tmp_path / "store", max_cells=2)
        report = CampaignReport.from_store(tmp_path / "store", campaign.name)
        assert not report.complete
        assert len(report.missing) == 2
        rows = report.cell_rows("source_fanout")
        assert sum(1 for r in rows if r["status"] == "missing") == 2

    def test_summary_counts_each_seed_once_across_backends(self, tmp_path):
        campaign = tiny_campaign(
            scenarios=(TINY,), backends=("serial", "streaming"), chunk_packets=2_000
        )
        run_campaign(campaign, tmp_path / "store")
        report = CampaignReport.from_store(tmp_path / "store", campaign.name)
        (row,) = report.summary_rows("source_fanout")
        assert row["seeds"] == 2

    def test_unknown_campaign_raises(self, tmp_path):
        ResultStore(tmp_path / "store")
        with pytest.raises(KeyError, match="no campaign"):
            CampaignReport.from_store(tmp_path / "store", "nope")


class TestCellRetries:
    """Per-cell retry budgets: flaky analyses get re-run, attempts recorded."""

    def _flaky(self, monkeypatch, failures: int):
        """Patch the runner's analyze_scenario to fail *failures* times per run."""
        real = runner_module.analyze_scenario
        calls = []

        def flaky(*args, **kwargs):
            calls.append(1)
            if len(calls) <= failures:
                raise RuntimeError(f"transient failure #{len(calls)}")
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "analyze_scenario", flaky)
        return calls

    def test_budget_rescues_flaky_cell(self, tmp_path, monkeypatch):
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        calls = self._flaky(monkeypatch, failures=2)
        run = run_campaign(campaign, tmp_path / "store", cell_retries=2)
        assert run.complete and run.n_computed == 1 and run.n_failed == 0
        assert len(calls) == 3
        (outcome,) = run.outcomes
        assert outcome.attempts == 3

        store = ResultStore(tmp_path / "store")
        assert store.record(outcome.key)["attempts"] == 3
        report = CampaignReport.from_store(store, campaign.name)
        (row,) = report.cell_rows("source_fanout")
        assert row["attempts"] == 3 and row["status"] == "stored"
        (status_row,) = fleet_status_rows(store, [campaign.name])
        assert status_row["retried"] == 1 and status_row["complete"]

    def test_rescued_cell_is_bit_identical_to_clean_run(self, tmp_path, monkeypatch):
        """Retries change nothing about the stored result, only its history."""
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        run_campaign(campaign, tmp_path / "clean")
        self._flaky(monkeypatch, failures=1)
        run = run_campaign(campaign, tmp_path / "flaky", cell_retries=1)
        key = run.outcomes[0].key
        clean = ResultStore(tmp_path / "clean").get(key)
        rescued = ResultStore(tmp_path / "flaky").get(key)
        a = clean.analysis.pooled("source_fanout")
        b = rescued.analysis.pooled("source_fanout")
        assert a.values.tobytes() == b.values.tobytes()
        assert a.sigma.tobytes() == b.sigma.tobytes()

    def test_zero_budget_fails_on_first_error(self, tmp_path, monkeypatch):
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        calls = self._flaky(monkeypatch, failures=99)
        run = run_campaign(campaign, tmp_path / "store")
        assert run.n_failed == 1 and len(calls) == 1
        (outcome,) = run.outcomes
        assert outcome.attempts == 1 and "transient failure #1" in outcome.error

    def test_exhausted_budget_reports_final_attempt_count(self, tmp_path, monkeypatch):
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        calls = self._flaky(monkeypatch, failures=99)
        run = run_campaign(campaign, tmp_path / "store", cell_retries=2)
        assert run.n_failed == 1 and len(calls) == 3
        (outcome,) = run.outcomes
        assert outcome.attempts == 3 and "transient failure #3" in outcome.error
        # nothing was stored, so nothing was retried from the store's view
        (status_row,) = fleet_status_rows(
            ResultStore(tmp_path / "store"), [campaign.name]
        )
        assert status_row["retried"] == 0 and not status_row["complete"]

    def test_retry_attempts_logged_as_warnings(self, tmp_path, monkeypatch, caplog):
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        self._flaky(monkeypatch, failures=1)
        with caplog.at_level("WARNING", logger="repro"):
            run_campaign(campaign, tmp_path / "store", cell_retries=1)
        assert any("retrying" in record.message for record in caplog.records)

    def test_negative_budget_rejected(self, tmp_path):
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        with pytest.raises(ValueError, match="cell_retries"):
            run_campaign(campaign, tmp_path / "store", cell_retries=-1)

    def test_cached_cells_keep_their_recorded_attempts(self, tmp_path, monkeypatch):
        """A warm re-run reports the attempts recorded when the cell was computed."""
        campaign = tiny_campaign(seeds=(0,), scenarios=(TINY_FLAT,))
        self._flaky(monkeypatch, failures=2)
        run_campaign(campaign, tmp_path / "store", cell_retries=2)
        warm = run_campaign(campaign, tmp_path / "store")
        (outcome,) = warm.outcomes
        assert outcome.status == "cached" and outcome.attempts == 3
