"""Tests for lease-based multi-worker campaigns and per-cell failure containment.

Three contracts under test, in increasing order of machinery:

* **lease primitives** — ``O_EXCL`` acquisition is exclusive, heartbeats
  keep a claim alive, stale leases are taken over, and GC only ever sweeps
  leases that no longer guard anything;
* **failure containment** — a raising cell becomes a ``status="failed"``
  outcome with the error text; every other cell still computes, nothing
  torn lands in the store, and a re-run retries exactly the failed cells;
* **fleets** — two real processes sweeping one grid over one store compute
  disjoint cell sets (zero duplicate computes in the happy path), a
  SIGKILLed worker's stale lease is taken over by a resuming sweep, and
  the fleet-swept store is bit-identical to a serial sweep.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from pathlib import Path

import pytest

import repro.campaigns.runner as runner_module
from repro.campaigns import (
    Campaign,
    ResultStore,
    parse_worker_id,
    run_campaign,
)
from repro.campaigns.runner import _claim_and_compute_cell
from repro.scenarios import Phase, Scenario

#: Tiny scenarios (distinct from test_campaigns.py's so cross-file runs
#: never share content keys by accident).
LEASE_TINY = Scenario(
    "tiny-lease-test",
    phases=(
        Phase("erdos-renyi", 5_000, {"n_nodes": 300, "p": 0.03}),
        Phase("palu", 5_000, {"n_nodes": 400, "alpha": 2.1}, rate_exponent=1.3),
    ),
    description="test-only lease workload",
)

LEASE_FLAT = Scenario(
    "tiny-lease-flat",
    phases=(Phase("erdos-renyi", 6_000, {"n_nodes": 300, "p": 0.03}),),
)

QUANTITIES = ("source_fanout",)

KEY_A = "ab" + "0" * 62
KEY_B = "cd" + "0" * 62


def lease_campaign(name="lease", **overrides) -> Campaign:
    settings = {
        "scenarios": (LEASE_TINY, LEASE_FLAT),
        "seeds": (0, 1),
        "n_valids": (1_000,),
        "quantities": QUANTITIES,
    }
    settings.update(overrides)
    return Campaign(name, **settings)


def _age_lease(store: ResultStore, key: str, seconds: float) -> None:
    """Backdate a lease's heartbeat, as if its holder stopped beating."""
    path = store._lease_path(key)
    old = time.time() - seconds
    os.utime(path, (old, old))


class TestLeasePrimitives:
    def test_acquire_is_exclusive(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.acquire_lease(KEY_A, "w1", ttl=10)
        assert not store.acquire_lease(KEY_A, "w2", ttl=10)
        info = store.lease_info(KEY_A, ttl=10)
        assert info["owner"] == "w1" and not info["stale"]
        assert info["pid"] == os.getpid()

    def test_release_then_reacquire(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.acquire_lease(KEY_A, "w1", ttl=10)
        assert store.release_lease(KEY_A, "w1")
        assert store.lease_info(KEY_A) is None
        assert store.acquire_lease(KEY_A, "w2", ttl=10)

    def test_release_by_non_owner_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.acquire_lease(KEY_A, "w1", ttl=10)
        assert not store.release_lease(KEY_A, "w2")
        assert store.lease_info(KEY_A, ttl=10)["owner"] == "w1"

    def test_refresh_requires_ownership_and_bumps_heartbeat(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.acquire_lease(KEY_A, "w1", ttl=10)
        _age_lease(store, KEY_A, 8.0)
        assert store.lease_info(KEY_A, ttl=10)["age"] > 7
        assert not store.refresh_lease(KEY_A, "w2")
        assert store.refresh_lease(KEY_A, "w1")
        assert store.lease_info(KEY_A, ttl=10)["age"] < 1
        assert not store.refresh_lease(KEY_B, "w1")  # no lease at all

    def test_stale_lease_is_taken_over(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.acquire_lease(KEY_A, "dead", ttl=5)
        _age_lease(store, KEY_A, 60.0)
        assert store.lease_info(KEY_A, ttl=5)["stale"]
        assert store.acquire_lease(KEY_A, "alive", ttl=5)
        info = store.lease_info(KEY_A, ttl=5)
        assert info["owner"] == "alive" and not info["stale"]

    def test_unreadable_lease_still_occupies_and_ages(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        path = store._lease_path(KEY_A)
        path.parent.mkdir(parents=True)
        path.write_text("{torn", encoding="utf-8")
        assert not store.acquire_lease(KEY_A, "w1", ttl=10)
        info = store.lease_info(KEY_A, ttl=10)
        assert info["owner"] == "<unreadable>" and not info["stale"]
        _age_lease(store, KEY_A, 60.0)
        assert store.acquire_lease(KEY_A, "w1", ttl=10)
        assert store.lease_info(KEY_A, ttl=10)["owner"] == "w1"

    def test_gc_sweeps_only_dead_claims(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(KEY_A, {"x": 1})
        store.acquire_lease(KEY_A, "late", ttl=5)       # stored: holder died pre-release
        store.acquire_lease(KEY_B, "gone", ttl=5)
        _age_lease(store, KEY_B, 60.0)                  # stale: holder died mid-compute
        live = "ef" + "0" * 62
        store.acquire_lease(live, "busy", ttl=5)        # fresh claim on a missing key
        assert store.gc_leases(ttl=5) == 2
        assert [info["owner"] for info in store.iter_leases(ttl=5)] == ["busy"]

    def test_ancient_leases_pruned_at_open(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.acquire_lease(KEY_A, "forgotten", ttl=5)
        _age_lease(store, KEY_A, 2 * ResultStore._TEMP_MAX_AGE_SECONDS)
        store.acquire_lease(KEY_B, "recent", ttl=5)
        reopened = ResultStore(tmp_path / "store")
        owners = [info["owner"] for info in reopened.iter_leases(ttl=5)]
        assert owners == ["recent"]

    def test_parse_worker_id(self):
        assert parse_worker_id("1/1") == (1, 1)
        assert parse_worker_id("3/8") == (3, 8)
        for bad in ("0/2", "3/2", "2", "a/b", "1/0", "/", "1/", "/2"):
            with pytest.raises(ValueError, match="worker id"):
                parse_worker_id(bad)


class TestHeartbeat:
    def test_heartbeat_keeps_long_cell_claims_fresh(self, tmp_path, monkeypatch):
        """While a slow cell computes, its lease never goes TTL-stale and a
        competing worker cannot claim it; afterwards the cell is stored and
        the lease released.

        Deadline-based, no fixed sleeps: the slow cell holds its lease open
        until the main thread has *observed* the lease for longer than the
        TTL (so a dead heartbeat could not hide), with generous ceilings on
        every wait so a loaded machine slows the test down instead of
        flaking it."""
        real = runner_module.analyze_scenario
        observed_enough = threading.Event()

        def slow(*args, **kwargs):
            observed_enough.wait(timeout=60)
            return real(*args, **kwargs)

        monkeypatch.setattr(runner_module, "analyze_scenario", slow)
        campaign = lease_campaign(scenarios=(LEASE_FLAT,), seeds=(0,))
        (spec,) = campaign.cells()
        store = ResultStore(tmp_path / "store")
        ttl = 1.0

        result: dict = {}

        def work():
            result.update(
                _claim_and_compute_cell(
                    spec, store_root=str(store.root), owner="slowpoke",
                    ttl=ttl, heartbeat=0.1,
                )
            )

        worker = threading.Thread(target=work)
        worker.start()
        deadline = time.time() + 120
        first_seen = None
        stale_seen = False
        foreign_claims = 0
        while worker.is_alive() and time.time() < deadline:
            info = store.lease_info(spec.key, ttl=ttl)
            if info is not None:
                now = time.time()
                first_seen = first_seen if first_seen is not None else now
                stale_seen = stale_seen or info["stale"]
                if store.acquire_lease(spec.key, "thief", ttl=ttl):
                    foreign_claims += 1
                    store.release_lease(spec.key, "thief")
                # the lease outlived 2x its TTL under observation: only the
                # heartbeat can have kept it fresh — let the cell finish
                if now - first_seen >= 2 * ttl:
                    observed_enough.set()
            time.sleep(0.05)
        observed_enough.set()  # unblock the worker on any exit path
        worker.join(timeout=120)
        assert not worker.is_alive(), "slow cell never finished"
        assert first_seen is not None, "lease was never observed"
        assert result["status"] == "computed"
        assert not stale_seen
        assert foreign_claims == 0
        assert spec.key in store
        assert store.lease_info(spec.key) is None


class TestFailureContainment:
    def test_raising_cell_does_not_abort_the_sweep(self, tmp_path, monkeypatch):
        campaign = lease_campaign()
        real = runner_module.analyze_scenario

        def exploding(scenario, *args, **kwargs):
            if scenario.name == LEASE_FLAT.name:
                raise RuntimeError("synthetic cell failure")
            return real(scenario, *args, **kwargs)

        monkeypatch.setattr(runner_module, "analyze_scenario", exploding)
        run = run_campaign(campaign, tmp_path / "store", lease_ttl=10)
        assert run.n_computed == 2 and run.n_failed == 2
        assert not run.complete
        store = ResultStore(tmp_path / "store")
        for outcome in run.failures:
            assert outcome.error == "RuntimeError: synthetic cell failure"
            assert outcome.n_windows is None
            assert outcome.key not in store
        assert list(store.iter_leases()) == []  # failed claims are released
        assert len(run.failure_lines()) == 2
        assert "RuntimeError: synthetic cell failure" in run.failure_lines()[0]

    def test_rerun_retries_exactly_the_failed_cells(self, tmp_path, monkeypatch):
        campaign = lease_campaign()
        real = runner_module.analyze_scenario

        def exploding(scenario, *args, **kwargs):
            if scenario.name == LEASE_FLAT.name:
                raise RuntimeError("transient")
            return real(scenario, *args, **kwargs)

        monkeypatch.setattr(runner_module, "analyze_scenario", exploding)
        first = run_campaign(campaign, tmp_path / "store", lease_ttl=10)
        assert first.n_failed == 2
        monkeypatch.setattr(runner_module, "analyze_scenario", real)
        resumed = run_campaign(campaign, tmp_path / "store", lease_ttl=10)
        assert resumed.n_computed == 2 and resumed.n_cached == 2
        assert resumed.n_failed == 0 and resumed.complete

    def test_failed_duplicate_cells_share_the_error(self, tmp_path, monkeypatch):
        campaign = lease_campaign(
            scenarios=(LEASE_FLAT,), seeds=(0,),
            backends=("serial", "streaming"), chunk_packets=2_000,
        )
        monkeypatch.setattr(
            runner_module, "analyze_scenario",
            lambda *a, **k: (_ for _ in ()).throw(ValueError("bad cell")),
        )
        run = run_campaign(campaign, tmp_path / "store", lease_ttl=10)
        assert run.n_failed == 2  # both grid cells of the shared key
        assert len(run.failure_lines()) == 1  # but one unique failure
        assert {o.error for o in run.failures} == {"ValueError: bad cell"}

    def test_failures_contained_under_process_pool(self, tmp_path):
        """Containment must hold when cells run on pool workers too: an
        unpicklable-argument TypeError style failure in one worker cannot
        sink the others.  Forcing a real exception inside a worker needs a
        cell that fails on its own, so point one scenario at an impossible
        graph parameterisation that only explodes at generation time."""
        bad = Scenario(
            "tiny-lease-bad",
            phases=(Phase("erdos-renyi", 5_000, {"n_nodes": 300, "p": 40.0}),),
        )
        campaign = lease_campaign(scenarios=(LEASE_FLAT, bad), seeds=(0,))
        run = run_campaign(
            campaign, tmp_path / "store", pool="process", pool_workers=2, lease_ttl=10
        )
        assert run.n_computed == 1 and run.n_failed == 1
        (failure,) = run.failures
        assert failure.scenario == "tiny-lease-bad" and failure.error


class TestPutCleanup:
    def test_put_failure_is_not_masked_by_cleanup(self, tmp_path, monkeypatch):
        """When ``os.replace`` consumes the temp file and *then* the put
        fails, the cleanup unlink (now missing its target) must not
        swallow the original error."""
        store = ResultStore(tmp_path / "store")
        real_replace = os.replace

        def replace_then_fail(src, dst, *args, **kwargs):
            real_replace(src, dst, *args, **kwargs)
            raise RuntimeError("disk went away")

        monkeypatch.setattr(os, "replace", replace_then_fail)
        with pytest.raises(RuntimeError, match="disk went away"):
            store.put(KEY_A, {"x": 1})


def _fleet_worker(campaign, store_root, worker_index, workers, out_path):
    """Fleet-member entry point (module-level so fork/spawn can target it)."""
    run = run_campaign(
        campaign, store_root,
        workers=workers, worker_index=worker_index, lease_ttl=10.0,
    )
    Path(out_path).write_text(
        json.dumps(
            {
                "computed": sorted(
                    {o.key for o in run.outcomes if o.status == "computed"}
                ),
                "failed": sorted({o.key for o in run.outcomes if o.status == "failed"}),
                "complete": run.complete,
            }
        ),
        encoding="utf-8",
    )


def _doomed_worker(campaign, store_root, delay):
    """Fleet member whose every cell stalls *delay* seconds — SIGKILL bait."""
    real = runner_module.analyze_scenario

    def slow(*args, **kwargs):
        time.sleep(delay)
        return real(*args, **kwargs)

    runner_module.analyze_scenario = slow
    run_campaign(campaign, store_root, workers=1, worker_index=1, lease_ttl=60.0)


def _object_bytes(root) -> dict:
    """Relative path -> payload bytes of every stored object under *root*."""
    root = Path(root)
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.glob("objects/*/*.pkl.gz"))
    }


@pytest.mark.slow
class TestFleet:
    """Real multi-process fleets over one shared store."""

    def test_two_workers_split_the_grid_without_duplicates(self, tmp_path):
        campaign = lease_campaign(seeds=(0, 1, 2))  # 6 unique cells
        store_root = tmp_path / "fleet-store"
        ctx = multiprocessing.get_context("fork")
        outs = [tmp_path / "w1.json", tmp_path / "w2.json"]
        procs = [
            ctx.Process(
                target=_fleet_worker,
                args=(campaign, str(store_root), k, 2, str(out)),
            )
            for k, out in zip((1, 2), outs)
        ]
        for proc in procs:
            proc.start()
        # deadline-based with a generous ceiling: a stuck worker fails the
        # test with a clear message instead of asserting on exitcode None
        deadline = time.time() + 300
        for proc in procs:
            proc.join(timeout=max(1.0, deadline - time.time()))
            assert not proc.is_alive(), "fleet worker did not finish before the deadline"
            assert proc.exitcode == 0
        results = [json.loads(out.read_text(encoding="utf-8")) for out in outs]
        computed = [set(r["computed"]) for r in results]
        # zero duplicate computes in the happy path: the computed sets are
        # disjoint and together cover the whole grid
        assert computed[0].isdisjoint(computed[1])
        assert computed[0] | computed[1] == set(campaign.unique_keys())
        assert all(r["complete"] for r in results)
        assert list(ResultStore(store_root).iter_leases()) == []

        # the fleet-swept store is bit-identical to a serial sweep
        serial_root = tmp_path / "serial-store"
        serial = run_campaign(campaign, serial_root)
        assert serial.complete
        assert _object_bytes(store_root) == _object_bytes(serial_root)

    def test_sigkilled_worker_lease_is_taken_over(self, tmp_path):
        campaign = lease_campaign(scenarios=(LEASE_FLAT,), seeds=(7,))
        store_root = tmp_path / "fleet-store"
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(
            target=_doomed_worker, args=(campaign, str(store_root), 60.0)
        )
        victim.start()
        store = ResultStore.__new__(ResultStore)  # opened lazily below
        deadline = time.time() + 60
        lease = None
        while time.time() < deadline and lease is None:
            if (Path(store_root) / "store.json").is_file():
                store = ResultStore(store_root)
                lease = next(iter(store.iter_leases(ttl=60.0)), None)
            if lease is None:
                time.sleep(0.05)
        assert lease is not None, "victim never claimed a lease"
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=60)
        assert not victim.is_alive(), "SIGKILLed worker did not reap"

        # the kill froze the heartbeat mid-cell: the lease survives, the
        # cell is missing, and a short-TTL resume must take the claim over
        store = ResultStore(store_root)
        (key,) = campaign.unique_keys()
        assert key not in store
        assert store.lease_info(key, ttl=60.0) is not None

        resumed = run_campaign(campaign, store_root, lease_ttl=0.5)
        assert resumed.n_computed == 1 and resumed.complete
        assert key in store
        assert store.lease_info(key) is None  # takeover claim was released

        serial_root = tmp_path / "serial-store"
        run_campaign(campaign, serial_root)
        assert _object_bytes(store_root) == _object_bytes(serial_root)
