"""Unit tests for repro.analysis.pooling (binary-log pooling)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import degree_histogram
from repro.analysis.pooling import (
    PooledDistribution,
    aggregate_pooled,
    log2_bin_edges,
    log2_bin_index,
    pool_differential_cumulative,
    pool_probability_vector,
)


class TestBinEdges:
    def test_edges_cover_dmax(self):
        edges = log2_bin_edges(100)
        assert edges[-1] >= 100
        assert edges[0] == 1

    def test_edges_are_powers_of_two(self):
        edges = log2_bin_edges(1000)
        np.testing.assert_array_equal(edges, 2 ** np.arange(edges.size))

    def test_dmax_one(self):
        np.testing.assert_array_equal(log2_bin_edges(1), [1])

    def test_dmax_exact_power_of_two(self):
        edges = log2_bin_edges(8)
        assert edges[-1] == 8

    def test_invalid_dmax(self):
        with pytest.raises((ValueError, TypeError)):
            log2_bin_edges(0)


class TestBinIndex:
    def test_mapping_matches_paper_convention(self):
        # bin i contains degrees (2^{i-1}, 2^i]
        degrees = np.array([1, 2, 3, 4, 5, 8, 9, 16, 17])
        expected = np.array([0, 1, 2, 2, 3, 3, 4, 4, 5])
        np.testing.assert_array_equal(log2_bin_index(degrees), expected)

    def test_rejects_zero_degree(self):
        with pytest.raises(ValueError):
            log2_bin_index(np.array([0, 1]))


class TestPooling:
    def test_probability_conserved(self):
        hist = degree_histogram([1] * 10 + [3] * 5 + [100] * 2)
        pooled = pool_differential_cumulative(hist)
        assert pooled.probability_sum() == pytest.approx(1.0)

    def test_first_bin_is_degree_one_mass(self):
        hist = degree_histogram([1] * 7 + [2] * 3)
        pooled = pool_differential_cumulative(hist)
        assert pooled.values[0] == pytest.approx(0.7)

    def test_matches_cumulative_differences(self):
        values = [1] * 50 + [2] * 20 + [3] * 10 + [4] * 8 + [7] * 6 + [30] * 6
        hist = degree_histogram(values)
        pooled = pool_differential_cumulative(hist)
        # D(d_i) must equal P(2^i) - P(2^{i-1}) computed from the dense cdf
        dense_p = hist.dense_probability(pooled.bin_edges[-1])
        cdf = np.cumsum(dense_p)
        for i in range(1, pooled.n_bins):
            expected = cdf[2**i - 1] - cdf[2 ** (i - 1) - 1]
            assert pooled.values[i] == pytest.approx(expected)

    def test_forced_bin_count(self):
        hist = degree_histogram([1, 2, 3])
        pooled = pool_differential_cumulative(hist, n_bins=8)
        assert pooled.n_bins == 8
        assert pooled.values[5:].sum() == 0.0

    def test_forced_bin_count_too_small_rejected(self):
        hist = degree_histogram([1, 100])
        with pytest.raises(ValueError):
            pool_differential_cumulative(hist, n_bins=2)

    def test_empty_histogram(self):
        pooled = pool_differential_cumulative(degree_histogram([]))
        assert pooled.total == 0
        assert pooled.probability_sum() == 0.0

    def test_total_preserved(self):
        hist = degree_histogram([1, 2, 2, 8])
        pooled = pool_differential_cumulative(hist)
        assert pooled.total == 4


class TestPoolProbabilityVector:
    def test_model_vector_conserved(self):
        p = np.full(16, 1 / 16)
        pooled = pool_probability_vector(p)
        assert pooled.probability_sum() == pytest.approx(1.0)

    def test_agrees_with_histogram_pooling(self):
        counts = np.array([50, 20, 10, 8, 6, 3, 2, 1])
        hist = degree_histogram(np.repeat(np.arange(1, 9), counts))
        from_hist = pool_differential_cumulative(hist)
        from_vector = pool_probability_vector(counts / counts.sum())
        np.testing.assert_allclose(from_hist.values, from_vector.values)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            pool_probability_vector([-0.1, 1.1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            pool_probability_vector([])


class TestPooledDistributionObject:
    def test_nonzero_filters(self):
        pooled = PooledDistribution(bin_edges=np.array([1, 2, 4]), values=np.array([0.5, 0.0, 0.5]))
        nz = pooled.nonzero()
        np.testing.assert_array_equal(nz.bin_edges, [1, 4])

    def test_align_to_superset(self):
        pooled = PooledDistribution(bin_edges=np.array([1, 2]), values=np.array([0.6, 0.4]))
        aligned = pooled.align_to(np.array([1, 2, 4, 8]))
        np.testing.assert_allclose(aligned.values, [0.6, 0.4, 0.0, 0.0])

    def test_align_to_subset_drops_bins(self):
        pooled = PooledDistribution(bin_edges=np.array([1, 2, 4]), values=np.array([0.5, 0.3, 0.2]))
        aligned = pooled.align_to(np.array([1, 2]))
        np.testing.assert_allclose(aligned.values, [0.5, 0.3])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PooledDistribution(bin_edges=np.array([1, 2]), values=np.array([1.0]))

    def test_sigma_shape_checked(self):
        with pytest.raises(ValueError):
            PooledDistribution(
                bin_edges=np.array([1, 2]), values=np.array([0.5, 0.5]), sigma=np.array([0.1])
            )


class TestAggregatePooled:
    def test_mean_and_sigma(self):
        a = pool_differential_cumulative(degree_histogram([1, 1, 2, 2]))
        b = pool_differential_cumulative(degree_histogram([1, 2, 2, 2]))
        agg = aggregate_pooled([a, b])
        assert agg.values[0] == pytest.approx((0.5 + 0.25) / 2)
        assert agg.sigma is not None
        assert agg.sigma[0] == pytest.approx(abs(0.5 - 0.25) / 2)

    def test_single_window_sigma_zero(self):
        a = pool_differential_cumulative(degree_histogram([1, 2, 4]))
        agg = aggregate_pooled([a])
        np.testing.assert_allclose(agg.sigma, 0.0)

    def test_different_supports_are_aligned(self):
        short = pool_differential_cumulative(degree_histogram([1, 2]))
        long = pool_differential_cumulative(degree_histogram([1, 64]))
        agg = aggregate_pooled([short, long])
        assert agg.n_bins == long.n_bins
        assert agg.probability_sum() == pytest.approx(1.0)

    def test_total_is_summed(self):
        a = pool_differential_cumulative(degree_histogram([1, 2]))
        b = pool_differential_cumulative(degree_histogram([1, 2, 3]))
        assert aggregate_pooled([a, b]).total == 5

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            aggregate_pooled([])

    def test_mean_pooled_probability_conserved(self):
        windows = [
            pool_differential_cumulative(degree_histogram([1] * 5 + [2] * 3 + [9]))
            for _ in range(4)
        ]
        agg = aggregate_pooled(windows)
        assert agg.probability_sum() == pytest.approx(1.0)
