"""Golden-file regression tests: pinned detector alarm sequences.

For the ``alpha-drift`` and ``flash-crowd`` scenarios under a fixed seed,
the alarm sequence of every built-in detector (and the run's true
phase-boundary windows) is pinned in ``tests/golden/detect_*.json``, and
the serial, process, and streaming backends must all reproduce it
**exactly** — alarm indices are integers, so equality is exact by
construction; what the pin buys is catching any change to the detector
arithmetic, the distance statistic, the tuned defaults, or the generator's
draw order.

If a deliberate change moves these sequences, regenerate the goldens and
say so in the PR::

    PYTHONPATH=src python tests/test_detect_golden.py --write
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.detect import DETECTOR_NAMES
from repro.detect.evaluate import true_change_windows
from repro.scenarios import analyze_scenario

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"
SEED = 20210329
N_VALID = 2_000
GOLDEN_SCENARIOS = ("alpha-drift", "flash-crowd")
BACKENDS = ("serial", "process", "streaming")


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"detect_{name.replace('-', '_')}.json"


def _run(name: str, backend: str):
    kwargs = {"backend": backend, "keep_windows": False, "detectors": DETECTOR_NAMES}
    if backend == "process":
        kwargs["n_workers"] = 2
    if backend == "streaming":
        kwargs["chunk_packets"] = 9_000
    return analyze_scenario(name, N_VALID, seed=SEED, **kwargs)


def _snapshot(run) -> dict:
    """The pinned products: per-detector alarms + the ground truth they chase."""
    return {
        "seed": SEED,
        "n_valid": N_VALID,
        "n_windows": run.detection.n_windows,
        "quantity": run.detection.quantity,
        "true_boundaries": list(true_change_windows(run.phases.window_phase)),
        "alarms": {name: list(run.detection.alarms[name]) for name in DETECTOR_NAMES},
        "params": {name: run.detection.params[name] for name in DETECTOR_NAMES},
    }


@pytest.fixture(scope="module", params=GOLDEN_SCENARIOS)
def golden_case(request):
    path = _golden_path(request.param)
    if not path.is_file():  # pragma: no cover - regeneration guard
        pytest.fail(f"golden file {path} missing; regenerate with "
                    f"'python tests/test_detect_golden.py --write'")
    return request.param, json.loads(path.read_text(encoding="utf-8"))


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_reproduces_golden_alarms(golden_case, backend):
    name, golden = golden_case
    run = _run(name, backend)
    assert run.detection.n_windows == golden["n_windows"]
    assert run.detection.quantity == golden["quantity"]
    assert list(true_change_windows(run.phases.window_phase)) == golden["true_boundaries"]
    for detector in DETECTOR_NAMES:
        assert list(run.detection.alarms[detector]) == golden["alarms"][detector], (
            f"{name}/{backend}/{detector}: alarm sequence moved off the golden pin"
        )


def test_golden_params_match_current_defaults():
    """A silent change to the tuned defaults must fail loudly, not drift."""
    from repro.detect import get_detector

    for name in GOLDEN_SCENARIOS:
        golden = json.loads(_golden_path(name).read_text(encoding="utf-8"))
        for detector in DETECTOR_NAMES:
            assert golden["params"][detector] == dict(get_detector(detector).params()), (
                f"detector {detector} defaults changed; regenerate the detect goldens"
            )


def test_goldens_pin_detections_not_silence():
    """Every pinned scenario has boundaries, and every detector detects ≥1."""
    for name in GOLDEN_SCENARIOS:
        golden = json.loads(_golden_path(name).read_text(encoding="utf-8"))
        assert golden["true_boundaries"], name
        for detector in DETECTOR_NAMES:
            assert golden["alarms"][detector], f"{name}/{detector} pinned no alarms"


def _write_goldens() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in GOLDEN_SCENARIOS:
        snapshot = _snapshot(_run(name, "serial"))
        path = _golden_path(name)
        path.write_text(json.dumps(snapshot, indent=1) + "\n", encoding="utf-8")
        print(f"wrote {path} ({snapshot['alarms']})")


if __name__ == "__main__":
    if "--write" in sys.argv:
        _write_goldens()
    else:
        print(__doc__)
