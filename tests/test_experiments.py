"""Integration tests for the experiment drivers (table/figure reproductions).

These are scaled-down versions of the benchmark harness runs: each driver is
executed on a small workload and the structural claims of the corresponding
table or figure are asserted (who wins, what is conserved, which effects have
the right sign) rather than absolute numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    FIG3_SCENARIOS,
    default_palu_parameters,
    run_fig1,
    run_fig2,
    run_fig3_scenario,
    run_fig4,
    run_lambda_estimator_ablation,
    run_palu_expectations,
    run_palu_recovery,
    run_table1,
    run_webcrawl_ablation,
    run_window_invariance_ablation,
)
from repro.experiments.config import Scenario


class TestTable1:
    def test_rows_and_consistency(self):
        rows = run_table1(window_sizes=(5_000, 20_000), n_nodes=8_000, rng=0)
        assert len(rows) == 2
        for row in rows:
            assert row["valid_packets"] == row["NV"]
            assert row["notations_agree"] is True
            assert row["unique_sources"] <= 2 * row["unique_links"]
            assert row["unique_destinations"] <= 2 * row["unique_links"]
            assert row["unique_links"] <= row["valid_packets"]


class TestFig1:
    def test_quantity_breakdown(self):
        rows = run_fig1(n_valid=20_000, n_nodes=6_000, rng=0)
        by_name = {r["quantity"]: r for r in rows}
        assert set(by_name) == {
            "source_packets",
            "source_fanout",
            "link_packets",
            "destination_fanin",
            "destination_packets",
        }
        # packet-count quantities total exactly N_V
        assert by_name["source_packets"]["total"] == 20_000
        assert by_name["destination_packets"]["total"] == 20_000
        assert by_name["link_packets"]["total"] == 20_000
        # fan-out totals the number of unique links, which is below N_V
        assert by_name["source_fanout"]["total"] < 20_000
        # every quantity shows a significant mass at value 1 (leaves/unattached)
        assert all(r["frac_at_1"] > 0.05 for r in rows)


class TestFig2:
    def test_topology_classes_respond_to_mix(self):
        rows = run_fig2(n_nodes=8_000, p=0.6, rng=0)
        by_mix = {r["mix"]: r for r in rows}
        assert set(by_mix) == {"core-heavy", "balanced", "bot-heavy"}
        # a bot-heavy mix shows more unattached debris than a core-heavy mix
        assert by_mix["bot-heavy"]["n_unattached_nodes"] > by_mix["core-heavy"]["n_unattached_nodes"]
        assert by_mix["bot-heavy"]["n_unattached_links"] > 0
        # every Figure-2 class is populated in the balanced mix
        balanced = by_mix["balanced"]
        for key in ("n_supernodes", "n_supernode_leaves", "n_core", "n_core_leaves", "n_unattached_nodes"):
            assert balanced[key] > 0


class TestFig3:
    @pytest.fixture(scope="class")
    def small_scenario(self) -> Scenario:
        base = FIG3_SCENARIOS[0]
        return Scenario(
            name=base.name,
            quantity=base.quantity,
            paper_nv=base.paper_nv,
            paper_alpha=base.paper_alpha,
            paper_delta=base.paper_delta,
            parameters=base.parameters,
            n_nodes=8_000,
            n_packets=120_000,
            n_valid=40_000,
            rate_exponent=base.rate_exponent,
            seed=base.seed,
        )

    def test_scenario_row_structure(self, small_scenario):
        row = run_fig3_scenario(small_scenario)
        assert row["n_windows"] >= 2
        assert 1.0 < row["alpha_fit"] < 4.0
        assert row["delta_fit"] > -1.0
        assert 0.0 < row["D(d=1)"] <= 1.0

    def test_zm_beats_pure_power_law(self, small_scenario):
        """The central Figure-3 claim: the two-parameter ZM fit outperforms the baseline."""
        row = run_fig3_scenario(small_scenario)
        assert row["zm_log_mse"] < row["powerlaw_log_mse"]

    def test_scenario_catalogue_is_complete(self):
        assert len(FIG3_SCENARIOS) == 11
        names = {s.name for s in FIG3_SCENARIOS}
        assert len(names) == 11
        quantities = {s.quantity for s in FIG3_SCENARIOS}
        assert quantities == {
            "source_packets",
            "source_fanout",
            "link_packets",
            "destination_fanin",
            "destination_packets",
        }
        for s in FIG3_SCENARIOS:
            assert 1.4 < s.paper_alpha < 2.4
            assert -1.0 < s.paper_delta < 1.0


class TestFig4:
    def test_rows_cover_all_panels(self):
        rows = run_fig4(dmax=5_000)
        panels = {(r["panel_alpha"], r["panel_delta"]) for r in rows}
        assert len(panels) == 5

    def test_convergence_within_each_panel(self):
        rows = run_fig4(dmax=5_000)
        for alpha, delta in {(r["panel_alpha"], r["panel_delta"]) for r in rows}:
            errors = [r["log_mse_vs_ZM"] for r in rows if r["panel_alpha"] == alpha and r["panel_delta"] == delta]
            assert errors[-1] < errors[0]


class TestPALUExpectations:
    def test_predictions_track_simulation(self):
        rows = run_palu_expectations(n_nodes=30_000, p_values=(0.4, 0.8), rng=1)
        assert len(rows) == 2
        for row in rows:
            assert row["V_pred"] == pytest.approx(row["V_sim"], rel=0.1)
            assert row["leaves_pred"] == pytest.approx(row["leaves_sim"], abs=0.05)
            assert row["unattached_pred"] == pytest.approx(row["unattached_sim"], abs=0.05)
            assert row["deg1_pred"] == pytest.approx(row["deg1_sim"], abs=0.08)

    def test_visible_fraction_grows_with_p(self):
        rows = run_palu_expectations(n_nodes=20_000, p_values=(0.3, 0.9), rng=2)
        assert rows[1]["V_sim"] > rows[0]["V_sim"]


class TestPALURecovery:
    def test_reduced_parameters_recovered(self):
        rows = run_palu_recovery(p_values=(0.5,), n_samples=400_000, dmax=20_000, rng=3)
        row = rows[0]
        assert row["alpha_fit"] == pytest.approx(row["alpha_true"], abs=0.15)
        assert row["c_fit"] == pytest.approx(row["c_true"], rel=0.2)
        assert row["l_fit"] == pytest.approx(row["l_true"], rel=0.2)


class TestAblations:
    def test_window_invariance(self):
        rows = run_window_invariance_ablation(
            p_values=(0.4, 0.8), n_samples=400_000, dmax=10_000, rng=4
        )
        alphas = [r["alpha_hat"] for r in rows]
        # alpha must not drift with the window parameter
        assert max(alphas) - min(alphas) < 0.2

    def test_lambda_estimator_moment_not_worse_than_pointwise(self):
        summary = run_lambda_estimator_ablation(
            p=0.5, n_samples=100_000, n_repeats=6, dmax=10_000, rng=5
        )
        assert summary["moment_std"] <= summary["pointwise_std"] * 1.5
        assert summary["moment_mean"] > 0

    def test_webcrawl_vs_trunk(self):
        rows = run_webcrawl_ablation(n_nodes=15_000, p=0.6, rng=6)
        by_obs = {r["observation"]: r for r in rows}
        crawl, trunk = by_obs["webcrawl"], by_obs["trunk_edge_sample"]
        # the crawl sees no unattached debris; trunk observation sees plenty
        assert trunk["n_small_components"] > crawl["n_small_components"]
        # trunk observation has a larger degree-1 excess
        assert trunk["frac_degree_1"] > crawl["frac_degree_1"] - 0.05
        # the ZM model helps more (relative to a pure power law) on trunk data
        trunk_gain = trunk["powerlaw_log_mse"] - trunk["zm_log_mse"]
        crawl_gain = crawl["powerlaw_log_mse"] - crawl["zm_log_mse"]
        assert trunk_gain >= crawl_gain - 0.01


class TestDefaultParameters:
    def test_default_parameters_valid(self):
        params = default_palu_parameters()
        assert params.constraint_value() == pytest.approx(1.0)
        assert 1.5 <= params.alpha <= 3.0
