"""Unit tests for repro._util.rng and repro._util.logging."""

from __future__ import annotations

import logging

import numpy as np
import pytest

from repro._util.logging import get_logger, log_duration
from repro._util.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).random(5)
        b = as_generator(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(as_generator(seq), np.random.Generator)

    def test_invalid_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")


class TestSpawnGenerators:
    def test_count(self):
        children = spawn_generators(0, 4)
        assert len(children) == 4

    def test_children_independent(self):
        children = spawn_generators(0, 2)
        a = children[0].random(100)
        b = children[1].random(100)
        assert not np.allclose(a, b)

    def test_reproducible_from_seed(self):
        a = spawn_generators(5, 3)[1].random(10)
        b = spawn_generators(5, 3)[1].random(10)
        np.testing.assert_array_equal(a, b)

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestLogging:
    def test_root_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger_name(self):
        assert get_logger("streaming.pipeline").name == "repro.streaming.pipeline"

    def test_log_duration_emits(self, caplog):
        logger = get_logger("test")
        with caplog.at_level(logging.DEBUG, logger="repro.test"):
            with log_duration(logger, "unit-of-work"):
                pass
        assert any("unit-of-work" in record.message for record in caplog.records)
