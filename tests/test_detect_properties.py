"""Property-based tests (hypothesis) of the online drift detectors.

The detector contract, pinned over drawn seeds / chunkings / backends:

1. **Specificity** — on the ``stationary`` scenario (the paper's regime)
   every built-in detector raises **zero** alarms, for any seed in the
   validated range.
2. **Sensitivity** — on the regime-changing ``alpha-drift`` and
   ``flash-crowd`` scenarios every detector raises at least one alarm
   within a bounded latency of a true phase boundary.
3. **Invariance** — the alarm sequence is a function of the trace alone:
   identical across the serial / process / streaming backends and invariant
   to ``chunk_packets`` (chunking re-cuts the stream, it must never change
   what the detectors see).

Seeds are drawn from ``0..31`` — the range the default thresholds were
validated against, exhaustively, when they were tuned (see
``repro/detect/detectors.py``).  The properties are *deterministic* per
draw: a failure here means the detectors or the generator changed, not
that a new seed got unlucky.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.detect import DETECTOR_NAMES, evaluate_run

pytestmark = pytest.mark.slow

#: Window size the thresholds were tuned at.
N_VALID = 2_000
#: Detection window (windows after a true boundary) the tuning guarantees.
MAX_LATENCY = 8

_seeds = st.integers(min_value=0, max_value=31)

# example counts and deadlines are governed by the dev/ci profiles registered
# in conftest.py — do NOT pin max_examples here (it would override the
# --hypothesis-profile=ci selection); each example is a full scenario run, so
# these are the suite's heaviest properties and carry the `slow` marker.


class TestSpecificity:
    @given(seed=_seeds)
    def test_stationary_raises_zero_alarms(self, seed):
        run = repro.analyze_scenario(
            "stationary", N_VALID, seed=seed, detectors=DETECTOR_NAMES
        )
        assert all(run.detection.alarms[name] == () for name in DETECTOR_NAMES), (
            f"false alarms on the stationary control: {dict(run.detection.alarms)}"
        )


class TestSensitivity:
    @given(seed=_seeds, scenario=st.sampled_from(["alpha-drift", "flash-crowd"]))
    def test_regime_changes_detected_within_latency(self, seed, scenario):
        run = repro.analyze_scenario(
            scenario, N_VALID, seed=seed, detectors=DETECTOR_NAMES
        )
        for evaluation in evaluate_run(run, max_latency=MAX_LATENCY):
            assert evaluation.n_detected >= 1, (
                f"{evaluation.detector} missed every boundary of {scenario} "
                f"(seed {seed}): alarms {evaluation.alarms}, "
                f"boundaries {evaluation.boundaries}"
            )
            assert all(lat <= MAX_LATENCY for lat in evaluation.latencies)


class TestInvariance:
    @given(
        seed=st.integers(min_value=0, max_value=7),
        chunk_packets=st.integers(min_value=1_000, max_value=30_000),
    )
    @settings(deadline=None)
    def test_alarms_invariant_to_chunking(self, seed, chunk_packets):
        reference = repro.analyze_scenario(
            "flash-crowd", N_VALID, seed=seed, detectors=DETECTOR_NAMES
        )
        chunked = repro.analyze_scenario(
            "flash-crowd", N_VALID, seed=seed, detectors=DETECTOR_NAMES,
            backend="streaming", chunk_packets=chunk_packets,
        )
        assert chunked.detection.alarms == reference.detection.alarms

    @given(seed=st.integers(min_value=0, max_value=7))
    @settings(deadline=None)
    def test_alarms_identical_across_all_three_backends(self, seed):
        runs = {
            backend: repro.analyze_scenario(
                "alpha-drift", N_VALID, seed=seed, detectors=DETECTOR_NAMES,
                backend=backend,
                **({"n_workers": 2} if backend == "process" else {}),
                **({"chunk_packets": 9_000} if backend == "streaming" else {}),
            )
            for backend in ("serial", "process", "streaming")
        }
        assert (
            runs["serial"].detection.alarms
            == runs["process"].detection.alarms
            == runs["streaming"].detection.alarms
        )
