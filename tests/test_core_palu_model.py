"""Unit tests for repro.core.palu_model (Section III–V expectations)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.palu_model import (
    PALUParameters,
    degree_distribution,
    expected_class_fractions,
    expected_degree_fractions,
    expected_degree_one_fraction,
    reduced_parameters,
    visible_fraction,
)
from repro.core.zeta import riemann_zeta


@pytest.fixture(scope="module")
def params() -> PALUParameters:
    return PALUParameters.from_weights(0.5, 0.25, 0.25, lam=2.0, alpha=2.0)


class TestPALUParameters:
    def test_constraint_holds_after_from_weights(self, params):
        assert params.constraint_value() == pytest.approx(1.0, abs=1e-9)

    def test_from_weights_preserves_relative_masses(self):
        p = PALUParameters.from_weights(2.0, 1.0, 1.0, lam=1.0, alpha=2.0)
        assert p.core == pytest.approx(0.5)
        assert p.leaves == pytest.approx(0.25)
        assert p.unattached_node_fraction() == pytest.approx(0.25)

    def test_direct_constructor_rejects_violated_constraint(self):
        with pytest.raises(ValueError, match="C \\+ L \\+ U"):
            PALUParameters(core=0.5, leaves=0.5, unattached=0.5, lam=2.0, alpha=2.0)

    def test_direct_constructor_accepts_exact_constraint(self):
        lam = 1.0
        u = 0.2 / (1.0 + lam - math.exp(-lam))
        p = PALUParameters(core=0.5, leaves=0.3, unattached=u, lam=lam, alpha=2.0)
        assert p.constraint_value() == pytest.approx(1.0)

    def test_strict_alpha_range_enforced(self):
        with pytest.raises(ValueError):
            PALUParameters.from_weights(0.5, 0.3, 0.2, lam=1.0, alpha=3.5)

    def test_non_strict_alpha_range(self):
        p = PALUParameters.from_weights(0.5, 0.3, 0.2, lam=1.0, alpha=3.5, strict=False)
        assert p.alpha == 3.5

    def test_lambda_range_enforced(self):
        with pytest.raises(ValueError):
            PALUParameters.from_weights(0.5, 0.3, 0.2, lam=25.0, alpha=2.0)

    def test_zero_weight_classes_allowed(self):
        p = PALUParameters.from_weights(1.0, 0.0, 0.0, lam=1.0, alpha=2.0)
        assert p.leaves == 0.0
        assert p.unattached == 0.0

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError):
            PALUParameters.from_weights(0.0, 0.0, 0.0, lam=1.0, alpha=2.0)

    def test_zeta_alpha(self, params):
        assert params.zeta_alpha() == pytest.approx(riemann_zeta(2.0))

    def test_with_alpha_copies(self, params):
        other = params.with_alpha(2.5)
        assert other.alpha == 2.5
        assert other.core == params.core

    def test_as_dict_keys(self, params):
        assert set(params.as_dict()) == {"C", "L", "U", "lambda", "alpha"}


class TestVisibleFraction:
    def test_zero_window_sees_nothing(self, params):
        assert visible_fraction(params, 0.0) == 0.0

    def test_monotone_in_p(self, params):
        values = [visible_fraction(params, p) for p in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_exact_and_paper_methods_same_scale_for_moderate_p(self, params):
        # the paper's integral approximation for the core visibility is crude
        # (a factor ~2 at p = 0.5) but must stay on the same scale and on the
        # conservative (under-counting) side of the exact thinning sum
        paper = visible_fraction(params, 0.5, method="paper")
        exact = visible_fraction(params, 0.5, method="exact")
        assert 0.3 * exact < paper <= exact * 1.05

    def test_exact_and_paper_methods_converge_at_full_window(self, params):
        paper = visible_fraction(params, 1.0, method="paper")
        exact = visible_fraction(params, 1.0, method="exact")
        # at p = 1 the core term of the paper formula is C/((α-1)ζ(α)) which
        # still underestimates the exact visible core (= C), so only the
        # leaf/star terms coincide; check the difference is entirely the core
        expected_gap = params.core - params.core / ((params.alpha - 1) * params.zeta_alpha())
        assert exact - paper == pytest.approx(expected_gap, rel=1e-3)

    def test_exact_at_p_one_counts_all_nonisolated(self, params):
        exact = visible_fraction(params, 1.0, method="exact")
        # at p=1 every core node (degree >= 1) and leaf is visible; only the
        # e^{-λ} isolated star centres are not
        expected = (
            params.core
            + params.leaves
            + params.unattached * (1.0 + params.lam - math.exp(-params.lam))
        )
        assert exact == pytest.approx(expected, rel=1e-3)

    def test_unknown_method_rejected(self, params):
        with pytest.raises(ValueError):
            visible_fraction(params, 0.5, method="guess")


class TestClassFractions:
    def test_node_fractions_sum_to_one(self, params):
        fr = expected_class_fractions(params, 0.5)
        assert fr["core"] + fr["leaves"] + fr["unattached"] == pytest.approx(1.0)

    def test_unattached_links_bounded_by_unattached_nodes(self, params):
        fr = expected_class_fractions(params, 0.5)
        assert 0.0 < fr["unattached_links"] < fr["unattached"]

    def test_zero_p_rejected(self, params):
        with pytest.raises(ValueError):
            expected_class_fractions(params, 0.0)

    def test_no_unattached_class_when_U_zero(self):
        p = PALUParameters.from_weights(0.7, 0.3, 0.0, lam=1.0, alpha=2.0)
        fr = expected_class_fractions(p, 0.5)
        assert fr["unattached"] == pytest.approx(0.0)
        assert fr["unattached_links"] == pytest.approx(0.0)

    def test_larger_lambda_means_fewer_single_edge_stars_at_high_p(self):
        small_lam = PALUParameters.from_weights(0.4, 0.2, 0.4, lam=0.5, alpha=2.0)
        big_lam = PALUParameters.from_weights(0.4, 0.2, 0.4, lam=6.0, alpha=2.0)
        fr_small = expected_class_fractions(small_lam, 0.9)
        fr_big = expected_class_fractions(big_lam, 0.9)
        # with many leaves per star, a surviving star is rarely a single edge
        assert fr_big["unattached_links"] < fr_small["unattached_links"]


class TestDegreeFractions:
    def test_degree_one_consistent_with_vector_version(self, params):
        single = expected_degree_one_fraction(params, 0.5)
        vector = expected_degree_fractions(params, 0.5, np.array([1]))
        assert vector[0] == pytest.approx(single)

    def test_fractions_are_positive_and_decreasing_in_tail(self, params):
        d = np.array([10, 20, 40, 80, 160])
        f = expected_degree_fractions(params, 0.5, d)
        assert np.all(f > 0)
        assert np.all(np.diff(f) < 0)

    def test_tail_follows_power_law_slope(self, params):
        d = np.array([64, 128, 256, 512, 1024], dtype=np.int64)
        f = expected_degree_fractions(params, 0.5, d)
        slope = np.polyfit(np.log(d), np.log(f), 1)[0]
        assert slope == pytest.approx(-params.alpha, abs=0.05)

    def test_paper_and_exact_agree_in_tail(self, params):
        d = np.array([50, 100, 200])
        paper = expected_degree_fractions(params, 0.6, d, method="paper")
        exact = expected_degree_fractions(params, 0.6, d, method="exact")
        # exact binomial thinning roughly preserves the power-law tail level;
        # the paper's approximation should be within a factor of ~2
        ratio = paper / exact
        assert np.all(ratio > 0.3)
        assert np.all(ratio < 3.0)

    def test_rejects_degree_zero(self, params):
        with pytest.raises(ValueError):
            expected_degree_fractions(params, 0.5, np.array([0, 1]))

    def test_degree_fractions_sum_below_one(self, params):
        # summed over the full support the fractions approximate 1 but never exceed it wildly
        d = np.arange(1, 5000)
        total = expected_degree_fractions(params, 0.5, d).sum()
        assert 0.5 < total < 1.5


class TestReducedParameters:
    def test_formulas(self, params):
        p = 0.5
        red = reduced_parameters(params, p)
        V = visible_fraction(params, p)
        assert red.c == pytest.approx(params.core * p**params.alpha / (riemann_zeta(2.0) * V))
        assert red.l == pytest.approx(params.leaves * p / V)
        assert red.u == pytest.approx(params.unattached * math.exp(-params.lam * p) / V)
        assert red.Lambda == pytest.approx(math.e * params.lam * p)
        assert red.poisson_mean == pytest.approx(params.lam * p)

    def test_degree_one_reduced_form(self, params):
        red = reduced_parameters(params, 0.5)
        assert red.degree_one_fraction() == pytest.approx(red.c + red.l + red.u)

    def test_as_dict_keys(self, params):
        assert {"c", "l", "u", "Lambda", "poisson_mean", "alpha", "p", "V"} == set(
            reduced_parameters(params, 0.3).as_dict()
        )

    def test_p_one_reduces_to_underlying_shares(self, params):
        red = reduced_parameters(params, 1.0)
        # at p=1, l = L / V with V < 1, so l exceeds L
        assert red.l > params.leaves


class TestDegreeDistributionFactory:
    def test_distribution_normalised(self, params):
        dist = degree_distribution(params, 0.5, dmax=2000)
        assert dist.probabilities().sum() == pytest.approx(1.0)

    def test_distribution_tail_exponent(self, params):
        dist = degree_distribution(params, 0.5, dmax=20_000)
        ratio = dist.pmf(400) / dist.pmf(200)
        assert ratio == pytest.approx(2.0 ** (-params.alpha), rel=1e-3)

    def test_degree_one_dominates(self, params):
        dist = degree_distribution(params, 0.5, dmax=2000)
        assert dist.pmf(1) == max(dist.probabilities())
