"""Unit tests for preferential attachment, the PALU graph builder, and sampling."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.analysis.histogram import degree_histogram
from repro.core.palu_model import PALUParameters
from repro.core.powerlaw_fit import fit_discrete_mle
from repro.generators.palu_graph import generate_palu_graph
from repro.generators.preferential_attachment import (
    attachment_shift_for_alpha,
    generate_preferential_attachment,
    generate_shifted_preferential_attachment,
)
from repro.generators.sampling import node_sample, sample_edges, sample_edges_array, webcrawl_sample


class TestPreferentialAttachment:
    def test_node_and_edge_counts(self):
        g = generate_preferential_attachment(500, 2, rng=0)
        assert g.number_of_nodes() == 500
        # each new node adds m edges; the seed star adds m
        assert g.number_of_edges() == pytest.approx(2 * 500, rel=0.05)

    def test_connected(self):
        g = generate_preferential_attachment(300, 1, rng=1)
        assert nx.is_connected(g)

    def test_heavy_tail_exponent_near_three(self):
        g = generate_preferential_attachment(20_000, 2, rng=2)
        hist = degree_histogram([d for _, d in g.degree()])
        fit = fit_discrete_mle(hist, d_min=8)
        assert 2.4 < fit.alpha < 3.6

    def test_rich_get_richer(self):
        g = generate_preferential_attachment(5000, 1, rng=3)
        degrees = np.array([d for _, d in g.degree()])
        # early nodes accumulate much higher degree than late nodes
        assert degrees[:50].mean() > 5 * degrees[-1000:].mean()

    def test_m_too_large_rejected(self):
        with pytest.raises(ValueError):
            generate_preferential_attachment(5, 5, rng=0)

    def test_reproducible(self):
        a = generate_preferential_attachment(200, 1, rng=7)
        b = generate_preferential_attachment(200, 1, rng=7)
        assert sorted(a.edges()) == sorted(b.edges())


class TestShiftedPreferentialAttachment:
    def test_shift_formula(self):
        assert attachment_shift_for_alpha(3.0, 1) == pytest.approx(0.0)
        assert attachment_shift_for_alpha(2.5, 2) == pytest.approx(-1.0)

    def test_unreachable_alpha_rejected(self):
        with pytest.raises(ValueError):
            attachment_shift_for_alpha(1.9, 1)

    def test_must_give_exactly_one_of_alpha_or_shift(self):
        with pytest.raises(ValueError):
            generate_shifted_preferential_attachment(100, 1, rng=0)
        with pytest.raises(ValueError):
            generate_shifted_preferential_attachment(100, 1, alpha=2.5, shift=0.0, rng=0)

    def test_lower_alpha_gives_heavier_tail(self):
        heavy = generate_shifted_preferential_attachment(8000, 1, alpha=2.2, rng=4)
        light = generate_shifted_preferential_attachment(8000, 1, alpha=3.0, rng=4)
        dmax_heavy = max(d for _, d in heavy.degree())
        dmax_light = max(d for _, d in light.degree())
        assert dmax_heavy > dmax_light

    def test_graph_size(self):
        g = generate_shifted_preferential_attachment(500, 1, alpha=2.5, rng=5)
        assert g.number_of_nodes() == 500


class TestPALUGraph:
    @pytest.fixture(scope="class")
    def params(self) -> PALUParameters:
        return PALUParameters.from_weights(0.5, 0.25, 0.25, lam=2.0, alpha=2.0)

    def test_class_counts_match_proportions(self, params):
        palu = generate_palu_graph(params, n_nodes=30_000, rng=0)
        counts = palu.class_counts()
        assert counts["core"] == pytest.approx(params.core * 30_000, rel=0.01)
        assert counts["leaves"] == pytest.approx(params.leaves * 30_000, rel=0.01)
        assert counts["star_centres"] == pytest.approx(params.unattached * 30_000, rel=0.01)
        # star leaves are Poisson(lambda) per centre
        assert counts["star_leaves"] == pytest.approx(
            params.unattached * 30_000 * params.lam, rel=0.05
        )

    def test_classes_are_disjoint(self, params):
        palu = generate_palu_graph(params, n_nodes=5000, rng=1)
        all_ids = np.concatenate(
            [palu.core_nodes, palu.leaf_nodes, palu.star_centres, palu.star_leaves]
        )
        assert np.unique(all_ids).size == all_ids.size

    def test_leaves_have_degree_one_into_core(self, params):
        palu = generate_palu_graph(params, n_nodes=5000, rng=2)
        core_set = set(palu.core_nodes.tolist())
        for leaf in palu.leaf_nodes[:200]:
            neighbors = list(palu.graph.neighbors(int(leaf)))
            assert len(neighbors) == 1
            assert neighbors[0] in core_set

    def test_star_components_disconnected_from_core(self, params):
        palu = generate_palu_graph(params, n_nodes=5000, rng=3)
        centre_set = set(palu.star_centres.tolist()) | set(palu.star_leaves.tolist())
        for centre in palu.star_centres[:200]:
            for neighbor in palu.graph.neighbors(int(centre)):
                assert neighbor in centre_set

    def test_core_degree_distribution_is_heavy_tailed(self, params):
        palu = generate_palu_graph(params, n_nodes=40_000, rng=4)
        core_degrees = np.array([palu.graph.degree(int(n)) for n in palu.core_nodes])
        core_degrees = core_degrees[core_degrees > 0]
        hist = degree_histogram(core_degrees)
        fit = fit_discrete_mle(hist, d_min=5)
        # the core carries the zeta(alpha=2) law plus leaf attachments
        assert 1.6 < fit.alpha < 2.4

    def test_preferential_attachment_core_option(self):
        # the growth-process core can only reach alpha > 2 (shift > -m), so use 2.5
        params = PALUParameters.from_weights(0.5, 0.25, 0.25, lam=2.0, alpha=2.5)
        palu = generate_palu_graph(params, n_nodes=2000, core_model="preferential-attachment", rng=5)
        assert palu.n_nodes > 1500

    def test_preferential_attachment_core_rejects_unreachable_alpha(self, params):
        # params fixture has alpha = 2.0, outside the growth model's reachable range
        with pytest.raises(ValueError, match="unreachable"):
            generate_palu_graph(params, n_nodes=1000, core_model="preferential-attachment", rng=5)

    def test_unknown_core_model_rejected(self, params):
        with pytest.raises(ValueError):
            generate_palu_graph(params, n_nodes=1000, core_model="random", rng=0)

    def test_edges_array_shape(self, params):
        palu = generate_palu_graph(params, n_nodes=2000, rng=6)
        edges = palu.edges_array()
        assert edges.shape[1] == 2
        assert edges.shape[0] == palu.n_edges

    def test_class_of_mapping_covers_all_nodes(self, params):
        palu = generate_palu_graph(params, n_nodes=2000, rng=7)
        mapping = palu.class_of()
        assert len(mapping) == palu.n_nodes

    def test_seed_alias(self, params):
        a = generate_palu_graph(params, n_nodes=1000, seed=42)
        b = generate_palu_graph(params, n_nodes=1000, rng=42)
        assert a.n_edges == b.n_edges


class TestSampling:
    def test_sample_edges_array_thinning_rate(self):
        edges = np.arange(20_000).reshape(-1, 2)
        kept = sample_edges_array(edges, 0.3, rng=0)
        assert kept.shape[0] == pytest.approx(0.3 * 10_000, rel=0.1)

    def test_sample_edges_array_p_one_identity(self):
        edges = np.arange(10).reshape(-1, 2)
        np.testing.assert_array_equal(sample_edges_array(edges, 1.0, rng=0), edges)

    def test_sample_edges_array_p_zero_empty(self):
        edges = np.arange(10).reshape(-1, 2)
        assert sample_edges_array(edges, 0.0, rng=0).shape[0] == 0

    def test_sample_edges_graph_drops_isolated_nodes(self):
        g = nx.star_graph(50)
        observed = sample_edges(g, 0.5, rng=1)
        assert all(d >= 1 for _, d in observed.degree())
        assert observed.number_of_edges() < 50

    def test_sample_edges_keeps_edge_fraction(self, small_palu_graph):
        observed = sample_edges(small_palu_graph.graph, 0.4, rng=2)
        assert observed.number_of_edges() == pytest.approx(0.4 * small_palu_graph.n_edges, rel=0.07)

    def test_node_sample_subgraph(self):
        g = nx.complete_graph(100)
        sampled = node_sample(g, 0.3, rng=3)
        assert 10 <= sampled.number_of_nodes() <= 55

    def test_webcrawl_returns_connected_view_from_hub(self):
        g = _hub_with_debris()
        crawled = webcrawl_sample(g, n_seeds=1)
        assert nx.is_connected(crawled)
        # the isolated edge (900, 901) is invisible to the crawl
        assert 900 not in crawled

    def test_webcrawl_misses_unattached_components(self, small_palu_graph):
        crawled = webcrawl_sample(small_palu_graph.graph, n_seeds=3)
        star_nodes = set(small_palu_graph.star_centres.tolist())
        crawled_stars = star_nodes & set(crawled.nodes())
        assert len(crawled_stars) == 0

    def test_webcrawl_max_nodes_cap(self):
        g = nx.path_graph(1000)
        crawled = webcrawl_sample(g, seeds=[0], max_nodes=50)
        assert crawled.number_of_nodes() == 50

    def test_webcrawl_unknown_seed_rejected(self):
        with pytest.raises(ValueError):
            webcrawl_sample(nx.path_graph(5), seeds=[99])

    def test_webcrawl_empty_graph(self):
        assert webcrawl_sample(nx.Graph()).number_of_nodes() == 0


def _hub_with_debris() -> nx.Graph:
    g = nx.star_graph(40)
    g.add_edges_from([(1, 100), (100, 101)])
    g.add_edge(900, 901)  # unattached link
    return g
