"""Fault injection against one live daemon that is never restarted.

The module starts a single :class:`~repro.service.server.ServiceDaemon`
in a background thread and fires every fault case at it in sequence:
malformed JSON, out-of-range endpoint ids, an oversized batch, a client
that disconnects mid-stream, and a job config with an unknown
``version``.  The contract under test:

* every fault produces a *structured* JSON error
  (``{"error": {"code", "message"}}``) — never a hung socket or an
  HTML traceback;
* analyzer state is never corrupted — after each fault the next valid
  batch folds cleanly and the running window count advances exactly as
  if the fault had never happened;
* the daemon survives everything — there is no restart between cases,
  and the final shutdown still drains and flushes to the result store.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

import pytest

from repro.campaigns.store import ResultStore
from repro.service import CheckpointPolicy, JobConfig, ServiceDaemon

N_VALID = 100
JOB = "faulty"


def _batch_line(n_packets: int, start: int = 0) -> str:
    return json.dumps(
        {
            "src": list(range(start, start + n_packets)),
            "dst": list(range(start + 1, start + n_packets + 1)),
        }
    )


class _DaemonHarness:
    """One resident daemon plus an HTTP helper; shared by every test."""

    def __init__(
        self,
        store_root,
        *,
        config_data: dict | None = None,
        checkpoint_every: int | None = None,
        **daemon_kwargs,
    ) -> None:
        config = JobConfig.from_dict(
            config_data or {"name": JOB, "window": {"n_valid": N_VALID}}
        )
        self.store = ResultStore(store_root)
        if checkpoint_every is not None:
            daemon_kwargs["checkpoint_policy"] = CheckpointPolicy(
                every_batches=checkpoint_every
            )
        self.daemon = ServiceDaemon(
            [config], store=self.store, max_batch_bytes=64 * 1024, **daemon_kwargs
        )
        self.thread = threading.Thread(target=self.daemon.run, daemon=True)
        self.thread.start()
        assert self.daemon.wait_ready(10), "daemon never bound its socket"
        self.port = self.daemon.port

    def request(self, method: str, path: str, body: str | None = None):
        status, parsed, _headers = self.request_full(method, path, body)
        return status, parsed

    def request_full(self, method: str, path: str, body: str | None = None):
        """Like :meth:`request` but also returns the lower-cased response headers."""
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=10)
        try:
            try:
                conn.request(method, path, body=body)
            except BrokenPipeError:
                # the daemon already responded (e.g. a 413 for an oversized
                # body) and closed its end before reading everything we
                # sent; the response is waiting in the socket buffer
                pass
            response = conn.getresponse()
            headers = {name.lower(): value for name, value in response.getheaders()}
            return response.status, json.loads(response.read().decode("utf-8")), headers
        finally:
            conn.close()

    def windows_folded(self) -> int:
        status, body = self.request("GET", f"/status/{JOB}")
        assert status == 200
        return body["windows_folded"]

    def assert_fold_advances(self) -> None:
        """One valid batch folds exactly one window — state is intact."""
        before = self.windows_folded()
        status, body = self.request("POST", f"/ingest/{JOB}", _batch_line(N_VALID) + "\n")
        assert status == 200
        assert body["windows_folded_now"] == 1
        assert self.windows_folded() == before + 1

    def shutdown(self) -> None:
        self.daemon.request_shutdown()
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon did not exit after shutdown request"


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """THE daemon: started once, survives every fault case below."""
    harness = _DaemonHarness(tmp_path_factory.mktemp("service-store") / "store")
    yield harness
    harness.shutdown()
    # the graceful exit flushed the job's accumulated result to the store;
    # every window folded across (and despite) the fault cases is in it
    key = harness.daemon.registry.get(JOB).config_hash
    payload = harness.store.get(key)
    assert payload["n_windows"] > 0
    assert payload["status"]["errors"] > 0  # the faults were really counted


def _assert_structured_error(status: int, body: dict, code: str) -> None:
    assert status >= 400
    assert set(body) == {"error"}
    assert body["error"]["code"] == code
    assert isinstance(body["error"]["message"], str) and body["error"]["message"]


class TestFaultContainment:
    """Each fault: structured error, uncorrupted state, daemon alive."""

    def test_baseline_fold_works(self, daemon):
        daemon.assert_fold_advances()

    def test_malformed_json_batch(self, daemon):
        status, body = daemon.request("POST", f"/ingest/{JOB}", '{"src": [1,, bad\n')
        _assert_structured_error(status, body, "bad_json")
        daemon.assert_fold_advances()

    def test_malformed_later_line_folds_nothing(self, daemon):
        before = daemon.windows_folded()
        two_lines = _batch_line(N_VALID) + "\nnot json\n"
        status, body = daemon.request("POST", f"/ingest/{JOB}", two_lines)
        _assert_structured_error(status, body, "bad_json")
        assert "line 2" in body["error"]["message"]
        # the valid first line must NOT have been folded: all-or-nothing
        assert daemon.windows_folded() == before
        daemon.assert_fold_advances()

    def test_out_of_range_ids(self, daemon):
        bad = json.dumps({"src": [-7, 1], "dst": [2, 2**40]})
        status, body = daemon.request("POST", f"/ingest/{JOB}", bad + "\n")
        _assert_structured_error(status, body, "bad_batch")
        assert "out-of-range" in body["error"]["message"]
        daemon.assert_fold_advances()

    def test_wrong_shape_batch(self, daemon):
        bad = json.dumps({"src": [1, 2, 3], "dst": [4]})
        status, body = daemon.request("POST", f"/ingest/{JOB}", bad + "\n")
        _assert_structured_error(status, body, "bad_batch")
        daemon.assert_fold_advances()

    def test_oversized_batch(self, daemon):
        huge = _batch_line(200_000)  # well past the harness's 64 KiB cap
        status, body = daemon.request("POST", f"/ingest/{JOB}", huge + "\n")
        _assert_structured_error(status, body, "batch_too_large")
        daemon.assert_fold_advances()

    def test_mid_stream_disconnect(self, daemon):
        # promise a large body, send a fragment, vanish: the daemon must
        # drop the request without folding the fragment
        before = daemon.windows_folded()
        with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as raw:
            raw.sendall(
                f"POST /ingest/{JOB} HTTP/1.1\r\n"
                f"Host: 127.0.0.1\r\n"
                f"Content-Length: 50000\r\n\r\n".encode("ascii")
            )
            raw.sendall(_batch_line(10).encode("ascii"))  # a fraction of the promise
        assert daemon.windows_folded() == before
        daemon.assert_fold_advances()

    def test_unknown_config_version(self, daemon):
        config = {"name": "from-the-future", "version": 99}
        status, body = daemon.request("POST", "/jobs", json.dumps(config))
        _assert_structured_error(status, body, "bad_config")
        assert "version" in body["error"]["message"]
        daemon.assert_fold_advances()

    def test_bad_config_schema(self, daemon):
        config = {"name": "typo", "window": {"n_vlaid": 100}}
        status, body = daemon.request("POST", "/jobs", json.dumps(config))
        _assert_structured_error(status, body, "bad_config")
        assert "window.n_vlaid" in body["error"]["message"]

    def test_duplicate_job_rejected(self, daemon):
        config = {"name": JOB, "window": {"n_valid": N_VALID}}
        status, body = daemon.request("POST", "/jobs", json.dumps(config))
        _assert_structured_error(status, body, "duplicate_job")

    def test_unknown_job_ingest(self, daemon):
        status, body = daemon.request("POST", "/ingest/ghost", _batch_line(5) + "\n")
        _assert_structured_error(status, body, "unknown_job")

    def test_unknown_route(self, daemon):
        status, body = daemon.request("GET", "/nope")
        _assert_structured_error(status, body, "not_found")

    def test_post_without_content_length(self, daemon):
        with socket.create_connection(("127.0.0.1", daemon.port), timeout=10) as raw:
            raw.sendall(
                f"POST /ingest/{JOB} HTTP/1.1\r\nHost: x\r\n\r\n".encode("ascii")
            )
            response = b""
            while b"\r\n\r\n" not in response:
                chunk = raw.recv(4096)
                if not chunk:
                    break
                response += chunk
        assert b"411" in response.split(b"\r\n", 1)[0]
        daemon.assert_fold_advances()

    def test_empty_batch_body(self, daemon):
        status, body = daemon.request("POST", f"/ingest/{JOB}", "\n\n")
        _assert_structured_error(status, body, "empty_batch")
        daemon.assert_fold_advances()

    def test_errors_were_counted_not_fatal(self, daemon):
        status, body = daemon.request("GET", f"/status/{JOB}")
        assert status == 200
        assert body["errors"] > 0
        # one daemon served every case in this module: requests_failed
        # piled up while windows kept folding
        status, root = daemon.request("GET", "/status")
        assert root["requests_failed"] > 0
        assert root["jobs"][0]["windows_folded"] > 0


class TestCheckpointFaults:
    """Checkpoint-era injections: corruption, empty resume, replay, write failure.

    Each case runs its own short-lived daemon (restarts are the point here,
    unlike the module-scoped survivor above).
    """

    def test_resume_on_empty_store_is_cold_start(self, tmp_path):
        harness = _DaemonHarness(tmp_path / "store", resume=True, checkpoint_every=1)
        try:
            status, body = harness.request("GET", f"/status/{JOB}")
            assert status == 200
            assert body["resumed_from_seq"] is None
            assert body["windows_folded"] == 0
            harness.assert_fold_advances()
        finally:
            harness.shutdown()

    def test_duplicate_replay_of_acked_batch_is_noop(self, tmp_path):
        harness = _DaemonHarness(tmp_path / "store", checkpoint_every=1)
        try:
            status, body = harness.request(
                "POST", f"/ingest/{JOB}?seq=1", _batch_line(N_VALID) + "\n"
            )
            assert status == 200
            assert body["acked_seq"] == 1 and body["windows_folded"] == 1
            # replaying seq=1 must ack without folding anything again
            status, body = harness.request(
                "POST", f"/ingest/{JOB}?seq=1", _batch_line(N_VALID) + "\n"
            )
            assert status == 200
            assert body["duplicate"] is True
            assert body["windows_folded_now"] == 0
            assert body["windows_folded"] == 1
            assert body["acked_seq"] == 1
        finally:
            harness.shutdown()

    def test_sequence_gap_rejected(self, tmp_path):
        harness = _DaemonHarness(tmp_path / "store")
        try:
            status, body = harness.request(
                "POST", f"/ingest/{JOB}?seq=5", _batch_line(N_VALID) + "\n"
            )
            _assert_structured_error(status, body, "sequence_gap")
            assert status == 409
            assert harness.windows_folded() == 0
            harness.assert_fold_advances()
        finally:
            harness.shutdown()

    def test_bad_seq_rejected(self, tmp_path):
        harness = _DaemonHarness(tmp_path / "store")
        try:
            for bad in ("0", "-3", "nope"):
                status, body = harness.request(
                    "POST", f"/ingest/{JOB}?seq={bad}", _batch_line(N_VALID) + "\n"
                )
                _assert_structured_error(status, body, "bad_seq")
            harness.assert_fold_advances()
        finally:
            harness.shutdown()

    def test_backpressure_429_with_retry_after(self, tmp_path):
        store_root = tmp_path / "store"
        harness = _DaemonHarness(store_root, max_buffered_packets=30)
        try:
            # 50 packets buffer without completing a window (N_VALID = 100)
            status, body = harness.request(
                "POST", f"/ingest/{JOB}?seq=1", _batch_line(50) + "\n"
            )
            assert status == 200 and body["packets_buffered"] == 50
            status, body, headers = harness.request_full(
                "POST", f"/ingest/{JOB}", _batch_line(10) + "\n"
            )
            _assert_structured_error(status, body, "backpressure")
            assert status == 429
            assert headers.get("retry-after") == "1"
            # the rejected batch touched nothing
            assert harness.request("GET", f"/status/{JOB}")[1]["packets_buffered"] == 50
            # a duplicate replay must still be acked even under pressure
            # (crash recovery has to drain the acked prefix first)
            status, body = harness.request(
                "POST", f"/ingest/{JOB}?seq=1", _batch_line(50) + "\n"
            )
            assert status == 200 and body["duplicate"] is True
        finally:
            harness.shutdown()
        # operator recovery: restart without the (too-tight) limit and
        # --resume; the restored buffer plus the next batch complete the
        # window — nothing the cap rejected was lost
        revived = _DaemonHarness(store_root, resume=True)
        try:
            status, body = revived.request("GET", f"/status/{JOB}")
            assert body["resumed_from_seq"] == 1
            assert body["packets_buffered"] == 50
            status, body = revived.request(
                "POST", f"/ingest/{JOB}?seq=2", _batch_line(50, start=50) + "\n"
            )
            assert status == 200 and body["windows_folded_now"] == 1
        finally:
            revived.shutdown()

    def test_job_config_limit_overrides_daemon_default(self, tmp_path):
        harness = _DaemonHarness(
            tmp_path / "store",
            config_data={
                "name": JOB,
                "window": {"n_valid": N_VALID},
                "limits": {"max_buffered_packets": 20},
            },
            max_buffered_packets=10_000,
        )
        try:
            status, _body = harness.request("POST", f"/ingest/{JOB}", _batch_line(25) + "\n")
            assert status == 200
            status, body = harness.request("POST", f"/ingest/{JOB}", _batch_line(5) + "\n")
            _assert_structured_error(status, body, "backpressure")
        finally:
            harness.shutdown()

    def test_corrupted_checkpoint_falls_back_a_generation(self, tmp_path, caplog):
        store_root = tmp_path / "store"
        harness = _DaemonHarness(store_root, checkpoint_every=1)
        try:
            for seq in (1, 2, 3):
                status, body = harness.request(
                    "POST", f"/ingest/{JOB}?seq={seq}", _batch_line(N_VALID) + "\n"
                )
                assert status == 200 and body["acked_seq"] == seq
            key = harness.daemon.registry.get(JOB).config_hash
        finally:
            harness.shutdown()
        # tear the newest checkpoint generation's payload on disk
        seqs = harness.store.checkpoint_seqs(key)
        assert seqs and seqs[-1] == 3
        payload_path, _record_path = harness.store._checkpoint_paths(key, seqs[-1])
        payload_path.write_bytes(payload_path.read_bytes()[:10])
        with caplog.at_level("WARNING", logger="repro"):
            revived = _DaemonHarness(store_root, resume=True, checkpoint_every=1)
        try:
            assert any("checkpoint" in record.message for record in caplog.records)
            status, body = revived.request("GET", f"/status/{JOB}")
            # the torn generation was skipped; the previous one restored
            assert body["resumed_from_seq"] == 2
            assert body["windows_folded"] == 2
            # replay: seq 1-2 are acked no-ops, seq 3 folds the third window
            for seq, folded in ((1, 0), (2, 0), (3, 1)):
                status, body = revived.request(
                    "POST", f"/ingest/{JOB}?seq={seq}", _batch_line(N_VALID) + "\n"
                )
                assert status == 200
                assert body["windows_folded_now"] == folded
            assert revived.windows_folded() == 3
        finally:
            revived.shutdown()

    def test_checkpoint_write_failure_contained(self, tmp_path):
        harness = _DaemonHarness(tmp_path / "store", checkpoint_every=1)
        try:
            def _refuse(*args, **kwargs):
                raise OSError("disk full (injected)")

            harness.store.put_checkpoint = _refuse  # instance shadow, class intact
            status, body = harness.request(
                "POST", f"/ingest/{JOB}?seq=1", _batch_line(N_VALID) + "\n"
            )
            # the ingest itself succeeded; only durability degraded
            assert status == 200 and body["windows_folded"] == 1
            status, body = harness.request("GET", f"/status/{JOB}")
            assert body["checkpoint_failures"] == 1
            assert body["checkpoints_written"] == 0
            # heal the store: the next cadence point retries and succeeds
            del harness.store.put_checkpoint
            status, body = harness.request(
                "POST", f"/ingest/{JOB}?seq=2", _batch_line(N_VALID) + "\n"
            )
            assert status == 200
            status, body = harness.request("GET", f"/status/{JOB}")
            assert body["checkpoints_written"] == 1
            key = harness.daemon.registry.get(JOB).config_hash
            found = harness.store.latest_checkpoint(key)
            assert found is not None and found[0] == 2
        finally:
            harness.shutdown()
