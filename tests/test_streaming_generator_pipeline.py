"""Unit tests for trace generation, the parallel map, and the analysis pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.packet import PacketTrace
from repro.streaming.parallel import default_worker_count, map_windows
from repro.streaming.pipeline import analyze_trace, analyze_window, analyze_windows
from repro.streaming.trace_generator import (
    TraceConfig,
    effective_window_p,
    generate_trace,
    generate_trace_from_graph,
)
from repro.streaming.window import iter_windows


class TestTraceGenerator:
    def test_packet_count(self, small_palu_graph):
        trace = generate_trace(small_palu_graph.graph, 5000, rng=0)
        assert trace.n_packets == 5000
        assert trace.n_valid == 5000

    def test_endpoints_come_from_graph(self, small_palu_graph):
        trace = generate_trace(small_palu_graph.graph, 2000, rng=1)
        nodes = set(small_palu_graph.graph.nodes())
        assert set(trace.unique_endpoints().tolist()) <= nodes

    def test_timestamps_monotone(self, small_palu_graph):
        trace = generate_trace(small_palu_graph.graph, 2000, rng=2)
        assert np.all(np.diff(trace.packets["time"]) >= 0)

    def test_invalid_fraction(self, small_palu_graph):
        config = TraceConfig(n_packets=20_000, invalid_fraction=0.2)
        trace = generate_trace_from_graph(small_palu_graph.graph, config, rng=3)
        assert trace.n_valid == pytest.approx(0.8 * 20_000, rel=0.05)

    def test_palu_graph_accepted_directly(self, small_palu_graph):
        trace = generate_trace(small_palu_graph, 1000, rng=4)
        assert trace.n_packets == 1000

    def test_edge_array_accepted(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        trace = generate_trace(edges, 500, rng=5)
        assert trace.n_packets == 500

    def test_zipf_rate_model_concentrates_traffic(self, small_palu_graph):
        uniform = generate_trace(small_palu_graph.graph, 50_000, rate_model="uniform", rng=6)
        zipf = generate_trace(
            small_palu_graph.graph, 50_000, rate_model="zipf", rate_exponent=1.6, rng=6
        )

        def top_link_share(trace: PacketTrace) -> float:
            pairs = trace.packets["src"] * 10**9 + trace.packets["dst"]
            _, counts = np.unique(pairs, return_counts=True)
            return counts.max() / counts.sum()

        assert top_link_share(zipf) > 3 * top_link_share(uniform)

    def test_lognormal_rate_model_runs(self, small_palu_graph):
        config = TraceConfig(n_packets=5000, rate_model="lognormal", lognormal_sigma=2.0)
        trace = generate_trace_from_graph(small_palu_graph.graph, config, rng=7)
        assert trace.n_packets == 5000

    def test_unknown_rate_model_rejected(self):
        with pytest.raises(ValueError):
            TraceConfig(n_packets=100, rate_model="pareto")

    def test_empty_graph_rejected(self):
        import networkx as nx

        with pytest.raises(ValueError):
            generate_trace(nx.Graph(), 100, rng=0)

    def test_effective_window_p_formula(self, small_palu_graph):
        m = small_palu_graph.n_edges
        p = effective_window_p(small_palu_graph, n_valid=m)
        assert p == pytest.approx(1 - np.exp(-1.0), rel=1e-6)

    def test_effective_window_p_monotone_in_nv(self, small_palu_graph):
        ps = [effective_window_p(small_palu_graph, n_valid=n) for n in (1000, 10_000, 100_000)]
        assert ps[0] < ps[1] < ps[2]

    def test_window_observation_matches_effective_p(self, small_palu_graph):
        """A window of N_V uniform packets observes ~p fraction of the edges."""
        n_valid = 20_000
        trace = generate_trace(small_palu_graph.graph, n_valid, rate_model="uniform", rng=8)
        from repro.streaming.sparse_image import traffic_image

        image = traffic_image(trace)
        # distinct undirected links observed (direction was randomised)
        links = image.undirected_edges()
        links = np.unique(np.sort(links, axis=1), axis=0)
        p_expected = effective_window_p(small_palu_graph, n_valid=n_valid)
        observed_fraction = links.shape[0] / small_palu_graph.n_edges
        assert observed_fraction == pytest.approx(p_expected, rel=0.05)


class TestParallelMap:
    def test_serial_matches_parallel(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        serial = map_windows(analyze_window, windows, n_workers=1)
        parallel = map_windows(analyze_window, windows, n_workers=2)
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.aggregates == b.aggregates

    def test_empty_input(self):
        assert map_windows(analyze_window, []) == []

    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1
        assert default_worker_count(maximum=4) <= 4


class TestPipeline:
    def test_analyze_trace_window_count(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        assert analysis.n_windows == small_trace.n_valid // 30_000

    def test_quantities_restricted(self, small_trace):
        analysis = analyze_trace(small_trace, 50_000, quantities=("source_packets",))
        assert analysis.quantities == ("source_packets",)
        with pytest.raises(KeyError):
            analysis.pooled("link_packets")

    def test_unknown_quantity_rejected(self, small_trace):
        with pytest.raises(ValueError):
            analyze_trace(small_trace, 50_000, quantities=("bogus",))

    def test_no_complete_window_rejected(self, small_trace):
        with pytest.raises(ValueError):
            analyze_trace(small_trace, 10**9)

    def test_max_windows_cap(self, small_trace):
        analysis = analyze_trace(small_trace, 20_000, max_windows=2)
        assert analysis.n_windows == 2

    def test_pooled_probability_conserved(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        for quantity in QUANTITY_NAMES:
            pooled = analysis.pooled(quantity)
            assert pooled.probability_sum() == pytest.approx(1.0)
            assert pooled.sigma is not None

    def test_merged_histogram_total(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        merged = analysis.merged_histogram("link_packets")
        per_window = sum(w.histograms["link_packets"].total for w in analysis.windows)
        assert merged.total == per_window

    def test_aggregates_table_rows(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        rows = analysis.aggregates_table()
        assert len(rows) == analysis.n_windows
        assert all(row["valid_packets"] == 30_000 for row in rows)

    def test_zm_fit_from_pipeline(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        fit = analysis.fit_zipf_mandelbrot("source_fanout")
        assert 1.0 < fit.alpha < 4.0
        assert fit.dmax == analysis.dmax("source_fanout")

    def test_analyze_windows_direct(self, small_trace):
        windows = list(iter_windows(small_trace, 40_000))
        analysis = analyze_windows(windows, n_valid=40_000)
        assert analysis.n_windows == len(windows)

    def test_dmax_consistency(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        dmax = analysis.dmax("source_packets")
        assert dmax == max(w.histograms["source_packets"].dmax for w in analysis.windows)
