"""Docstring-coverage gate on the public API.

CI runs ``interrogate --fail-under=90`` against ``src/repro``; this test
enforces the same floor offline via ``tools/check_docstrings.py`` so the
gate cannot silently regress on machines without interrogate installed.
The floor is a ratchet: raise it as coverage grows, never lower it.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "tools"))
import check_docstrings  # noqa: E402

FAIL_UNDER = 95.0


def test_public_api_docstring_coverage():
    total, entries = check_docstrings.coverage([REPO_ROOT / "src" / "repro"])
    missing = [name for name, has in entries if not has]
    assert total >= FAIL_UNDER, (
        f"docstring coverage {total:.1f}% fell below {FAIL_UNDER}%; "
        f"undocumented: {missing[:20]}"
    )


def test_every_public_export_resolves_and_is_documented():
    """Everything in ``repro.__all__`` must exist and carry a docstring."""
    import repro

    undocumented = []
    for name in repro.__all__:
        if name == "__version__":
            continue
        obj = getattr(repro, name)  # raises AttributeError on a broken export
        if not (getattr(obj, "__doc__", None) or "").strip():
            undocumented.append(name)
    assert not undocumented, f"public exports without docstrings: {undocumented}"
