"""Tests of the scenario subsystem: registry, source, run path, drift.

The property-based harness lives in ``test_scenarios_properties.py`` and the
golden-file backend-equivalence harness in ``test_scenarios_golden.py``;
this module covers the declarative API, registration-time validation, the
bounded-buffering acceptance criterion, and phase attribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.phases import PhaseSegmentedAnalyzer, drift_between
from repro.analysis.pooling import PooledDistribution
from repro.scenarios import (
    BUILTIN_SCENARIO_NAMES,
    GRAPH_FAMILY_NAMES,
    Phase,
    Scenario,
    ScenarioTraceSource,
    analyze_scenario,
    build_family_edges,
    family_defaults,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.streaming.aggregates import QUANTITY_NAMES

TINY = Phase("erdos-renyi", 5_000, {"n_nodes": 400, "p": 0.02})


def tiny_scenario(name="tiny", phases=(TINY, TINY), **kwargs) -> Scenario:
    return Scenario(name=name, phases=tuple(phases), **kwargs)


class TestFamilies:
    @pytest.mark.parametrize("family", GRAPH_FAMILY_NAMES)
    def test_every_family_builds_edges(self, family):
        edges = build_family_edges(family, {}, np.random.default_rng(0))
        assert edges.ndim == 2 and edges.shape[1] == 2
        assert edges.shape[0] > 0

    def test_family_determinism(self):
        a = build_family_edges("palu", {"n_nodes": 800}, np.random.default_rng(5))
        b = build_family_edges("palu", {"n_nodes": 800}, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown graph family"):
            build_family_edges("smallworld", {}, np.random.default_rng(0))

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            build_family_edges("erdos-renyi", {"n": 100}, np.random.default_rng(0))

    def test_defaults_are_copies(self):
        defaults = family_defaults("erdos-renyi")
        defaults["p"] = 0.5
        assert family_defaults("erdos-renyi")["p"] != 0.5


class TestScenarioValidation:
    def test_phase_budget_accounting(self):
        scenario = tiny_scenario()
        assert scenario.n_packets == 10_000
        assert scenario.n_phases == 2
        np.testing.assert_array_equal(scenario.phase_packet_boundaries(), [0, 5_000, 10_000])

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError, match="at least one phase"):
            Scenario(name="empty", phases=())

    def test_non_phase_rejected(self):
        with pytest.raises(TypeError, match="phase 1"):
            Scenario(name="bad", phases=(TINY, "not a phase"))

    def test_malformed_phase_config_fails_at_registration_with_index(self):
        """The validation-hoist fix: a bad TraceConfig fails when the scenario
        is *declared*, and the error names the offending phase."""
        bad = Phase("erdos-renyi", 1_000, rate_model="pareto")
        with pytest.raises(ValueError, match=r"scenario 'broken' phase 1: .*rate_model"):
            Scenario(name="broken", phases=(TINY, bad))

    def test_bad_budget_fails_at_registration_with_index(self):
        with pytest.raises(ValueError, match=r"scenario 'broken' phase 0: .*n_packets"):
            Scenario(name="broken", phases=(Phase("erdos-renyi", -5),))

    def test_bad_family_fails_at_registration_with_index(self):
        with pytest.raises(ValueError, match=r"scenario 'broken' phase 1: unknown graph family"):
            Scenario(name="broken", phases=(TINY, Phase("hypercube", 1_000)))

    def test_configs_hoisted_once(self):
        scenario = tiny_scenario()
        assert len(scenario.phase_configs) == 2
        assert scenario.phase_configs[0].n_packets == 5_000
        # the source reuses the validated configs rather than rebuilding them
        source = ScenarioTraceSource(scenario, seed=0)
        next(iter(source))
        assert scenario.phase_configs[0] is source.scenario.phase_configs[0]

    def test_crossfade_must_fit_inside_a_phase(self):
        with pytest.raises(ValueError, match="crossfade_packets=6000 exceeds"):
            tiny_scenario(crossfade_packets=6_000)
        with pytest.raises(ValueError, match="must be >= 0"):
            tiny_scenario(crossfade_packets=-1)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_SCENARIO_NAMES) <= set(scenario_names())
        for scenario in iter_scenarios():
            assert isinstance(scenario, Scenario)

    def test_get_by_name_and_passthrough(self):
        scenario = get_scenario("alpha-drift")
        assert scenario.name == "alpha-drift"
        assert get_scenario(scenario) is scenario

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario 'nope'"):
            get_scenario("nope")

    def test_duplicate_registration_rejected_unless_replace(self):
        scenario = tiny_scenario(name="dup-test")
        try:
            register_scenario(scenario)
            with pytest.raises(ValueError, match="already registered"):
                register_scenario(tiny_scenario(name="dup-test"))
            replacement = tiny_scenario(name="dup-test", phases=(TINY,))
            assert register_scenario(replacement, replace=True) is replacement
            assert get_scenario("dup-test").n_phases == 1
        finally:
            from repro.scenarios.scenario import _REGISTRY

            _REGISTRY.pop("dup-test", None)

    def test_decorator_form_registers_and_returns_scenario(self):
        try:
            @register_scenario
            def decorated() -> Scenario:
                return tiny_scenario(name="decorated-test")

            assert isinstance(decorated, Scenario)
            assert get_scenario("decorated-test") is decorated
        finally:
            from repro.scenarios.scenario import _REGISTRY

            _REGISTRY.pop("decorated-test", None)

    def test_non_scenario_rejected(self):
        with pytest.raises(TypeError, match="expected a Scenario"):
            register_scenario(42)


class TestScenarioTraceSource:
    def test_single_use(self):
        source = ScenarioTraceSource(tiny_scenario(), seed=0)
        list(source)
        with pytest.raises(RuntimeError, match="single-use"):
            iter(source)

    def test_requires_scenario(self):
        with pytest.raises(TypeError, match="must be a Scenario"):
            ScenarioTraceSource("alpha-drift", seed=0)

    def test_timestamps_monotone_across_phases_and_chunks(self):
        trace = get_scenario("generator-mix").generate(seed=1)
        assert np.all(np.diff(trace.packets["time"]) >= 0)

    def test_invalid_fraction_realised_per_phase(self):
        scenario = get_scenario("invalid-storm")
        source = ScenarioTraceSource(scenario, seed=2)
        list(source)
        valid = source.valid_emitted_per_phase
        budgets = np.array([p.n_packets for p in scenario.phases])
        fractions = 1.0 - valid / budgets
        assert fractions[0] == 0.0
        assert fractions[1] == pytest.approx(0.30, abs=0.02)
        assert fractions[2] == pytest.approx(0.05, abs=0.02)

    def test_phase_of_valid_index(self):
        source = ScenarioTraceSource(tiny_scenario(), seed=0)
        list(source)
        assert source.phase_of_valid_index(0) == 0
        assert source.phase_of_valid_index(4_999) == 0
        assert source.phase_of_valid_index(5_000) == 1
        assert source.phase_of_valid_index(9_999) == 1
        with pytest.raises(ValueError, match="not yet emitted"):
            source.phase_of_valid_index(10_000)
        with pytest.raises(ValueError, match=">= 0"):
            source.phase_of_valid_index(-1)

    def test_crossfade_mixes_substrates_at_boundary(self):
        """With a fade, early packets of phase 1 still hit phase-0-only nodes."""
        lo = Phase("erdos-renyi", 8_000, {"n_nodes": 200, "p": 0.05})
        # disjoint node range is impossible (both families label from 0), so use
        # edge *density*: phase 1's graph has far more nodes, and faded packets
        # keep landing on phase 0's tiny node range at the start of phase 1
        hi = Phase("erdos-renyi", 8_000, {"n_nodes": 4_000, "p": 0.01})
        faded = Scenario(name="fade-probe", phases=(lo, hi), crossfade_packets=4_000)
        sharp = Scenario(name="sharp-probe", phases=(lo, hi))

        def head_small_node_share(scenario):
            trace = scenario.generate(seed=9)
            head = trace.packets[8_000:9_000]  # first packets of phase 1
            return np.mean((head["src"] < 200) & (head["dst"] < 200))

        assert head_small_node_share(faded) > 0.5  # mostly old substrate early in the fade
        assert head_small_node_share(sharp) < 0.2  # sharp switch: big graph immediately


class TestAnalyzeScenario:
    def test_streaming_buffering_bounded_by_chunk(self):
        """Acceptance criterion: `scenarios run alpha-drift --backend streaming`
        keeps peak buffering bounded by chunk_packets (plus one window span)."""
        chunk_packets, n_valid = 6_000, 3_000
        run = analyze_scenario(
            "alpha-drift", n_valid, seed=0, backend="streaming", chunk_packets=chunk_packets
        )
        stats = run.engine_stats
        assert stats["backend"] == "streaming"
        assert stats["scenario"] == "alpha-drift"
        # invalid-free scenario: a window spans ~n_valid packets; the buffer
        # holds at most one chunk plus the leftover of an incomplete window
        assert stats["max_buffered_packets"] <= chunk_packets + 2 * n_valid
        assert stats["max_buffered_packets"] < run.scenario.n_packets / 4
        # bounded-memory runs drop per-window results but keep everything else
        assert run.analysis.windows == ()
        assert run.analysis.n_windows == run.phases.n_windows

    def test_streaming_defaults_chunk_to_block(self):
        run = analyze_scenario("stationary", 5_000, seed=0, backend="streaming",
                               block_packets=7_000)
        assert run.engine_stats["max_buffered_packets"] <= 7_000 + 2 * 5_000

    @pytest.mark.parametrize("name", BUILTIN_SCENARIO_NAMES)
    def test_all_builtins_backend_identical(self, name):
        """Acceptance criterion: every built-in scenario produces
        backend-identical pooled output (serial vs streaming; the golden
        harness additionally covers the process backend)."""
        serial = analyze_scenario(name, 5_000, seed=11, backend="serial")
        streaming = analyze_scenario(name, 5_000, seed=11, backend="streaming",
                                     chunk_packets=9_000)
        assert serial.analysis.n_windows == streaming.analysis.n_windows
        for quantity in QUANTITY_NAMES:
            a, b = serial.analysis.pooled(quantity), streaming.analysis.pooled(quantity)
            assert np.array_equal(a.values, b.values)
            assert np.array_equal(a.sigma, b.sigma)
            assert a.total == b.total
        np.testing.assert_array_equal(
            serial.phases.window_phase, streaming.phases.window_phase
        )
        for phase in serial.phases.occupied_phases():
            for quantity in QUANTITY_NAMES:
                assert np.array_equal(
                    serial.phases.pooled(phase, quantity).values,
                    streaming.phases.pooled(phase, quantity).values,
                )

    def test_stationary_control_has_zero_drift(self):
        run = analyze_scenario("stationary", 5_000, seed=1)
        assert run.phases.max_drift("source_fanout") == 0.0
        assert run.phases.drift("source_fanout") == ()

    def test_flash_crowd_drift_exceeds_stationary_spread(self):
        """The drift statistic separates a regime change from noise: the
        flash-crowd transition scores far above intra-phase variation."""
        run = analyze_scenario("flash-crowd", 5_000, seed=1)
        drifts = run.phases.drift("source_fanout")
        assert len(drifts) == 2
        assert max(d.score for d in drifts) > 1.0

    def test_window_phase_is_monotone_partition(self):
        run = analyze_scenario("generator-mix", 5_000, seed=3)
        phases = run.phases.window_phase
        assert phases.size == run.analysis.n_windows
        assert np.all(np.diff(phases) >= 0)  # stream order ⇒ phases non-decreasing
        assert np.all((phases >= 0) & (phases < run.scenario.n_phases))

    def test_name_or_instance_accepted(self):
        scenario = tiny_scenario(name="inline")
        run = analyze_scenario(scenario, 2_000, seed=0)
        assert run.scenario is scenario
        assert run.analysis.n_windows == 5


class TestPhaseSegmentedAnalysis:
    @pytest.fixture(scope="class")
    def seg(self):
        return analyze_scenario("alpha-drift", 5_000, seed=7).phases

    def test_windows_in_phase_sums_to_total(self, seg):
        assert sum(seg.windows_in_phase(p) for p in range(seg.n_phases)) == seg.n_windows

    def test_pooled_unknown_quantity(self, seg):
        with pytest.raises(KeyError, match="not analysed"):
            seg.pooled(0, "bogus")

    def test_empty_phase_rejected(self):
        analyzer = PhaseSegmentedAnalyzer(1_000, 3, lambda v: 0, ("source_fanout",))
        from repro.streaming.pipeline import analyze_window
        from repro.streaming.packet import PacketTrace

        trace = PacketTrace.from_arrays(np.arange(1_000) % 7, np.arange(1_000) % 11 + 50)
        analyzer.update(analyze_window(trace))
        result = analyzer.result()
        assert result.occupied_phases() == (0,)
        with pytest.raises(ValueError, match="no complete windows"):
            result.pooled(1, "source_fanout")

    def test_attribution_out_of_range_rejected(self):
        analyzer = PhaseSegmentedAnalyzer(1_000, 2, lambda v: 5, ("source_fanout",))
        from repro.streaming.pipeline import analyze_window
        from repro.streaming.packet import PacketTrace

        trace = PacketTrace.from_arrays(np.arange(1_000), np.arange(1_000) + 1)
        with pytest.raises(ValueError, match="outside 0..1"):
            analyzer.update(analyze_window(trace))

    def test_as_rows_shape(self, seg):
        rows = seg.as_rows("source_fanout")
        assert len(rows) == seg.n_phases
        assert all({"phase", "windows", "D(d=1)", "drift_vs_prev"} <= set(row) for row in rows)

    def test_drift_between_identical_is_zero(self):
        pooled = PooledDistribution(
            bin_edges=np.array([1, 2, 4]), values=np.array([0.5, 0.3, 0.2]),
            sigma=np.array([0.1, 0.1, 0.1]), total=100,
        )
        per_bin, score = drift_between(pooled, pooled)
        assert np.all(per_bin == 0.0) and score == 0.0

    def test_drift_between_handles_zero_sigma_and_length_mismatch(self):
        a = PooledDistribution(bin_edges=np.array([1, 2]), values=np.array([0.6, 0.4]),
                               sigma=np.array([0.0, 0.2]), total=10)
        b = PooledDistribution(bin_edges=np.array([1, 2, 4]), values=np.array([0.5, 0.4, 0.1]),
                               sigma=np.array([0.0, 0.2, 0.0]), total=10)
        per_bin, score = drift_between(a, b)
        assert per_bin.size == 3
        assert np.isinf(per_bin[0])  # zero σ, different means → infinite drift
        assert per_bin[1] == pytest.approx(0.0)
        assert np.isinf(per_bin[2])  # bin exists only on one side, σ=0 there
        assert np.isinf(score)  # zero-variance shifts dominate, never vanish

    def test_single_window_phases_report_extreme_drift_not_zero(self):
        """Regression: with one window per phase every pooled σ is 0, so all
        drifting bins are inf — the score must read inf, not silently 0."""
        from repro.scenarios import analyze_scenario

        run = analyze_scenario("alpha-drift", 25_000, seed=0)
        assert np.all(np.bincount(run.phases.window_phase,
                                  minlength=run.phases.n_phases) == 1)
        assert np.isinf(run.phases.max_drift("source_fanout"))
