"""Tests of the single-pass streaming engine: chunked windowing, sharded
trace I/O, execution backends, and the incremental analyzer."""

from __future__ import annotations

import logging
import pickle
import threading
import time

import numpy as np
import pytest

from repro.analysis.moments import StreamingMoments
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.packet import PacketTrace
from repro.streaming.parallel import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    StreamingBackend,
    default_chunksize,
    default_worker_count,
    get_backend,
    map_windows,
    shared_pool,
    shutdown_shared_pools,
    usable_cpu_count,
)
from repro.streaming.pipeline import (
    StreamAnalyzer,
    iter_window_results,
    analyze_trace,
    analyze_window,
    analyze_windows,
    default_batch_windows,
)
from repro.streaming.trace_io import (
    ANALYSIS_COLUMNS,
    iter_trace_chunks,
    load_trace,
    save_trace,
    save_trace_sharded,
    trace_format,
)
from repro.streaming.window import ChunkedWindower, iter_batches, iter_windows, iter_windows_chunked


class TestStreamingMoments:
    def test_matches_numpy_two_pass(self, rng):
        samples = rng.standard_normal((13, 6))
        moments = StreamingMoments()
        for row in samples:
            moments.update(row)
        assert moments.count == 13
        np.testing.assert_allclose(moments.mean(), samples.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(moments.std(), samples.std(axis=0, ddof=0), rtol=1e-10)

    def test_growing_vectors_zero_fill(self):
        moments = StreamingMoments()
        moments.update([1.0, 2.0])
        moments.update([3.0, 4.0, 5.0])
        stacked = np.array([[1.0, 2.0, 0.0], [3.0, 4.0, 5.0]])
        np.testing.assert_allclose(moments.mean(), stacked.mean(axis=0))
        np.testing.assert_allclose(moments.std(), stacked.std(axis=0))

    def test_empty_and_invalid(self):
        moments = StreamingMoments()
        assert moments.std().size == 0
        with pytest.raises(ValueError):
            moments.update(np.zeros((2, 2)))


class TestChunkedWindower:
    def test_equivalent_to_iter_windows(self, small_trace):
        full = list(iter_windows(small_trace, 20_000))
        for chunk_packets in (3_000, 20_000, 37_000, 200_000):
            chunked = list(iter_windows_chunked(small_trace.iter_chunks(chunk_packets), 20_000))
            assert len(chunked) == len(full)
            for expected, got in zip(full, chunked):
                assert np.array_equal(expected.packets, got.packets)

    def test_empty_trace(self):
        assert list(iter_windows_chunked(iter([]), 100)) == []
        assert list(iter_windows_chunked([PacketTrace.empty()], 100)) == []

    def test_zero_valid_packets(self):
        trace = PacketTrace.from_arrays([1, 2, 3], [4, 5, 6], valid=[False, False, False])
        assert list(iter_windows(trace, 2)) == []
        assert list(iter_windows_chunked(trace.iter_chunks(2), 2)) == []

    def test_trailing_partial_window_dropped(self):
        trace = PacketTrace.from_arrays(np.arange(10), np.arange(10) + 100)
        windows = list(iter_windows_chunked(trace.iter_chunks(3), 4))
        assert len(windows) == 2  # 10 valid packets → two windows of 4, partial 2 dropped
        assert all(w.n_valid == 4 for w in windows)

    def test_invalid_packets_ride_along(self):
        valid = np.array([True, False, True, True, False, True, True, True])
        trace = PacketTrace.from_arrays(np.arange(8), np.arange(8) + 10, valid=valid)
        for chunk_packets in (1, 3, 8):
            windows = list(iter_windows_chunked(trace.iter_chunks(chunk_packets), 3))
            expected = list(iter_windows(trace, 3))
            assert len(windows) == len(expected) == 2
            for a, b in zip(expected, windows):
                assert np.array_equal(a.packets, b.packets)

    def test_buffer_high_water_mark_bounded(self, small_trace):
        chunk_packets = 5_000
        windower = ChunkedWindower(small_trace.iter_chunks(chunk_packets), 10_000)
        windows = list(windower)
        assert windows
        # leftover (< one window span) + one chunk; windows of 10k valid packets
        # span ~10k packets here, so the buffer never approaches the trace size
        assert windower.max_buffered_packets < small_trace.n_packets / 2
        assert windower.n_chunks == -(-small_trace.n_packets // chunk_packets)

    def test_rejects_non_trace_chunks(self):
        with pytest.raises(TypeError):
            list(iter_windows_chunked([np.arange(3)], 2))


class TestShardedTraceIO:
    def test_round_trip_identical(self, small_trace, tmp_path):
        path = save_trace_sharded(small_trace, tmp_path / "trace-v2", shard_packets=7_000)
        assert trace_format(path) == 2
        loaded = load_trace(path)
        assert np.array_equal(loaded.packets, small_trace.packets)

    def test_v1_still_works(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace-v1.npz")
        assert trace_format(path) == 1
        assert np.array_equal(load_trace(path).packets, small_trace.packets)

    def test_iter_trace_chunks_rechunks_both_formats(self, small_trace, tmp_path):
        v1 = save_trace(small_trace, tmp_path / "t.npz")
        v2 = save_trace_sharded(small_trace, tmp_path / "t2", shard_packets=9_000)
        for path in (v1, v2):
            chunks = list(iter_trace_chunks(path, 4_000))
            assert sum(c.n_packets for c in chunks) == small_trace.n_packets
            assert all(c.n_packets == 4_000 for c in chunks[:-1])
            assert np.array_equal(
                np.concatenate([c.packets for c in chunks]), small_trace.packets
            )

    def test_default_chunks_are_shards(self, small_trace, tmp_path):
        path = save_trace_sharded(small_trace, tmp_path / "t2", shard_packets=50_000)
        chunks = list(iter_trace_chunks(path))
        assert [c.n_packets for c in chunks[:-1]] == [50_000] * (len(chunks) - 1)

    def test_directory_without_manifest_rejected(self, tmp_path):
        (tmp_path / "not-a-trace").mkdir()
        with pytest.raises(ValueError):
            trace_format(tmp_path / "not-a-trace")

    def test_sharded_over_existing_file_rejected(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "t.npz")
        with pytest.raises(ValueError, match="exists as a file"):
            save_trace_sharded(small_trace, path)

    def test_resave_removes_stale_shards(self, small_trace, tmp_path):
        """Regression: re-sharding to the same path must not leave orphaned
        shards from a previous, longer save."""
        path = tmp_path / "t2"
        save_trace_sharded(small_trace, path, shard_packets=10_000)  # 12 shards
        assert len(list(path.glob("shard-*.npz"))) == 12
        shorter = PacketTrace(small_trace.packets[:30_000])
        save_trace_sharded(shorter, path, shard_packets=10_000)  # 3 shards
        assert len(list(path.glob("shard-*.npz"))) == 3
        assert np.array_equal(load_trace(path).packets, shorter.packets)

    def test_sharded_writer_accepts_chunk_iterator(self, small_trace, tmp_path):
        path = save_trace_sharded(
            small_trace.iter_chunks(11_000), tmp_path / "t2", shard_packets=30_000
        )
        assert np.array_equal(load_trace(path).packets, small_trace.packets)


class TestBackends:
    def test_explicit_worker_count_honoured(self):
        """Regression: backend="process" with an explicit n_workers=1 must
        not silently substitute the automatic worker count."""
        assert get_backend("process", n_workers=1).n_workers == 1
        assert get_backend("process", n_workers=3).n_workers == 3
        assert get_backend("process").n_workers >= 1  # unset → automatic

    def test_get_backend_names(self):
        for name in BACKEND_NAMES:
            backend = get_backend(name)
            assert isinstance(backend, ExecutionBackend)
            assert backend.name == name
        assert get_backend(None).name == "serial"
        assert get_backend(None, n_workers=2).name == "process"
        instance = StreamingBackend()
        assert get_backend(instance) is instance
        with pytest.raises(ValueError):
            get_backend("gpu")
        with pytest.raises(TypeError):
            get_backend(42)

    def test_serial_backend_is_lazy(self):
        consumed = []

        def producer():
            for i in range(5):
                consumed.append(i)
                yield i

        results = SerialBackend().map(lambda x: x * 2, producer())
        assert consumed == []
        assert next(results) == 0
        assert consumed == [0]

    def test_streaming_backend_bounds_live_items(self):
        live = []

        def producer():
            for i in range(50):
                live.append(i)
                yield i

        backend = StreamingBackend(prefetch=2)
        max_ahead = 0
        for i, result in enumerate(backend.map(lambda x: x, producer())):
            assert result == i
            max_ahead = max(max_ahead, len(live) - (i + 1))
        # producer can only run prefetch + 1 items ahead of the consumer
        assert max_ahead <= 3

    def test_streaming_backend_propagates_producer_error(self):
        def producer():
            yield 1
            raise RuntimeError("disk on fire")

        results = StreamingBackend(prefetch=1).map(lambda x: x, producer())
        assert next(results) == 1
        with pytest.raises(RuntimeError, match="disk on fire"):
            next(results)

    @staticmethod
    def _prefetch_threads():
        import threading

        return [t for t in threading.enumerate() if t.name == "repro-prefetch"]

    def test_streaming_backend_no_thread_leak_on_consumer_error(self):
        def boom(x):
            raise ValueError("analysis failed")

        results = StreamingBackend(prefetch=2).map(boom, iter(range(100)))
        with pytest.raises(ValueError, match="analysis failed"):
            next(results)
        deadline = time.time() + 5.0
        while self._prefetch_threads() and time.time() < deadline:
            time.sleep(0.01)
        assert not self._prefetch_threads()

    def test_streaming_backend_no_thread_leak_on_abandoned_iterator(self):
        results = StreamingBackend(prefetch=2).map(lambda x: x, iter(range(100)))
        assert next(results) == 0
        results.close()  # abandon mid-stream (what GC does to a dropped iterator)
        deadline = time.time() + 5.0
        while self._prefetch_threads() and time.time() < deadline:
            time.sleep(0.01)
        assert not self._prefetch_threads()

    def test_process_backend_streams_in_order(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        serial = [analyze_window(w) for w in windows]
        streamed = list(ProcessBackend(2).map(analyze_window, windows))
        assert [r.aggregates for r in streamed] == [r.aggregates for r in serial]

    def test_process_backend_downgrade_logged(self, small_trace, caplog):
        window = next(iter_windows(small_trace, 20_000))
        with caplog.at_level(logging.INFO, logger="repro.streaming.parallel"):
            results = list(ProcessBackend(4).map(analyze_window, [window]))
        assert len(results) == 1
        assert any("downgrading to serial" in message for message in caplog.messages)

    def test_streaming_backend_logs_blocked_producer_and_dropped_error(self, caplog, monkeypatch):
        """Regression: an abandoned map used to pretend its producer joined
        (silent 5s deadline) and to drop a late producer error on the floor."""
        import repro.streaming.parallel as parallel_module

        monkeypatch.setattr(parallel_module, "_PRODUCER_JOIN_TIMEOUT", 0.2)
        release = threading.Event()

        def producer():
            yield 0
            release.wait(30)  # the "input iterator blocked in I/O" case
            raise RuntimeError("late disk failure")

        results = StreamingBackend(prefetch=1).map(lambda x: x, producer())
        assert next(results) == 0
        with caplog.at_level(logging.WARNING, logger="repro.streaming.parallel"):
            results.close()  # abandon the map while the producer is pinned
            assert any("still alive" in message for message in caplog.messages)
            release.set()  # the blocked read returns and the producer raises
            deadline = time.time() + 5.0
            while self._prefetch_threads() and time.time() < deadline:
                time.sleep(0.01)
        assert not self._prefetch_threads()
        assert any(
            "dropped after the consumer abandoned" in message for message in caplog.messages
        )

    def test_payload_transport_validation(self):
        from repro.streaming.shm import TRANSPORT_NAMES

        assert ProcessBackend(2).payload_transport in TRANSPORT_NAMES
        assert get_backend("process", n_workers=2, payload_transport="pickle").payload_transport == "pickle"
        assert get_backend(None, n_workers=2, payload_transport="pickle").payload_transport == "pickle"
        with pytest.raises(ValueError, match="payload_transport"):
            get_backend("serial", payload_transport="shm")
        with pytest.raises(ValueError, match="payload_transport"):
            get_backend("streaming", payload_transport="pickle")
        with pytest.raises(ValueError, match="ProcessBackend constructor"):
            get_backend(SerialBackend(), payload_transport="shm")
        with pytest.raises(ValueError, match="unknown payload_transport"):
            ProcessBackend(2, payload_transport="carrier-pigeon")

    def test_default_chunksize_heuristic(self):
        assert default_chunksize(100, 4) == 100 // 16
        assert default_chunksize(3, 4) == 1
        with pytest.raises(ValueError):
            default_chunksize(10, 0)

    def test_map_windows_uses_heuristic_chunksize(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        results = map_windows(analyze_window, windows, n_workers=2)
        assert len(results) == len(windows)


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial_analysis(self, small_trace):
        return analyze_trace(small_trace, 20_000, backend="serial")

    @pytest.mark.parametrize("backend", ["process", "streaming"])
    def test_pooled_bit_identical(self, small_trace, serial_analysis, backend):
        analysis = analyze_trace(small_trace, 20_000, backend=backend, n_workers=2)
        assert analysis.n_windows == serial_analysis.n_windows
        for quantity in QUANTITY_NAMES:
            expected = serial_analysis.pooled(quantity)
            got = analysis.pooled(quantity)
            assert np.array_equal(expected.bin_edges, got.bin_edges)
            assert np.array_equal(expected.values, got.values)
            assert np.array_equal(expected.sigma, got.sigma)
            assert expected.total == got.total

    def test_chunked_input_bit_identical(self, small_trace, serial_analysis):
        analysis = analyze_trace(small_trace, 20_000, backend="streaming", chunk_packets=7_000)
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(
                serial_analysis.pooled(quantity).values, analysis.pooled(quantity).values
            )

    def test_streamed_matches_legacy_aggregation(self, small_trace, serial_analysis):
        """The single-pass fold agrees with the stacked two-pass aggregation."""
        legacy = analyze_trace(small_trace, 20_000)
        for quantity in QUANTITY_NAMES:
            streamed = serial_analysis.pooled(quantity)
            windows = [w.pooled(quantity) for w in legacy.windows]
            from repro.analysis.pooling import aggregate_pooled

            stacked = aggregate_pooled(windows)
            np.testing.assert_allclose(streamed.values, stacked.values, rtol=1e-12)
            np.testing.assert_allclose(streamed.sigma, stacked.sigma, rtol=1e-9, atol=1e-15)

    def test_direct_construction_bit_identical_to_engine(self, small_trace, serial_analysis):
        """A WindowedAnalysis built by hand from the same window results
        pools through the same fold — and therefore compares equal."""
        from repro.streaming.pipeline import WindowedAnalysis

        results = [analyze_window(w) for w in iter_windows(small_trace, 20_000)]
        direct = WindowedAnalysis(
            n_valid=20_000, windows=tuple(results), quantities=QUANTITY_NAMES
        )
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(
                direct.pooled(quantity).values, serial_analysis.pooled(quantity).values
            )
            assert np.array_equal(
                direct.pooled(quantity).sigma, serial_analysis.pooled(quantity).sigma
            )
        assert direct == serial_analysis


class TestStreamingAnalyzeTrace:
    def test_bounded_memory_on_disk(self, small_trace, tmp_path):
        """An on-disk trace bigger than the chunk budget is analysed without
        ever buffering more than a chunk plus one window of packets."""
        chunk_packets = 6_000
        n_valid = 5_000
        path = save_trace_sharded(small_trace, tmp_path / "big", shard_packets=10_000)
        analysis = analyze_trace(
            path, n_valid, backend="streaming", chunk_packets=chunk_packets
        )
        stats = analysis.engine_stats
        assert stats["backend"] == "streaming"
        # the trace (120k packets) vastly exceeds the buffer bound:
        # one chunk + the leftover of an incomplete window (< window span)
        window_span = 2 * n_valid  # generous: windows here are all-valid
        assert stats["max_buffered_packets"] <= chunk_packets + window_span
        assert stats["max_buffered_packets"] < small_trace.n_packets / 4
        # bounded-memory runs do not retain per-window results...
        assert analysis.windows == ()
        # ...but every cross-window product is still available
        assert analysis.n_windows == small_trace.n_valid // n_valid
        assert len(analysis.aggregates_table()) == analysis.n_windows
        assert analysis.merged_histogram("source_fanout").total > 0
        assert analysis.dmax("link_packets") >= 1
        fit = analysis.fit_zipf_mandelbrot("source_fanout")
        assert 1.0 < fit.alpha < 4.0

    def test_path_input_v1(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "t.npz")
        from_path = analyze_trace(path, 30_000)
        in_memory = analyze_trace(small_trace, 30_000)
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(
                from_path.pooled(quantity).values, in_memory.pooled(quantity).values
            )

    def test_chunk_iterator_input(self, small_trace):
        analysis = analyze_trace(small_trace.iter_chunks(9_000), 30_000)
        assert analysis.n_windows == small_trace.n_valid // 30_000

    def test_chunk_packets_rechunks_iterable_input(self, small_trace):
        """Regression: chunk_packets must bound the buffer even when the
        caller's own chunks are far larger than the budget."""
        oversized = small_trace.iter_chunks(60_000)  # two huge chunks
        analysis = analyze_trace(
            oversized, 10_000, backend="streaming", chunk_packets=5_000
        )
        stats = analysis.engine_stats
        assert stats["max_buffered_packets"] <= 5_000 + 2 * 10_000
        assert stats["max_buffered_packets"] < 60_000
        baseline = analyze_trace(small_trace, 10_000)
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(
                baseline.pooled(quantity).values, analysis.pooled(quantity).values
            )

    def test_max_windows_with_streaming(self, small_trace):
        analysis = analyze_trace(
            small_trace, 10_000, backend="streaming", chunk_packets=8_000, max_windows=3
        )
        assert analysis.n_windows == 3

    def test_invalid_trace_type_rejected(self):
        with pytest.raises(TypeError):
            analyze_trace(42, 100)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError, match="no complete windows"):
            analyze_trace(iter([]), 100)

    def test_keep_windows_override(self, small_trace):
        kept = analyze_trace(
            small_trace, 20_000, backend="streaming", keep_windows=True
        )
        assert len(kept.windows) == kept.n_windows


class TestWindowedAnalysisMemo:
    def test_memo_not_pickled(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        # legacy aggregation path exercises the memo
        object.__setattr__(analysis, "_stream", None)
        first = analysis.pooled("source_fanout")
        assert ("pooled", "source_fanout") in analysis._memo
        restored = pickle.loads(pickle.dumps(analysis))
        assert restored._memo == {}
        assert np.array_equal(restored.pooled("source_fanout").values, first.values)

    def test_memo_not_shared_between_instances(self, small_trace):
        windows = [analyze_window(w) for w in iter_windows(small_trace, 30_000)]
        from repro.streaming.pipeline import WindowedAnalysis

        one = WindowedAnalysis(n_valid=30_000, windows=tuple(windows), quantities=QUANTITY_NAMES)
        two = WindowedAnalysis(n_valid=30_000, windows=tuple(windows), quantities=QUANTITY_NAMES)
        one.pooled("source_fanout")
        assert one._memo and not two._memo

    def test_no_mutable_dataclass_cache_field(self):
        """Regression: the old `_pooled_cache` dict *field* leaked shared
        state into pickles and equality; the memo must not be a field."""
        import dataclasses

        from repro.streaming.pipeline import WindowedAnalysis

        field_names = {f.name for f in dataclasses.fields(WindowedAnalysis)}
        assert "_pooled_cache" not in field_names
        assert "_memo" not in field_names

    def test_memoized_merged_histogram(self, small_trace):
        analysis = analyze_trace(small_trace, 30_000)
        object.__setattr__(analysis, "_stream", None)
        assert analysis.merged_histogram("link_packets") is analysis.merged_histogram("link_packets")

    def test_equality_compares_products_not_fields(self, small_trace):
        """Regression: streamed analyses (windows=()) of different traces
        must not compare equal just because the dataclass fields match."""
        other_trace = PacketTrace(small_trace.packets[:60_000])
        a = analyze_trace(small_trace, 20_000, backend="streaming")
        b = analyze_trace(other_trace, 20_000, backend="streaming")
        assert a != b
        same = analyze_trace(small_trace, 20_000, backend="serial", keep_windows=False)
        assert a == same
        assert a != "not an analysis"
        assert len({a, same}) == 1  # hashable, and hash consistent with __eq__

    def test_equality_sees_sigma(self, small_trace):
        a = analyze_trace(small_trace, 20_000, backend="streaming")
        b = analyze_trace(small_trace, 20_000, backend="streaming")
        assert a == b
        # forge an analysis whose means match but σ differs: must not be equal
        state = b._stream
        forged_pooled = {
            q: type(p)(bin_edges=p.bin_edges, values=p.values, sigma=p.sigma + 1.0, total=p.total)
            for q, p in state.pooled.items()
        }
        from repro.streaming.pipeline import _StreamState, WindowedAnalysis

        forged = WindowedAnalysis(
            n_valid=b.n_valid,
            windows=b.windows,
            quantities=b.quantities,
            _stream=_StreamState(
                n_windows=state.n_windows,
                pooled=forged_pooled,
                merged=state.merged,
                aggregate_rows=state.aggregate_rows,
                stats=state.stats,
            ),
        )
        assert a != forged


class TestStreamAnalyzerDirect:
    def test_incremental_matches_batch(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        analyzer = StreamAnalyzer(20_000, QUANTITY_NAMES)
        for window in windows:
            analyzer.update(analyze_window(window))
        batch = analyze_windows(windows, n_valid=20_000)
        final = analyzer.result()
        for quantity in QUANTITY_NAMES:
            assert np.array_equal(final.pooled(quantity).values, batch.pooled(quantity).values)

    def test_empty_result_rejected(self):
        with pytest.raises(ValueError, match="no complete windows"):
            StreamAnalyzer(100).result()

    def test_keep_aggregates_opt_out(self, small_trace):
        """For unbounded streams the per-window Table-I rows can be dropped,
        making the fold state fully window-count independent."""
        analyzer = StreamAnalyzer(20_000, QUANTITY_NAMES, keep_aggregates=False)
        for window in iter_windows(small_trace, 20_000):
            analyzer.update(analyze_window(window))
        result = analyzer.result()
        assert result.n_windows == small_trace.n_valid // 20_000
        assert result.aggregates_table() == []
        assert result.pooled("source_fanout").probability_sum() == pytest.approx(1.0)

    def test_unknown_quantity_rejected(self):
        with pytest.raises(ValueError):
            StreamAnalyzer(100, quantities=("bogus",))


class TestWindowBatching:
    """The batched execution paths: payload batches, stream batches, pools."""

    @pytest.fixture(scope="class")
    def serial_analysis(self, small_trace):
        return analyze_trace(small_trace, 20_000, backend="serial", keep_windows=False)

    def test_iter_batches_groups_in_order(self):
        assert list(iter_batches(range(7), 3)) == [(0, 1, 2), (3, 4, 5), (6,)]
        assert list(iter_batches([], 4)) == []
        with pytest.raises(ValueError):
            list(iter_batches([1], 0))

    def test_default_batch_windows_targets_four_tasks_per_worker(self):
        assert default_batch_windows(32, 4) == 2      # -> 16 tasks
        assert default_batch_windows(3, 8) == 1       # small workloads: no batching
        assert default_batch_windows(100_000, 4) == 64  # capped payloads
        with pytest.raises(ValueError):
            default_batch_windows(0, 4)

    @pytest.mark.parametrize("backend,kwargs", [
        ("serial", {}),
        ("process", {"n_workers": 2}),
        ("streaming", {"chunk_packets": 40_000}),
    ])
    def test_batch_windows_never_changes_results(self, small_trace, serial_analysis, backend, kwargs):
        for batch in (1, 3):
            analysis = analyze_trace(
                small_trace, 20_000, backend=backend, batch_windows=batch,
                keep_windows=False, **kwargs,
            )
            assert analysis == serial_analysis

    def test_process_path_ships_pooled_vectors(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        pairs = list(iter_window_results(ProcessBackend(2), windows))
        assert len(pairs) == len(windows)
        for (result, pooled), expected in zip(pairs, map(analyze_window, windows)):
            assert result.aggregates == expected.aggregates
            assert pooled is not None and set(pooled) == set(QUANTITY_NAMES)

    def test_process_path_pools_only_requested_quantities(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        pairs = list(
            iter_window_results(ProcessBackend(2), windows, quantities=("source_fanout",))
        )
        assert all(set(pooled) == {"source_fanout"} for _, pooled in pairs)
        restricted = analyze_trace(
            small_trace, 20_000, backend="process", n_workers=2,
            quantities=("source_fanout",), keep_windows=False,
        )
        serial = analyze_trace(
            small_trace, 20_000, quantities=("source_fanout",), keep_windows=False
        )
        assert restricted == serial

    def test_serial_path_defers_pooling(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        pairs = list(iter_window_results(SerialBackend(), windows))
        assert all(pooled is None for _, pooled in pairs)

    def test_too_few_windows_downgrade_logged(self, small_trace, caplog):
        window = next(iter_windows(small_trace, 20_000))
        with caplog.at_level(logging.INFO, logger="repro.streaming.parallel"):
            pairs = list(iter_window_results(ProcessBackend(4), [window]))
        assert len(pairs) == 1 and pairs[0][1] is None
        assert any("downgrading to serial" in message for message in caplog.messages)

    def test_invalid_batch_windows_rejected(self, small_trace):
        with pytest.raises(ValueError, match="batch_windows"):
            analyze_trace(small_trace, 20_000, batch_windows=0)
        with pytest.raises(ValueError, match="batch_windows"):
            analyze_trace(small_trace, 20_000, backend="streaming", batch_windows=-2)

    def test_single_worker_process_path_analyses_in_process(self, small_trace, caplog):
        windows = list(iter_windows(small_trace, 20_000))
        with caplog.at_level(logging.DEBUG, logger="repro.streaming.pipeline"):
            pairs = list(iter_window_results(ProcessBackend(1), windows))
        assert all(pooled is None for _, pooled in pairs)
        assert any("in-process" in message for message in caplog.messages)
        for (result, _), expected in zip(pairs, map(analyze_window, windows)):
            assert result.aggregates == expected.aggregates

    def test_oversized_batch_capped_to_keep_workers_occupied(self, small_trace, serial_analysis):
        # an explicit batch_windows larger than the workload must not collapse
        # the map to a single task (which would downgrade the pool to serial)
        analysis = analyze_trace(
            small_trace, 20_000, backend="process", n_workers=2,
            batch_windows=10_000, keep_windows=False,
        )
        assert analysis == serial_analysis

    def test_effective_workers(self):
        backend = ProcessBackend(4)
        assert backend.effective_workers(0) == 0
        assert backend.effective_workers(1) == 1
        assert backend.effective_workers(100) == 4


class TestSharedPools:
    def test_shared_pool_reused_across_maps(self):
        first = shared_pool(2)
        assert shared_pool(2) is first
        shutdown_shared_pools()
        assert shared_pool(2) is not first
        shutdown_shared_pools()

    def test_failed_map_discards_pool(self):
        backend = ProcessBackend(2)
        before = shared_pool(2)
        with pytest.raises(ZeroDivisionError):
            list(backend.map(_reciprocal, [1, 2, 0, 4]))
        # the poisoned pool was dropped; the next map starts a fresh one
        assert list(backend.map(_reciprocal, [1, 2, 4, 8])) == [1.0, 0.5, 0.25, 0.125]
        assert shared_pool(2) is not before
        shutdown_shared_pools()

    def test_usable_cpu_count_positive(self):
        assert 1 <= usable_cpu_count() <= (1 << 12)
        assert default_worker_count() >= 1

    def test_concurrent_map_survives_neighbour_failure(self):
        """Regression: a failed map used to terminate the shared pool while a
        concurrent map (daemon job + campaign worker in one process) was
        still iterating it, poisoning the innocent caller's results."""
        shutdown_shared_pools()
        backend = ProcessBackend(2)
        results: list = []
        raised: list = []
        start = threading.Barrier(2)

        def innocent():
            start.wait()
            results.extend(backend.map(_slow_square, list(range(40))))

        def failing():
            start.wait()
            time.sleep(0.05)  # let the innocent map get tasks in flight first
            try:
                list(backend.map(_reciprocal, [1, 0]))
            except ZeroDivisionError:
                raised.append(True)

        threads = [threading.Thread(target=innocent), threading.Thread(target=failing)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not any(thread.is_alive() for thread in threads), "a map never finished"
        assert raised == [True]
        assert results == [x * x for x in range(40)]
        shutdown_shared_pools()

    def test_failed_map_retires_generation_only_when_idle(self):
        from repro.streaming import parallel as parallel_module

        shutdown_shared_pools()
        entry = parallel_module._checkout_shared_pool(2)
        assert entry.active == 1 and not entry.retired
        assert parallel_module._checkout_shared_pool(2) is entry and entry.active == 2
        parallel_module._checkin_shared_pool(entry, failed=True)
        assert entry.retired and entry.active == 1
        # the retired generation left the cache: new maps get a fresh pool
        fresh = parallel_module._checkout_shared_pool(2)
        assert fresh is not entry
        # ...but the retired pool still serves its remaining in-flight map
        assert entry.pool.apply(_reciprocal, (2,)) == 0.5
        parallel_module._checkin_shared_pool(entry, failed=False)  # last claim out
        with pytest.raises(ValueError):
            entry.pool.apply(_reciprocal, (2,))  # now terminated
        parallel_module._checkin_shared_pool(fresh, failed=False)
        shutdown_shared_pools()


class TestWorkerCountPolicy:
    """The automatic worker count must scale its reserve to the machine."""

    @pytest.mark.parametrize(
        "cpus,expected",
        [(1, 1), (2, 2), (3, 2), (4, 2), (6, 4), (8, 6), (16, 14), (32, 16)],
    )
    def test_reserve_scales_with_cpu_count(self, monkeypatch, cpus, expected):
        monkeypatch.setattr("repro.streaming.parallel.usable_cpu_count", lambda: cpus)
        assert default_worker_count() == expected

    def test_small_boxes_are_not_starved(self, monkeypatch):
        # regression: a flat `cpus - reserve` downgraded 2-3-CPU machines to
        # serial execution even though parallel hardware existed
        for cpus in (2, 3):
            monkeypatch.setattr(
                "repro.streaming.parallel.usable_cpu_count", lambda cpus=cpus: cpus
            )
            assert default_worker_count() > 1

    def test_maximum_still_caps(self, monkeypatch):
        monkeypatch.setattr("repro.streaming.parallel.usable_cpu_count", lambda: 64)
        assert default_worker_count(maximum=4) == 4


def _reciprocal(x):
    return 1.0 / x


def _slow_square(x):
    time.sleep(0.01)
    return x * x


class TestAnalysisColumnReads:
    def test_column_subset_skips_time_and_size(self, small_trace, tmp_path):
        path = save_trace_sharded(small_trace, tmp_path / "sharded", shard_packets=30_000)
        lean = np.concatenate(
            [c.packets for c in iter_trace_chunks(path, columns=ANALYSIS_COLUMNS)]
        )
        full = np.concatenate([c.packets for c in iter_trace_chunks(path)])
        for column in ("src", "dst", "valid"):
            assert np.array_equal(lean[column], full[column])
        assert not lean["time"].any() and not lean["size"].any()

    def test_column_subset_v1(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.npz")
        lean = np.concatenate(
            [c.packets for c in iter_trace_chunks(path, columns=ANALYSIS_COLUMNS)]
        )
        assert np.array_equal(lean["src"], small_trace.packets["src"])
        assert not lean["time"].any()

    def test_unknown_column_rejected(self, small_trace, tmp_path):
        path = save_trace(small_trace, tmp_path / "trace.npz")
        with pytest.raises(ValueError, match="unknown trace columns"):
            list(iter_trace_chunks(path, columns=("src", "nope")))

    def test_path_analysis_identical_to_in_memory(self, small_trace, tmp_path):
        path = save_trace_sharded(small_trace, tmp_path / "sharded", shard_packets=25_000)
        from_disk = analyze_trace(path, 20_000, keep_windows=False)
        in_memory = analyze_trace(small_trace, 20_000, keep_windows=False)
        assert from_disk == in_memory


class TestStreamAnalyzerMergedDense:
    def test_merged_histogram_matches_chained_merges(self, small_trace):
        windows = list(iter_windows(small_trace, 20_000))
        results = [analyze_window(w) for w in windows]
        analyzer = StreamAnalyzer(20_000, keep_windows=False)
        for result in results:
            analyzer.update(result)
        for quantity in QUANTITY_NAMES:
            chained = results[0].histograms[quantity]
            for result in results[1:]:
                chained = chained.merge(result.histograms[quantity])
            streamed = analyzer.merged_histogram(quantity)
            assert np.array_equal(streamed.degrees, chained.degrees)
            assert np.array_equal(streamed.counts, chained.counts)
