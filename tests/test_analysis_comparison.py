"""Unit tests for repro.analysis.comparison and repro.analysis.summary."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.analysis.comparison import (
    chi_square_statistic,
    compare_models,
    ks_statistic,
    log_likelihood,
    pooled_relative_error,
)
from repro.analysis.histogram import degree_histogram
from repro.analysis.pooling import pool_differential_cumulative, pool_probability_vector
from repro.analysis.summary import format_table, summarize_graph, summarize_window
from repro.core.distributions import DiscretePowerLaw, ZipfMandelbrotDistribution


@pytest.fixture(scope="module")
def sample_histogram():
    dist = ZipfMandelbrotDistribution(2.0, -0.5, 10_000)
    return degree_histogram(dist.sample(100_000, rng=17))


@pytest.fixture(scope="module")
def sample_pooled(sample_histogram):
    return pool_differential_cumulative(sample_histogram)


class TestPooledRelativeError:
    def test_zero_for_identical_distributions(self, sample_pooled):
        assert pooled_relative_error(sample_pooled, sample_pooled) == pytest.approx(0.0)

    def test_positive_for_different_models(self, sample_pooled, sample_histogram):
        wrong = pool_probability_vector(DiscretePowerLaw(3.0, sample_histogram.dmax).probabilities())
        assert pooled_relative_error(sample_pooled, wrong) > 0.01

    def test_better_model_scores_lower(self, sample_pooled, sample_histogram):
        dmax = sample_histogram.dmax
        good = pool_probability_vector(ZipfMandelbrotDistribution(2.0, -0.5, dmax).probabilities())
        bad = pool_probability_vector(ZipfMandelbrotDistribution(2.8, 1.0, dmax).probabilities())
        assert pooled_relative_error(sample_pooled, good) < pooled_relative_error(sample_pooled, bad)

    def test_linear_space_option(self, sample_pooled, sample_histogram):
        model = pool_probability_vector(DiscretePowerLaw(2.0, sample_histogram.dmax).probabilities())
        linear = pooled_relative_error(sample_pooled, model, log_space=False)
        assert np.isfinite(linear) and linear >= 0

    def test_weights_change_result(self, sample_pooled, sample_histogram):
        model = pool_probability_vector(DiscretePowerLaw(2.5, sample_histogram.dmax).probabilities())
        flat = pooled_relative_error(sample_pooled, model)
        w = np.zeros(sample_pooled.n_bins)
        w[0] = 1.0  # only the d=1 bin matters
        weighted = pooled_relative_error(sample_pooled, model, weights=w)
        assert weighted != pytest.approx(flat)

    def test_weight_shape_mismatch_rejected(self, sample_pooled, sample_histogram):
        model = pool_probability_vector(DiscretePowerLaw(2.5, sample_histogram.dmax).probabilities())
        with pytest.raises(ValueError):
            pooled_relative_error(sample_pooled, model, weights=np.ones(2))


class TestKSAndChiSquare:
    def test_ks_zero_for_matching_model(self, sample_histogram):
        model = ZipfMandelbrotDistribution(2.0, -0.5, sample_histogram.dmax)
        assert ks_statistic(sample_histogram, model) < 0.02

    def test_ks_larger_for_wrong_model(self, sample_histogram):
        good = ZipfMandelbrotDistribution(2.0, -0.5, sample_histogram.dmax)
        bad = DiscretePowerLaw(3.0, sample_histogram.dmax)
        assert ks_statistic(sample_histogram, bad) > ks_statistic(sample_histogram, good)

    def test_ks_bounded(self, sample_histogram):
        model = DiscretePowerLaw(2.0, sample_histogram.dmax)
        assert 0.0 <= ks_statistic(sample_histogram, model) <= 1.0

    def test_chi_square_zero_for_identical(self, sample_pooled):
        assert chi_square_statistic(sample_pooled, sample_pooled) == pytest.approx(0.0)

    def test_chi_square_positive_for_different(self, sample_pooled, sample_histogram):
        wrong = pool_probability_vector(DiscretePowerLaw(3.0, sample_histogram.dmax).probabilities())
        assert chi_square_statistic(sample_pooled, wrong) > 0


class TestLogLikelihood:
    def test_higher_for_true_model(self, sample_histogram):
        good = ZipfMandelbrotDistribution(2.0, -0.5, sample_histogram.dmax)
        bad = ZipfMandelbrotDistribution(2.8, 0.5, sample_histogram.dmax)
        assert log_likelihood(sample_histogram, good) > log_likelihood(sample_histogram, bad)

    def test_minus_inf_when_support_too_small(self, sample_histogram):
        tiny = DiscretePowerLaw(2.0, 2)  # support misses most observed degrees
        assert log_likelihood(sample_histogram, tiny) == float("-inf")

    def test_empty_histogram_gives_zero(self):
        assert log_likelihood(degree_histogram([]), DiscretePowerLaw(2.0, 10)) == 0.0


class TestCompareModels:
    def test_ranking_puts_true_model_first(self, sample_histogram, sample_pooled):
        dmax = sample_histogram.dmax
        results = compare_models(
            sample_histogram,
            sample_pooled,
            {
                "zm_true": ZipfMandelbrotDistribution(2.0, -0.5, dmax),
                "powerlaw": DiscretePowerLaw(2.0, dmax),
                "zm_wrong": ZipfMandelbrotDistribution(2.8, 1.5, dmax),
            },
            n_parameters={"zm_true": 2, "powerlaw": 1, "zm_wrong": 2},
        )
        assert results[0].name == "zm_true"
        assert all(a.pooled_error <= b.pooled_error for a, b in zip(results, results[1:]))

    def test_aic_penalises_parameters(self, sample_histogram, sample_pooled):
        dmax = sample_histogram.dmax
        results = compare_models(
            sample_histogram,
            sample_pooled,
            {"m": DiscretePowerLaw(2.0, dmax)},
            n_parameters={"m": 3},
        )
        row = results[0].as_row()
        assert row["aic"] == pytest.approx(2 * 3 - 2 * row["loglik"])


class TestSummary:
    def test_summarize_graph_keys(self):
        g = nx.star_graph(10)
        summary = summarize_graph(g)
        assert summary.n_nodes == 11
        assert summary.dmax == 10
        assert 0 <= summary.degree_one_fraction <= 1

    def test_summarize_empty_graph(self):
        summary = summarize_graph(nx.Graph())
        assert summary.n_nodes == 0

    def test_summarize_window(self):
        hists = {"source_packets": degree_histogram([1, 1, 2, 4])}
        out = summarize_window(hists)
        assert out["source_packets"]["total"] == 4
        assert out["source_packets"]["dmax"] == 4

    def test_format_table_renders_all_rows(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows)
        assert "a" in text and "b" in text
        assert len(text.splitlines()) == 4  # header + separator + 2 rows

    def test_format_table_empty(self):
        assert "empty" in format_table([])
