"""Unit tests for repro.analysis.reporting (text-mode panel rendering)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import degree_histogram
from repro.analysis.pooling import PooledDistribution, pool_differential_cumulative, pool_probability_vector
from repro.analysis.reporting import render_pooled_panel, render_series_comparison
from repro.core.zipf_mandelbrot import zm_differential_cumulative


@pytest.fixture()
def observed_pooled():
    hist = degree_histogram([1] * 60 + [2] * 20 + [3] * 8 + [5] * 6 + [17] * 4 + [120] * 2)
    return pool_differential_cumulative(hist)


class TestRenderPooledPanel:
    def test_one_row_per_nonempty_bin(self, observed_pooled):
        text = render_pooled_panel(observed_pooled, title="panel")
        data_lines = [
            line for line in text.splitlines() if line.strip() and line.lstrip()[0].isdigit()
        ]
        n_nonempty = int(np.count_nonzero(observed_pooled.values > 0))
        assert len(data_lines) == n_nonempty

    def test_title_included(self, observed_pooled):
        assert render_pooled_panel(observed_pooled, title="source fan-out").startswith("source fan-out")

    def test_bar_length_monotone_in_probability(self, observed_pooled):
        text = render_pooled_panel(observed_pooled)
        lines = [line for line in text.splitlines() if "█" in line]
        lengths = [line.count("█") for line in lines]
        values = observed_pooled.values[observed_pooled.values > 0]
        order_by_value = np.argsort(-values)
        # the largest-probability bin has the longest bar
        assert lengths[order_by_value[0]] == max(lengths)

    def test_model_marker_rendered(self, observed_pooled):
        model = zm_differential_cumulative(128, 2.0, -0.5)
        text = render_pooled_panel(observed_pooled, model)
        assert "│" in text
        assert "model" in text

    def test_sigma_annotation(self):
        pooled = PooledDistribution(
            bin_edges=np.array([1, 2, 4]),
            values=np.array([0.5, 0.3, 0.2]),
            sigma=np.array([0.05, 0.02, 0.01]),
            total=100,
        )
        text = render_pooled_panel(pooled)
        assert "±" in text

    def test_empty_distribution(self):
        pooled = PooledDistribution(bin_edges=np.array([1, 2]), values=np.array([0.0, 0.0]))
        assert "empty" in render_pooled_panel(pooled)

    def test_width_validation(self, observed_pooled):
        with pytest.raises(ValueError):
            render_pooled_panel(observed_pooled, width=4)


class TestRenderSeriesComparison:
    def test_table_shape(self):
        edges = np.array([1, 2, 4, 8])
        zm = pool_probability_vector(np.full(8, 1 / 8)).align_to(edges).values
        text = render_series_comparison(edges, [("ZM", zm), ("PALU r=2", zm * 0.9)], title="fig4")
        lines = text.splitlines()
        assert lines[0] == "fig4"
        assert len(lines) == 3 + edges.size  # title + header + rule + rows

    def test_zero_values_rendered_as_dash(self):
        edges = np.array([1, 2])
        text = render_series_comparison(edges, [("a", np.array([0.5, 0.0]))])
        assert "—" in text

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            render_series_comparison(np.array([1, 2]), [("a", np.array([0.5]))])
