"""Unit tests for the benchmark-regression gate (``tools/check_bench.py``)."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))
import check_bench  # noqa: E402


def _artifact(seconds: float, *, usable_cpus: int = 1, nested: float = 0.5) -> dict:
    return {
        "benchmark": "demo",
        "machine": {
            "cpu_count": usable_cpus,
            "usable_cpus": usable_cpus,
            "platform": "Linux-test",
            "machine": "x86_64",
            "python": "3.11.7",
            "numpy": "2.0.0",
            "timing": "best-of-3",
        },
        "total_seconds": seconds,
        "cases": {"a": {"seconds": nested, "rows": 3}},
    }


class TestTimingExtraction:
    def test_finds_nested_seconds_leaves_only(self):
        timings = dict(check_bench.iter_timings(_artifact(1.25)))
        assert timings == {"total_seconds": 1.25, "cases.a.seconds": 0.5}

    def test_lists_are_walked(self):
        obj = {"runs": [{"seconds": 1.0}, {"seconds": 2.0, "n": 5}]}
        assert dict(check_bench.iter_timings(obj)) == {
            "runs[0].seconds": 1.0,
            "runs[1].seconds": 2.0,
        }


class TestMachineGate:
    def test_equal_machines_are_comparable(self):
        assert check_bench.machine_mismatch(_artifact(1.0), _artifact(2.0)) is None

    def test_differing_cpu_budget_skips_with_reason(self):
        reason = check_bench.machine_mismatch(
            _artifact(1.0, usable_cpus=8), _artifact(1.0, usable_cpus=1)
        )
        assert reason is not None and "cpu" in reason


class TestParallelEvidenceRefusal:
    def _claiming(self, *, usable_cpus: int, speedup: float) -> dict:
        artifact = _artifact(1.0, usable_cpus=usable_cpus)
        artifact["speedup_vs_serial"] = {
            "medium": {"serial": 1.0, "process-shm": speedup}
        }
        return artifact

    def test_one_cpu_parallel_claim_is_refused(self):
        reason = check_bench.parallel_evidence_refusal(
            self._claiming(usable_cpus=1, speedup=1.4)
        )
        assert reason is not None
        assert "REFUSED" in reason and "usable_cpus=1" in reason
        assert "1.40x" in reason and "process-shm" in reason

    def test_multi_core_claim_is_fine(self):
        assert check_bench.parallel_evidence_refusal(
            self._claiming(usable_cpus=8, speedup=3.2)
        ) is None

    def test_one_cpu_without_a_winning_claim_is_fine(self):
        # noise-band "speedups" (<= 1.05x) and slowdowns do not trip the guard
        assert check_bench.parallel_evidence_refusal(
            self._claiming(usable_cpus=1, speedup=1.03)
        ) is None

    def test_serial_entry_never_counts_as_a_claim(self):
        artifact = _artifact(1.0, usable_cpus=1)
        artifact["speedup_vs_serial"] = {"serial": 2.0}
        assert check_bench.parallel_evidence_refusal(artifact) is None

    def test_check_artifact_skips_loudly(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(self._claiming(usable_cpus=1, speedup=2.0)), encoding="utf-8")
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: _artifact(1.0))
        status, messages = check_bench.check_artifact(path, "HEAD", 2.0)
        assert status == "skip"
        assert "REFUSED as parallel evidence" in messages[0]
        assert check_bench.main([str(path)]) == 0  # a refusal is loud, not fatal


class TestCheckArtifact:
    def _write(self, tmp_path, payload) -> Path:
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_within_budget_passes(self, tmp_path, monkeypatch):
        path = self._write(tmp_path, _artifact(1.1))
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: _artifact(1.0))
        status, messages = check_bench.check_artifact(path, "HEAD", 2.0)
        assert status == "ok", messages

    def test_regression_fails_and_names_the_metric(self, tmp_path, monkeypatch):
        path = self._write(tmp_path, _artifact(5.0))
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: _artifact(1.0))
        status, messages = check_bench.check_artifact(path, "HEAD", 2.0)
        assert status == "fail"
        assert any("total_seconds" in message for message in messages)
        # the nested timing stayed flat, so it must not be reported
        assert not any("cases.a.seconds" in message for message in messages)

    def test_missing_baseline_skips(self, tmp_path, monkeypatch):
        path = self._write(tmp_path, _artifact(1.0))
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: None)
        status, messages = check_bench.check_artifact(path, "HEAD", 2.0)
        assert status == "skip"
        assert "baseline" in messages[0]

    def test_machine_mismatch_skips_even_with_regression(self, tmp_path, monkeypatch):
        path = self._write(tmp_path, _artifact(100.0, usable_cpus=2))
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: _artifact(1.0))
        status, _ = check_bench.check_artifact(path, "HEAD", 2.0)
        assert status == "skip"

    def test_new_metric_without_baseline_counterpart_is_ignored(self, tmp_path, monkeypatch):
        fresh = _artifact(1.0)
        fresh["extra_seconds"] = 99.0
        path = self._write(tmp_path, fresh)
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: _artifact(1.0))
        status, _ = check_bench.check_artifact(path, "HEAD", 2.0)
        assert status == "ok"


class TestMainExitCodes:
    def test_fail_exits_one(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(_artifact(9.0)), encoding="utf-8")
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: _artifact(1.0))
        assert check_bench.main([str(path)]) == 1

    def test_skip_exits_zero(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(_artifact(9.0)), encoding="utf-8")
        monkeypatch.setattr(check_bench, "committed_baseline", lambda name, ref: None)
        assert check_bench.main([str(path)]) == 0

    def test_missing_file_exits_two(self, tmp_path):
        assert check_bench.main([str(tmp_path / "BENCH_absent.json")]) == 2

    def test_bad_gate_rejected(self):
        with pytest.raises(SystemExit):
            check_bench.main(["--max-regression", "0.9"])

    def test_real_artifacts_parse_against_head(self):
        """Smoke the git path on the repo's own artifacts (never a hard fail:
        a dirty working tree or different box must skip, not flunk)."""
        code = check_bench.main(["--max-regression", "1000.0"])
        assert code == 0
