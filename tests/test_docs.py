"""Documentation consistency gates.

The docs site has two generated pages (CLI reference, benchmarks) and a
version-stamped footer; these tests fail whenever the committed artifacts
drift from what ``tools/gen_docs.py`` would produce, and run a strict
internal-link check over every markdown page so dead links fail the test
suite even on machines without mkdocs installed (CI additionally runs
``mkdocs build --strict``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

sys.path.insert(0, str(REPO_ROOT / "tools"))
import gen_docs  # noqa: E402


class TestGeneratedPages:
    def test_cli_page_is_up_to_date(self):
        # argparse help wrapping varies slightly across Python minor versions,
        # so compare whitespace-normalized here (this still catches missing
        # subcommands, flags, and help-text drift); the CI docs job holds the
        # byte-exact line via `git diff` on the pinned generator Python
        def normalize(text: str) -> str:
            return re.sub(r"\s+", " ", text).strip()

        committed = (DOCS_DIR / "cli.md").read_text(encoding="utf-8")
        assert normalize(committed) == normalize(gen_docs.render_cli_page()), (
            "docs/cli.md is stale; run: python tools/gen_docs.py"
        )

    @staticmethod
    def _mask_timings(text: str) -> str:
        # running the benchmark harnesses (the tier-1 suite includes them)
        # rewrites the BENCH_*.json wall-clock numbers, so the pytest-level
        # freshness check must be timing-insensitive; the CI docs job does
        # the byte-exact `git diff` check against the committed artifacts
        return re.sub(r"\b\d+\.\d+\b", "~", text)

    def test_benchmarks_page_is_up_to_date(self):
        committed = (DOCS_DIR / "benchmarks.md").read_text(encoding="utf-8")
        assert self._mask_timings(committed) == self._mask_timings(
            gen_docs.render_benchmarks_page()
        ), "docs/benchmarks.md is structurally stale; run: python tools/gen_docs.py"

    def test_benchmarks_page_covers_every_artifact(self):
        page = (DOCS_DIR / "benchmarks.md").read_text(encoding="utf-8")
        artifacts = sorted(p.name for p in REPO_ROOT.glob("BENCH_*.json"))
        assert artifacts, "no BENCH_*.json artifacts at the repo root"
        for name in artifacts:
            assert f"## {name}" in page


class TestVersionSingleSource:
    def test_mkdocs_footer_shows_package_version(self):
        import repro

        mkdocs = (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8")
        match = re.search(r'^copyright:\s*"repro ([^\s"]+)', mkdocs, re.MULTILINE)
        assert match, "mkdocs.yml must carry a 'repro <version>' copyright footer"
        assert match.group(1) == repro.__version__, (
            "mkdocs.yml footer version is stale; run: python tools/gen_docs.py"
        )

    def test_setup_py_reads_version_from_package(self):
        import repro

        setup_text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        assert "__init__.py" in setup_text and "version" in setup_text
        assert repro.__version__ not in setup_text, (
            "setup.py must read the version from repro/__init__.py, not repeat it"
        )


class TestInternalLinks:
    PAGES = [REPO_ROOT / "README.md", *sorted(DOCS_DIR.glob("*.md"))]
    LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

    @pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
    def test_relative_links_resolve(self, page):
        broken = []
        for target in self.LINK.findall(page.read_text(encoding="utf-8")):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (page.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{page.name} has dead relative links: {broken}"

    def test_nav_pages_exist(self):
        mkdocs = (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8")
        for target in re.findall(r"^\s+- [^:]+:\s+(\S+\.md)\s*$", mkdocs, re.MULTILINE):
            assert (DOCS_DIR / target).is_file(), f"mkdocs nav points at missing {target}"
