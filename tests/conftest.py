"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# Hypothesis profiles: "dev" keeps local runs fast; "ci" (selected in
# .github/workflows/ci.yml via --hypothesis-profile=ci) runs more examples
# with a derandomized, reproducible search so CI failures replay locally.
settings.register_profile(
    "dev",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=75,
    deadline=None,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.core.distributions import PALUDegreeDistribution, ZipfMandelbrotDistribution
from repro.core.palu_model import PALUParameters
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import PALUGraph, generate_palu_graph
from repro.streaming.packet import PacketTrace
from repro.streaming.trace_generator import generate_trace

#: Seed used by every deterministic fixture.
SEED = 20210329


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide deterministic generator (do not consume in-place in tests
    that depend on exact draws; spawn children instead)."""
    return np.random.default_rng(SEED)


@pytest.fixture(scope="session")
def palu_params() -> PALUParameters:
    """Representative PALU parameters used across the suite."""
    return default_palu_parameters(alpha=2.0, lam=2.0)


@pytest.fixture(scope="session")
def small_palu_graph(palu_params) -> PALUGraph:
    """A ~8k-node PALU underlying network (session-scoped: generated once)."""
    return generate_palu_graph(palu_params, n_nodes=8_000, rng=SEED)


@pytest.fixture(scope="session")
def medium_palu_graph(palu_params) -> PALUGraph:
    """A ~40k-node PALU underlying network for statistical assertions."""
    return generate_palu_graph(palu_params, n_nodes=40_000, rng=SEED + 1)


@pytest.fixture(scope="session")
def zm_sample_histogram() -> DegreeHistogram:
    """A large sample drawn from a known Zipf–Mandelbrot law (α=2.0, δ=-0.5)."""
    dist = ZipfMandelbrotDistribution(alpha=2.0, delta=-0.5, dmax=50_000)
    values = dist.sample(500_000, rng=SEED)
    return degree_histogram(values)


@pytest.fixture(scope="session")
def palu_sample_histogram() -> DegreeHistogram:
    """A large sample from a known reduced PALU distribution."""
    dist = PALUDegreeDistribution(c=0.3, l=0.4, u=0.05, alpha=2.0, Lambda=2.5, dmax=50_000)
    values = dist.sample(800_000, rng=SEED + 2)
    return degree_histogram(values)


@pytest.fixture(scope="session")
def small_trace(small_palu_graph) -> PacketTrace:
    """A 120k-packet synthetic trace over the small PALU graph."""
    return generate_trace(small_palu_graph.graph, 120_000, rate_model="zipf", rng=SEED + 3)
