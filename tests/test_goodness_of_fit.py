"""Unit tests for repro.core.goodness_of_fit and repro.analysis.clustering."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.analysis.clustering import (
    average_clustering,
    clustering_by_degree,
    clustering_summary,
    local_clustering,
)
from repro.analysis.histogram import degree_histogram
from repro.core.distributions import DiscretePowerLaw, ZipfMandelbrotDistribution
from repro.core.goodness_of_fit import (
    bootstrap_parameter_ci,
    likelihood_ratio_test,
    power_law_plausibility,
)
from repro.core.powerlaw_fit import fit_power_law
from repro.core.zm_fit import fit_zipf_mandelbrot_histogram


@pytest.fixture(scope="module")
def powerlaw_sample():
    return degree_histogram(DiscretePowerLaw(2.2, 50_000).sample(100_000, rng=1))


@pytest.fixture(scope="module")
def zm_sample():
    return degree_histogram(ZipfMandelbrotDistribution(2.0, -0.85, 50_000).sample(100_000, rng=2))


class TestPowerLawPlausibility:
    def test_true_power_law_is_plausible(self, powerlaw_sample):
        result = power_law_plausibility(powerlaw_sample, n_bootstrap=40, rng=3)
        assert result.p_value > 0.1
        assert result.plausible()

    def test_zm_head_rules_out_pure_power_law(self, zm_sample):
        result = power_law_plausibility(zm_sample, n_bootstrap=40, rng=4)
        assert result.p_value < 0.1
        assert not result.plausible()

    def test_result_fields(self, powerlaw_sample):
        result = power_law_plausibility(powerlaw_sample, n_bootstrap=10, rng=5)
        assert result.n_bootstrap == 10
        assert 0.0 <= result.observed_ks <= 1.0
        assert result.alpha == pytest.approx(2.2, abs=0.1)

    def test_empty_histogram_rejected(self):
        with pytest.raises(ValueError):
            power_law_plausibility(degree_histogram([]), n_bootstrap=5)


class TestLikelihoodRatioTest:
    def test_favours_true_model_on_zm_data(self, zm_sample):
        dmax = zm_sample.dmax
        zm_fit = fit_zipf_mandelbrot_histogram(zm_sample)
        pl_fit = fit_power_law(zm_sample, d_min=1)
        result = likelihood_ratio_test(
            zm_sample,
            zm_fit.model().distribution(),
            pl_fit.model(dmax),
            name_a="zipf_mandelbrot",
            name_b="power_law",
        )
        assert result.log_likelihood_ratio > 0
        assert result.favours == "zipf_mandelbrot"
        assert result.significant()

    def test_identical_models_inconclusive(self, powerlaw_sample):
        model = DiscretePowerLaw(2.2, powerlaw_sample.dmax)
        result = likelihood_ratio_test(powerlaw_sample, model, model)
        assert result.favours == "inconclusive"
        assert result.p_value == 1.0

    def test_insufficient_support_rejected(self, powerlaw_sample):
        tiny = DiscretePowerLaw(2.0, 2)
        with pytest.raises(ValueError):
            likelihood_ratio_test(powerlaw_sample, tiny, DiscretePowerLaw(2.0, powerlaw_sample.dmax))


class TestBootstrapCI:
    def test_interval_contains_point_estimate(self, powerlaw_sample):
        point, lower, upper = bootstrap_parameter_ci(
            powerlaw_sample,
            lambda h: fit_power_law(h, d_min=1).alpha,
            n_bootstrap=30,
            rng=6,
        )
        assert lower <= point <= upper
        assert upper - lower < 0.2  # 100k samples pin alpha down tightly

    def test_interval_covers_true_alpha(self, powerlaw_sample):
        point, lower, upper = bootstrap_parameter_ci(
            powerlaw_sample,
            lambda h: fit_power_law(h, d_min=1).alpha,
            n_bootstrap=30,
            rng=7,
        )
        assert lower - 0.05 <= 2.2 <= upper + 0.05

    def test_invalid_confidence_rejected(self, powerlaw_sample):
        with pytest.raises(ValueError):
            bootstrap_parameter_ci(powerlaw_sample, lambda h: 1.0, confidence=1.5)


class TestClustering:
    def test_triangle_graph(self):
        g = nx.complete_graph(3)
        assert local_clustering(g) == {0: 1.0, 1: 1.0, 2: 1.0}
        assert average_clustering(g) == pytest.approx(1.0)

    def test_star_graph_has_zero_clustering(self):
        g = nx.star_graph(10)
        assert average_clustering(g) == 0.0

    def test_matches_networkx_on_random_graph(self):
        g = nx.gnp_random_graph(200, 0.05, seed=1)
        ours = local_clustering(g)
        theirs = nx.clustering(g)
        for node in g.nodes():
            assert ours[node] == pytest.approx(theirs[node], abs=1e-12)

    def test_clustering_by_degree_profile(self):
        g = nx.barabasi_albert_graph(500, 3, seed=2)
        profile = clustering_by_degree(g)
        assert profile
        assert all(0.0 <= c <= 1.0 for c in profile.values())

    def test_empty_graph(self):
        assert average_clustering(nx.Graph()) == 0.0

    def test_palu_leaf_and_star_classes_have_zero_clustering(self, small_palu_graph):
        summary = clustering_summary(small_palu_graph.graph, small_palu_graph.class_of())
        assert summary["clustering_leaf"] == 0.0
        assert summary["clustering_centre"] == 0.0
        assert summary["clustering_star_leaf"] == 0.0
        # the configuration-model core has some (small) clustering
        assert summary["clustering_core"] >= 0.0
        assert summary["n_nodes"] == small_palu_graph.n_nodes
