"""Unit tests for the online drift-detection subsystem (repro.detect)."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.detect import (
    DETECTOR_NAMES,
    DetectingAnalyzer,
    DriftDetector,
    EWMADetector,
    evaluate_run,
    get_detector,
    make_detectors,
    match_alarms,
    true_change_windows,
)
from repro.detect.detectors import _EWMABaseline
from repro.streaming.pipeline import StreamAnalyzer, analyze_window
from repro.streaming.window import iter_windows


class TestRegistry:
    def test_catalogue_names(self):
        assert DETECTOR_NAMES == ("ewma", "cusum", "page-hinkley")

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_get_by_name_fresh_instance(self, name):
        a, b = get_detector(name), get_detector(name)
        assert a is not b
        assert a.name == name
        assert isinstance(a, DriftDetector)

    def test_get_unknown_name(self):
        with pytest.raises(KeyError, match="unknown detector"):
            get_detector("kalman")

    def test_params_override(self):
        detector = get_detector("ewma", threshold=0.5)
        assert detector.params()["threshold"] == 0.5

    def test_instance_passthrough_rejects_params(self):
        instance = EWMADetector()
        assert get_detector(instance) is instance
        with pytest.raises(ValueError, match="name"):
            get_detector(instance, threshold=1.0)

    def test_non_detector_rejected(self):
        with pytest.raises(TypeError, match="DriftDetector"):
            get_detector(object())  # type: ignore[arg-type]

    def test_make_detectors_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_detectors(("ewma", EWMADetector()))

    @pytest.mark.parametrize("name", DETECTOR_NAMES)
    def test_invalid_parameters_rejected(self, name):
        with pytest.raises(ValueError):
            get_detector(name, threshold=-1.0)
        with pytest.raises(ValueError):
            get_detector(name, warmup=1)
        with pytest.raises(ValueError):
            get_detector(name, decay=1.5)


class TestEWMABaseline:
    def test_first_update_seeds_mean(self):
        baseline = _EWMABaseline(0.2)
        baseline.update(np.array([1.0, 2.0]))
        assert baseline.count == 1
        np.testing.assert_array_equal(baseline._mean, [1.0, 2.0])

    def test_vectors_may_grow_and_shrink(self):
        baseline = _EWMABaseline(0.5)
        baseline.update(np.array([1.0]))
        baseline.update(np.array([1.0, 4.0]))   # grows: old samples were 0 there
        baseline.update(np.array([1.0]))        # shrinks: padded with 0
        assert baseline.n_bins == 2
        assert baseline._mean[0] == 1.0

    def test_distance_is_scale_free(self):
        baseline_small, baseline_big = _EWMABaseline(0.2), _EWMABaseline(0.2)
        x = np.array([1.0, 0.5, 0.25])
        baseline_small.update(x)
        baseline_big.update(1000.0 * x)
        assert baseline_small.distance(1.1 * x) == pytest.approx(
            baseline_big.distance(1100.0 * x)
        )

    def test_stationary_stream_has_small_distance(self):
        rng = np.random.default_rng(0)
        baseline = _EWMABaseline(0.1)
        base = np.array([8.0, 4.0, 2.0, 1.0])
        for _ in range(20):
            baseline.update(base + rng.normal(0, 0.01, size=4))
        assert baseline.distance(base) < 0.02
        assert baseline.distance(2 * base[::-1]) > 0.5

    def test_state_size_is_bin_count(self):
        baseline = _EWMABaseline(0.2)
        baseline.update(np.zeros(7))
        assert baseline.state_size() == 7


def _feed(detector, vectors):
    """Feed vectors in order; return the indices that alarmed."""
    return [i for i, v in enumerate(vectors) if detector.observe(np.asarray(v, float))]


def _step_stream(n_before=20, n_after=12, scale=3.0, seed=0):
    """A noisy vector stream with an abrupt scale change (regime shift)."""
    rng = np.random.default_rng(seed)
    base = np.array([16.0, 8.0, 4.0, 2.0, 1.0])
    before = [base * (1 + rng.normal(0, 0.02, size=5)) for _ in range(n_before)]
    shifted = base.copy()
    shifted[0] /= scale
    shifted[2] *= scale
    after = [shifted * (1 + rng.normal(0, 0.02, size=5)) for _ in range(n_after)]
    return before + after, n_before


@pytest.mark.parametrize("name", DETECTOR_NAMES)
class TestDetectorMechanics:
    def test_no_alarms_during_warmup(self, name):
        detector = get_detector(name)
        vectors, _ = _step_stream()
        assert _feed(detector, vectors[: detector.warmup]) == []

    def test_constant_stream_never_alarms(self, name):
        detector = get_detector(name)
        vectors = [np.array([8.0, 4.0, 2.0])] * 40
        assert _feed(detector, vectors) == []

    def test_step_change_alarms_and_rebaselines(self, name):
        detector = get_detector(name)
        vectors, change = _step_stream()
        alarms = _feed(detector, vectors)
        assert alarms, "abrupt regime shift must alarm"
        assert change <= alarms[0] <= change + 6
        # one alarm only: the reset re-baselined onto the new regime, which
        # is then stationary, and the baseline restarted from the alarm
        assert len(alarms) == 1
        assert detector._baseline.count == len(vectors) - alarms[0] - 1

    def test_determinism(self, name):
        vectors, _ = _step_stream(seed=3)
        assert _feed(get_detector(name), vectors) == _feed(get_detector(name), vectors)

    def test_state_is_o_bins_not_o_windows(self, name):
        short, long = get_detector(name), get_detector(name)
        vectors = [np.array([8.0, 4.0, 2.0, 1.0])] * 10
        _feed(short, vectors)
        _feed(long, vectors * 30)   # 30× more windows, same bins
        assert long.state_size() == short.state_size()

    def test_reset_restores_initial_state(self, name):
        detector = get_detector(name)
        vectors, _ = _step_stream()
        _feed(detector, vectors)
        detector.reset()
        fresh = get_detector(name)
        assert detector.state_size() == fresh.state_size()
        assert detector._baseline.count == 0


class TestDetectingAnalyzer:
    @pytest.fixture(scope="class")
    def window_results(self, small_trace):
        return [analyze_window(w) for w in iter_windows(small_trace, 20_000)]

    def test_requires_detectors(self):
        with pytest.raises(ValueError, match="at least one detector"):
            DetectingAnalyzer(StreamAnalyzer(1_000), ())

    def test_monitored_quantity_defaults_to_source_fanout(self):
        analyzer = DetectingAnalyzer(StreamAnalyzer(1_000), ("ewma",))
        assert analyzer.quantity == "source_fanout"

    def test_monitored_quantity_falls_back_to_first(self):
        analyzer = DetectingAnalyzer(
            StreamAnalyzer(1_000, ("link_packets",)), ("ewma",)
        )
        assert analyzer.quantity == "link_packets"

    def test_unanalysed_quantity_rejected(self):
        with pytest.raises(ValueError, match="not analysed"):
            DetectingAnalyzer(
                StreamAnalyzer(1_000, ("link_packets",)), ("ewma",), quantity="source_fanout"
            )

    def test_wrapped_analysis_unchanged(self, window_results):
        plain = StreamAnalyzer(20_000, keep_windows=False)
        for result in window_results:
            plain.update(result)
        wrapped_inner = StreamAnalyzer(20_000, keep_windows=False)
        wrapped = DetectingAnalyzer(wrapped_inner, DETECTOR_NAMES)
        for result in window_results:
            wrapped.update(result)
        assert wrapped.n_windows == plain.n_windows
        assert wrapped.result() == plain.result()

    def test_detection_result_shape(self, window_results):
        analyzer = DetectingAnalyzer(StreamAnalyzer(20_000), DETECTOR_NAMES)
        for result in window_results:
            analyzer.update(result)
        detection = analyzer.detection()
        assert detection.detectors == DETECTOR_NAMES
        assert detection.n_windows == len(window_results)
        assert set(detection.alarms) == set(DETECTOR_NAMES)
        assert set(detection.params) == set(DETECTOR_NAMES)
        rows = detection.as_rows()
        assert [r["detector"] for r in rows] == list(DETECTOR_NAMES)

    def test_state_size_is_sum_of_detectors(self):
        analyzer = DetectingAnalyzer(StreamAnalyzer(1_000), ("ewma", "cusum"))
        assert analyzer.state_size() == sum(d.state_size() for d in analyzer.detectors)


class TestEvaluation:
    def test_true_change_windows(self):
        assert true_change_windows(np.array([0, 0, 0, 1, 1, 2])) == (3, 5)
        assert true_change_windows(np.array([0, 0, 0])) == ()
        assert true_change_windows(np.array([])) == ()

    def test_match_alarms_basic(self):
        matched, false_alarms = match_alarms([16, 40], [15, 30], max_latency=8)
        assert matched == {15: 16}
        assert false_alarms == (40,)

    def test_match_alarm_before_boundary_is_false(self):
        matched, false_alarms = match_alarms([10], [15], max_latency=8)
        assert matched == {}
        assert false_alarms == (10,)

    def test_match_one_alarm_per_boundary(self):
        matched, false_alarms = match_alarms([15, 16, 17], [15], max_latency=8)
        assert matched == {15: 15}
        assert false_alarms == (16, 17)

    def test_match_two_boundaries_one_window(self):
        # the second alarm lands in both boundaries' windows; it must credit
        # the not-yet-detected one rather than double-crediting the first
        matched, _ = match_alarms([15, 18], [15, 17], max_latency=8)
        assert matched == {15: 15, 17: 18}

    def test_match_rejects_negative_latency(self):
        with pytest.raises(ValueError, match="max_latency"):
            match_alarms([1], [1], max_latency=-1)

    def test_evaluation_metrics(self):
        run = repro.analyze_scenario(
            "alpha-drift", 2_000, seed=0, detectors=DETECTOR_NAMES
        )
        evaluations = evaluate_run(run, max_latency=8)
        assert [e.detector for e in evaluations] == list(DETECTOR_NAMES)
        for evaluation in evaluations:
            assert evaluation.boundaries == true_change_windows(run.phases.window_phase)
            assert 0.0 <= evaluation.precision <= 1.0
            assert 0.0 <= evaluation.recall <= 1.0
            assert evaluation.n_detected >= 1
            assert all(0 <= latency <= 8 for latency in evaluation.latencies)
            row = evaluation.as_row()
            assert row["detector"] == evaluation.detector
            assert row["boundaries"] == 2

    def test_evaluate_run_requires_detection(self):
        run = repro.analyze_scenario("stationary", 10_000, seed=0)
        with pytest.raises(ValueError, match="no detection"):
            evaluate_run(run)

    def test_evaluate_detectors_convenience(self):
        run, evaluations = repro.evaluate_detectors(
            "flash-crowd", 2_000, seed=1, detectors=("cusum",)
        )
        assert run.detection is not None
        assert len(evaluations) == 1
        assert evaluations[0].detector == "cusum"
        assert evaluations[0].recall > 0

    def test_metrics_without_alarms_or_boundaries(self):
        run = repro.analyze_scenario("stationary", 2_000, seed=0, detectors=("ewma",))
        evaluation = evaluate_run(run)[0]
        assert evaluation.boundaries == ()
        assert evaluation.alarms == ()
        assert evaluation.precision == 1.0 and evaluation.recall == 1.0
        assert evaluation.false_alarm_rate == 0.0
        assert np.isnan(evaluation.mean_latency)
        assert evaluation.as_row()["latency"] == "-"


class TestScenarioIntegration:
    def test_detection_off_by_default(self):
        run = repro.analyze_scenario("stationary", 10_000, seed=0)
        assert run.detection is None

    def test_empty_detectors_means_no_detection(self):
        run = repro.analyze_scenario("stationary", 10_000, seed=0, detectors=())
        assert run.detection is None

    def test_detect_quantity_without_detectors_rejected(self):
        with pytest.raises(ValueError, match="no detectors"):
            repro.analyze_scenario(
                "stationary", 10_000, seed=0, detect_quantity="link_packets"
            )

    def test_detection_attached_and_scored(self):
        run = repro.analyze_scenario(
            "flash-crowd", 2_000, seed=0, detectors=DETECTOR_NAMES
        )
        assert run.detection is not None
        assert run.detection.quantity == "source_fanout"
        assert run.detection.n_windows == run.analysis.n_windows
        assert any(run.detection.alarms[name] for name in DETECTOR_NAMES)

    def test_detect_quantity_respected(self):
        run = repro.analyze_scenario(
            "stationary", 5_000, seed=0, detectors=("ewma",), detect_quantity="link_packets"
        )
        assert run.detection.quantity == "link_packets"

    def test_streaming_backend_detector_state_stays_o_bins(self):
        """Memory-bound contract: a longer stream must not grow detector state
        (beyond bin growth), and engine buffering stays bounded by the chunk."""
        from repro.scenarios import Phase, Scenario

        def run_phases(n_packets):
            scenario = Scenario(
                "detect-mem-test",
                phases=(Phase("erdos-renyi", n_packets, {"n_nodes": 400, "p": 0.02}),),
            )
            analyzer = StreamAnalyzer(500, ("source_fanout",), keep_windows=False)
            detecting = DetectingAnalyzer(analyzer, DETECTOR_NAMES)
            from repro.scenarios.source import ScenarioTraceSource
            from repro.streaming.window import ChunkedWindower

            source = ScenarioTraceSource(scenario, seed=0, chunk_packets=2_000)
            windower = ChunkedWindower(iter(source), 500)
            for window in windower:
                detecting.update(analyze_window(window))
            return detecting, windower

        short, _ = run_phases(10_000)
        long, windower = run_phases(80_000)   # 8× the windows
        assert long.n_windows >= 8 * short.n_windows
        n_bins_short = short.analyzer.pooled("source_fanout").n_bins
        n_bins_long = long.analyzer.pooled("source_fanout").n_bins
        # identical per-bin footprint ⇒ state differs only through bin count
        assert long.state_size() <= short.state_size() + 6 * (n_bins_long - n_bins_short)
        assert windower.max_buffered_packets <= 2_000 + 500 * 4

    def test_backend_equivalence_of_alarms(self):
        kwargs = dict(detectors=DETECTOR_NAMES, seed=5)
        serial = repro.analyze_scenario("flash-crowd", 2_000, **kwargs)
        process = repro.analyze_scenario(
            "flash-crowd", 2_000, backend="process", n_workers=2, **kwargs
        )
        streaming = repro.analyze_scenario(
            "flash-crowd", 2_000, backend="streaming", chunk_packets=7_000, **kwargs
        )
        assert serial.detection.alarms == process.detection.alarms
        assert serial.detection.alarms == streaming.detection.alarms


class TestCampaignIntegration:
    def test_detectors_change_the_content_key(self):
        spec_plain = repro.RunSpec("stationary", seed=0, n_valid=2_000)
        spec_detect = repro.RunSpec(
            "stationary", seed=0, n_valid=2_000, detectors=("cusum",)
        )
        assert spec_plain.key != spec_detect.key
        assert spec_detect.as_manifest()["detectors"] == ["cusum"]

    def test_unknown_detector_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="unknown detectors"):
            repro.RunSpec("stationary", seed=0, n_valid=2_000, detectors=("bogus",))

    def test_detector_parameter_retune_changes_the_key(self, monkeypatch):
        """Alarms are a function of the tuned parameters, so a default
        retune must retire cached cells mechanically."""
        import functools

        from repro.detect import EWMADetector
        from repro.detect import detectors as detectors_module

        before = repro.RunSpec("stationary", seed=0, n_valid=2_000, detectors=("ewma",))
        monkeypatch.setitem(
            detectors_module._FACTORIES, "ewma",
            functools.partial(EWMADetector, threshold=0.42),
        )
        after = repro.RunSpec("stationary", seed=0, n_valid=2_000, detectors=("ewma",))
        assert before.key != after.key

    def test_duplicate_detectors_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="duplicate detectors"):
            repro.RunSpec("stationary", seed=0, n_valid=2_000, detectors=("cusum", "cusum"))
        with pytest.raises(ValueError, match="duplicate detectors"):
            repro.Campaign("dup", scenarios=("stationary",), detectors=("ewma", "ewma"))

    def test_campaign_cells_carry_detectors(self, tmp_path):
        campaign = repro.Campaign(
            "detect-sweep",
            scenarios=("stationary",),
            seeds=(0,),
            n_valids=(2_000,),
            quantities=("source_fanout",),
            detectors=("ewma", "cusum"),
        )
        assert all(spec.detectors == ("ewma", "cusum") for spec in campaign.cells())
        run = repro.run_campaign(campaign, tmp_path / "store")
        assert run.n_computed == 1
        store = repro.ResultStore(tmp_path / "store")
        stored = store.get(campaign.cells()[0].key)
        assert stored.detection is not None
        assert stored.detection.detectors == ("ewma", "cusum")
