"""Unit tests for repro.core.zeta."""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy.special import zeta as scipy_zeta

from repro.core.zeta import (
    generalized_harmonic,
    hurwitz_zeta,
    riemann_zeta,
    truncated_hurwitz,
    truncated_zeta,
    zeta_prime,
)


class TestRiemannZeta:
    def test_known_value_alpha_2(self):
        assert riemann_zeta(2.0) == pytest.approx(math.pi**2 / 6, rel=1e-12)

    def test_known_value_alpha_4(self):
        assert riemann_zeta(4.0) == pytest.approx(math.pi**4 / 90, rel=1e-12)

    def test_matches_scipy_across_paper_range(self):
        alphas = np.linspace(1.5, 3.0, 31)
        ours = riemann_zeta(alphas)
        theirs = scipy_zeta(alphas, 1.0)
        np.testing.assert_allclose(ours, theirs, rtol=1e-10)

    def test_paper_quoted_range(self):
        # the paper states 1.202 <= zeta(alpha) <= 2.612 for alpha in [1.5, 3]
        assert riemann_zeta(3.0) == pytest.approx(1.202, abs=5e-4)
        assert riemann_zeta(1.5) == pytest.approx(2.612, abs=5e-4)

    def test_scipy_method_agrees(self):
        assert riemann_zeta(2.3, method="scipy") == pytest.approx(riemann_zeta(2.3), rel=1e-10)

    def test_rejects_alpha_at_or_below_one(self):
        with pytest.raises(ValueError):
            riemann_zeta(1.0)
        with pytest.raises(ValueError):
            riemann_zeta(0.5)

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            riemann_zeta(2.0, method="mathematica")

    def test_scalar_in_scalar_out(self):
        assert isinstance(riemann_zeta(2.0), float)

    def test_array_in_array_out(self):
        out = riemann_zeta(np.array([2.0, 3.0]))
        assert isinstance(out, np.ndarray)
        assert out.shape == (2,)

    def test_monotone_decreasing_in_alpha(self):
        values = riemann_zeta(np.linspace(1.2, 5.0, 20))
        assert np.all(np.diff(values) < 0)


class TestHurwitzZeta:
    def test_reduces_to_riemann_at_q_1(self):
        assert hurwitz_zeta(2.5, 1.0) == pytest.approx(riemann_zeta(2.5), rel=1e-12)

    def test_matches_scipy(self):
        for q in (0.25, 0.5, 1.7, 3.0):
            assert hurwitz_zeta(2.2, q) == pytest.approx(float(scipy_zeta(2.2, q)), rel=1e-10)

    def test_rejects_nonpositive_q(self):
        with pytest.raises(ValueError):
            hurwitz_zeta(2.0, 0.0)

    def test_rejects_alpha_below_one(self):
        with pytest.raises(ValueError):
            hurwitz_zeta(0.9, 1.0)


class TestTruncatedSums:
    def test_truncated_zeta_small_direct(self):
        # sum over d=1..4 of d^-2 = 1 + 1/4 + 1/9 + 1/16
        assert truncated_zeta(2.0, 4) == pytest.approx(1 + 0.25 + 1 / 9 + 1 / 16)

    def test_truncated_zeta_converges_to_riemann(self):
        assert truncated_zeta(2.0, 10_000_000) == pytest.approx(riemann_zeta(2.0), rel=1e-6)

    def test_truncated_zeta_alpha_below_one_allowed(self):
        # finite sums are defined for any exponent
        assert truncated_zeta(0.5, 3) == pytest.approx(1 + 2**-0.5 + 3**-0.5)

    def test_truncated_hurwitz_matches_direct_sum_large_dmax(self):
        dmax = 50_000
        d = np.arange(1, dmax + 1, dtype=np.float64)
        direct = float(np.sum((d - 0.4) ** (-2.1)))
        assert truncated_hurwitz(2.1, -0.4, dmax) == pytest.approx(direct, rel=1e-9)

    def test_truncated_hurwitz_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            truncated_hurwitz(2.0, -1.0, 100)

    def test_generalized_harmonic_alias(self):
        assert generalized_harmonic(100, 1.8) == pytest.approx(truncated_zeta(1.8, 100))

    def test_truncated_zeta_rejects_bad_dmax(self):
        with pytest.raises((ValueError, TypeError)):
            truncated_zeta(2.0, 0)


class TestZetaPrime:
    def test_matches_finite_difference_of_scipy(self):
        eps = 1e-5
        expected = (float(scipy_zeta(2.0 + eps, 1.0)) - float(scipy_zeta(2.0 - eps, 1.0))) / (2 * eps)
        assert zeta_prime(2.0) == pytest.approx(expected, rel=1e-4)

    def test_negative_everywhere(self):
        for alpha in (1.5, 2.0, 2.5, 3.0):
            assert zeta_prime(alpha) < 0

    def test_rejects_alpha_near_one(self):
        with pytest.raises(ValueError):
            zeta_prime(1.0)
