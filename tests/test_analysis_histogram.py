"""Unit tests for repro.analysis.histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.histogram import (
    DegreeHistogram,
    cumulative_probability,
    degree_histogram,
    probability_from_counts,
)


class TestDegreeHistogramConstruction:
    def test_from_values_counts(self):
        hist = degree_histogram([1, 1, 2, 5, 5, 5])
        np.testing.assert_array_equal(hist.degrees, [1, 2, 5])
        np.testing.assert_array_equal(hist.counts, [2, 1, 3])

    def test_from_values_rejects_zero(self):
        with pytest.raises(ValueError, match="unobservable"):
            degree_histogram([0, 1, 2])

    def test_from_values_rejects_negative(self):
        with pytest.raises(ValueError):
            degree_histogram([-1, 2])

    def test_empty_values(self):
        hist = degree_histogram([])
        assert hist.total == 0
        assert hist.dmax == 0

    def test_from_dense_round_trip(self):
        dense = np.array([3, 0, 2, 0, 1])
        hist = DegreeHistogram.from_dense(dense)
        np.testing.assert_array_equal(hist.dense_counts(5), dense)

    def test_from_values_equals_from_dense(self):
        values = [1, 3, 3, 4]
        a = degree_histogram(values)
        b = DegreeHistogram.from_dense([1, 0, 2, 1])
        np.testing.assert_array_equal(a.degrees, b.degrees)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_rejects_unsorted_degrees(self):
        with pytest.raises(ValueError):
            DegreeHistogram(degrees=np.array([3, 1]), counts=np.array([1, 1]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            DegreeHistogram(degrees=np.array([1, 2]), counts=np.array([1]))

    def test_float_values_accepted_when_integral(self):
        hist = degree_histogram(np.array([1.0, 2.0, 2.0]))
        assert hist.total == 3


class TestDegreeHistogramQueries:
    @pytest.fixture()
    def hist(self) -> DegreeHistogram:
        return degree_histogram([1] * 60 + [2] * 25 + [4] * 10 + [16] * 5)

    def test_total(self, hist):
        assert hist.total == 100

    def test_dmax(self, hist):
        assert hist.dmax == 16

    def test_probability_sums_to_one(self, hist):
        assert hist.probability().sum() == pytest.approx(1.0)

    def test_cumulative_last_is_one(self, hist):
        assert hist.cumulative()[-1] == pytest.approx(1.0)

    def test_fraction_at_present_degree(self, hist):
        assert hist.fraction_at(1) == pytest.approx(0.6)

    def test_fraction_at_absent_degree(self, hist):
        assert hist.fraction_at(3) == 0.0

    def test_dense_probability_padding(self, hist):
        dense = hist.dense_probability(20)
        assert dense.size == 20
        assert dense[2] == 0.0
        assert dense.sum() == pytest.approx(1.0)

    def test_dense_counts_truncation(self, hist):
        dense = hist.dense_counts(4)
        assert dense.size == 4
        assert dense.sum() == 95  # the degree-16 nodes fall outside

    def test_merge_adds_counts(self, hist):
        other = degree_histogram([1, 1, 32])
        merged = hist.merge(other)
        assert merged.total == hist.total + 3
        assert merged.fraction_at(32) == pytest.approx(1 / 103)
        assert merged.dmax == 32

    def test_merge_is_commutative(self, hist):
        other = degree_histogram([2, 3, 3])
        a = hist.merge(other)
        b = other.merge(hist)
        np.testing.assert_array_equal(a.degrees, b.degrees)
        np.testing.assert_array_equal(a.counts, b.counts)


class TestHelperFunctions:
    def test_probability_from_counts(self):
        np.testing.assert_allclose(probability_from_counts([2, 2, 4]), [0.25, 0.25, 0.5])

    def test_probability_from_zero_counts(self):
        np.testing.assert_array_equal(probability_from_counts([0, 0]), [0.0, 0.0])

    def test_cumulative_probability(self):
        np.testing.assert_allclose(cumulative_probability([0.25, 0.25, 0.5]), [0.25, 0.5, 1.0])
