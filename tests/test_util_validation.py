"""Unit tests for repro._util.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro._util.validation import (
    check_fraction,
    check_in_range,
    check_integer_array,
    check_nonnegative,
    check_positive,
    check_positive_int,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive_float(self):
        assert check_positive(2.5, "x") == 2.5

    def test_accepts_positive_int(self):
        assert check_positive(3, "x") == 3.0

    def test_accepts_numpy_scalar(self):
        assert check_positive(np.float64(1.25), "x") == 1.25

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_positive(0.0, "x")

    def test_allow_zero(self):
        assert check_positive(0.0, "x", allow_zero=True) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_positive(float("inf"), "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("1.0", "x")

    def test_error_message_includes_name(self):
        with pytest.raises(ValueError, match="alpha"):
            check_positive(-3.0, "alpha")


class TestCheckNonnegative:
    def test_zero_ok(self):
        assert check_nonnegative(0.0, "x") == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_nonnegative(-0.1, "x")


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int(5, "n") == 5

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(7), "n") == 7

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(5.0, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_positive_int(1, "n", minimum=2)

    def test_custom_minimum_zero(self):
        assert check_positive_int(0, "n", minimum=0) == 0


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, "p") == 0.0
        assert check_fraction(1.0, "p") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, "p", inclusive=False)
        with pytest.raises(ValueError):
            check_fraction(1.0, "p", inclusive=False)

    def test_interior_value(self):
        assert check_fraction(0.37, "p") == 0.37

    def test_above_one_rejected(self):
        with pytest.raises(ValueError):
            check_fraction(1.2, "p")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            check_fraction(-0.2, "p")


class TestCheckInRange:
    def test_inside(self):
        assert check_in_range(2.0, "alpha", 1.5, 3.0) == 2.0

    def test_boundaries(self):
        assert check_in_range(1.5, "alpha", 1.5, 3.0) == 1.5
        assert check_in_range(3.0, "alpha", 1.5, 3.0) == 3.0

    def test_outside(self):
        with pytest.raises(ValueError):
            check_in_range(3.5, "alpha", 1.5, 3.0)

    def test_exclusive(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, "alpha", 1.5, 3.0, inclusive=False)


class TestCheckProbabilityVector:
    def test_valid_vector(self):
        out = check_probability_vector([0.25, 0.25, 0.5], "p")
        assert out.dtype == np.float64
        assert out.sum() == pytest.approx(1.0)

    def test_rejects_negative_entry(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector([0.5, -0.1, 0.6], "p")

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector([0.5, 0.6], "p")

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector([], "p")

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]], "p")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.5, float("nan")], "p")


class TestCheckIntegerArray:
    def test_int_input(self):
        out = check_integer_array([1, 2, 3], "d")
        assert out.dtype == np.int64

    def test_integral_float_input(self):
        out = check_integer_array([1.0, 4.0], "d")
        assert list(out) == [1, 4]

    def test_non_integral_float_rejected(self):
        with pytest.raises(ValueError, match="integral"):
            check_integer_array([1.5], "d")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError):
            check_integer_array([0, 1], "d", minimum=1)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            check_integer_array(["a"], "d")

    def test_empty_ok(self):
        out = check_integer_array([], "d", minimum=1)
        assert out.size == 0
