"""Tests of the public API surface of the top-level :mod:`repro` package."""

from __future__ import annotations

import importlib
import inspect

import pytest

import repro


class TestPublicSurface:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name!r}"

    def test_subpackages_importable(self):
        for subpackage in ("core", "generators", "streaming", "analysis", "experiments", "_util"):
            module = importlib.import_module(f"repro.{subpackage}")
            assert module is not None

    def test_subpackage_all_names_resolve(self):
        for subpackage in ("core", "generators", "streaming", "analysis", "experiments"):
            module = importlib.import_module(f"repro.{subpackage}")
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"repro.{subpackage}.__all__ lists missing {name!r}"

    def test_quickstart_docstring_names_exist(self):
        # every repro.* attribute referenced in the package docstring quickstart
        for name in (
            "PALUParameters",
            "generate_palu_graph",
            "sample_edges",
            "degree_histogram",
            "fit_zipf_mandelbrot_histogram",
        ):
            assert hasattr(repro, name)

    def test_public_callables_have_docstrings(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []

    def test_core_module_callables_have_docstrings(self):
        import repro.core as core

        undocumented = []
        for name in core.__all__:
            obj = getattr(core, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []

    def test_no_private_names_exported(self):
        assert not [n for n in repro.__all__ if n.startswith("_") and n != "__version__"]


class TestQuickstartFlow:
    def test_readme_quickstart_runs(self):
        params = repro.PALUParameters.from_weights(0.5, 0.2, 0.3, lam=2.0, alpha=2.0)
        graph = repro.generate_palu_graph(params, n_nodes=3_000, seed=7)
        observed = repro.sample_edges(graph.graph, p=0.4, seed=8)
        hist = repro.degree_histogram([d for _, d in observed.degree() if d > 0])
        fit = repro.fit_zipf_mandelbrot_histogram(hist)
        row = fit.as_row()
        assert 1.0 < row["alpha"] < 4.0

    def test_streaming_quickstart_runs(self):
        params = repro.PALUParameters.from_weights(0.5, 0.2, 0.3, lam=2.0, alpha=2.0)
        graph = repro.generate_palu_graph(params, n_nodes=3_000, seed=9)
        trace = repro.generate_trace(graph.graph, 60_000, rng=10)
        analysis = repro.analyze_trace(trace, 20_000)
        assert analysis.n_windows == 3
        fit = analysis.fit_zipf_mandelbrot("source_packets")
        assert fit.dmax > 1

    def test_invalid_usage_raises_helpful_errors(self):
        with pytest.raises(ValueError):
            repro.PALUParameters.from_weights(0.0, 0.0, 0.0, lam=1.0, alpha=2.0)
        with pytest.raises((ValueError, TypeError)):
            repro.degree_histogram([0])
        with pytest.raises(ValueError):
            repro.fit_zipf_mandelbrot_histogram(repro.degree_histogram([]))
