"""Shared-memory payload transport and mmap trace reads.

Pins the tentpole guarantees of the zero-copy path:

* :func:`repro.streaming.shm.publish_payloads` /
  :func:`~repro.streaming.shm.attached_payloads` round-trip column bytes
  exactly, ship references that pickle small, and leave no segment behind;
* pickle and shm transports produce ``tobytes()``-identical pooled vectors,
  aggregates, and alarm sequences on every surface that maps windows;
* segments leaked by a SIGKILLed creator are reaped at the next publish
  (real-process test, same pattern as the campaign fleet suite);
* ``npy``-layout shards memory-map bit-identically to the eager reader.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import pickle
import signal
import time
from pathlib import Path

import numpy as np
import pytest

import repro.streaming.shm as shm_mod
from repro.streaming.kernel import window_payload
from repro.streaming.packet import PACKET_DTYPE, PacketTrace
from repro.streaming.parallel import ProcessBackend, shutdown_shared_pools
from repro.streaming.pipeline import analyze_trace
from repro.streaming.trace_io import (
    LAYOUT_NAMES,
    iter_trace_chunks,
    load_trace,
    save_trace_sharded,
)
from repro.streaming.window import iter_windows

pytestmark = pytest.mark.skipif(
    not shm_mod.shm_supported(), reason="multiprocessing.shared_memory unavailable"
)


def _mixed_trace(n: int = 40_000, n_ids: int = 700, seed: int = 5) -> PacketTrace:
    """A trace with ~10% invalid packets, so window payloads carry a valid column."""
    rng = np.random.default_rng(seed)
    return PacketTrace.from_arrays(
        rng.integers(0, n_ids, n),
        rng.integers(0, n_ids, n),
        valid=rng.random(n) < 0.9,
    )


def _repro_segments() -> list[str]:
    """Names of live repro shared-memory segments on this machine."""
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return []
    return [
        name for name in os.listdir("/dev/shm")
        if name.startswith(shm_mod.SEGMENT_PREFIX + "_")
    ]


def _assert_bit_identical(reference, candidate) -> None:
    """Pooled vectors, σ, and aggregates of two analyses match byte for byte."""
    for quantity in reference.quantities:
        mine, theirs = reference.pooled(quantity), candidate.pooled(quantity)
        assert mine.values.tobytes() == theirs.values.tobytes(), quantity
        assert mine.sigma.tobytes() == theirs.sigma.tobytes(), quantity
        assert mine.total == theirs.total
    assert reference.aggregates_table() == candidate.aggregates_table()


class TestPublishAttach:
    def test_round_trip_views_equal_columns(self):
        trace = _mixed_trace()
        payloads = [window_payload(w) for w in iter_windows(trace, 5_000)]
        all_valid = [window_payload(w) for w in iter_windows(_all_valid_trace(), 4_000)]
        assert any(p[2] is not None for p in payloads)  # mixed traces ship valid
        assert all(p[2] is None for p in all_valid)  # all-valid windows do not
        published = shm_mod.publish_payloads(payloads + all_valid)
        try:
            assert published.segment in _repro_segments()
            assert len(published.refs) == len(payloads) + len(all_valid)
            with shm_mod.attached_payloads() as resolve:
                for ref, (src, dst, valid) in zip(published.refs, payloads + all_valid):
                    view_src, view_dst, view_valid = resolve(ref)
                    assert np.array_equal(view_src, src)
                    assert np.array_equal(view_dst, dst)
                    assert not view_src.flags.writeable
                    if valid is None:
                        assert view_valid is None
                    else:
                        assert np.array_equal(view_valid, valid)
        finally:
            published.close()
        assert published.segment not in _repro_segments()

    def test_refs_pickle_small(self):
        # the point of the transport: task payload size is independent of
        # window size — a reference is a few hundred bytes, not megabytes
        trace = _mixed_trace(200_000, seed=6)
        payloads = [window_payload(w) for w in iter_windows(trace, 90_000)]
        with shm_mod.publish_payloads(payloads) as published:
            for ref in published.refs:
                assert len(pickle.dumps(ref)) < 1_000
            assert published.nbytes > 1_000_000

    def test_close_is_idempotent(self):
        payloads = [window_payload(next(iter_windows(_mixed_trace(3_000), 1_000)))]
        published = shm_mod.publish_payloads(payloads)
        published.close()
        published.close()
        assert published.segment not in _repro_segments()

    def test_empty_publish(self):
        with shm_mod.publish_payloads([]) as published:
            assert published.refs == ()
            assert published.segment in _repro_segments()
        assert published.segment not in _repro_segments()


def _all_valid_trace(n: int = 20_000, n_ids: int = 500, seed: int = 7) -> PacketTrace:
    rng = np.random.default_rng(seed)
    return PacketTrace.from_arrays(rng.integers(0, n_ids, n), rng.integers(0, n_ids, n))


class TestTransportEquivalence:
    @pytest.fixture(scope="class")
    def trace(self):
        return _mixed_trace()

    @pytest.fixture(scope="class")
    def serial(self, trace):
        return analyze_trace(trace, 4_000)

    @pytest.mark.parametrize("transport", shm_mod.TRANSPORT_NAMES)
    def test_pooled_bit_identical_across_transports(self, trace, serial, transport):
        parallel = analyze_trace(
            trace, 4_000, backend=ProcessBackend(2, payload_transport=transport)
        )
        assert parallel.engine_stats["payload_transport"] == transport
        _assert_bit_identical(serial, parallel)
        shutdown_shared_pools()

    def test_sketch_mode_bit_identical_across_transports(self, trace):
        runs = [
            analyze_trace(
                trace, 4_000, mode="sketch",
                backend=ProcessBackend(2, payload_transport=transport),
            )
            for transport in shm_mod.TRANSPORT_NAMES
        ]
        _assert_bit_identical(runs[0], runs[1])
        shutdown_shared_pools()

    def test_detection_alarms_identical_across_transports(self):
        from repro.detect import DETECTOR_NAMES
        from repro.scenarios import analyze_scenario

        runs = [
            analyze_scenario(
                "flash-crowd", 2_000, seed=1, detectors=DETECTOR_NAMES,
                backend=ProcessBackend(2, payload_transport=transport),
            )
            for transport in shm_mod.TRANSPORT_NAMES
        ]
        assert runs[0].detection.alarms == runs[1].detection.alarms
        assert runs[0].detection.alarms  # the scenario does raise alarms
        _assert_bit_identical(runs[0].analysis, runs[1].analysis)
        shutdown_shared_pools()

    def test_no_segments_survive_the_fold(self, trace):
        analyze_trace(trace, 4_000, backend=ProcessBackend(2, payload_transport="shm"))
        assert _repro_segments() == []
        shutdown_shared_pools()


class TestReaper:
    def test_creator_pid_parsing(self):
        name = shm_mod._segment_name()
        assert shm_mod._creator_pid(name) == os.getpid()
        assert shm_mod._creator_pid("repro_shm_notanumber_0_ab") is None
        assert shm_mod._creator_pid("unrelated_file") is None

    def test_reaper_ignores_live_creators(self):
        payloads = [window_payload(next(iter_windows(_mixed_trace(3_000), 1_000)))]
        with shm_mod.publish_payloads(payloads) as published:
            assert shm_mod.reap_orphaned_segments() == 0
            assert published.segment in _repro_segments()

    def test_sigkilled_creator_segment_is_reaped(self, tmp_path):
        # real-process leak: the creator dies by SIGKILL before its finally
        # (and, fleet-style, without its resource tracker cleaning up) — the
        # next publish on the machine must collect the orphan
        out = tmp_path / "segment.txt"
        ctx = multiprocessing.get_context("fork")
        victim = ctx.Process(target=_leaky_creator, args=(str(out),))
        victim.start()
        victim.join(timeout=60)
        assert not victim.is_alive(), "leaky creator never died"
        assert victim.exitcode == -signal.SIGKILL
        segment = out.read_text(encoding="utf-8").strip()
        assert segment in _repro_segments(), "victim did not leak its segment"

        payloads = [window_payload(next(iter_windows(_mixed_trace(3_000), 1_000)))]
        with shm_mod.publish_payloads(payloads):  # implicit reap on publish
            assert segment not in _repro_segments()

    def test_reap_counts_and_unlinks_dead_creator_segment(self):
        from multiprocessing import resource_tracker, shared_memory

        # forge an orphan: a segment named for a pid that is already dead
        ctx = multiprocessing.get_context("fork")
        ghost = ctx.Process(target=_noop)
        ghost.start()
        ghost.join(timeout=30)
        assert not _pid_alive(ghost.pid)
        name = f"{shm_mod.SEGMENT_PREFIX}_{ghost.pid}_0_deadbeef"
        segment = shared_memory.SharedMemory(create=True, size=64, name=name)
        resource_tracker.unregister(segment._name, "shared_memory")
        segment.close()
        assert name in _repro_segments()
        assert shm_mod.reap_orphaned_segments() >= 1
        assert name not in _repro_segments()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    return True


def _noop() -> None:
    pass


def _leaky_creator(out_path: str) -> None:
    """Create a segment, hide it from the (shared) tracker, die by SIGKILL."""
    from multiprocessing import resource_tracker

    payload = window_payload(next(iter_windows(_mixed_trace(2_000), 500)))
    published = shm_mod.publish_payloads([payload])
    # a fork'd child shares the parent's resource tracker; unregister so the
    # "tracker died with the process group" fleet scenario is reproduced
    resource_tracker.unregister(published._shm._name, "shared_memory")
    Path(out_path).write_text(published.segment, encoding="utf-8")
    os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(30)  # pragma: no cover - SIGKILL fires first


class TestMmapReads:
    @pytest.fixture(scope="class")
    def trace(self):
        return _mixed_trace(60_000, seed=9)

    def test_npy_layout_round_trips(self, trace, tmp_path):
        path = save_trace_sharded(trace, tmp_path / "npy", shard_packets=17_000, layout="npy")
        assert load_trace(path).packets.tobytes() == trace.packets.tobytes()

    def test_mmap_chunks_are_file_backed(self, trace, tmp_path):
        path = save_trace_sharded(trace, tmp_path / "npy", shard_packets=17_000, layout="npy")
        chunks = list(iter_trace_chunks(path, mmap=True))
        assert all(isinstance(chunk.packets.base, np.memmap) for chunk in chunks)
        eager = np.concatenate([c.packets for c in iter_trace_chunks(path)])
        mapped = np.concatenate([c.packets for c in chunks])
        assert mapped.tobytes() == eager.tobytes()

    def test_mmap_analysis_bit_identical_to_eager(self, trace, tmp_path):
        path = save_trace_sharded(trace, tmp_path / "npy", shard_packets=17_000, layout="npy")
        eager = analyze_trace(path, 4_000)
        mapped = analyze_trace(path, 4_000, mmap=True)
        parallel = analyze_trace(
            path, 4_000, mmap=True, backend=ProcessBackend(2, payload_transport="shm")
        )
        _assert_bit_identical(eager, mapped)
        _assert_bit_identical(eager, parallel)
        shutdown_shared_pools()

    def test_npz_layout_mmap_falls_back_with_log(self, trace, tmp_path, caplog):
        path = save_trace_sharded(trace, tmp_path / "npz", shard_packets=17_000)
        with caplog.at_level(logging.INFO, logger="repro.streaming.trace_io"):
            mapped = analyze_trace(path, 4_000, mmap=True)
        assert any("cannot be memory-mapped" in message for message in caplog.messages)
        assert mapped == analyze_trace(path, 4_000)

    def test_unknown_layout_rejected(self, trace, tmp_path):
        with pytest.raises(ValueError, match="unknown shard layout"):
            save_trace_sharded(trace, tmp_path / "bad", layout="parquet")
        assert list(LAYOUT_NAMES) == ["npz", "npy"]

    def test_resave_cleans_other_layout_shards(self, trace, tmp_path):
        path = save_trace_sharded(trace, tmp_path / "t", shard_packets=17_000, layout="npy")
        save_trace_sharded(trace, path, shard_packets=23_000)
        assert not list(Path(path).glob("shard-*.npy"))
        assert load_trace(path).packets.tobytes() == trace.packets.tobytes()

    def test_corrupt_npy_shard_rejected(self, trace, tmp_path):
        path = save_trace_sharded(trace, tmp_path / "npy", shard_packets=17_000, layout="npy")
        np.save(path / "shard-00000.npy", np.zeros(4, dtype=np.float64))
        with pytest.raises(ValueError, match="not PACKET_DTYPE"):
            list(iter_trace_chunks(path))
        assert PACKET_DTYPE.names == ("src", "dst", "time", "size", "valid")
