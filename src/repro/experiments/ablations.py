"""Ablation experiments backing the design choices called out in DESIGN.md.

Three ablations:

* **Window-size invariance** — the paper stipulates that for a given network
  the parameters ``(λ, C, L, U, α)`` do not depend on the window size; only
  ``p`` changes.  The ablation fits the reduced parameters at several ``p``
  and converts back to underlying parameters, which should agree across
  ``p``.
* **Λ-estimator variance** — Section IV-B argues the moment-ratio estimator
  of ``Λ`` has "substantially less variance" than point-wise estimates.  The
  ablation repeats both estimators over many bootstrap samples and reports
  their spread.
* **Webcrawl versus trunk observation** — webcrawls miss leaves and
  unattached components, so a single-exponent power law suffices; trunk-line
  (edge-sampled) observation shows the ``d = 1`` excess that needs the ZM /
  PALU models.  The ablation observes the same underlying network both ways
  and compares the fits.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro.analysis.histogram import degree_histogram
from repro.analysis.pooling import pool_differential_cumulative, pool_probability_vector
from repro.analysis.comparison import pooled_relative_error
from repro.core.distributions import DiscretePowerLaw
from repro.core.palu_fit import fit_palu
from repro.core.palu_model import PALUParameters, degree_distribution
from repro.core.powerlaw_fit import fit_power_law
from repro.core.zm_fit import fit_zipf_mandelbrot_histogram
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.generators.sampling import sample_edges, webcrawl_sample

__all__ = [
    "run_window_invariance_ablation",
    "run_lambda_estimator_ablation",
    "run_webcrawl_ablation",
]


def run_window_invariance_ablation(
    *,
    parameters: PALUParameters | None = None,
    p_values: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
    n_samples: int = 1_000_000,
    dmax: int = 20_000,
    rng: RNGLike = 20210329,
) -> list:
    """Fit at several window sizes and recover the (p-independent) underlying parameters.

    Returns one row per ``p`` with the recovered ``(C, L, U, λ, α)``; window-size
    invariance means the columns should be flat across rows.
    """
    params = parameters or default_palu_parameters()
    gen = as_generator(rng)
    rows = []
    for p in p_values:
        dist = degree_distribution(params, p, dmax=dmax, form="poisson")
        hist = degree_histogram(dist.sample(n_samples, rng=gen))
        fit = fit_palu(hist)
        try:
            recovered = fit.to_underlying(p)
            row = {
                "p": p,
                "C_hat": round(recovered.core, 4),
                "L_hat": round(recovered.leaves, 4),
                "U_hat": round(recovered.unattached, 4),
                "lambda_hat": round(recovered.lam, 4),
                "alpha_hat": round(fit.alpha, 4),
            }
        except ValueError:
            row = {"p": p, "C_hat": float("nan"), "L_hat": float("nan"),
                   "U_hat": float("nan"), "lambda_hat": float("nan"),
                   "alpha_hat": round(fit.alpha, 4)}
        row.update({"C_true": round(params.core, 4), "L_true": round(params.leaves, 4),
                    "U_true": round(params.unattached, 4), "lambda_true": params.lam,
                    "alpha_true": params.alpha})
        rows.append(row)
    return rows


def run_lambda_estimator_ablation(
    *,
    parameters: PALUParameters | None = None,
    p: float = 0.5,
    n_samples: int = 200_000,
    n_repeats: int = 20,
    dmax: int = 20_000,
    rng: RNGLike = 20210329,
) -> dict:
    """Compare the variance of the moment-ratio and point-wise Λ estimators.

    Returns a summary dict with the mean and standard deviation of the
    estimated Poisson mean under both estimators over *n_repeats* independent
    samples, plus the true value.
    """
    params = parameters or default_palu_parameters()
    gen = as_generator(rng)
    dist = degree_distribution(params, p, dmax=dmax, form="poisson")
    true_m = params.lam * p

    moment_estimates = []
    pointwise_estimates = []
    for _ in range(n_repeats):
        hist = degree_histogram(dist.sample(n_samples, rng=gen))
        moment_estimates.append(fit_palu(hist, method="moment").poisson_mean)
        pointwise_estimates.append(fit_palu(hist, method="pointwise").poisson_mean)
    moment_arr = np.asarray(moment_estimates)
    pointwise_arr = np.asarray(pointwise_estimates)
    return {
        "true_m": round(true_m, 4),
        "n_repeats": n_repeats,
        "moment_mean": round(float(moment_arr.mean()), 4),
        "moment_std": round(float(moment_arr.std(ddof=1)), 4),
        "pointwise_mean": round(float(pointwise_arr.mean()), 4),
        "pointwise_std": round(float(pointwise_arr.std(ddof=1)), 4),
    }


def run_webcrawl_ablation(
    *,
    parameters: PALUParameters | None = None,
    n_nodes: int = 40_000,
    p: float = 0.6,
    rng: RNGLike = 20210329,
) -> list:
    """Observe one underlying network by webcrawl and by edge sampling and compare fits.

    Returns two rows (one per observation method) with the degree-1 fraction,
    the unattached node count, and the pooled log-MSE of the pure power-law
    and ZM fits.  Trunk-style observation should show a larger d=1 fraction,
    non-zero unattached debris, and a larger power-law-vs-ZM gap.
    """
    params = parameters or default_palu_parameters()
    gen = as_generator(rng)
    palu = generate_palu_graph(params, n_nodes=n_nodes, rng=gen)

    observations = {
        "webcrawl": webcrawl_sample(palu.graph, n_seeds=3),
        "trunk_edge_sample": sample_edges(palu.graph, p, rng=gen),
    }
    rows = []
    for name, observed in observations.items():
        degrees = np.array([d for _, d in observed.degree() if d > 0], dtype=np.int64)
        if degrees.size == 0:
            continue
        hist = degree_histogram(degrees)
        pooled = pool_differential_cumulative(hist)
        zm = fit_zipf_mandelbrot_histogram(hist)
        pl = fit_power_law(hist, d_min=1)
        pl_pooled = pool_probability_vector(DiscretePowerLaw(pl.alpha, hist.dmax).probabilities())
        pl_error = pooled_relative_error(pooled, pl_pooled)
        import networkx as nx

        small_components = sum(
            1 for comp in nx.connected_components(observed) if len(comp) <= 2
        )
        rows.append(
            {
                "observation": name,
                "n_nodes": observed.number_of_nodes(),
                "frac_degree_1": round(hist.fraction_at(1), 4),
                "n_small_components": small_components,
                "zm_alpha": round(zm.alpha, 3),
                "zm_delta": round(zm.delta, 3),
                "zm_log_mse": round(zm.error, 5),
                "powerlaw_alpha": round(pl.alpha, 3),
                "powerlaw_log_mse": round(pl_error, 5),
            }
        )
    return rows
