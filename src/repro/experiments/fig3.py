"""Figure 3 — measured distributions and Zipf–Mandelbrot model fits.

Each panel of the paper's Figure 3 shows the pooled differential cumulative
probability of one streaming quantity at one observatory/date/window, with
±1σ error bars and the best-fit modified Zipf–Mandelbrot model.  The
reproduction runs the synthetic scenario catalogue of
:mod:`repro.experiments.config` through the full pipeline (trace → windows →
``A_t`` → histograms → pooling → ZM fit) and reports, per panel:

* the fitted ``(α, δ)`` on the synthetic data,
* the paper's measured ``(α, δ)`` for the corresponding panel,
* the fraction of probability in the ``d = 1`` bin (the leaves/unattached
  signature highlighted by the red dots in the figure), and
* the pooled log-MSE of the ZM fit and of the single-exponent power-law
  baseline, demonstrating the ZM model's advantage on trunk-style data.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.pooling import pool_probability_vector
from repro.analysis.comparison import pooled_relative_error
from repro.core.powerlaw_fit import fit_power_law
from repro.core.distributions import DiscretePowerLaw
from repro.experiments.config import FIG3_SCENARIOS, Scenario
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.pipeline import analyze_trace
from repro.streaming.trace_generator import TraceConfig, generate_trace_from_graph

__all__ = ["run_fig3_scenario", "run_fig3"]


def run_fig3_scenario(
    scenario: Scenario,
    *,
    n_workers: int | None = None,
    backend: str | None = None,
    chunk_packets: int | None = None,
) -> dict:
    """Run one Figure-3 panel reproduction end to end.

    The analysis runs on the requested execution backend (serial, process,
    or streaming — all produce identical pooled distributions); *chunk_packets*
    bounds the windower's buffer under the streaming backend.  Returns a dict
    row with the fitted and paper parameters plus fit-quality diagnostics
    (see module docstring).
    """
    palu = generate_palu_graph(scenario.parameters, n_nodes=scenario.n_nodes, rng=scenario.seed)
    config = TraceConfig(
        n_packets=scenario.n_packets,
        rate_model="zipf",
        rate_exponent=scenario.rate_exponent,
    )
    trace = generate_trace_from_graph(palu, config, rng=scenario.seed + 1)
    analysis = analyze_trace(
        trace,
        scenario.n_valid,
        quantities=(scenario.quantity,),
        n_workers=n_workers,
        backend=backend,
        chunk_packets=chunk_packets,
    )
    pooled = analysis.pooled(scenario.quantity)
    dmax = analysis.dmax(scenario.quantity)
    zm_fit = analysis.fit_zipf_mandelbrot(scenario.quantity)

    merged = analysis.merged_histogram(scenario.quantity)
    pl_fit = fit_power_law(merged, d_min=1)
    pl_model = DiscretePowerLaw(pl_fit.alpha, dmax)
    pl_error = pooled_relative_error(pooled, pool_probability_vector(pl_model.probabilities()))

    return {
        "scenario": scenario.name,
        "quantity": scenario.quantity,
        "NV": scenario.n_valid,
        "n_windows": analysis.n_windows,
        "alpha_fit": round(zm_fit.alpha, 3),
        "delta_fit": round(zm_fit.delta, 3),
        "alpha_paper": scenario.paper_alpha,
        "delta_paper": scenario.paper_delta,
        "D(d=1)": round(float(pooled.values[0]), 4),
        "dmax": dmax,
        "zm_log_mse": round(zm_fit.error, 5),
        "powerlaw_log_mse": round(pl_error, 5),
    }


def run_fig3(
    scenarios: Sequence[Scenario] = FIG3_SCENARIOS,
    *,
    n_workers: int | None = None,
    backend: str | None = None,
    chunk_packets: int | None = None,
    limit: int | None = None,
) -> list:
    """Run the full Figure-3 scenario sweep (optionally the first *limit* panels)."""
    selected = list(scenarios)[: limit if limit is not None else len(list(scenarios))]
    return [
        run_fig3_scenario(s, n_workers=n_workers, backend=backend, chunk_packets=chunk_packets)
        for s in selected
    ]
