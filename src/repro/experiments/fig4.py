"""Figure 4 — PALU model curve families versus Zipf–Mandelbrot.

Each Figure-4 panel fixes a Zipf–Mandelbrot pair ``(α, δ)`` and overlays the
Equation-(5) PALU family for a list of ``r`` values, showing the family
approaching the ZM curve.  The reproduction evaluates exactly the paper's
five panels (the ``(α, δ, r)`` values are transcribed in
:data:`repro.core.palu_zm_connection.FIG4_PANELS`) and reports, per curve,
the log-space distance to the ZM reference — the quantitative version of
"the model PALU(d) tends towards Zipf–Mandelbrot".
"""

from __future__ import annotations

from typing import Sequence

from repro.core.palu_zm_connection import FIG4_PANELS, curve_family

__all__ = ["run_fig4"]


def run_fig4(
    panels: Sequence[tuple] = FIG4_PANELS,
    *,
    dmax: int = 100_000,
) -> list:
    """Regenerate the Figure-4 curve families.

    Parameters
    ----------
    panels:
        Iterable of ``(alpha, delta, r_values)`` tuples; defaults to the
        paper's five panels.
    dmax:
        Upper end of the degree support (the paper plots to 10^6; 10^5 keeps
        the default sweep fast while preserving every pooled bin that
        carries visible probability).

    Returns
    -------
    list of dict
        One row per (panel, r) pair with the distance to the ZM reference;
        within each panel the distance decreases as r grows.
    """
    rows = []
    for alpha, delta, r_values in panels:
        _, curves = curve_family(alpha, delta, r_values, dmax=dmax)
        for curve in curves:
            row = {"panel_alpha": alpha, "panel_delta": delta}
            row.update(curve.as_row())
            rows.append(row)
    return rows
