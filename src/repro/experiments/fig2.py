"""Figure 2 — traffic network topologies.

Figure 2 depicts the classes a trunk-line traffic network decomposes into:
supernode(s), supernode leaves, core, core leaves, and unattached links.
The reproduction generates PALU underlying networks across a sweep of
class mixes, observes them through edge sampling, decomposes the observed
networks with :func:`repro.analysis.topology.decompose_topology`, and
reports the per-class node counts — demonstrating that every Figure-2
structure is present and that its prevalence tracks the generative knobs.
"""

from __future__ import annotations

from typing import Sequence

from repro._util.rng import RNGLike
from repro.analysis.topology import decompose_topology
from repro.core.palu_model import PALUParameters
from repro.generators.palu_graph import generate_palu_graph
from repro.generators.sampling import sample_edges

__all__ = ["run_fig2"]

#: Default class mixes swept by the Figure-2 reproduction: core-heavy,
#: balanced, and bot-heavy (large unattached share).
_DEFAULT_MIXES: tuple = (
    ("core-heavy", 0.75, 0.15, 0.10, 1.0),
    ("balanced", 0.50, 0.25, 0.25, 2.0),
    ("bot-heavy", 0.30, 0.20, 0.50, 1.5),
)


def run_fig2(
    *,
    n_nodes: int = 20_000,
    p: float = 0.6,
    alpha: float = 2.0,
    mixes: Sequence[tuple] | None = None,
    rng: RNGLike = 20210329,
) -> list:
    """Regenerate the Figure-2 topology decomposition across class mixes.

    Returns
    -------
    list of dict
        One row per mix with the observed per-class node counts and the
        number of unattached links.
    """
    rows = []
    for name, cw, lw, uw, lam in (mixes or _DEFAULT_MIXES):
        params = PALUParameters.from_weights(cw, lw, uw, lam=lam, alpha=alpha, strict=False)
        palu = generate_palu_graph(params, n_nodes=n_nodes, rng=rng)
        observed = sample_edges(palu.graph, p, rng=rng)
        decomposition = decompose_topology(observed)
        row = {"mix": name, "p": p}
        row.update(decomposition.summary())
        rows.append(row)
    return rows
