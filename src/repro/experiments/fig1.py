"""Figure 1 — streaming network traffic quantities.

Figure 1 is a schematic showing how a window of ``N_V`` valid packets is
divided into five quantities: source packets, source fan-out, link packets,
destination fan-in, and destination packets.  The reproduction computes all
five from a synthetic window and reports, for each, the number of entities,
the total (which must equal ``N_V`` for the packet-count quantities), the
largest value, and the fraction of entities at value 1 — the numbers the
schematic is illustrating.
"""

from __future__ import annotations

from repro._util.rng import RNGLike
from repro.analysis.histogram import degree_histogram
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import QUANTITY_NAMES, network_quantities
from repro.streaming.sparse_image import traffic_image
from repro.streaming.trace_generator import generate_trace
from repro.streaming.window import iter_windows

__all__ = ["run_fig1"]


def run_fig1(
    *,
    n_valid: int = 100_000,
    n_nodes: int = 20_000,
    rng: RNGLike = 20210329,
) -> list:
    """Regenerate the Figure-1 quantity breakdown for one synthetic window.

    Returns
    -------
    list of dict
        One row per quantity with keys ``quantity``, ``n_entities``,
        ``total``, ``max``, and ``frac_at_1``.
    """
    params = default_palu_parameters()
    graph = generate_palu_graph(params, n_nodes=n_nodes, rng=rng)
    trace = generate_trace(graph.graph, int(n_valid * 1.05), rate_model="zipf", rng=rng)
    window = next(iter_windows(trace, n_valid))
    image = traffic_image(window)
    quantities = network_quantities(image)
    rows = []
    for name in QUANTITY_NAMES:
        values = quantities[name]
        hist = degree_histogram(values[values > 0])
        rows.append(
            {
                "quantity": name,
                "n_entities": int(values.size),
                "total": int(values.sum()),
                "max": hist.dmax,
                "frac_at_1": round(hist.fraction_at(1), 4),
            }
        )
    return rows
