"""Section IV expectation checks: model formulas versus simulation.

Section IV lists closed-form expectations for the observed network — the
visible-node fraction ``V``, the class fractions, the unattached-link
fraction, and the degree-1 fraction.  This experiment generates PALU
underlying networks, edge-samples them at several window parameters ``p``,
measures those quantities directly on the sampled graphs, and reports
predicted versus simulated values.  It is the quantitative backing for the
paper's claim that the formulas describe the observed network well.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro.core.palu_model import (
    PALUParameters,
    expected_class_fractions,
    expected_degree_one_fraction,
    visible_fraction,
)
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.generators.sampling import sample_edges

__all__ = ["run_palu_expectations"]


def run_palu_expectations(
    *,
    parameters: PALUParameters | None = None,
    n_nodes: int = 60_000,
    p_values: Sequence[float] = (0.25, 0.5, 0.75, 1.0),
    method: str = "exact",
    rng: RNGLike = 20210329,
) -> list:
    """Compare Section-IV expectations against direct simulation.

    Returns
    -------
    list of dict
        One row per window parameter ``p`` with predicted and simulated
        visible fraction, leaf fraction, unattached fraction, unattached-link
        fraction, and degree-1 fraction.
    """
    params = parameters or default_palu_parameters()
    gen = as_generator(rng)
    palu = generate_palu_graph(params, n_nodes=n_nodes, rng=gen)
    class_of = palu.class_of()
    n_underlying = palu.n_nodes

    rows = []
    for p in p_values:
        observed = sample_edges(palu.graph, p, rng=gen)
        degrees = dict(observed.degree())
        visible_nodes = [n for n, d in degrees.items() if d > 0]
        n_visible = len(visible_nodes)
        if n_visible == 0:
            continue
        classes = np.array([class_of[n] for n in visible_nodes])
        deg_arr = np.array([degrees[n] for n in visible_nodes])

        sim_core = float(np.mean(classes == "core"))
        sim_leaves = float(np.mean(classes == "leaf"))
        sim_unattached = float(np.mean((classes == "centre") | (classes == "star_leaf")))
        sim_degree_one = float(np.mean(deg_arr == 1))

        # simulated unattached links: observed star components of exactly 2 nodes
        star_nodes = {n for n in visible_nodes if class_of[n] in ("centre", "star_leaf")}
        star_sub = observed.subgraph(star_nodes)
        n_unattached_links = sum(
            1
            for component in _components(star_sub)
            if len(component) == 2
        )

        predicted = expected_class_fractions(params, p, method=method)
        rows.append(
            {
                "p": p,
                "V_pred": round(visible_fraction(params, p, method=method), 4),
                "V_sim": round(n_visible / n_underlying, 4),
                "core_pred": round(predicted["core"], 4),
                "core_sim": round(sim_core, 4),
                "leaves_pred": round(predicted["leaves"], 4),
                "leaves_sim": round(sim_leaves, 4),
                "unattached_pred": round(predicted["unattached"], 4),
                "unattached_sim": round(sim_unattached, 4),
                "unattached_links_pred": round(predicted["unattached_links"], 4),
                "unattached_links_sim": round(n_unattached_links / n_visible, 4),
                "deg1_pred": round(expected_degree_one_fraction(params, p, method=method), 4),
                "deg1_sim": round(sim_degree_one, 4),
            }
        )
    return rows


def _components(graph) -> list:
    """Connected components of a (sub)graph without importing networkx at module scope."""
    import networkx as nx

    return list(nx.connected_components(graph))
