"""Experiment drivers that regenerate the paper's tables and figures.

Each module corresponds to one table or figure of the paper (plus the
ablations called out in DESIGN.md) and exposes a ``run_*`` function returning
plain data rows, so the same code backs the ``benchmarks/`` harnesses, the
``examples/`` scripts, and EXPERIMENTS.md.

* :mod:`repro.experiments.config` — the synthetic scenario catalogue that
  stands in for the Tokyo/Chicago trace collections of Figure 3.
* :mod:`repro.experiments.table1` — aggregate network properties.
* :mod:`repro.experiments.fig1` — streaming network quantities.
* :mod:`repro.experiments.fig2` — traffic network topologies.
* :mod:`repro.experiments.fig3` — measured distributions and ZM fits.
* :mod:`repro.experiments.fig4` — PALU model curve families.
* :mod:`repro.experiments.palu_expectations` — Section-IV expectation checks.
* :mod:`repro.experiments.palu_recovery` — Section-IV-B parameter recovery.
* :mod:`repro.experiments.ablations` — window-size invariance, Λ-estimator
  variance, and webcrawl-vs-trunk observation contrasts.
"""

from repro.experiments.config import FIG3_SCENARIOS, Scenario, default_palu_parameters
from repro.experiments.fig1 import run_fig1
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import run_fig3, run_fig3_scenario
from repro.experiments.fig4 import run_fig4
from repro.experiments.table1 import run_table1
from repro.experiments.palu_expectations import run_palu_expectations
from repro.experiments.palu_recovery import run_palu_recovery
from repro.experiments.ablations import (
    run_lambda_estimator_ablation,
    run_webcrawl_ablation,
    run_window_invariance_ablation,
)

__all__ = [
    "FIG3_SCENARIOS",
    "Scenario",
    "default_palu_parameters",
    "run_fig1",
    "run_fig2",
    "run_fig3",
    "run_fig3_scenario",
    "run_fig4",
    "run_table1",
    "run_palu_expectations",
    "run_palu_recovery",
    "run_lambda_estimator_ablation",
    "run_webcrawl_ablation",
    "run_window_invariance_ablation",
]
