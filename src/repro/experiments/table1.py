"""Table I — aggregate network properties.

The paper's Table I is definitional: it lists four aggregates of the window
matrix ``A_t`` in summation and matrix notation.  The reproduction therefore
(1) computes both notations on synthetic windows of several sizes and checks
they agree, and (2) reports the aggregate values per window — the rows a
reader would use to sanity-check their own pipeline.
"""

from __future__ import annotations

from typing import Sequence

from repro._util.rng import RNGLike
from repro.experiments.config import default_palu_parameters
from repro.generators.palu_graph import generate_palu_graph
from repro.streaming.aggregates import compute_aggregates, compute_aggregates_summation
from repro.streaming.sparse_image import traffic_image
from repro.streaming.trace_generator import generate_trace
from repro.streaming.window import iter_windows

__all__ = ["run_table1"]


def run_table1(
    *,
    window_sizes: Sequence[int] = (10_000, 100_000),
    n_nodes: int = 20_000,
    rng: RNGLike = 20210329,
) -> list:
    """Regenerate Table I on synthetic traffic.

    For each requested window size ``N_V``, generate a trace long enough for
    one window, build ``A_t``, and report the four aggregates computed in
    both notations plus whether they agree.

    Returns
    -------
    list of dict
        One row per window size with keys ``NV``, ``valid_packets``,
        ``unique_links``, ``unique_sources``, ``unique_destinations``, and
        ``notations_agree``.
    """
    params = default_palu_parameters()
    graph = generate_palu_graph(params, n_nodes=n_nodes, rng=rng)
    rows = []
    for n_valid in window_sizes:
        trace = generate_trace(graph.graph, int(n_valid * 1.05), rng=rng)
        window = next(iter_windows(trace, n_valid))
        image = traffic_image(window)
        matrix_form = compute_aggregates(image)
        summation_form = compute_aggregates_summation(image)
        row = {"NV": n_valid}
        row.update(matrix_form.as_row())
        row["notations_agree"] = matrix_form == summation_form
        rows.append(row)
    return rows
