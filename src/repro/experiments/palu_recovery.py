"""Section IV-B parameter recovery: fit the reduced parameters and compare.

The fitting recipe of Section IV-B is only useful if it recovers the
parameters that generated the data.  This experiment builds the *analytic*
reduced PALU degree distribution for known ``(C, L, U, λ, α, p)``, draws a
large degree sample from it, runs :func:`repro.core.palu_fit.fit_palu`, and
reports true versus fitted values of ``(c, l, u, α, Λ)`` — plus the
round-trip back to underlying ``(C, L, U, λ)`` via
:meth:`repro.core.palu_fit.PALUFitResult.to_underlying`.
"""

from __future__ import annotations

from typing import Sequence

from repro._util.rng import RNGLike, as_generator
from repro.analysis.histogram import degree_histogram
from repro.core.palu_fit import fit_palu
from repro.core.palu_model import PALUParameters, degree_distribution, reduced_parameters
from repro.experiments.config import default_palu_parameters

__all__ = ["run_palu_recovery"]


def run_palu_recovery(
    *,
    parameters: PALUParameters | None = None,
    p_values: Sequence[float] = (0.3, 0.6, 0.9),
    n_samples: int = 2_000_000,
    dmax: int = 50_000,
    method: str = "moment",
    rng: RNGLike = 20210329,
) -> list:
    """Recover reduced PALU parameters from samples of the model distribution.

    Returns
    -------
    list of dict
        One row per window parameter ``p`` with true and fitted reduced
        parameters and the implied underlying ``λ``.
    """
    params = parameters or default_palu_parameters()
    gen = as_generator(rng)
    rows = []
    for p in p_values:
        true_reduced = reduced_parameters(params, p)
        # sample from the exact-Poisson form so the experiment isolates the
        # recipe's statistical error from the paper's Stirling approximation
        dist = degree_distribution(params, p, dmax=dmax, form="poisson")
        # the distribution normalises the reduced weights over its support, so
        # express the "true" values in the same (normalised) units as the fit
        weight_sum = true_reduced.c + true_reduced.l + true_reduced.u
        norm = weight_sum / dist.pmf(1)
        sample = dist.sample(n_samples, rng=gen)
        hist = degree_histogram(sample)
        fit = fit_palu(hist, method=method)
        try:
            recovered = fit.to_underlying(p)
            lam_fit = recovered.lam
        except ValueError:
            lam_fit = float("nan")
        rows.append(
            {
                "p": p,
                "alpha_true": round(params.alpha, 3),
                "alpha_fit": round(fit.alpha, 3),
                "c_true": round(true_reduced.c / norm, 5),
                "c_fit": round(fit.c, 5),
                "l_true": round(true_reduced.l / norm, 5),
                "l_fit": round(fit.l, 5),
                "u_true": round(true_reduced.u / norm, 5),
                "u_fit": round(fit.u, 5),
                "m_true": round(true_reduced.poisson_mean, 4),
                "m_fit": round(fit.poisson_mean, 4),
                "lambda_true": round(params.lam, 3),
                "lambda_fit": round(lam_fit, 3),
            }
        )
    return rows
