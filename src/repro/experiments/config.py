"""Scenario catalogue for the figure reproductions.

Figure 3 of the paper shows pooled distributions for five streaming
quantities measured at several observatories (Tokyo 2015, Tokyo 2017,
Chicago A/B 2016) with packet windows from ``N_V = 10^5`` to ``3·10^8``;
each panel is annotated with its best-fit modified Zipf–Mandelbrot
parameters ``(α, δ)``.  Those traces cannot be redistributed, so each panel
is mapped to a *synthetic scenario*: a PALU underlying network plus a
traffic generator configuration chosen so that the same quantity, measured
the same way, lands in the same qualitative regime (comparable α, same sign
and rough magnitude of δ, same d=1-dominated head).  The paper's measured
``(α, δ)`` are recorded alongside so EXPERIMENTS.md can report
paper-vs-measured for every panel.

Scale note: the synthetic scenarios default to windows of ``N_V = 10^5``
packets over networks of ~10^4–10^5 nodes so the full Figure-3 sweep runs in
seconds on a laptop; the window sizes quoted from the paper are kept in the
scenario metadata for reference.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.palu_model import PALUParameters

__all__ = ["Scenario", "FIG3_SCENARIOS", "default_palu_parameters"]


def default_palu_parameters(
    *,
    alpha: float = 2.0,
    lam: float = 2.0,
    core_weight: float = 0.55,
    leaf_weight: float = 0.25,
    unattached_weight: float = 0.20,
) -> PALUParameters:
    """A representative PALU parameter set used across tests and examples.

    Roughly half the underlying nodes sit in the PA core, a quarter are
    leaves, and the rest live in unattached stars of mean size ``1 + λ`` —
    the mix the paper describes qualitatively for trunk-line traffic.
    """
    return PALUParameters.from_weights(
        core_weight, leaf_weight, unattached_weight, lam=lam, alpha=alpha
    )


@dataclass(frozen=True)
class Scenario:
    """One synthetic stand-in for a Figure-3 panel.

    Attributes
    ----------
    name:
        Identifier matching the paper panel (location, year, quantity).
    quantity:
        Which Figure-1 quantity the panel plots.
    paper_nv:
        The packet-window size quoted in the paper for that panel.
    paper_alpha, paper_delta:
        The best-fit ZM parameters printed in the paper's panel.
    parameters:
        PALU parameters of the synthetic underlying network.
    n_nodes:
        Underlying-network size for the synthetic reproduction.
    n_packets:
        Length of the synthetic trace.
    n_valid:
        Window size used for the synthetic reproduction (scaled down from
        *paper_nv* to laptop scale; the pooled shapes are invariant to this
        as long as several windows fit in the trace).
    rate_exponent:
        Heavy-tail exponent of the per-link packet-rate model; larger values
        concentrate more packets on fewer links, raising the measured α of
        packet-count quantities.
    """

    name: str
    quantity: str
    paper_nv: float
    paper_alpha: float
    paper_delta: float
    parameters: PALUParameters
    n_nodes: int = 30_000
    n_packets: int = 400_000
    n_valid: int = 100_000
    rate_exponent: float = 1.1
    seed: int = 20210329

    def describe(self) -> dict:
        """Metadata row used in reports."""
        return {
            "scenario": self.name,
            "quantity": self.quantity,
            "paper_NV": self.paper_nv,
            "paper_alpha": self.paper_alpha,
            "paper_delta": self.paper_delta,
            "n_nodes": self.n_nodes,
            "n_valid": self.n_valid,
        }


def _tokyo_like(alpha: float) -> PALUParameters:
    """Tokyo panels: large unattached/leaf share (δ < 0, strong d=1 spike)."""
    return PALUParameters.from_weights(0.45, 0.25, 0.30, lam=1.5, alpha=alpha, strict=False)


def _chicago_like(alpha: float) -> PALUParameters:
    """Chicago panels: core-dominated mixes (δ can turn positive)."""
    return PALUParameters.from_weights(0.70, 0.20, 0.10, lam=1.0, alpha=alpha, strict=False)


#: Synthetic stand-ins for the eleven annotated panels of Figure 3.
FIG3_SCENARIOS: tuple = (
    Scenario(
        name="Tokyo-2015/source-packets",
        quantity="source_packets",
        paper_nv=1e6,
        paper_alpha=2.01,
        paper_delta=-0.833,
        parameters=_tokyo_like(2.0),
        rate_exponent=1.3,
    ),
    Scenario(
        name="Tokyo-2015/source-fanout",
        quantity="source_fanout",
        paper_nv=1e6,
        paper_alpha=1.68,
        paper_delta=-0.758,
        parameters=_tokyo_like(1.7),
    ),
    Scenario(
        name="Tokyo-2015/link-packets",
        quantity="link_packets",
        paper_nv=1e6,
        paper_alpha=2.25,
        paper_delta=0.602,
        parameters=_tokyo_like(2.25),
        rate_exponent=1.5,
    ),
    Scenario(
        name="Tokyo-2015/destination-fanin",
        quantity="destination_fanin",
        paper_nv=1e6,
        paper_alpha=1.76,
        paper_delta=0.871,
        parameters=_tokyo_like(1.8),
    ),
    Scenario(
        name="Tokyo-2015/destination-packets",
        quantity="destination_packets",
        paper_nv=1e6,
        paper_alpha=2.26,
        paper_delta=-0.349,
        parameters=_tokyo_like(2.25),
        rate_exponent=1.3,
    ),
    Scenario(
        name="Tokyo-2017/destination-packets",
        quantity="destination_packets",
        paper_nv=3e8,
        paper_alpha=1.74,
        paper_delta=-0.92,
        parameters=_tokyo_like(1.75),
        rate_exponent=1.2,
    ),
    Scenario(
        name="Chicago-A-2016-Jan/source-packets",
        quantity="source_packets",
        paper_nv=1e5,
        paper_alpha=2.19,
        paper_delta=-0.717,
        parameters=_chicago_like(2.2),
        rate_exponent=1.3,
    ),
    Scenario(
        name="Chicago-A-2016-Jan/source-fanout",
        quantity="source_fanout",
        paper_nv=1e5,
        paper_alpha=1.56,
        paper_delta=-0.813,
        parameters=_chicago_like(1.6),
    ),
    Scenario(
        name="Chicago-B-2016-Mar/link-packets",
        quantity="link_packets",
        paper_nv=1e8,
        paper_alpha=1.77,
        paper_delta=-0.936,
        parameters=_chicago_like(1.8),
        rate_exponent=1.2,
    ),
    Scenario(
        name="Chicago-A-2016-Feb/destination-fanin",
        quantity="destination_fanin",
        paper_nv=3e5,
        paper_alpha=1.53,
        paper_delta=-0.923,
        parameters=_chicago_like(1.55),
    ),
    Scenario(
        name="Chicago-A-2016-Feb/destination-packets",
        quantity="destination_packets",
        paper_nv=3e5,
        paper_alpha=1.56,
        paper_delta=-0.906,
        parameters=_chicago_like(1.6),
        rate_exponent=1.2,
    ),
)
