"""Single-parameter power-law fitting (the classical baseline).

Prior Internet-topology studies characterised degree data with a single
power-law exponent ``p(d) ∝ d^{-α}`` fitted to the large-``d`` behaviour
(Section II of the paper).  This module implements that baseline from
scratch so it can be compared against the modified Zipf–Mandelbrot and PALU
models:

* :func:`fit_discrete_mle` — the discrete maximum-likelihood estimator of
  Clauset–Shalizi–Newman (2009): maximise the zeta-normalised likelihood for
  degrees ``d >= d_min``.
* :func:`select_dmin` — choose ``d_min`` by minimising the Kolmogorov–
  Smirnov distance between the empirical tail and the fitted model.
* :func:`fit_power_law` — the one-stop baseline: optional ``d_min``
  selection followed by the MLE, returning a result object aligned with
  :class:`repro.core.zm_fit.ZMFitResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro._util.validation import check_positive_int
from repro.analysis.histogram import DegreeHistogram
from repro.core.distributions import DiscretePowerLaw
from repro.core.zeta import riemann_zeta, zeta_prime

__all__ = ["PowerLawFitResult", "fit_discrete_mle", "select_dmin", "fit_power_law"]


@dataclass(frozen=True)
class PowerLawFitResult:
    """Result of a single-parameter power-law fit.

    Attributes
    ----------
    alpha:
        Fitted exponent.
    d_min:
        Smallest degree included in the fit (the tail cutoff).
    ks:
        Kolmogorov–Smirnov distance between the fitted tail model and the
        empirical tail.
    n_tail:
        Number of observations with ``d >= d_min``.
    log_likelihood:
        Maximised log-likelihood of the tail observations.
    """

    alpha: float
    d_min: int
    ks: float
    n_tail: int
    log_likelihood: float

    def model(self, dmax: int) -> DiscretePowerLaw:
        """The fitted model extended over the support ``1..dmax``."""
        return DiscretePowerLaw(self.alpha, dmax)

    def as_row(self) -> dict:
        """Dictionary form used by the experiment tables."""
        return {
            "alpha": round(self.alpha, 3),
            "d_min": self.d_min,
            "ks": round(self.ks, 4),
            "n_tail": self.n_tail,
            "loglik": round(self.log_likelihood, 2),
        }


def _tail_histogram(histogram: DegreeHistogram, d_min: int) -> tuple[np.ndarray, np.ndarray]:
    mask = histogram.degrees >= d_min
    return histogram.degrees[mask], histogram.counts[mask]


def _tail_log_likelihood(alpha: float, degrees: np.ndarray, counts: np.ndarray, d_min: int) -> float:
    """Log-likelihood of the zeta-normalised tail model ``d^{-α}/ζ(α, d_min)``."""
    if alpha <= 1.0:
        return -np.inf
    # ζ(α, d_min) = ζ(α) − Σ_{d<d_min} d^{-α}
    norm = riemann_zeta(alpha)
    if d_min > 1:
        head = np.arange(1, d_min, dtype=np.float64)
        norm -= float(np.sum(head ** (-alpha)))
    if norm <= 0:
        return -np.inf
    n = counts.sum()
    return float(-alpha * np.dot(counts, np.log(degrees)) - n * np.log(norm))


def fit_discrete_mle(
    histogram: DegreeHistogram,
    *,
    d_min: int = 1,
    alpha_bounds: tuple[float, float] = (1.01, 6.0),
) -> PowerLawFitResult:
    """Discrete power-law MLE for the tail ``d >= d_min``.

    Maximises ``Σ_d n(d)·[−α log d − log ζ(α, d_min)]`` over *alpha_bounds*
    with a bounded scalar optimiser (the likelihood is unimodal in ``α``).
    """
    d_min = check_positive_int(d_min, "d_min")
    degrees, counts = _tail_histogram(histogram, d_min)
    if degrees.size == 0 or counts.sum() == 0:
        raise ValueError(f"no observations with degree >= d_min={d_min}")

    result = optimize.minimize_scalar(
        lambda a: -_tail_log_likelihood(a, degrees.astype(np.float64), counts.astype(np.float64), d_min),
        bounds=alpha_bounds,
        method="bounded",
        options={"xatol": 1e-6},
    )
    alpha = float(result.x)
    ll = _tail_log_likelihood(alpha, degrees.astype(np.float64), counts.astype(np.float64), d_min)
    ks = _tail_ks(alpha, degrees, counts, d_min)
    return PowerLawFitResult(
        alpha=alpha,
        d_min=d_min,
        ks=ks,
        n_tail=int(counts.sum()),
        log_likelihood=ll,
    )


def _tail_ks(alpha: float, degrees: np.ndarray, counts: np.ndarray, d_min: int) -> float:
    """KS distance between the empirical tail cdf and the fitted tail model."""
    dmax = int(degrees.max())
    support = np.arange(d_min, dmax + 1, dtype=np.float64)
    weights = support ** (-alpha)
    model_cdf = np.cumsum(weights) / weights.sum()
    emp = np.zeros(support.size, dtype=np.float64)
    emp[degrees - d_min] = counts
    emp_cdf = np.cumsum(emp) / emp.sum()
    return float(np.max(np.abs(emp_cdf - model_cdf)))


def select_dmin(
    histogram: DegreeHistogram,
    *,
    candidates: np.ndarray | None = None,
    min_tail_size: int = 25,
) -> int:
    """Choose the tail cutoff ``d_min`` by minimising the KS distance.

    Follows the Clauset–Shalizi–Newman recipe: fit the MLE for every
    candidate cutoff and keep the one whose fitted model is closest (in KS
    distance) to the empirical tail, subject to the tail retaining at least
    *min_tail_size* observations.
    """
    if histogram.total == 0:
        raise ValueError("cannot select d_min for an empty histogram")
    if candidates is None:
        candidates = np.unique(histogram.degrees)
    best_dmin, best_ks = int(candidates[0]), np.inf
    for d_min in candidates:
        d_min = int(d_min)
        _, counts = _tail_histogram(histogram, d_min)
        if counts.sum() < min_tail_size:
            break
        try:
            fit = fit_discrete_mle(histogram, d_min=d_min)
        except ValueError:
            continue
        if fit.ks < best_ks:
            best_ks, best_dmin = fit.ks, d_min
    return best_dmin


def fit_power_law(
    histogram: DegreeHistogram,
    *,
    select_cutoff: bool = False,
    d_min: int = 1,
) -> PowerLawFitResult:
    """Baseline single-parameter power-law fit.

    Parameters
    ----------
    histogram:
        Empirical degree histogram.
    select_cutoff:
        When True, choose ``d_min`` by KS minimisation (CSN recipe) before
        fitting; otherwise use the supplied *d_min* (default 1, i.e. fit the
        whole distribution as a pure power law — the webcrawl-era baseline).
    d_min:
        Tail cutoff when *select_cutoff* is False.
    """
    if select_cutoff:
        d_min = select_dmin(histogram)
    return fit_discrete_mle(histogram, d_min=d_min)


def mle_score_equation(alpha: float, mean_log_degree: float) -> float:
    """Score equation ``ζ'(α)/ζ(α) + mean(log d) = 0`` of the zeta MLE.

    Exposed for the tests, which verify that the numeric optimiser's root
    agrees with this analytic stationarity condition when ``d_min = 1``.
    """
    return zeta_prime(alpha) / riemann_zeta(alpha) + mean_log_degree
