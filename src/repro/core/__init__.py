"""Core models of the paper: Zipf–Mandelbrot fitting and the PALU model.

This subpackage contains the paper's primary contribution:

* :mod:`repro.core.zeta` — zeta-function utilities,
* :mod:`repro.core.distributions` — discrete degree-distribution objects,
* :mod:`repro.core.zipf_mandelbrot` / :mod:`repro.core.zm_fit` — the
  modified Zipf–Mandelbrot model and its fitting procedure (Section II-B),
* :mod:`repro.core.powerlaw_fit` / :mod:`repro.core.estimators` — the
  single-exponent baseline and log-log regression estimators,
* :mod:`repro.core.palu_model` / :mod:`repro.core.palu_fit` — the PALU model
  expectations (Sections IV–V) and the reduced-parameter fitting recipe,
* :mod:`repro.core.palu_zm_connection` — Equation (5) and the Figure-4 curve
  families (Section VI).
"""

from repro.core.distributions import (
    DiscreteDegreeDistribution,
    DiscretePowerLaw,
    GeometricTailDistribution,
    PALUDegreeDistribution,
    PoissonDegreeDistribution,
    ZipfMandelbrotDistribution,
)
from repro.core.estimators import (
    SlopeEstimate,
    estimate_alpha_loglog,
    estimate_alpha_pooled,
    estimate_tail_intercept,
)
from repro.core.goodness_of_fit import (
    LikelihoodRatioResult,
    PlausibilityResult,
    bootstrap_parameter_ci,
    likelihood_ratio_test,
    power_law_plausibility,
)
from repro.core.palu_fit import PALUFitResult, fit_palu, solve_lambda_from_ratio
from repro.core.palu_model import (
    PALUParameters,
    ReducedPALUParameters,
    degree_distribution,
    expected_class_fractions,
    expected_degree_fractions,
    expected_degree_one_fraction,
    reduced_parameters,
    visible_fraction,
)
from repro.core.palu_zm_connection import (
    FIG4_PANELS,
    PALUZMCurve,
    curve_family,
    delta_from_model,
    palu_zm_differential_cumulative,
    palu_zm_probability,
    palu_zm_unnormalized,
    u_over_c_from_delta,
    zm_convergence_error,
)
from repro.core.powerlaw_fit import PowerLawFitResult, fit_discrete_mle, fit_power_law, select_dmin
from repro.core.zeta import (
    generalized_harmonic,
    hurwitz_zeta,
    riemann_zeta,
    truncated_hurwitz,
    truncated_zeta,
    zeta_prime,
)
from repro.core.zipf_mandelbrot import (
    ZipfMandelbrotModel,
    zm_cumulative,
    zm_differential_cumulative,
    zm_probability,
    zm_unnormalized,
    zm_unnormalized_gradient_delta,
)
from repro.core.zm_fit import ZMFitResult, fit_zipf_mandelbrot, fit_zipf_mandelbrot_histogram

__all__ = [
    # distributions
    "DiscreteDegreeDistribution",
    "DiscretePowerLaw",
    "GeometricTailDistribution",
    "PALUDegreeDistribution",
    "PoissonDegreeDistribution",
    "ZipfMandelbrotDistribution",
    # estimators
    "SlopeEstimate",
    "estimate_alpha_loglog",
    "estimate_alpha_pooled",
    "estimate_tail_intercept",
    # goodness of fit / model selection
    "LikelihoodRatioResult",
    "PlausibilityResult",
    "bootstrap_parameter_ci",
    "likelihood_ratio_test",
    "power_law_plausibility",
    # palu fitting
    "PALUFitResult",
    "fit_palu",
    "solve_lambda_from_ratio",
    # palu model
    "PALUParameters",
    "ReducedPALUParameters",
    "degree_distribution",
    "expected_class_fractions",
    "expected_degree_fractions",
    "expected_degree_one_fraction",
    "reduced_parameters",
    "visible_fraction",
    # palu <-> ZM connection
    "FIG4_PANELS",
    "PALUZMCurve",
    "curve_family",
    "delta_from_model",
    "palu_zm_differential_cumulative",
    "palu_zm_probability",
    "palu_zm_unnormalized",
    "u_over_c_from_delta",
    "zm_convergence_error",
    # power-law baseline
    "PowerLawFitResult",
    "fit_discrete_mle",
    "fit_power_law",
    "select_dmin",
    # zeta utilities
    "generalized_harmonic",
    "hurwitz_zeta",
    "riemann_zeta",
    "truncated_hurwitz",
    "truncated_zeta",
    "zeta_prime",
    # zipf-mandelbrot
    "ZipfMandelbrotModel",
    "zm_cumulative",
    "zm_differential_cumulative",
    "zm_probability",
    "zm_unnormalized",
    "zm_unnormalized_gradient_delta",
    # ZM fitting
    "ZMFitResult",
    "fit_zipf_mandelbrot",
    "fit_zipf_mandelbrot_histogram",
]
