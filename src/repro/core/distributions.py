"""Discrete degree distributions used throughout the PALU reproduction.

The paper manipulates several closely related distributions over positive
integer degrees ``d``:

* the discrete (zeta / truncated) **power law** ``p(d) ∝ d^{-α}`` that
  describes the preferential-attachment core,
* the modified **Zipf–Mandelbrot** law ``p(d) ∝ (d + δ)^{-α}`` that is fit to
  the streaming observations (Section II-B),
* the **Poisson** law that governs the non-central nodes of the unattached
  star components (Section V),
* the **geometric-tail** approximation ``(Λ/d)^d ≈ r^{1-d}`` that powers the
  Zipf–Mandelbrot connection (Section VI), and
* the full **PALU mixture** ``p(d) ∝ c·d^{-α} + u·(Λ/d)^d`` (Equation (3)).

Each class exposes the same small interface — ``pmf``, ``cdf``, ``sf``,
``mean``, ``sample`` and ``support`` — over an explicit, finite support
``1..dmax`` so that model curves, fitted curves, and empirical histograms can
be compared bin-for-bin.  Sampling uses vectorised inverse-CDF lookup which
is exact for these finite supports.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy.special import gammaln as _sp_gammaln

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import (
    check_nonnegative,
    check_positive,
    check_positive_int,
)
from repro.core.zeta import truncated_hurwitz, truncated_zeta

__all__ = [
    "DiscreteDegreeDistribution",
    "DiscretePowerLaw",
    "ZipfMandelbrotDistribution",
    "PoissonDegreeDistribution",
    "GeometricTailDistribution",
    "PALUDegreeDistribution",
]

ArrayLike = Union[int, float, np.ndarray]


class DiscreteDegreeDistribution(abc.ABC):
    """Abstract base class for distributions over integer degrees ``1..dmax``.

    Subclasses implement :meth:`_unnormalized` returning the unnormalised
    weight of each degree; everything else (normalisation, cdf, sampling,
    moments) is provided here.
    """

    def __init__(self, dmax: int) -> None:
        self._dmax = check_positive_int(dmax, "dmax")
        self._weights_cache: np.ndarray | None = None
        self._cdf_cache: np.ndarray | None = None

    # -- subclass interface -------------------------------------------------

    @abc.abstractmethod
    def _unnormalized(self, degrees: np.ndarray) -> np.ndarray:
        """Return unnormalised weights for the integer *degrees* array."""

    # -- public interface ---------------------------------------------------

    @property
    def dmax(self) -> int:
        """Largest degree in the support."""
        return self._dmax

    def support(self) -> np.ndarray:
        """Integer array ``[1, 2, ..., dmax]``."""
        return np.arange(1, self._dmax + 1, dtype=np.int64)

    def _weights(self) -> np.ndarray:
        if self._weights_cache is None:
            w = np.asarray(self._unnormalized(self.support()), dtype=np.float64)
            if w.shape != (self._dmax,):
                raise RuntimeError("internal error: weight vector has wrong shape")
            if np.any(w < 0) or np.any(~np.isfinite(w)):
                raise ValueError("unnormalised weights must be finite and non-negative")
            total = w.sum()
            if total <= 0:
                raise ValueError("distribution has zero total mass on its support")
            self._weights_cache = w / total
        return self._weights_cache

    def _cdf_table(self) -> np.ndarray:
        if self._cdf_cache is None:
            self._cdf_cache = np.cumsum(self._weights())
            # guard against round-off leaving the last entry slightly below 1
            self._cdf_cache[-1] = 1.0
        return self._cdf_cache

    def pmf(self, d: ArrayLike) -> ArrayLike:
        """Probability mass at degree(s) *d* (zero outside ``1..dmax``)."""
        d_arr = np.atleast_1d(np.asarray(d, dtype=np.int64))
        out = np.zeros(d_arr.shape, dtype=np.float64)
        valid = (d_arr >= 1) & (d_arr <= self._dmax)
        out[valid] = self._weights()[d_arr[valid] - 1]
        if np.isscalar(d) or np.ndim(d) == 0:
            return float(out[0])
        return out.reshape(np.shape(d))

    def cdf(self, d: ArrayLike) -> ArrayLike:
        """Cumulative probability ``P(D <= d)``."""
        d_arr = np.atleast_1d(np.asarray(d, dtype=np.int64))
        table = self._cdf_table()
        clipped = np.clip(d_arr, 0, self._dmax)
        out = np.where(clipped >= 1, table[np.maximum(clipped, 1) - 1], 0.0)
        if np.isscalar(d) or np.ndim(d) == 0:
            return float(out[0])
        return out.reshape(np.shape(d))

    def sf(self, d: ArrayLike) -> ArrayLike:
        """Survival function ``P(D > d)``."""
        cdf = self.cdf(d)
        return 1.0 - cdf

    def mean(self) -> float:
        """Expected degree ``E[D]``."""
        return float(np.dot(self.support(), self._weights()))

    def var(self) -> float:
        """Variance of the degree."""
        mu = self.mean()
        second = float(np.dot(self.support().astype(np.float64) ** 2, self._weights()))
        return second - mu * mu

    def sample(self, size: int, rng: RNGLike = None) -> np.ndarray:
        """Draw *size* i.i.d. degrees by inverse-CDF lookup."""
        size = check_positive_int(size, "size", minimum=0)
        gen = as_generator(rng)
        u = gen.random(size)
        idx = np.searchsorted(self._cdf_table(), u, side="left")
        return (idx + 1).astype(np.int64)

    def probabilities(self) -> np.ndarray:
        """Full pmf vector over ``1..dmax`` (copy)."""
        return self._weights().copy()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(f"{k}={v!r}" for k, v in self._repr_params().items())
        return f"{type(self).__name__}({params})"

    def _repr_params(self) -> dict:
        return {"dmax": self._dmax}


class DiscretePowerLaw(DiscreteDegreeDistribution):
    """Truncated discrete power law ``p(d) ∝ d^{-α}`` on ``1..dmax``.

    This is the degree law of the PALU core (Section V: "The number of core
    nodes of the underlying network having degree d follows a power-law
    distribution of the form ``d^{-α}/ζ(α)``").
    """

    def __init__(self, alpha: float, dmax: int) -> None:
        super().__init__(dmax)
        self.alpha = check_positive(alpha, "alpha")

    def _unnormalized(self, degrees: np.ndarray) -> np.ndarray:
        return degrees.astype(np.float64) ** (-self.alpha)

    def normalization(self) -> float:
        """The truncated-zeta normaliser ``Σ_{d=1}^{dmax} d^{-α}``."""
        return truncated_zeta(self.alpha, self._dmax)

    def _repr_params(self) -> dict:
        return {"alpha": self.alpha, "dmax": self._dmax}


class ZipfMandelbrotDistribution(DiscreteDegreeDistribution):
    """Modified Zipf–Mandelbrot law ``p(d) ∝ (d + δ)^{-α}`` on ``1..dmax``.

    The offset ``δ`` controls the behaviour at small ``d`` (in particular the
    mass at ``d = 1``, which is the most probable value in the streaming
    observations), while ``α`` controls the tail.  ``1 + δ`` must be positive
    so every term is defined.
    """

    def __init__(self, alpha: float, delta: float, dmax: int) -> None:
        super().__init__(dmax)
        self.alpha = check_positive(alpha, "alpha")
        delta = float(delta)
        if 1.0 + delta <= 0.0:
            raise ValueError(f"delta must satisfy 1 + delta > 0, got {delta!r}")
        self.delta = delta

    def _unnormalized(self, degrees: np.ndarray) -> np.ndarray:
        return (degrees.astype(np.float64) + self.delta) ** (-self.alpha)

    def normalization(self) -> float:
        """``Σ_{d=1}^{dmax} (d + δ)^{-α}``."""
        return truncated_hurwitz(self.alpha, self.delta, self._dmax)

    def _repr_params(self) -> dict:
        return {"alpha": self.alpha, "delta": self.delta, "dmax": self._dmax}


class PoissonDegreeDistribution(DiscreteDegreeDistribution):
    """Poisson law conditioned on ``1 <= d <= dmax``.

    Models the number of non-central nodes of an unattached star in the
    *observed* network, which is ``Poisson(λ p)`` by the thinning identity
    ``Bin(Po(λ), p) = Po(λ p)`` (Section V).  The zero class is excluded
    because an unattached centre with no surviving leaves is invisible.
    """

    def __init__(self, lam: float, dmax: int) -> None:
        super().__init__(dmax)
        self.lam = check_positive(lam, "lam")

    def _unnormalized(self, degrees: np.ndarray) -> np.ndarray:
        d = degrees.astype(np.float64)
        # exp(d log λ - λ - log d!) evaluated stably in log space
        log_pmf = d * math.log(self.lam) - self.lam - _sp_gammaln(d + 1.0)
        return np.exp(log_pmf)

    def _repr_params(self) -> dict:
        return {"lam": self.lam, "dmax": self._dmax}


class GeometricTailDistribution(DiscreteDegreeDistribution):
    """Geometric-style law ``p(d) ∝ r^{1-d}`` on ``1..dmax`` with ``r > 1``.

    Section VI replaces the Poisson factor ``(Λ/d)^d`` with ``r^{1-d}``; this
    class materialises that approximation as a proper distribution so the two
    can be compared quantitatively.
    """

    def __init__(self, r: float, dmax: int) -> None:
        super().__init__(dmax)
        r = check_positive(r, "r")
        if r <= 1.0:
            raise ValueError(f"r must be > 1 for a decaying tail, got {r!r}")
        self.r = r

    def _unnormalized(self, degrees: np.ndarray) -> np.ndarray:
        d = degrees.astype(np.float64)
        return np.exp((1.0 - d) * math.log(self.r))

    def _repr_params(self) -> dict:
        return {"r": self.r, "dmax": self._dmax}


@dataclass(frozen=True)
class _PALUComponents:
    """Relative mass contributed by each PALU piece at every degree."""

    core: np.ndarray
    leaves: np.ndarray
    unattached: np.ndarray


class PALUDegreeDistribution(DiscreteDegreeDistribution):
    """The reduced PALU degree law of Equations (2)–(4).

    ``p(1) ∝ c + l + u`` and for ``d >= 2`` ``p(d) ∝ c·d^{-α} + u·(Λ/d)^d``
    where ``c, l, u >= 0`` are the reduced core / leaf / unattached weights
    and ``Λ = e·λ·p`` encodes the clustering of the unattached stars.

    Parameters
    ----------
    c, l, u:
        Reduced weights (need not sum to one; the distribution is
        normalised over its support).
    alpha:
        Power-law exponent of the core.
    Lambda:
        The ``Λ`` parameter of the Poisson-derived factor ``(Λ/d)^d``
        (``Λ = e·λ·p`` in the paper's parameterisation).
    dmax:
        Largest degree of the support.
    form:
        Shape of the unattached term for ``d >= 2``:
        ``"stirling"`` (default) uses the paper's ``(Λ/d)^d``;
        ``"poisson"`` uses the exact ``m^d/d!`` with ``m = Λ/e``, which is
        the form the moment-based fitting recipe assumes.
    """

    def __init__(
        self,
        c: float,
        l: float,
        u: float,
        alpha: float,
        Lambda: float,
        dmax: int,
        *,
        form: str = "stirling",
    ) -> None:
        super().__init__(dmax)
        self.c = check_nonnegative(c, "c")
        self.l = check_nonnegative(l, "l")
        self.u = check_nonnegative(u, "u")
        if self.c + self.l + self.u <= 0:
            raise ValueError("at least one of c, l, u must be positive")
        self.alpha = check_positive(alpha, "alpha")
        self.Lambda = check_nonnegative(Lambda, "Lambda")
        if form not in ("stirling", "poisson"):
            raise ValueError(f"unknown form {form!r}; expected 'stirling' or 'poisson'")
        self.form = form

    # -- PALU-specific helpers ----------------------------------------------

    def _components(self) -> _PALUComponents:
        d = self.support().astype(np.float64)
        core = self.c * d ** (-self.alpha)
        leaves = np.zeros_like(d)
        unattached = np.zeros_like(d)
        # degree-1 bin collects core + leaves + unattached centres (Eq. 2)
        leaves[0] = self.l
        unattached[0] = self.u
        if self.Lambda > 0:
            with np.errstate(over="ignore"):
                if self.form == "stirling":
                    log_term = d[1:] * (np.log(self.Lambda) - np.log(d[1:]))
                else:  # exact Poisson form with m = Λ / e
                    m = self.Lambda / math.e
                    log_term = d[1:] * np.log(m) - _sp_gammaln(d[1:] + 1.0)
            unattached[1:] = self.u * np.exp(log_term)
        return _PALUComponents(core=core, leaves=leaves, unattached=unattached)

    def _unnormalized(self, degrees: np.ndarray) -> np.ndarray:
        comp = self._components()
        total = comp.core + comp.leaves + comp.unattached
        return total[degrees - 1]

    def component_fractions(self) -> dict:
        """Fraction of total probability mass carried by each PALU piece."""
        comp = self._components()
        total = float((comp.core + comp.leaves + comp.unattached).sum())
        return {
            "core": float(comp.core.sum()) / total,
            "leaves": float(comp.leaves.sum()) / total,
            "unattached": float(comp.unattached.sum()) / total,
        }

    def degree_one_fraction(self) -> float:
        """Probability of degree 1 — Equation (2) of the paper."""
        return float(self.pmf(1))

    def tail_distribution(self) -> DiscretePowerLaw:
        """The pure power law the mixture approaches for ``d >= 10`` (Eq. 4)."""
        return DiscretePowerLaw(self.alpha, self._dmax)

    def _repr_params(self) -> dict:
        return {
            "c": self.c,
            "l": self.l,
            "u": self.u,
            "alpha": self.alpha,
            "Lambda": self.Lambda,
            "dmax": self._dmax,
            "form": self.form,
        }
