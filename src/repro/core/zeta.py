"""Riemann, Hurwitz, and truncated zeta functions.

The PALU model normalises its preferential-attachment core by the Riemann
zeta function ``ζ(α) = Σ_{n>=1} n^{-α}`` (Section IV of the paper), and the
modified Zipf–Mandelbrot model normalises by the *generalised harmonic /
Hurwitz-like* sum ``Σ_{d=1}^{dmax} (d + δ)^{-α}``.  This module provides
those sums with a pure-Python/NumPy implementation (Euler–Maclaurin
acceleration) so the library does not depend on MATLAB's ``zeta`` builtin,
plus thin wrappers that are cross-checked against :func:`scipy.special.zeta`
in the test-suite.

All functions broadcast over NumPy arrays where that is meaningful.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
from scipy import special as _sp_special

from repro._util.validation import check_positive, check_positive_int

__all__ = [
    "riemann_zeta",
    "hurwitz_zeta",
    "truncated_zeta",
    "truncated_hurwitz",
    "zeta_prime",
    "generalized_harmonic",
]

ArrayLike = Union[float, np.ndarray]

#: Number of explicitly summed terms before the Euler–Maclaurin tail is applied.
_EM_TERMS = 64

#: Bernoulli numbers B_2, B_4, ..., B_12 used in the Euler–Maclaurin correction.
_BERNOULLI_EVEN = np.array(
    [1.0 / 6.0, -1.0 / 30.0, 1.0 / 42.0, -1.0 / 30.0, 5.0 / 66.0, -691.0 / 2730.0],
    dtype=np.float64,
)


def _euler_maclaurin_tail(alpha: np.ndarray, start: float, q: float) -> np.ndarray:
    """Euler–Maclaurin estimate of ``Σ_{n>=start} (n+q)^{-α}``.

    Uses the integral term, the half-correction, and six Bernoulli
    corrections, which gives ~1e-14 relative accuracy for ``α > 1`` once
    ``start`` is a few tens.
    """
    a = start + q
    # ∫_start^∞ (x+q)^(-α) dx = a^(1-α) / (α-1)
    tail = a ** (1.0 - alpha) / (alpha - 1.0)
    # half of the first omitted term
    tail += 0.5 * a ** (-alpha)
    # Bernoulli corrections: B_{2k}/(2k)! * (α)(α+1)...(α+2k-2) * a^{-(α+2k-1)}
    rising = np.ones_like(alpha)
    factorial = 1.0
    for k, b2k in enumerate(_BERNOULLI_EVEN, start=1):
        rising = rising * (alpha + (2 * k - 2)) * (alpha + (2 * k - 3)) if k > 1 else alpha
        factorial *= (2 * k) * (2 * k - 1)
        tail += (b2k / factorial) * rising * a ** (-(alpha + 2 * k - 1))
    return tail


def riemann_zeta(alpha: ArrayLike, *, method: str = "euler-maclaurin") -> ArrayLike:
    """Riemann zeta function ``ζ(α)`` for real ``α > 1``.

    Parameters
    ----------
    alpha:
        Exponent(s); every entry must satisfy ``α > 1``.
    method:
        ``"euler-maclaurin"`` (default) uses the library's own accelerated
        series; ``"scipy"`` delegates to :func:`scipy.special.zeta`.  Both
        agree to ~1e-12 relative tolerance and the scipy route is kept mainly
        as an independent cross-check for the tests.

    Returns
    -------
    float or ndarray
        ``ζ(α)`` with the same shape as *alpha*.
    """
    arr = np.asarray(alpha, dtype=np.float64)
    if np.any(arr <= 1.0):
        raise ValueError("riemann_zeta requires alpha > 1 for convergence")
    if method == "scipy":
        out = _sp_special.zeta(arr, 1.0)
    elif method == "euler-maclaurin":
        out = hurwitz_zeta(arr, 1.0)
    else:
        raise ValueError(f"unknown method {method!r}; expected 'euler-maclaurin' or 'scipy'")
    if np.isscalar(alpha) or (isinstance(alpha, np.ndarray) and alpha.ndim == 0):
        return float(out)
    return out


def hurwitz_zeta(alpha: ArrayLike, q: float) -> ArrayLike:
    """Hurwitz zeta ``ζ(α, q) = Σ_{n>=0} (n + q)^{-α}`` for ``α > 1`` and ``q > 0``.

    This is the natural normaliser of the modified Zipf–Mandelbrot model when
    the support is unbounded: ``Σ_{d>=1} (d + δ)^{-α} = ζ(α, 1 + δ)``.
    """
    q = check_positive(q, "q")
    arr = np.atleast_1d(np.asarray(alpha, dtype=np.float64))
    if np.any(arr <= 1.0):
        raise ValueError("hurwitz_zeta requires alpha > 1 for convergence")
    n = np.arange(_EM_TERMS, dtype=np.float64)
    # explicit head: Σ_{n=0}^{N-1} (n+q)^{-α}, vectorised over alpha
    head = np.sum((n[None, :] + q) ** (-arr[..., None]), axis=-1)
    tail = _euler_maclaurin_tail(arr, float(_EM_TERMS), q)
    out = head + tail
    if np.isscalar(alpha) or (isinstance(alpha, np.ndarray) and np.ndim(alpha) == 0):
        return float(out[0])
    return out.reshape(np.shape(alpha))


def truncated_zeta(alpha: float, dmax: int) -> float:
    """Truncated zeta ``Σ_{d=1}^{dmax} d^{-α}``.

    Unlike :func:`riemann_zeta` this converges for every real ``α`` because
    the sum is finite; it is used when normalising model distributions over
    the observed support ``1..dmax``.
    """
    dmax = check_positive_int(dmax, "dmax")
    return truncated_hurwitz(alpha, 0.0, dmax)


def truncated_hurwitz(alpha: float, delta: float, dmax: int) -> float:
    """Truncated Zipf–Mandelbrot normaliser ``Σ_{d=1}^{dmax} (d + δ)^{-α}``.

    Requires ``1 + δ > 0`` so that every term is well defined.  For large
    ``dmax`` the sum is split into an explicit head and an Euler–Maclaurin
    estimated mid-section to keep the evaluation O(1) in ``dmax``; for small
    ``dmax`` the direct sum is used.
    """
    dmax = check_positive_int(dmax, "dmax")
    alpha = float(alpha)
    delta = float(delta)
    if 1.0 + delta <= 0.0:
        raise ValueError(f"delta must satisfy 1 + delta > 0, got delta={delta!r}")
    if dmax <= 4 * _EM_TERMS or alpha <= 1.0:
        d = np.arange(1, dmax + 1, dtype=np.float64)
        return float(np.sum((d + delta) ** (-alpha)))
    # head + (full tail) - (tail beyond dmax)
    full = hurwitz_zeta(alpha, 1.0 + delta)
    beyond = hurwitz_zeta(alpha, float(dmax + 1) + delta)
    return float(full - beyond)


def generalized_harmonic(n: int, alpha: float) -> float:
    """Generalised harmonic number ``H_{n,α} = Σ_{d=1}^{n} d^{-α}``.

    Alias of :func:`truncated_zeta` with the conventional naming used in the
    power-law literature (e.g. the normaliser of the discrete power law in
    Clauset–Shalizi–Newman fitting).
    """
    return truncated_zeta(alpha, n)


def zeta_prime(alpha: float, *, eps: float = 1e-6) -> float:
    """Numerical derivative ``dζ/dα`` for ``α > 1``.

    Used by the maximum-likelihood power-law estimator whose score equation
    involves ``ζ'(α)/ζ(α)``.  A symmetric finite difference with a
    cancellation-aware step is accurate to ~1e-8 which is ample for the
    Newton iterations that consume it.
    """
    alpha = float(alpha)
    if alpha <= 1.0 + 2 * eps:
        raise ValueError("zeta_prime requires alpha > 1")
    upper = riemann_zeta(alpha + eps)
    lower = riemann_zeta(alpha - eps)
    return (upper - lower) / (2.0 * eps)
