"""Statistical goodness-of-fit and model-selection tests.

The paper selects the modified Zipf–Mandelbrot model over a single-exponent
power law by visual fit quality; this module adds the formal statistical
machinery a downstream user would want when making that call on their own
data:

* :func:`power_law_plausibility` — the Clauset–Shalizi–Newman semi-parametric
  bootstrap: fit the power law, measure its KS distance, and compare against
  the KS distances of synthetic data sets drawn from the fitted model.  A
  small p-value means the pure power law is *not* a plausible generator —
  which is exactly what trunk-style traffic (with its d = 1 excess) produces.
* :func:`likelihood_ratio_test` — Vuong-style normalised log-likelihood-ratio
  test between two fitted candidate distributions (e.g. ZM versus power law),
  returning the ratio, its standard error, and the two-sided p-value.
* :func:`bootstrap_parameter_ci` — nonparametric bootstrap confidence
  intervals for any fit function returning a scalar parameter (used to put
  error bars on the α and δ of Figure 3 panels).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as _sp_stats

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_positive_int
from repro.analysis.comparison import ks_statistic
from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.core.distributions import DiscreteDegreeDistribution
from repro.core.powerlaw_fit import fit_discrete_mle

__all__ = [
    "PlausibilityResult",
    "LikelihoodRatioResult",
    "power_law_plausibility",
    "likelihood_ratio_test",
    "bootstrap_parameter_ci",
]


@dataclass(frozen=True)
class PlausibilityResult:
    """Result of the CSN bootstrap plausibility test."""

    alpha: float
    d_min: int
    observed_ks: float
    p_value: float
    n_bootstrap: int

    def plausible(self, threshold: float = 0.1) -> bool:
        """CSN convention: the power law is ruled out when ``p < 0.1``."""
        return self.p_value >= threshold


@dataclass(frozen=True)
class LikelihoodRatioResult:
    """Result of a Vuong-style normalised likelihood-ratio test."""

    log_likelihood_ratio: float
    normalised_ratio: float
    p_value: float
    favours: str

    def significant(self, level: float = 0.05) -> bool:
        """Whether the preference is statistically significant at *level*."""
        return self.p_value < level


def power_law_plausibility(
    histogram: DegreeHistogram,
    *,
    d_min: int = 1,
    n_bootstrap: int = 100,
    rng: RNGLike = None,
) -> PlausibilityResult:
    """Semi-parametric bootstrap test of the pure power-law hypothesis.

    Follows Clauset–Shalizi–Newman (2009): fit the discrete MLE to the tail
    ``d >= d_min``, record its KS distance, then repeatedly (i) draw a
    synthetic sample of the same size from the fitted model, (ii) refit, and
    (iii) record the synthetic KS distance.  The p-value is the fraction of
    synthetic data sets whose KS distance exceeds the observed one.
    """
    if histogram.total == 0:
        raise ValueError("cannot test an empty histogram")
    n_bootstrap = check_positive_int(n_bootstrap, "n_bootstrap")
    gen = as_generator(rng)

    fit = fit_discrete_mle(histogram, d_min=d_min)
    tail_mask = histogram.degrees >= d_min
    n_tail = int(histogram.counts[tail_mask].sum())
    dmax = histogram.dmax
    model = fit.model(dmax)
    observed_ks = _tail_ks_distance(histogram, model, d_min)

    exceed = 0
    for _ in range(n_bootstrap):
        synthetic_degrees = model.sample(n_tail, rng=gen)
        synthetic_degrees = synthetic_degrees[synthetic_degrees >= d_min]
        if synthetic_degrees.size == 0:
            continue
        synthetic = degree_histogram(synthetic_degrees)
        try:
            synthetic_fit = fit_discrete_mle(synthetic, d_min=d_min)
        except ValueError:
            continue
        synthetic_ks = _tail_ks_distance(synthetic, synthetic_fit.model(synthetic.dmax), d_min)
        if synthetic_ks >= observed_ks:
            exceed += 1
    p_value = exceed / n_bootstrap
    return PlausibilityResult(
        alpha=fit.alpha,
        d_min=d_min,
        observed_ks=observed_ks,
        p_value=p_value,
        n_bootstrap=n_bootstrap,
    )


def _tail_ks_distance(histogram: DegreeHistogram, model: DiscreteDegreeDistribution, d_min: int) -> float:
    """KS distance restricted to the tail ``d >= d_min`` (conditional cdfs)."""
    mask = histogram.degrees >= d_min
    degrees = histogram.degrees[mask]
    counts = histogram.counts[mask]
    if degrees.size == 0:
        return 0.0
    emp_cdf = np.cumsum(counts) / counts.sum()
    model_cdf = np.asarray(model.cdf(degrees), dtype=np.float64)
    below = float(model.cdf(d_min - 1)) if d_min > 1 else 0.0
    tail_mass = 1.0 - below
    if tail_mass <= 0:
        return 1.0
    model_cdf = (model_cdf - below) / tail_mass
    return float(np.max(np.abs(emp_cdf - model_cdf)))


def likelihood_ratio_test(
    histogram: DegreeHistogram,
    model_a: DiscreteDegreeDistribution,
    model_b: DiscreteDegreeDistribution,
    *,
    name_a: str = "model_a",
    name_b: str = "model_b",
) -> LikelihoodRatioResult:
    """Vuong-style normalised log-likelihood-ratio test between two models.

    Positive ratios favour *model_a*.  The per-observation log-likelihood
    differences are treated as i.i.d.; the normalised statistic
    ``R / (σ·√n)`` is compared against a standard normal to obtain the
    two-sided p-value (Clauset–Shalizi–Newman, Appendix C).
    """
    if histogram.total == 0:
        raise ValueError("cannot compare models on an empty histogram")
    degrees = histogram.degrees
    counts = histogram.counts.astype(np.float64)
    pa = np.asarray(model_a.pmf(degrees), dtype=np.float64)
    pb = np.asarray(model_b.pmf(degrees), dtype=np.float64)
    if np.any(pa <= 0) or np.any(pb <= 0):
        raise ValueError("both models must give positive probability to every observed degree")
    per_degree = np.log(pa) - np.log(pb)
    n = counts.sum()
    ratio = float(np.dot(counts, per_degree))
    mean = ratio / n
    variance = float(np.dot(counts, (per_degree - mean) ** 2)) / n
    if variance <= 0:
        # the models are point-wise identical on the observed support
        return LikelihoodRatioResult(ratio, 0.0, 1.0, "inconclusive")
    normalised = ratio / math.sqrt(n * variance)
    p_value = 2.0 * float(_sp_stats.norm.sf(abs(normalised)))
    if p_value >= 0.05:
        favours = "inconclusive"
    else:
        favours = name_a if ratio > 0 else name_b
    return LikelihoodRatioResult(
        log_likelihood_ratio=ratio,
        normalised_ratio=normalised,
        p_value=p_value,
        favours=favours,
    )


def bootstrap_parameter_ci(
    histogram: DegreeHistogram,
    fit_function: Callable[[DegreeHistogram], float],
    *,
    n_bootstrap: int = 200,
    confidence: float = 0.95,
    rng: RNGLike = None,
) -> tuple[float, float, float]:
    """Nonparametric bootstrap confidence interval for a scalar fit parameter.

    Parameters
    ----------
    histogram:
        The observed degree histogram.
    fit_function:
        Callable mapping a histogram to the scalar of interest (e.g.
        ``lambda h: fit_zipf_mandelbrot_histogram(h).alpha``).
    n_bootstrap:
        Number of resamples.
    confidence:
        Central coverage of the returned interval.

    Returns
    -------
    (float, float, float)
        The point estimate on the original data and the lower/upper bounds of
        the percentile bootstrap interval.
    """
    if histogram.total == 0:
        raise ValueError("cannot bootstrap an empty histogram")
    if not (0.0 < confidence < 1.0):
        raise ValueError("confidence must be in (0, 1)")
    n_bootstrap = check_positive_int(n_bootstrap, "n_bootstrap")
    gen = as_generator(rng)

    point = float(fit_function(histogram))
    probabilities = histogram.counts / histogram.total
    estimates = np.empty(n_bootstrap, dtype=np.float64)
    for b in range(n_bootstrap):
        resampled_counts = gen.multinomial(histogram.total, probabilities)
        keep = resampled_counts > 0
        resampled = DegreeHistogram(degrees=histogram.degrees[keep], counts=resampled_counts[keep])
        estimates[b] = float(fit_function(resampled))
    tail = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(estimates, [tail, 1.0 - tail])
    return point, float(lower), float(upper)
