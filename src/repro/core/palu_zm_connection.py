"""The PALU ↔ Zipf–Mandelbrot connection (Section VI, Figure 4).

Replacing the Poisson-derived factor ``(Λ/d)^d`` by the geometric form
``r^{1−d}`` (``r > 1``) turns the reduced PALU law into the one-parameter
family

.. math::

    \\mathrm{PALU}(d) \\;\\propto\\; d^{-α} \\; + \\; r^{\\,1-d}\\,\\bigl((1+δ)^{-α} - 1\\bigr)
    \\tag{5}

whose second term is calibrated so that ``u/c = (1+δ)^{-α} − 1`` aligns the
family with the modified Zipf–Mandelbrot distribution of the same ``(α, δ)``.
Figure 4 of the paper plots these families for five ``(α, δ)`` pairs and
shows the PALU curves approaching the ZM curve as ``r`` grows.

This module provides the curve family, the parameter couplings

``u/c = (1+δ)^{-α} − 1``  and  ``(1+δ)^{-α} = (U/C)·e^{−λp}·ζ(α)·p^{-α} + 1``,

and convergence metrics used by the Figure-4 benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util.validation import check_fraction, check_positive, check_positive_int
from repro.analysis.comparison import pooled_relative_error
from repro.analysis.pooling import PooledDistribution, pool_probability_vector
from repro.core.zeta import riemann_zeta
from repro.core.zipf_mandelbrot import zm_differential_cumulative, zm_probability

__all__ = [
    "PALUZMCurve",
    "FIG4_PANELS",
    "u_over_c_from_delta",
    "delta_from_model",
    "palu_zm_unnormalized",
    "palu_zm_probability",
    "palu_zm_differential_cumulative",
    "curve_family",
    "zm_convergence_error",
]


#: The five Figure-4 panels: (α, δ, tuple of r values), transcribed from the paper.
FIG4_PANELS: tuple = (
    (1.1, -0.5, (1.01, 1.1, 1.2, 1.4, 1.8, 2.0, 3.0, 5.0)),
    (1.5, -0.6, (1.01, 1.1, 1.2, 1.5, 2.0, 4.0, 11.0)),
    (2.0, -0.75, (1.05, 1.2, 1.8, 3.0, 6.0, 12.0, 35.0)),
    (2.5, -0.75, (1.01, 1.05, 1.2, 1.8, 5.0, 20.0, 70.0)),
    (2.9, -0.8, (1.01, 1.05, 1.2, 1.8, 5.0, 30.0, 200.0)),
)

#: Degree-support upper limit used by Figure 4 (the paper plots up to 10^6).
FIG4_DMAX = 1_000_000


def u_over_c_from_delta(alpha: float, delta: float) -> float:
    """The coupling ``u/c = (1 + δ)^{-α} − 1`` of Section VI.

    Positive when ``δ < 0`` (the regime of almost every fit in Figure 3,
    where the unattached/leaf excess raises the ``d = 1`` probability above
    the pure power law) and negative when ``δ > 0``.
    """
    alpha = check_positive(alpha, "alpha")
    if 1.0 + delta <= 0.0:
        raise ValueError(f"delta must satisfy 1 + delta > 0, got {delta!r}")
    return (1.0 + delta) ** (-alpha) - 1.0


def delta_from_model(
    core: float,
    unattached: float,
    lam: float,
    p: float,
    alpha: float,
) -> float:
    """Solve the Zipf–Mandelbrot offset implied by underlying PALU parameters.

    Section VI: ``(1 + δ)^{-α} = (U/C)·e^{−λp}·ζ(α)·p^{-α} + 1``, hence
    ``δ = [(U/C)·e^{−λp}·ζ(α)·p^{-α} + 1]^{-1/α} − 1``.
    """
    core = check_positive(core, "core")
    unattached = check_positive(unattached, "unattached", allow_zero=True)
    p = check_fraction(p, "p", inclusive=False)
    alpha = check_positive(alpha, "alpha")
    rhs = (unattached / core) * math.exp(-lam * p) * riemann_zeta(alpha) * p ** (-alpha) + 1.0
    return rhs ** (-1.0 / alpha) - 1.0


def palu_zm_unnormalized(d: np.ndarray, alpha: float, delta: float, r: float) -> np.ndarray:
    """Equation (5): ``d^{-α} + r^{1−d}·((1+δ)^{-α} − 1)`` (unnormalised)."""
    alpha = check_positive(alpha, "alpha")
    r = check_positive(r, "r")
    if r <= 1.0:
        raise ValueError(f"r must be > 1, got {r!r}")
    coupling = u_over_c_from_delta(alpha, delta)
    arr = np.asarray(d, dtype=np.float64)
    if np.any(arr < 1):
        raise ValueError("degrees must be >= 1")
    geometric = np.exp((1.0 - arr) * math.log(r))
    values = arr ** (-alpha) + geometric * coupling
    # a strongly negative coupling (δ > 0) can push the head below zero in
    # the unnormalised form; clip at zero so the family stays a distribution
    return np.clip(values, 0.0, None)


def palu_zm_probability(dmax: int, alpha: float, delta: float, r: float) -> np.ndarray:
    """Normalised Equation-(5) pmf on the dense support ``1..dmax``."""
    dmax = check_positive_int(dmax, "dmax")
    d = np.arange(1, dmax + 1, dtype=np.float64)
    values = palu_zm_unnormalized(d, alpha, delta, r)
    total = values.sum()
    if total <= 0:
        raise ValueError("PALU(d) family has zero total mass for these parameters")
    return values / total


def palu_zm_differential_cumulative(dmax: int, alpha: float, delta: float, r: float) -> PooledDistribution:
    """Equation-(5) curve pooled on binary-log bins (a Figure-4 red curve)."""
    return pool_probability_vector(palu_zm_probability(dmax, alpha, delta, r))


@dataclass(frozen=True)
class PALUZMCurve:
    """One member of a Figure-4 curve family."""

    alpha: float
    delta: float
    r: float
    pooled: PooledDistribution
    zm_error: float

    def as_row(self) -> dict:
        """Dictionary form used by the Figure-4 table."""
        return {
            "alpha": self.alpha,
            "delta": self.delta,
            "r": self.r,
            "log_mse_vs_ZM": round(self.zm_error, 6),
            "D(d=1)": round(float(self.pooled.values[0]), 6),
        }


def curve_family(
    alpha: float,
    delta: float,
    r_values: Sequence[float],
    *,
    dmax: int = FIG4_DMAX,
) -> tuple[PooledDistribution, list]:
    """Generate one Figure-4 panel: the ZM reference curve plus the PALU family.

    Returns
    -------
    (PooledDistribution, list of PALUZMCurve)
        The pooled Zipf–Mandelbrot curve for ``(α, δ)`` and, for each ``r``,
        the pooled Equation-(5) curve together with its log-space distance
        from the ZM reference.
    """
    dmax = check_positive_int(dmax, "dmax")
    zm_pooled = zm_differential_cumulative(dmax, alpha, delta)
    curves = []
    for r in r_values:
        pooled = palu_zm_differential_cumulative(dmax, alpha, delta, float(r))
        err = pooled_relative_error(zm_pooled, pooled, log_space=True)
        curves.append(PALUZMCurve(alpha=alpha, delta=delta, r=float(r), pooled=pooled, zm_error=err))
    return zm_pooled, curves


def zm_convergence_error(alpha: float, delta: float, r: float, *, dmax: int = 10_000) -> float:
    """Point-wise log-space error between Equation (5) and the ZM pmf.

    Used by the property tests asserting that the PALU family tends to the
    Zipf–Mandelbrot distribution: the error must decrease as ``r`` grows for
    fixed ``(α, δ)``.
    """
    d = np.arange(1, dmax + 1, dtype=np.float64)
    palu = palu_zm_probability(dmax, alpha, delta, r)
    zm = zm_probability(d, alpha, delta)
    mask = (palu > 0) & (zm > 0)
    return float(np.mean((np.log10(palu[mask]) - np.log10(zm[mask])) ** 2))
