"""Fitting the modified Zipf–Mandelbrot model to pooled observations.

The paper selects ``(α, δ)`` by "minimizing the differences between the
observed differential cumulative distributions" and the model's (Section
II-B), i.e. a nonlinear least-squares problem over the binary-log-pooled
bins.  This module implements that fit:

1. a coarse grid scan over ``α ∈ [1, 4]`` and ``δ ∈ (−1, 10]`` to find a
   good basin (the objective is multimodal when the d=1 bin dominates), then
2. a Nelder–Mead refinement of the best grid point.

The objective is the mean squared error between the ``log10`` of the pooled
probabilities, optionally weighted by the inverse per-bin variance when the
observation carries cross-window ``σ(d_i)`` information — matching how the
log-log plots of Figure 3 weight every decade equally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import optimize

from repro._util.validation import check_positive_int
from repro.analysis.comparison import pooled_relative_error
from repro.analysis.histogram import DegreeHistogram
from repro.analysis.pooling import PooledDistribution, pool_differential_cumulative
from repro.core.zipf_mandelbrot import ZipfMandelbrotModel, zm_differential_cumulative

__all__ = ["ZMFitResult", "fit_zipf_mandelbrot", "fit_zipf_mandelbrot_histogram"]

#: Default coarse grid over the exponent α (paper range is [1.5, 3] but the
#: measured fits of Figure 3 reach down to α ≈ 1.5 and up to ≈ 2.3, so the
#: scan is kept a little wider).
_DEFAULT_ALPHA_GRID = np.linspace(1.05, 4.0, 30)

#: Default coarse grid over the offset δ; values just above −1 sharpen the
#: d = 1 probability, large positive values flatten the head.
_DEFAULT_DELTA_GRID = np.concatenate(
    [np.linspace(-0.95, 0.0, 20), np.linspace(0.05, 2.0, 14), np.linspace(2.5, 10.0, 8)]
)


@dataclass(frozen=True)
class ZMFitResult:
    """Result of a Zipf–Mandelbrot fit.

    Attributes
    ----------
    alpha, delta:
        Fitted model parameters.
    dmax:
        Support size used for the fit (largest observed degree).
    error:
        Final value of the fitting objective (log-space pooled MSE).
    n_bins:
        Number of informative (non-empty) pooled bins used.
    converged:
        Whether the local refinement reported convergence.
    """

    alpha: float
    delta: float
    dmax: int
    error: float
    n_bins: int
    converged: bool

    def model(self) -> ZipfMandelbrotModel:
        """The fitted model object."""
        return ZipfMandelbrotModel(alpha=self.alpha, delta=self.delta, dmax=self.dmax)

    def as_row(self) -> dict:
        """Dictionary form used by the experiment tables."""
        return {
            "alpha": round(self.alpha, 3),
            "delta": round(self.delta, 3),
            "dmax": self.dmax,
            "log_mse": round(self.error, 5),
            "bins": self.n_bins,
            "converged": self.converged,
        }


def _objective(params: np.ndarray, observed: PooledDistribution, dmax: int, weights) -> float:
    alpha, delta = float(params[0]), float(params[1])
    if alpha <= 0.05 or alpha > 10.0 or 1.0 + delta <= 1e-9:
        return 1e6
    model = zm_differential_cumulative(dmax, alpha, delta)
    return pooled_relative_error(observed, model, log_space=True, weights=weights)


def fit_zipf_mandelbrot(
    observed: PooledDistribution,
    dmax: int,
    *,
    alpha_grid: Sequence[float] | None = None,
    delta_grid: Sequence[float] | None = None,
    use_sigma_weights: bool = False,
    refine: bool = True,
) -> ZMFitResult:
    """Fit ``(α, δ)`` to a pooled differential cumulative observation.

    Parameters
    ----------
    observed:
        Pooled observation ``D(d_i)`` (possibly averaged over windows).
    dmax:
        Largest degree of the model support; normally the largest observed
        degree of the data that produced *observed*.
    alpha_grid, delta_grid:
        Override the coarse scan grids.
    use_sigma_weights:
        Weight bins by ``1/σ²`` when the observation carries cross-window
        standard deviations (bins with zero σ get the median weight).
    refine:
        Run the Nelder–Mead refinement after the grid scan (default True).

    Returns
    -------
    ZMFitResult
    """
    dmax = check_positive_int(dmax, "dmax")
    alphas = np.asarray(_DEFAULT_ALPHA_GRID if alpha_grid is None else alpha_grid, dtype=np.float64)
    deltas = np.asarray(_DEFAULT_DELTA_GRID if delta_grid is None else delta_grid, dtype=np.float64)
    if alphas.size == 0 or deltas.size == 0:
        raise ValueError("alpha_grid and delta_grid must be non-empty")

    weights = None
    if use_sigma_weights and observed.sigma is not None:
        sigma = observed.sigma
        with np.errstate(divide="ignore"):
            w = 1.0 / np.square(sigma)
        finite = np.isfinite(w)
        if np.any(finite):
            fill = float(np.median(w[finite]))
            w = np.where(finite, w, fill)
            weights = w

    n_informative = int(np.count_nonzero(observed.values > 0))

    best = (np.inf, None, None)
    for alpha in alphas:
        for delta in deltas:
            err = _objective(np.array([alpha, delta]), observed, dmax, weights)
            if err < best[0]:
                best = (err, float(alpha), float(delta))
    best_err, best_alpha, best_delta = best
    if best_alpha is None:
        raise RuntimeError("grid scan failed to evaluate any admissible parameter pair")

    converged = False
    if refine:
        result = optimize.minimize(
            _objective,
            x0=np.array([best_alpha, best_delta]),
            args=(observed, dmax, weights),
            method="Nelder-Mead",
            options={"xatol": 1e-4, "fatol": 1e-8, "maxiter": 2000},
        )
        if result.fun <= best_err:
            best_err = float(result.fun)
            best_alpha, best_delta = float(result.x[0]), float(result.x[1])
            converged = bool(result.success)

    return ZMFitResult(
        alpha=best_alpha,
        delta=best_delta,
        dmax=dmax,
        error=best_err,
        n_bins=n_informative,
        converged=converged,
    )


def fit_zipf_mandelbrot_histogram(
    histogram: DegreeHistogram,
    **kwargs,
) -> ZMFitResult:
    """Convenience wrapper: pool a raw histogram and fit ``(α, δ)`` to it."""
    if histogram.total == 0:
        raise ValueError("cannot fit an empty histogram")
    pooled = pool_differential_cumulative(histogram)
    return fit_zipf_mandelbrot(pooled, dmax=histogram.dmax, **kwargs)
