"""The modified Zipf–Mandelbrot model (Section II-B).

The paper fits streaming degree data with a two-parameter modification of the
Zipf–Mandelbrot law in which ``d`` is a *measured network quantity* rather
than a rank:

.. math::

    ρ(d; α, δ) = \\frac{1}{(d + δ)^{α}}, \\qquad
    p(d; α, δ) = \\frac{ρ(d; α, δ)}{\\sum_{d=1}^{d_{max}} ρ(d; α, δ)}

with cumulative probability ``P(d_i; α, δ)`` and differential cumulative
probability ``D(d_i; α, δ) = P(d_i) − P(d_{i−1})`` over the binary-log bins
``d_i = 2^i``.  The exponent ``α`` dominates the behaviour at large ``d``;
the offset ``δ`` dominates small ``d`` and in particular ``d = 1``.

This module provides those functions plus the analytic gradient
``∂_δ ρ = −α·ρ(d; α+1, δ)`` quoted in the paper, in a vectorised form used
by the fitting routines of :mod:`repro.core.zm_fit`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro._util.validation import check_positive, check_positive_int
from repro.analysis.pooling import PooledDistribution, log2_bin_edges
from repro.core.distributions import ZipfMandelbrotDistribution

__all__ = [
    "ZipfMandelbrotModel",
    "zm_unnormalized",
    "zm_unnormalized_gradient_delta",
    "zm_probability",
    "zm_cumulative",
    "zm_differential_cumulative",
]

ArrayLike = Union[float, np.ndarray]


def zm_unnormalized(d: ArrayLike, alpha: float, delta: float) -> ArrayLike:
    """Unnormalised model ``ρ(d; α, δ) = (d + δ)^{-α}``.

    Raises if any ``d + δ <= 0`` (the model is undefined there).
    """
    alpha = check_positive(alpha, "alpha")
    arr = np.asarray(d, dtype=np.float64)
    shifted = arr + float(delta)
    if np.any(shifted <= 0):
        raise ValueError("d + delta must be positive for every evaluated degree")
    out = shifted ** (-alpha)
    if np.isscalar(d) or np.ndim(d) == 0:
        return float(out)
    return out


def zm_unnormalized_gradient_delta(d: ArrayLike, alpha: float, delta: float) -> ArrayLike:
    """Gradient ``∂ρ/∂δ = −α·(d + δ)^{-(α+1)} = −α·ρ(d; α+1, δ)``."""
    alpha = check_positive(alpha, "alpha")
    return -alpha * zm_unnormalized(d, alpha + 1.0, delta)


def zm_probability(degrees: np.ndarray, alpha: float, delta: float) -> np.ndarray:
    """Normalised model probability ``p(d; α, δ)`` over the given *degrees*.

    The normalisation runs over exactly the supplied degree values, treated
    as the model support ``1..dmax`` when the degrees are the full dense
    range, or any other explicit support.
    """
    rho = np.asarray(zm_unnormalized(degrees, alpha, delta), dtype=np.float64)
    total = rho.sum()
    if total <= 0:
        raise ValueError("model has zero total mass on the requested support")
    return rho / total


def zm_cumulative(dmax: int, alpha: float, delta: float) -> np.ndarray:
    """Cumulative model probability ``P(d; α, δ)`` on the dense support ``1..dmax``."""
    dmax = check_positive_int(dmax, "dmax")
    degrees = np.arange(1, dmax + 1, dtype=np.float64)
    return np.cumsum(zm_probability(degrees, alpha, delta))


def zm_differential_cumulative(dmax: int, alpha: float, delta: float) -> PooledDistribution:
    """Differential cumulative model probability ``D(d_i; α, δ)`` on log2 bins.

    This is the curve drawn as the black model line in Figure 3: the model
    pmf on ``1..dmax`` pooled into the bins ``d_i = 2^i``.
    """
    dmax = check_positive_int(dmax, "dmax")
    degrees = np.arange(1, dmax + 1, dtype=np.int64)
    pmf = zm_probability(degrees.astype(np.float64), alpha, delta)
    edges = log2_bin_edges(dmax)
    bin_idx = np.ceil(np.log2(degrees.astype(np.float64))).astype(np.int64)
    values = np.zeros(edges.size, dtype=np.float64)
    np.add.at(values, bin_idx, pmf)
    return PooledDistribution(bin_edges=edges, values=values, total=0)


@dataclass(frozen=True)
class ZipfMandelbrotModel:
    """A fully specified modified Zipf–Mandelbrot model ``(α, δ, dmax)``.

    Thin convenience wrapper bundling the model parameters with the methods
    used throughout the experiments; the heavy lifting is delegated to the
    module-level functions and to
    :class:`repro.core.distributions.ZipfMandelbrotDistribution`.
    """

    alpha: float
    delta: float
    dmax: int

    def __post_init__(self) -> None:
        check_positive(self.alpha, "alpha")
        if 1.0 + self.delta <= 0.0:
            raise ValueError(f"delta must satisfy 1 + delta > 0, got {self.delta!r}")
        check_positive_int(self.dmax, "dmax")

    def distribution(self) -> ZipfMandelbrotDistribution:
        """The corresponding sampled-support distribution object."""
        return ZipfMandelbrotDistribution(self.alpha, self.delta, self.dmax)

    def probability(self) -> np.ndarray:
        """Dense pmf over ``1..dmax``."""
        degrees = np.arange(1, self.dmax + 1, dtype=np.float64)
        return zm_probability(degrees, self.alpha, self.delta)

    def cumulative(self) -> np.ndarray:
        """Dense cumulative probability over ``1..dmax``."""
        return zm_cumulative(self.dmax, self.alpha, self.delta)

    def differential_cumulative(self) -> PooledDistribution:
        """Model curve pooled on binary-log bins (Figure-3 black line)."""
        return zm_differential_cumulative(self.dmax, self.alpha, self.delta)

    def degree_one_probability(self) -> float:
        """Model probability at ``d = 1`` (the observation ZM must capture)."""
        return float(self.probability()[0])
