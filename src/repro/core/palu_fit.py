"""Fitting the reduced PALU parameters to an observed degree distribution.

Section IV-B of the paper gives a three-step recipe for recovering the
reduced parameters ``(c, α, u, Λ, l)`` from a measured degree distribution
``f(d)`` (the fraction of observed nodes having degree ``d``):

(a) **Tail fit** — for ``d >= 10`` the distribution is essentially
    ``c·d^{-α}`` (Eq. 4).  The default estimator is the discrete tail MLE
    (robust to the sparse, count-1 tail of sampled data); ``c`` then follows
    from matching the total tail mass.  The paper's log-log linear regression
    is available as ``tail_estimator="regression"`` and its R² is always
    reported as a diagnostic.

(b) **Unattached fit** — for small ``d`` the residual
    ``f(d) − c·d^{-α}`` is dominated by the Poisson-star term.  The paper
    recommends the *moment-ratio* estimator: the ratio of the first to the
    zeroth residual moment equals an analytic function of the Poisson mean,
    which is inverted numerically; ``u`` then follows from the zeroth
    moment.  A point-wise log-regression variant is also provided (it is the
    higher-variance alternative the paper argues against; the ablation
    benchmark quantifies that claim).

(c) **Leaf fit** — ``l`` is solved exactly from the degree-1 equation
    ``f(1) ≈ c + l + u`` (Eq. 2).

:func:`fit_palu` runs the full recipe and returns a
:class:`PALUFitResult`, which can be converted back to underlying
``(C, L, U, λ)`` proportions for a known window parameter ``p``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro._util.validation import check_fraction, check_positive_int
from repro.analysis.histogram import DegreeHistogram
from repro.analysis.moments import poisson_moment_rhs, residual_moment_ratio, residual_moment_sums
from repro.core.distributions import PALUDegreeDistribution
from repro.core.estimators import estimate_alpha_loglog
from repro.core.palu_model import PALUParameters
from repro.core.powerlaw_fit import fit_discrete_mle
from repro.core.zeta import riemann_zeta

__all__ = ["PALUFitResult", "fit_palu", "solve_lambda_from_ratio"]


@dataclass(frozen=True)
class PALUFitResult:
    """Fitted reduced PALU parameters and diagnostics.

    Attributes
    ----------
    c, l, u:
        Reduced weights of the core, leaf, and unattached pieces.
    alpha:
        Core power-law exponent.
    poisson_mean:
        Estimated Poisson mean ``m = λ·p`` of the observed star sizes.
    Lambda:
        The paper's clustering parameter ``Λ = e·m``.
    tail_r_squared:
        R² of the tail regression of step (a).
    residual_mass:
        Total residual probability attributed to the unattached piece.
    method:
        Which Λ estimator produced the unattached parameters
        (``"moment"`` or ``"pointwise"``).
    dmax:
        Largest observed degree.
    """

    c: float
    l: float
    u: float
    alpha: float
    poisson_mean: float
    Lambda: float
    tail_r_squared: float
    residual_mass: float
    method: str
    dmax: int

    def distribution(self, dmax: int | None = None) -> PALUDegreeDistribution:
        """The fitted PALU degree distribution on ``1..dmax``.

        Uses the exact-Poisson form of the unattached term so the returned
        distribution is consistent with the moment equations the fit solved
        (the Stirling form ``(Λ/d)^d`` overstates the unattached mass by a
        factor ``≈ √(2πd)``).
        """
        return PALUDegreeDistribution(
            c=self.c,
            l=self.l,
            u=self.u,
            alpha=self.alpha,
            Lambda=self.Lambda,
            dmax=int(dmax or self.dmax),
            form="poisson",
        )

    def to_underlying(self, p: float) -> PALUParameters:
        """Recover underlying proportions ``(C, L, U, λ)`` for window parameter *p*.

        Inverts the reduced-parameter map of Section IV-B using the
        normalisation constraint ``C + L + U(1 + λ − e^{-λ}) = 1`` to fix the
        visible fraction ``V``.
        """
        p = check_fraction(p, "p", inclusive=False)
        lam = self.poisson_mean / p
        if lam > 20.0:
            raise ValueError(
                f"implied λ = {lam:.3f} exceeds the model range [0, 20]; "
                "the supplied p is likely too small for this fit"
            )
        zeta_a = riemann_zeta(self.alpha)
        # per-V class masses in the underlying network
        core_over_v = self.c * zeta_a / p**self.alpha
        leaf_over_v = self.l / p
        centre_over_v = self.u * math.exp(self.poisson_mean)
        star_factor = 1.0 + lam - math.exp(-lam)
        total_over_v = core_over_v + leaf_over_v + centre_over_v * star_factor
        if total_over_v <= 0:
            raise ValueError("degenerate fit: zero total underlying mass")
        V = 1.0 / total_over_v
        return PALUParameters(
            core=core_over_v * V,
            leaves=leaf_over_v * V,
            unattached=centre_over_v * V,
            lam=lam,
            alpha=self.alpha,
            strict=False,
        )

    def as_row(self) -> dict:
        """Dictionary form used by the experiment tables."""
        return {
            "c": round(self.c, 5),
            "l": round(self.l, 5),
            "u": round(self.u, 5),
            "alpha": round(self.alpha, 3),
            "Lambda": round(self.Lambda, 3),
            "m": round(self.poisson_mean, 3),
            "tail_R2": round(self.tail_r_squared, 4),
            "method": self.method,
        }


def solve_lambda_from_ratio(ratio: float, *, m_max: float = 200.0) -> float:
    """Invert the moment-ratio equation ``g(m) = ratio`` for the Poisson mean ``m``.

    ``g`` is :func:`repro.analysis.moments.poisson_moment_rhs`, which is
    strictly increasing from 2 (at ``m = 0``); ratios at or below 2 therefore
    map to ``m = 0`` (no detectable unattached clustering), and ratios beyond
    ``g(m_max)`` are clamped to ``m_max``.  Very small positive excesses over
    2 are inverted through the Taylor expansion ``g(m) ≈ 2 + m/3`` to avoid
    bracketing problems near the root.
    """
    if not np.isfinite(ratio):
        return 0.0
    if ratio <= 2.0:
        return 0.0
    lower = 1e-6
    if ratio <= poisson_moment_rhs(lower):
        return max(0.0, 3.0 * (ratio - 2.0))
    upper = poisson_moment_rhs(m_max)
    if ratio >= upper:
        return m_max
    return float(optimize.brentq(lambda m: poisson_moment_rhs(m) - ratio, lower, m_max))


#: Residual probability mass below which the unattached component is treated
#: as absent (protects the Λ estimator from pure rounding/sampling noise).
_MIN_RESIDUAL_MASS = 1e-9


def _fit_unattached_moment(
    fractions: np.ndarray, c: float, alpha: float, d_min: int, d_max: int
) -> tuple[float, float, float]:
    """Moment-based step (b): returns ``(u, m, residual_mass)``."""
    ratio = residual_moment_ratio(fractions, c, alpha, d_min=d_min, d_max=d_max)
    weighted, plain = residual_moment_sums(fractions, c, alpha, d_min=d_min, d_max=d_max)
    if not np.isfinite(ratio) or plain <= _MIN_RESIDUAL_MASS:
        return 0.0, 0.0, max(plain, 0.0)
    m = solve_lambda_from_ratio(ratio)
    if m <= 0:
        return 0.0, 0.0, plain
    # Σ_{d>=2} u·m^d/d! = u·(e^m − 1 − m)  =>  u = plain / (e^m − 1 − m)
    denom = math.expm1(m) - m
    u = plain / denom if denom > 0 else 0.0
    if u <= _MIN_RESIDUAL_MASS:
        return 0.0, 0.0, plain
    return u, m, plain


def _fit_unattached_pointwise(
    fractions: np.ndarray, c: float, alpha: float, d_min: int, d_fit_max: int
) -> tuple[float, float, float]:
    """Point-wise step (b): log-regression of the residuals against the Poisson form.

    Writes ``log resid(d) + log d! ≈ log u + d·log m`` and solves the linear
    least-squares problem in ``(log u, log m)`` over ``d_min <= d <= d_fit_max``.
    """
    from scipy.special import gammaln

    f = np.asarray(fractions, dtype=np.float64)
    d = np.arange(1, f.size + 1, dtype=np.float64)
    resid = f - c * d ** (-alpha)
    sel = (d >= d_min) & (d <= d_fit_max) & (resid > 0)
    if np.count_nonzero(sel) < 2:
        return 0.0, 0.0, float(np.clip(resid[d >= d_min], 0, None).sum())
    y = np.log(resid[sel]) + gammaln(d[sel] + 1.0)
    x = d[sel]
    slope, intercept = np.polyfit(x, y, 1)
    m = float(np.exp(slope))
    u = float(np.exp(intercept))
    residual_mass = float(np.clip(resid[d >= d_min], 0, None).sum())
    return u, m, residual_mass


def _tail_prefactor_from_mass(
    histogram: DegreeHistogram, alpha: float, d_min: int
) -> float:
    """Solve ``c`` so that ``c·Σ_{d>=d_min} d^{-α}`` matches the observed tail mass.

    Matching the total tail probability (rather than regressing individual
    log-fractions) is unbiased even when most tail degrees have zero or one
    observation, which is the typical situation for heavy-tailed samples.
    """
    mask = histogram.degrees >= d_min
    tail_mass = float(histogram.counts[mask].sum()) / histogram.total
    d = np.arange(d_min, histogram.dmax + 1, dtype=np.float64)
    denom = float(np.sum(d ** (-alpha)))
    if denom <= 0:
        raise ValueError("degenerate tail: cannot normalise the power-law prefactor")
    return tail_mass / denom


def fit_palu(
    histogram: DegreeHistogram,
    *,
    tail_d_min: int = 10,
    unattached_d_min: int = 2,
    unattached_d_max: int = 20,
    method: str = "moment",
    tail_estimator: str = "mle",
) -> PALUFitResult:
    """Fit the reduced PALU parameters to a degree histogram.

    Parameters
    ----------
    histogram:
        Empirical degree histogram of one observed network / window.
    tail_d_min:
        Smallest degree used for the tail fit of step (a); the paper uses 10
        (Eq. 4).  Automatically relaxed down to the largest value that still
        leaves at least three distinct tail degrees.
    unattached_d_min, unattached_d_max:
        Degree range used for the unattached fit of step (b).
    method:
        ``"moment"`` (default, the paper's recommended low-variance
        estimator) or ``"pointwise"`` (log-regression on individual
        residuals).
    tail_estimator:
        ``"mle"`` (default) fits the tail exponent by discrete maximum
        likelihood and the prefactor by tail-mass matching — robust to the
        sparse count-0/1 tail of sampled data.  ``"regression"`` follows the
        paper's literal recipe (log-log least squares on the point-wise
        fractions).

    Returns
    -------
    PALUFitResult
    """
    if histogram.total == 0:
        raise ValueError("cannot fit an empty histogram")
    if method not in ("moment", "pointwise"):
        raise ValueError(f"unknown method {method!r}; expected 'moment' or 'pointwise'")
    if tail_estimator not in ("mle", "regression"):
        raise ValueError(
            f"unknown tail_estimator {tail_estimator!r}; expected 'mle' or 'regression'"
        )
    tail_d_min = check_positive_int(tail_d_min, "tail_d_min")
    dmax = histogram.dmax
    fractions = histogram.dense_probability()

    # --- step (a): tail fit of c and alpha ----------------------------------
    effective_tail_min = tail_d_min
    while effective_tail_min > 2:
        n_tail = int(np.count_nonzero(histogram.degrees >= effective_tail_min))
        if n_tail >= 3:
            break
        effective_tail_min //= 2
    tail = estimate_alpha_loglog(histogram, d_min=effective_tail_min)
    if tail_estimator == "mle":
        alpha = fit_discrete_mle(histogram, d_min=effective_tail_min).alpha
    else:
        alpha = tail.alpha
    c = _tail_prefactor_from_mass(histogram, alpha, effective_tail_min)

    # --- step (b): unattached fit of u and the Poisson mean ------------------
    if method == "moment":
        u, m, residual_mass = _fit_unattached_moment(
            fractions, c, alpha, unattached_d_min, unattached_d_max
        )
    else:
        u, m, residual_mass = _fit_unattached_pointwise(
            fractions, c, alpha, unattached_d_min, unattached_d_max
        )

    # --- step (c): solve for l from the degree-1 equation --------------------
    f1 = float(fractions[0]) if fractions.size else 0.0
    l = max(f1 - c - u, 0.0)

    return PALUFitResult(
        c=c,
        l=l,
        u=u,
        alpha=alpha,
        poisson_mean=m,
        Lambda=math.e * m,
        tail_r_squared=tail.r_squared,
        residual_mass=residual_mass,
        method=method,
        dmax=dmax,
    )
