"""Regression-based exponent estimators on log-log pooled data.

Section IV-A of the paper points out a subtlety that matters whenever the
exponent is read off a log-log plot:

* on the **un-pooled** distribution, ``log p(d) ≈ −α·log d + β`` so the
  regression slope estimates ``−α``;
* on the **binary-log pooled** differential cumulative distribution, the bin
  mass ``D(d_i) ≈ const · (2^i)^{1−α}`` so the regression slope estimates
  ``1 − α`` — one unit shallower (equivalently, the pooled curve's exponent
  is "one unit higher", the note attached to Figs. 3–4).

The estimators here implement both conventions and make the correction
explicit, so fitted exponents can always be reported in the *underlying
probability distribution* convention used by the model parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.histogram import DegreeHistogram
from repro.analysis.pooling import PooledDistribution, pool_differential_cumulative

__all__ = [
    "SlopeEstimate",
    "estimate_alpha_loglog",
    "estimate_alpha_pooled",
    "estimate_tail_intercept",
]


@dataclass(frozen=True)
class SlopeEstimate:
    """Result of a log-log linear regression.

    Attributes
    ----------
    alpha:
        Estimated exponent in the *underlying distribution* convention
        (already corrected for pooling when applicable).
    slope:
        Raw regression slope on the plotted axes.
    intercept:
        Raw regression intercept (natural log of the prefactor when natural
        logs are used, log10 otherwise).
    r_squared:
        Coefficient of determination of the regression.
    n_points:
        Number of (d, probability) pairs used.
    pooled:
        Whether the regression was run on pooled (differential cumulative)
        data, in which case ``alpha = 1 − slope``; otherwise ``alpha = −slope``.
    """

    alpha: float
    slope: float
    intercept: float
    r_squared: float
    n_points: int
    pooled: bool


def _linear_regression(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Ordinary least squares of y on x; returns (slope, intercept, r²)."""
    if x.size < 2:
        raise ValueError("regression requires at least two points")
    x_mean, y_mean = x.mean(), y.mean()
    sxx = np.sum((x - x_mean) ** 2)
    if sxx <= 0:
        raise ValueError("regression requires at least two distinct x values")
    sxy = np.sum((x - x_mean) * (y - y_mean))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    pred = slope * x + intercept
    ss_res = np.sum((y - pred) ** 2)
    ss_tot = np.sum((y - y_mean) ** 2)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return float(slope), float(intercept), float(r2)


def estimate_alpha_loglog(
    histogram: DegreeHistogram,
    *,
    d_min: int = 1,
    d_max: int | None = None,
) -> SlopeEstimate:
    """Estimate ``α`` by regressing ``log p(d)`` on ``log d`` (un-pooled).

    Only degrees in ``[d_min, d_max]`` with non-zero counts enter the
    regression.  The paper notes this estimate is "effective" once
    ``log d > 1``; callers interested in the tail should set ``d_min``
    accordingly (e.g. 10, matching Eq. 4).
    """
    if histogram.total == 0:
        raise ValueError("cannot estimate alpha from an empty histogram")
    degrees = histogram.degrees.astype(np.float64)
    prob = histogram.probability()
    mask = degrees >= d_min
    if d_max is not None:
        mask &= degrees <= d_max
    mask &= prob > 0
    x = np.log(degrees[mask])
    y = np.log(prob[mask])
    slope, intercept, r2 = _linear_regression(x, y)
    return SlopeEstimate(
        alpha=-slope,
        slope=slope,
        intercept=intercept,
        r_squared=r2,
        n_points=int(mask.sum()),
        pooled=False,
    )


def estimate_alpha_pooled(
    pooled: PooledDistribution,
    *,
    min_bin_index: int = 3,
    max_bin_index: int | None = None,
) -> SlopeEstimate:
    """Estimate ``α`` from the pooled differential cumulative distribution.

    Regression of ``log D(d_i)`` on ``log d_i`` over the bins with index
    ``i >= min_bin_index`` (the paper uses ``i > 3``, i.e. degrees above 8,
    where the integral approximation of Section IV-A is accurate).  The
    returned ``alpha`` applies the pooling correction ``α = 1 − slope``.
    """
    mask = pooled.values > 0
    idx = np.arange(pooled.n_bins)
    mask &= idx >= min_bin_index
    if max_bin_index is not None:
        mask &= idx <= max_bin_index
    if mask.sum() < 2:
        raise ValueError("not enough non-empty pooled bins above min_bin_index for a regression")
    x = np.log(pooled.bin_edges[mask].astype(np.float64))
    y = np.log(pooled.values[mask])
    slope, intercept, r2 = _linear_regression(x, y)
    return SlopeEstimate(
        alpha=1.0 - slope,
        slope=slope,
        intercept=intercept,
        r_squared=r2,
        n_points=int(mask.sum()),
        pooled=True,
    )


def estimate_alpha_from_histogram_pooled(histogram: DegreeHistogram, **kwargs) -> SlopeEstimate:
    """Pool a histogram and estimate ``α`` from the pooled bins."""
    pooled = pool_differential_cumulative(histogram)
    return estimate_alpha_pooled(pooled, **kwargs)


def estimate_tail_intercept(
    histogram: DegreeHistogram,
    alpha: float,
    *,
    d_min: int = 10,
) -> float:
    """Estimate the tail prefactor ``c`` of ``f(d) ≈ c·d^{-α}`` (Eq. 4).

    Given a fixed exponent, the least-squares optimal prefactor in log space
    is ``exp(mean(log f(d) + α log d))`` over the tail degrees with non-zero
    observed fraction.
    """
    degrees = histogram.degrees.astype(np.float64)
    prob = histogram.probability()
    mask = (degrees >= d_min) & (prob > 0)
    if not np.any(mask):
        raise ValueError(f"no non-empty degrees >= {d_min} to estimate the tail prefactor")
    log_c = np.mean(np.log(prob[mask]) + alpha * np.log(degrees[mask]))
    return float(np.exp(log_c))
