"""Cross-run comparison tables assembled from the result store.

A :class:`CampaignReport` is built from a store and a campaign name alone —
no live :class:`~repro.campaigns.spec.Campaign` object needed — because the
runner records the campaign manifest in the store.  Everything the report
prints is a pure function of stored payloads with deterministic ordering
and rounding, so re-rendering a finished campaign produces byte-identical
text: the property the warm-path test pins down.

Three tables:

* **cells** — one row per grid cell: who computed it, how many windows,
  the head probability ``D(d=1)``, and the max adjacent-phase drift;
* **summary** — per (scenario, N_V) group across seeds: mean/σ of the
  pooled head probability and the drift statistic (the cross-seed view the
  grid exists to produce);
* **engine** — the engine stats of each stored run (backend that computed
  it, chunk count, peak buffered packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import sqrt
from typing import Mapping, Union

from repro.analysis.summary import format_table
from repro.campaigns.store import DEFAULT_LEASE_TTL_SECONDS, ResultStore

__all__ = ["CampaignReport", "fleet_status_rows", "lease_rows"]


def fleet_status_rows(
    store: ResultStore, names: list[str], *, ttl: float = DEFAULT_LEASE_TTL_SECONDS
) -> list[dict]:
    """Per-campaign fleet progress: computed / leased-by-whom / stale / missing.

    One row per campaign in *names*, merge-safe by construction: everything
    here is read from the store (records and lease files) with no
    interpolation, so any number of workers — and any number of concurrent
    ``status`` invocations — see a consistent count-up.  ``stored`` uses the
    record-level presence check (stat + JSON, no payload hashing) so status
    stays O(cells); ``leased``/``stale`` age each missing key's lease
    against *ttl*.  ``retried`` counts stored cells whose recorded attempt
    count exceeds 1 — work a retry budget (``--cell-retries``) rescued.
    """
    rows = []
    for name in names:
        manifest = store.load_campaign(name)
        keys = {cell["key"] for cell in manifest["cells"]}
        stored = leased = stale = retried = 0
        holders: set[str] = set()
        for key in sorted(keys):
            try:
                record = store.record(key)
            except KeyError:
                pass
            else:
                stored += 1
                if (record.get("attempts") or 1) > 1:
                    retried += 1
                continue
            info = store.lease_info(key, ttl=ttl)
            if info is None:
                continue
            if info["stale"]:
                stale += 1
            else:
                leased += 1
                holders.add(info["owner"])
        rows.append(
            {
                "campaign": name,
                "cells": len(manifest["cells"]),
                "unique": len(keys),
                "stored": stored,
                "retried": retried,
                "leased": leased,
                "stale": stale,
                "missing": len(keys) - stored - leased - stale,
                "workers": " ".join(sorted(holders)),
                "complete": stored == len(keys),
            }
        )
    return rows


def lease_rows(
    store: ResultStore, *, ttl: float = DEFAULT_LEASE_TTL_SECONDS
) -> list[dict]:
    """One row per lease on disk: who holds what, and how stale it is.

    The detail view behind the ``leased``/``stale`` counts of
    :func:`fleet_status_rows`, for answering "which worker is stuck".  A
    lease on an already-stored key renders as state ``done`` — its holder
    persisted the cell but died before releasing (``gc_leases`` food).
    """
    rows = []
    for info in store.iter_leases(ttl=ttl):
        try:
            store.record(info["key"])
            state = "done"
        except KeyError:
            state = "stale" if info["stale"] else "live"
        rows.append(
            {
                "key": info["key"][:12],
                "owner": info["owner"],
                "host": info["host"],
                "pid": "" if info["pid"] is None else info["pid"],
                "age_s": round(info["age"], 1),
                "state": state,
            }
        )
    return rows


def _mean_std(values: list[float]) -> tuple[float, float]:
    """Population mean and σ of a small list (deterministic, no numpy dtypes)."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return mean, sqrt(variance)


@dataclass(frozen=True)
class CampaignReport:
    """Comparison tables for one campaign, assembled from stored results.

    Attributes
    ----------
    name:
        Campaign name (the manifest key in the store).
    manifest:
        The recorded campaign manifest (name, description, expanded cells).
    results:
        Stored :class:`~repro.scenarios.run.ScenarioRun` payloads keyed by
        content key — one entry per *unique* key, shared by duplicate cells.
    missing:
        Content keys the manifest lists but the store does not hold yet
        (an interrupted sweep); their cells render with empty metrics.
    attempts:
        Recorded analysis attempt count per stored key (absent for records
        written before retry budgets existed); ``attempts > 1`` marks a
        cell a retry budget rescued.
    """

    name: str
    manifest: Mapping
    results: Mapping[str, object]
    missing: tuple[str, ...]
    attempts: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def from_store(cls, store: Union[ResultStore, str], name: str) -> "CampaignReport":
        """Load a campaign's manifest and every stored cell payload."""
        store = store if isinstance(store, ResultStore) else ResultStore(store)
        manifest = store.load_campaign(name)
        results: dict[str, object] = {}
        attempts: dict[str, int] = {}
        missing = []
        for cell in manifest["cells"]:
            key = cell["key"]
            if key in results or key in missing:
                continue
            try:
                # one verified read per cell; a torn/corrupt/undecodable
                # cell reports as missing rather than crashing the report
                results[key] = store.get(key)
            except KeyError:
                missing.append(key)
                continue
            recorded = store.record(key).get("attempts")
            if recorded is not None:
                attempts[key] = int(recorded)
        return cls(name=name, manifest=manifest, results=results,
                   missing=tuple(missing), attempts=attempts)

    @property
    def complete(self) -> bool:
        """True when every cell of the campaign has a stored result."""
        return not self.missing

    def cell_rows(self, quantity: str) -> list[dict]:
        """One row per grid cell, in grid order."""
        rows = []
        for cell in self.manifest["cells"]:
            row: dict[str, object] = {
                "scenario": cell["scenario"],
                "seed": cell["seed"],
                "nv": cell["n_valid"],
                "mode": cell.get("mode", "exact"),
                "backend": cell["backend"],
            }
            run = self.results.get(cell["key"])
            if run is None:
                row.update({"windows": "", "D(d=1)": "", "max_drift": "",
                            "attempts": "", "status": "missing"})
            else:
                pooled = run.analysis.pooled(quantity)
                row.update(
                    {
                        "windows": run.analysis.n_windows,
                        "D(d=1)": round(float(pooled.values[0]), 6) if pooled.n_bins else 0.0,
                        "max_drift": round(run.phases.max_drift(quantity), 4),
                        "attempts": self.attempts.get(cell["key"], ""),
                        "status": "stored",
                    }
                )
            rows.append(row)
        return rows

    def summary_rows(self, quantity: str) -> list[dict]:
        """Cross-seed aggregation per (scenario, N_V, mode) group, in grid order."""
        groups: dict[tuple[str, int, str], list] = {}
        for cell in self.manifest["cells"]:
            run = self.results.get(cell["key"])
            if run is None:
                continue
            group = groups.setdefault(
                (cell["scenario"], cell["n_valid"], cell.get("mode", "exact")), []
            )
            # duplicate cells (same key under several backends) share one
            # stored run; count each distinct seed once per group
            if any(seen_seed == cell["seed"] for seen_seed, _ in group):
                continue
            group.append((cell["seed"], run))
        rows = []
        for (scenario, n_valid, mode), members in groups.items():
            heads = []
            drifts = []
            for _, run in members:
                pooled = run.analysis.pooled(quantity)
                heads.append(float(pooled.values[0]) if pooled.n_bins else 0.0)
                drifts.append(run.phases.max_drift(quantity))
            head_mean, head_sigma = _mean_std(heads)
            drift_mean, _ = _mean_std(drifts)
            rows.append(
                {
                    "scenario": scenario,
                    "nv": n_valid,
                    "mode": mode,
                    "seeds": len(members),
                    "D(d=1) mean": round(head_mean, 6),
                    "D(d=1) sigma": round(head_sigma, 6),
                    "max_drift mean": round(drift_mean, 4),
                    "max_drift max": round(max(drifts, default=0.0), 4),
                }
            )
        return rows

    def engine_rows(self) -> list[dict]:
        """Engine statistics of each unique stored run, in key order."""
        rows = []
        for key in sorted(self.results):
            stats = self.results[key].engine_stats
            rows.append(
                {
                    "key": key[:12],
                    "scenario": stats.get("scenario", ""),
                    "mode": stats.get("mode", "exact"),
                    "computed_by": stats.get("backend", ""),
                    "n_chunks": stats.get("n_chunks", ""),
                    "max_buffered_packets": stats.get("max_buffered_packets", ""),
                }
            )
        return rows

    def render(self, quantity: str = "source_fanout") -> str:
        """The full report as deterministic text (what the CLI prints)."""
        n_cells = len(self.manifest["cells"])
        lines = [
            f"campaign {self.name!r}: {n_cells} cells, "
            f"{len(self.results)} unique results stored, {len(self.missing)} missing",
            "",
            f"cells — {quantity}:",
            format_table(self.cell_rows(quantity)),
            "",
            f"cross-seed summary — {quantity}:",
            format_table(self.summary_rows(quantity)),
            "",
            "engine stats per stored run:",
            format_table(self.engine_rows()),
        ]
        return "\n".join(lines)
