"""Content-hashed run specifications and the declarative campaign grid.

A *campaign* is a parameter grid — scenarios × seeds × window sizes ×
execution backends — that expands into concrete :class:`RunSpec` cells.
Each cell carries a **content key**: a SHA-256 fingerprint of every
parameter that determines the cell's *result* (the scenario's full phase
structure, the seed, the window size, the quantities, the generation
block size, and the online drift detectors riding the run).  Execution knobs — backend, chunk size, worker count — are
deliberately **excluded** from the key: the PR-1 engine guarantees that
every backend produces bit-identical pooled output for the same inputs, so
two cells that differ only in how they are executed share one result.  The
result store (:mod:`repro.campaigns.store`) is addressed by this key, which
is what makes re-running a campaign skip completed cells and lets a sweep
started on the serial backend warm-hit when re-run on the streaming one.

The fingerprint is computed over a canonical JSON encoding (sorted keys,
no whitespace, ``repr``-exact floats), so a key is stable across processes
and sessions as long as the parameters are equal.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass
from typing import Iterable, Mapping, Union

from repro._util.validation import check_positive_int
from repro.detect.detectors import DETECTOR_NAMES, get_detector
from repro.scenarios.scenario import Phase, Scenario, get_scenario
from repro.scenarios.source import DEFAULT_BLOCK_PACKETS
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.parallel import BACKEND_NAMES
from repro.streaming.pipeline import MODE_NAMES
from repro.streaming.sketch import SketchConfig

__all__ = [
    "SPEC_FORMAT_VERSION",
    "RunSpec",
    "Campaign",
    "content_key",
    "scenario_fingerprint",
]

#: Version woven into every content key; bump on any change to the result
#: semantics (generator draw order, pooling definition, fingerprint layout)
#: so stale store entries can never be mistaken for current ones.
#: v2: the fingerprint gained the ``detectors`` axis (PR 4).
#: v3: the fingerprint gained the ``mode``/``sketch`` axis (PR 6).
SPEC_FORMAT_VERSION = 3


def _canonical(payload) -> str:
    """Canonical JSON encoding used for hashing: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_key(payload: Mapping) -> str:
    """SHA-256 hex digest of a canonical JSON encoding of *payload*.

    The one hashing primitive shared by run specs and cached experiment rows;
    anything addressable in the result store goes through here.
    """
    digest = hashlib.sha256(_canonical(payload).encode("utf-8"))
    return digest.hexdigest()


def _phase_fingerprint(phase: Phase) -> dict:
    """Result-determining fields of one phase, in canonical form."""
    return {
        "graph": phase.graph,
        "n_packets": int(phase.n_packets),
        "graph_params": {str(k): float(v) for k, v in sorted(phase.graph_params.items())},
        "rate_model": phase.rate_model,
        "rate_exponent": float(phase.rate_exponent),
        "lognormal_sigma": float(phase.lognormal_sigma),
        "invalid_fraction": float(phase.invalid_fraction),
        "mean_interarrival": float(phase.mean_interarrival),
    }


def scenario_fingerprint(scenario: Scenario) -> dict:
    """Result-determining fields of a scenario (its *description* is not one).

    Two scenarios with the same fingerprint generate bit-identical traces for
    any fixed seed, even if they are registered under different names — the
    name is included only because phase attribution reports it; renaming a
    scenario is treated as a new cell.
    """
    return {
        "name": scenario.name,
        "phases": [_phase_fingerprint(phase) for phase in scenario.phases],
        "crossfade_packets": int(scenario.crossfade_packets),
    }


@dataclass(frozen=True)
class RunSpec:
    """One fully-specified scenario run — a single cell of a campaign grid.

    Attributes
    ----------
    scenario:
        The resolved :class:`Scenario` to run (names are resolved at
        campaign construction).
    seed:
        Scenario seed; part of the content key.
    n_valid:
        Window size ``N_V`` in valid packets; part of the content key.
    quantities:
        Figure-1 quantities to analyse; part of the content key.
    block_packets:
        Generation block size.  Part of the content key because the block
        structure is part of the trace's identity (see
        :class:`~repro.scenarios.source.ScenarioTraceSource`).
    detectors:
        Online drift detectors to run alongside the analysis
        (:data:`repro.detect.DETECTOR_NAMES` names; empty = no detection).
        Part of the content key — the stored result carries the alarm
        sequences, so cells with different detector sets hold different
        payloads.  Each detector's *tuning parameters* are hashed too, so
        retuning a default threshold retires stale cached alarms
        mechanically instead of relying on a manual version bump.
    mode:
        Per-window analysis tier, ``"exact"`` or ``"sketch"``.  Part of the
        content key: sketched products are estimates, so an exact cell and
        a sketched cell hold genuinely different results.
    sketch:
        Accuracy knobs of the sketch tier
        (:class:`~repro.streaming.sketch.SketchConfig`); hashed via
        :meth:`~repro.streaming.sketch.SketchConfig.as_key_payload` when
        ``mode="sketch"``, since every knob (including the hash seed)
        changes the estimates.  Must be ``None`` in exact mode.
    backend / chunk_packets / n_workers:
        Execution knobs.  **Not** part of the content key: every backend
        produces bit-identical results (the engine guarantee, which the
        detectors inherit), so they only describe *how* the cell is
        computed, never *what* it computes.
    """

    scenario: Scenario
    seed: int
    n_valid: int
    quantities: tuple[str, ...] = tuple(QUANTITY_NAMES)
    block_packets: int = DEFAULT_BLOCK_PACKETS
    detectors: tuple[str, ...] = ()
    mode: str = "exact"
    sketch: SketchConfig | None = None
    backend: str = "serial"
    chunk_packets: int | None = None
    n_workers: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenario", get_scenario(self.scenario))
        object.__setattr__(self, "quantities", tuple(self.quantities))
        object.__setattr__(self, "detectors", tuple(self.detectors))
        check_positive_int(self.n_valid, "n_valid")
        check_positive_int(self.block_packets, "block_packets")
        if self.backend not in BACKEND_NAMES:
            raise ValueError(f"unknown backend {self.backend!r}; expected one of {BACKEND_NAMES}")
        if self.mode not in MODE_NAMES:
            raise ValueError(f"unknown mode {self.mode!r}; expected one of {MODE_NAMES}")
        if self.mode == "exact" and self.sketch is not None:
            raise ValueError("a sketch config was supplied but mode is 'exact'")
        if self.mode == "sketch" and self.sketch is None:
            object.__setattr__(self, "sketch", SketchConfig())
        unknown = set(self.quantities) - set(QUANTITY_NAMES)
        if unknown:
            raise ValueError(f"unknown quantities {sorted(unknown)}; valid names: {QUANTITY_NAMES}")
        unknown_detectors = set(self.detectors) - set(DETECTOR_NAMES)
        if unknown_detectors:
            raise ValueError(
                f"unknown detectors {sorted(unknown_detectors)}; valid names: {DETECTOR_NAMES}"
            )
        if len(set(self.detectors)) != len(self.detectors):
            raise ValueError(f"duplicate detectors in {list(self.detectors)}")
        # hashed once: the runner and manifests read .key several times per cell
        object.__setattr__(
            self,
            "_key",
            content_key(
                {
                    "kind": "scenario-run",
                    "format": SPEC_FORMAT_VERSION,
                    "scenario": scenario_fingerprint(self.scenario),
                    "seed": int(self.seed),
                    "n_valid": int(self.n_valid),
                    "quantities": list(self.quantities),
                    "block_packets": int(self.block_packets),
                    # names AND tuned parameters: alarms are a function of
                    # both, so a default retune must change the key
                    "detectors": [
                        {
                            "name": name,
                            "params": {
                                k: float(v)
                                for k, v in sorted(get_detector(name).params().items())
                            },
                        }
                        for name in self.detectors
                    ],
                    "mode": self.mode,
                    "sketch": None if self.sketch is None else self.sketch.as_key_payload(),
                }
            ),
        )

    @property
    def key(self) -> str:
        """Content key of this cell's *result* (execution knobs excluded)."""
        return self._key  # type: ignore[attr-defined]

    def as_manifest(self) -> dict:
        """JSON-ready description of the cell (content and execution fields)."""
        return {
            "key": self.key,
            "scenario": self.scenario.name,
            "seed": int(self.seed),
            "n_valid": int(self.n_valid),
            "quantities": list(self.quantities),
            "block_packets": int(self.block_packets),
            "detectors": list(self.detectors),
            "mode": self.mode,
            "sketch": None if self.sketch is None else self.sketch.as_key_payload(),
            "backend": self.backend,
            "chunk_packets": None if self.chunk_packets is None else int(self.chunk_packets),
            "n_workers": None if self.n_workers is None else int(self.n_workers),
        }


@dataclass(frozen=True)
class Campaign:
    """A declarative sweep: the cartesian grid of runs to perform.

    Expansion order is deterministic — ``scenarios × seeds × n_valids ×
    modes × backends``, with the rightmost axis fastest — so two expansions
    of equal campaigns list identical cells in identical order.  Scenario
    names are resolved (and therefore validated) at construction time, like
    phase configs are for scenarios themselves.

    Because the content key excludes execution knobs, listing several
    *backends* does not multiply the work: cells that differ only in backend
    share one result key, and the runner computes each unique key once —
    the remaining combinations resolve as warm hits.  Listing several
    *modes* **does** multiply the work: exact and sketched results are
    different payloads, which is exactly what makes an
    accuracy-versus-cost sweep (``modes=("exact", "sketch")``) meaningful.
    """

    name: str
    scenarios: tuple[Union[str, Scenario], ...]
    seeds: tuple[int, ...] = (0,)
    n_valids: tuple[int, ...] = (5_000,)
    quantities: tuple[str, ...] = tuple(QUANTITY_NAMES)
    detectors: tuple[str, ...] = ()
    modes: tuple[str, ...] = ("exact",)
    sketch: SketchConfig | None = None
    backends: tuple[str, ...] = ("serial",)
    chunk_packets: int | None = None
    block_packets: int = DEFAULT_BLOCK_PACKETS
    n_workers: int | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("campaign name must be a non-empty string")
        if not self.scenarios:
            raise ValueError(f"campaign {self.name!r} must name at least one scenario")
        if not self.seeds:
            raise ValueError(f"campaign {self.name!r} must have at least one seed")
        if not self.n_valids:
            raise ValueError(f"campaign {self.name!r} must have at least one window size")
        if not self.quantities:
            raise ValueError(f"campaign {self.name!r} must analyse at least one quantity")
        if not self.modes:
            raise ValueError(f"campaign {self.name!r} must name at least one mode")
        for mode in self.modes:
            if mode not in MODE_NAMES:
                raise ValueError(
                    f"campaign {self.name!r} names unknown mode {mode!r}; "
                    f"choose from {list(MODE_NAMES)}"
                )
        if self.sketch is not None and "sketch" not in self.modes:
            raise ValueError(
                f"campaign {self.name!r} configures a sketch but never runs "
                "mode 'sketch'; add it to modes= or drop sketch="
            )
        if not self.backends:
            raise ValueError(f"campaign {self.name!r} must name at least one backend")
        resolved = tuple(get_scenario(s) for s in self.scenarios)
        object.__setattr__(self, "scenarios", resolved)
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "n_valids", tuple(self.n_valids))
        object.__setattr__(self, "quantities", tuple(self.quantities))
        object.__setattr__(self, "detectors", tuple(self.detectors))
        object.__setattr__(self, "modes", tuple(self.modes))
        object.__setattr__(self, "backends", tuple(self.backends))
        # expand (and thereby validate) the grid once; cells() serves this
        # tuple so repeated expansion never re-validates or re-hashes
        object.__setattr__(self, "_cells", tuple(self._iter_cells()))

    def _iter_cells(self) -> Iterable[RunSpec]:
        for scenario, seed, n_valid, mode, backend in itertools.product(
            self.scenarios, self.seeds, self.n_valids, self.modes, self.backends
        ):
            yield RunSpec(
                scenario=scenario,
                seed=seed,
                n_valid=n_valid,
                quantities=self.quantities,
                block_packets=self.block_packets,
                detectors=self.detectors,
                mode=mode,
                sketch=self.sketch if mode == "sketch" else None,
                backend=backend,
                chunk_packets=self.chunk_packets,
                n_workers=self.n_workers,
            )

    def cells(self) -> tuple[RunSpec, ...]:
        """The grid's concrete cells, in deterministic expansion order."""
        return self._cells  # type: ignore[attr-defined]

    @property
    def n_cells(self) -> int:
        """Number of grid cells (including combinations sharing a result key)."""
        return (
            len(self.scenarios) * len(self.seeds) * len(self.n_valids)
            * len(self.modes) * len(self.backends)
        )

    def unique_keys(self) -> tuple[str, ...]:
        """Distinct result keys of the grid, in first-appearance order."""
        seen: dict[str, None] = {}
        for spec in self.cells():
            seen.setdefault(spec.key, None)
        return tuple(seen)

    def as_manifest(self) -> dict:
        """JSON-ready description of the campaign and its expanded cells."""
        return {
            "name": self.name,
            "description": self.description,
            "n_cells": self.n_cells,
            "cells": [spec.as_manifest() for spec in self.cells()],
        }
