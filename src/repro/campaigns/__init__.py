"""Campaign orchestration: declarative sweeps over a content-addressed store.

PR 1 made single runs fast and PR 2 made workloads declarative; this
subpackage makes *fleets* of runs cheap to own.  A
:class:`~repro.campaigns.spec.Campaign` expands a parameter grid (scenarios
× seeds × window sizes × backends) into content-hashed
:class:`~repro.campaigns.spec.RunSpec` cells; the runner fans them out
through the engine's execution backends and persists every result in an
on-disk :class:`~repro.campaigns.store.ResultStore` keyed by the spec hash.
Consequences:

* re-running a finished campaign recomputes **nothing** — every cell is a
  warm O(read) hit, and the assembled report is byte-identical;
* a killed sweep resumes where it stopped: completed cells were persisted
  atomically as they finished, so only the missing ones run;
* cells that differ only in execution backend share one result (the
  engine's bit-identity guarantee, now load-bearing: the content key simply
  omits execution knobs).

Quickstart::

    from repro.campaigns import Campaign, CampaignReport, run_campaign

    campaign = Campaign(
        "drift-sweep",
        scenarios=("stationary", "alpha-drift"),
        seeds=(0, 1, 2),
        n_valids=(5_000,),
        backends=("streaming",),
        chunk_packets=10_000,
    )
    run = run_campaign(campaign, "results-store", pool="process")
    print(run.n_computed, run.n_cached)          # cold: (6, 0); warm: (0, 6)
    print(CampaignReport.from_store("results-store", "drift-sweep").render())

Beyond one process, the store doubles as the fleet's queue: N workers
(processes or machines on a shared filesystem) sweep one grid by claiming
cells through atomic lease files — deterministic ``k/N`` sharding first,
lease-guarded work-stealing for the tail, stale-lease takeover for dead
workers — with no scheduler::

    # worker k of N (run one such process per k):
    run_campaign(campaign, "results-store", workers=N, worker_index=k)

A cell whose analysis raises becomes a ``status="failed"`` outcome instead
of aborting the sweep; every other cell still computes.

CLI: ``repro campaign run|status|report`` (``run --workers N --worker-id
k/N`` for fleets; ``status`` reports per-fleet lease state).
"""

from repro.campaigns.report import CampaignReport, fleet_status_rows, lease_rows
from repro.campaigns.runner import CampaignRun, CellOutcome, parse_worker_id, run_campaign
from repro.campaigns.spec import Campaign, RunSpec, content_key, scenario_fingerprint
from repro.campaigns.store import DEFAULT_LEASE_TTL_SECONDS, ResultStore

__all__ = [
    "Campaign",
    "CampaignReport",
    "CampaignRun",
    "CellOutcome",
    "DEFAULT_LEASE_TTL_SECONDS",
    "ResultStore",
    "RunSpec",
    "content_key",
    "fleet_status_rows",
    "lease_rows",
    "parse_worker_id",
    "run_campaign",
    "scenario_fingerprint",
]
