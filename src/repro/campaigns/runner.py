"""Campaign execution: fan cells out, skip what the store already holds.

:func:`run_campaign` is deliberately thin glue between three existing
pieces: the grid expansion (:class:`~repro.campaigns.spec.Campaign`), the
scenario engine (:func:`repro.scenarios.run.analyze_scenario`), and the
content-addressed store (:class:`~repro.campaigns.store.ResultStore`).  Its
contract:

* a cell whose content key is already in the store is **never recomputed**
  — a warm re-run of a finished campaign costs one read per cell;
* cells that share a content key (e.g. the same scenario listed under two
  backends) are computed once and resolved as deduplicated hits;
* every completed cell is persisted atomically *as it finishes*, so killing
  a sweep loses at most the cells in flight — re-running the campaign
  resumes with exactly the missing cells;
* run-level fan-out reuses the engine's
  :class:`~repro.streaming.parallel.ExecutionBackend` pool (``pool=
  "process"`` computes independent cells on worker processes), the same
  substrate PR 1 built for window-level fan-out.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro._util.logging import get_logger
from repro.campaigns.spec import Campaign, RunSpec
from repro.campaigns.store import ResultStore
from repro.scenarios.run import analyze_scenario

__all__ = ["CellOutcome", "CampaignRun", "run_campaign"]

_logger = get_logger("campaigns.runner")


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one grid cell during a campaign run.

    ``status`` is one of ``"computed"`` (freshly analysed and stored),
    ``"cached"`` (complete in the store before the run — including cells
    deduplicated against an identical cell computed earlier in the same
    run), or ``"skipped"`` (left for later by a ``max_cells`` cap).
    ``seconds`` is the compute time for freshly computed cells and ``None``
    otherwise; ``n_windows`` is ``None`` only for skipped cells.
    """

    key: str
    scenario: str
    seed: int
    n_valid: int
    backend: str
    status: str
    mode: str = "exact"
    seconds: Optional[float] = None
    n_windows: Optional[int] = None

    def as_row(self) -> dict:
        """Flat dict row for tables."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "nv": self.n_valid,
            "mode": self.mode,
            "backend": self.backend,
            "status": self.status,
            "seconds": "" if self.seconds is None else round(self.seconds, 3),
            "windows": "" if self.n_windows is None else self.n_windows,
            "key": self.key[:12],
        }


@dataclass(frozen=True)
class CampaignRun:
    """Summary of one :func:`run_campaign` invocation."""

    campaign: Campaign
    store_root: str
    outcomes: tuple[CellOutcome, ...]

    @property
    def n_cells(self) -> int:
        """Total grid cells of the campaign."""
        return len(self.outcomes)

    @property
    def n_computed(self) -> int:
        """Cells actually analysed this run (the cold part of the sweep)."""
        return sum(1 for o in self.outcomes if o.status == "computed")

    @property
    def n_cached(self) -> int:
        """Cells satisfied from the store (warm hits + in-run dedup)."""
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def n_skipped(self) -> int:
        """Cells left uncomputed by a ``max_cells`` cap."""
        return sum(1 for o in self.outcomes if o.status == "skipped")

    @property
    def complete(self) -> bool:
        """True when every grid cell now has a stored result."""
        return self.n_skipped == 0

    def as_rows(self) -> list[dict]:
        """Per-cell outcome rows, in grid order."""
        return [outcome.as_row() for outcome in self.outcomes]


def _compute_cell(spec: RunSpec, *, store_root: str) -> dict:
    """Analyse one cell and persist it; runs in-process or on a pool worker."""
    store = ResultStore(store_root)
    started = time.perf_counter()
    run = analyze_scenario(
        spec.scenario,
        spec.n_valid,
        seed=spec.seed,
        quantities=spec.quantities,
        backend=spec.backend,
        n_workers=spec.n_workers,
        chunk_packets=spec.chunk_packets,
        block_packets=spec.block_packets,
        keep_windows=False,
        detectors=spec.detectors,
        mode=spec.mode,
        sketch=spec.sketch,
    )
    seconds = time.perf_counter() - started
    n_windows = run.analysis.n_windows
    store.put(
        spec.key,
        run,
        meta={"spec": spec.as_manifest(), "seconds": round(seconds, 6), "n_windows": n_windows},
    )
    return {"key": spec.key, "seconds": seconds, "n_windows": n_windows}


def run_campaign(
    campaign: Campaign,
    store: Union[ResultStore, str],
    *,
    pool: str | None = None,
    pool_workers: int | None = None,
    max_cells: int | None = None,
    recompute: bool = False,
) -> CampaignRun:
    """Run (or resume) a campaign against a result store.

    Parameters
    ----------
    campaign:
        The grid to sweep.  Its manifest is recorded in the store, so
        ``status`` and ``report`` need only the store and the name.
    store:
        A :class:`ResultStore` or the path of one (created if absent).
    pool:
        Run-level fan-out backend: ``None``/``"serial"`` computes cells one
        by one; ``"process"`` distributes independent cells across worker
        processes.  Cells whose own ``backend`` is ``"process"`` cannot run
        under a process pool (worker processes may not spawn pools of their
        own); use serial or streaming cell backends when fanning out.
    pool_workers:
        Worker count for ``pool="process"``.
    max_cells:
        Compute at most this many missing cells, leaving the rest
        ``"skipped"`` — for smoke runs and partial sweeps; re-running the
        campaign picks up exactly the cells left behind.
    recompute:
        Ignore existing store entries and recompute every cell (the cache
        escape hatch; stored results are replaced).  Incompatible with
        ``max_cells`` — a capped recompute could never advance past the
        first cells.

    Returns
    -------
    CampaignRun
        One :class:`CellOutcome` per grid cell, in deterministic grid order.
    """
    from repro.streaming.parallel import get_backend

    if recompute and max_cells is not None:
        # a capped recompute can never advance: the deterministic todo order
        # would re-select the same first cells on every invocation
        raise ValueError("recompute=True cannot be combined with max_cells")
    store = store if isinstance(store, ResultStore) else ResultStore(store)
    cells = campaign.cells()

    todo: list[RunSpec] = []
    assigned: set[str] = set()
    for spec in cells:
        if spec.key in assigned:
            continue
        if recompute or spec.key not in store:
            todo.append(spec)
            assigned.add(spec.key)
    if max_cells is not None:
        todo = todo[: max(0, int(max_cells))]
        assigned = {spec.key for spec in todo}

    # pool=None means serial, full stop — never the historical "process when
    # n_workers > 1" inference of get_backend(None, ...); fan-out across
    # processes must be an explicit pool="process" choice
    pool_backend = get_backend(pool or "serial", n_workers=pool_workers)
    if pool_backend.name == "process" and any(spec.backend == "process" for spec in todo):
        raise ValueError(
            "cells with backend='process' cannot run under pool='process' "
            "(pool workers may not spawn process pools); use serial or "
            "streaming cell backends when fanning out across processes"
        )
    # record the manifest only once the run is actually going to happen, so
    # a rejected invocation leaves no stray campaign in the store; warn when
    # this replaces a *different* grid recorded under the same name (the old
    # grid's cells stay in the store but fall out of status/report)
    try:
        previous = store.load_campaign(campaign.name)
    except KeyError:
        previous = None
    if previous is not None:
        old_keys = {cell["key"] for cell in previous["cells"]}
        new_keys = {spec.key for spec in cells}
        if old_keys != new_keys:
            _logger.warning(
                "campaign %r already exists in %s with a different grid "
                "(%d cells -> %d); its manifest is being replaced — results of "
                "dropped cells remain stored but unreported",
                campaign.name, store.root, len(old_keys), len(new_keys),
            )
    store.save_campaign(campaign.as_manifest())
    _logger.info(
        "campaign %r: %d cells, %d to compute (%s pool)",
        campaign.name, len(cells), len(todo), pool_backend.name,
    )

    worker = functools.partial(_compute_cell, store_root=str(store.root))
    computed: dict[str, dict] = {}
    for result in pool_backend.map(worker, todo):
        computed[result["key"]] = result
        _logger.debug("computed cell %s in %.3fs", result["key"][:12], result["seconds"])

    outcomes = []
    for spec in cells:
        key = spec.key
        common = {
            "key": key,
            "scenario": spec.scenario.name,
            "seed": spec.seed,
            "n_valid": spec.n_valid,
            "mode": spec.mode,
            "backend": spec.backend,
        }
        if key in computed and key in assigned:
            fresh = computed[key]
            outcomes.append(
                CellOutcome(
                    status="computed", seconds=fresh["seconds"],
                    n_windows=fresh["n_windows"], **common,
                )
            )
            # only the first cell of a key is "computed"; duplicates are hits
            assigned.discard(key)
        elif key in store:
            record = store.record(key)
            outcomes.append(
                CellOutcome(status="cached", n_windows=record.get("n_windows"), **common)
            )
        else:
            outcomes.append(CellOutcome(status="skipped", **common))
    return CampaignRun(campaign=campaign, store_root=str(store.root), outcomes=outcomes)
