"""Campaign execution: claim cells from the store, contain failures, converge.

:func:`run_campaign` is deliberately thin glue between three existing
pieces: the grid expansion (:class:`~repro.campaigns.spec.Campaign`), the
scenario engine (:func:`repro.scenarios.run.analyze_scenario`), and the
content-addressed store (:class:`~repro.campaigns.store.ResultStore`).  Its
contract:

* a cell whose content key is already in the store is **never recomputed**
  — a warm re-run of a finished campaign costs one read per cell;
* cells that share a content key (e.g. the same scenario listed under two
  backends) are computed once and resolved as deduplicated hits;
* every completed cell is persisted atomically *as it finishes*, so killing
  a sweep loses at most the cells in flight — re-running the campaign
  resumes with exactly the missing cells;
* a cell whose analysis **raises** becomes a ``status="failed"`` outcome —
  the exception is contained, the rest of the grid still computes, and the
  failure (with its error text) is reported instead of aborting the sweep;
* run-level fan-out reuses the engine's
  :class:`~repro.streaming.parallel.ExecutionBackend` pool (``pool=
  "process"`` computes independent cells on worker processes), the same
  substrate PR 1 built for window-level fan-out.

**Fleets.**  The store doubles as the scheduler: N ``run_campaign(...,
workers=N, worker_index=k)`` processes — or N machines on a shared
filesystem — sweep one grid with no coordinator.  Each worker claims a
cell by taking its lease (``O_EXCL`` file create, see
:mod:`repro.campaigns.store`), heartbeats while computing, and releases on
completion.  The first pass is deterministically sharded (worker *k* owns
every *k*-th missing unique key), so a healthy fleet never contends; the
tail is **work-stealing** — each worker sweeps the remaining missing keys,
taking over leases whose heartbeat went stale (dead workers) and waiting
out live ones, until every key is stored or failed.  Convergence needs no
messages: the store's atomic writes are the only shared state.
"""

from __future__ import annotations

import functools
import os
import socket
import threading
import time
from dataclasses import dataclass
from typing import Optional, Union

from repro._util.logging import get_logger
from repro.campaigns.spec import Campaign, RunSpec
from repro.campaigns.store import DEFAULT_LEASE_TTL_SECONDS, ResultStore
from repro.scenarios.run import analyze_scenario

__all__ = ["CellOutcome", "CampaignRun", "parse_worker_id", "run_campaign"]

_logger = get_logger("campaigns.runner")


def parse_worker_id(text: str) -> tuple[int, int]:
    """Parse a ``"k/N"`` fleet-member id into ``(worker_index, workers)``.

    ``k`` is 1-based: ``"2/4"`` is the second of four workers.  Raises
    ``ValueError`` on anything that is not ``1 <= k <= N``.
    """
    head, sep, tail = text.partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, total = int(head), int(tail)
    except ValueError:
        raise ValueError(
            f"worker id must look like 'k/N' (e.g. '2/4'), got {text!r}"
        ) from None
    if total < 1 or not 1 <= index <= total:
        raise ValueError(f"worker id {text!r} must satisfy 1 <= k <= N")
    return index, total


@dataclass(frozen=True)
class CellOutcome:
    """What happened to one grid cell during a campaign run.

    ``status`` is one of ``"computed"`` (freshly analysed and stored),
    ``"cached"`` (complete in the store before the run — including cells
    deduplicated against an identical cell computed earlier in the same
    run), ``"failed"`` (the cell's analysis raised; ``error`` holds the
    one-line reason and nothing was stored), or ``"skipped"`` (left for
    later by a ``max_cells`` cap).  ``seconds`` is the compute time for
    freshly computed cells and ``None`` otherwise; ``n_windows`` is
    ``None`` for skipped and failed cells — and for cached cells whose
    stored record predates window-count recording (e.g. written by
    :meth:`~repro.campaigns.store.ResultStore.get_or_compute` or an older
    store), which render with an empty ``windows`` column.  ``attempts``
    counts how many times the cell's analysis ran under a retry budget
    (1 = first try succeeded); ``None`` for skipped cells and for cached
    cells whose stored record predates attempt recording.
    """

    key: str
    scenario: str
    seed: int
    n_valid: int
    backend: str
    status: str
    mode: str = "exact"
    seconds: Optional[float] = None
    n_windows: Optional[int] = None
    error: Optional[str] = None
    attempts: Optional[int] = None

    def as_row(self) -> dict:
        """Flat dict row for tables."""
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "nv": self.n_valid,
            "mode": self.mode,
            "backend": self.backend,
            "status": self.status,
            "seconds": "" if self.seconds is None else round(self.seconds, 3),
            "windows": "" if self.n_windows is None else self.n_windows,
            "attempts": "" if self.attempts is None else self.attempts,
            "key": self.key[:12],
        }


@dataclass(frozen=True)
class CampaignRun:
    """Summary of one :func:`run_campaign` invocation."""

    campaign: Campaign
    store_root: str
    outcomes: tuple[CellOutcome, ...]

    @property
    def n_cells(self) -> int:
        """Total grid cells of the campaign."""
        return len(self.outcomes)

    @property
    def n_computed(self) -> int:
        """Cells actually analysed this run (the cold part of the sweep)."""
        return sum(1 for o in self.outcomes if o.status == "computed")

    @property
    def n_cached(self) -> int:
        """Cells satisfied from the store (warm hits + in-run dedup)."""
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def n_failed(self) -> int:
        """Cells whose analysis raised (contained, reported, not stored)."""
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def n_skipped(self) -> int:
        """Cells left uncomputed by a ``max_cells`` cap."""
        return sum(1 for o in self.outcomes if o.status == "skipped")

    @property
    def complete(self) -> bool:
        """True when every grid cell now has a stored result."""
        return self.n_skipped == 0 and self.n_failed == 0

    @property
    def failures(self) -> tuple[CellOutcome, ...]:
        """The failed outcomes, in grid order (one per affected cell)."""
        return tuple(o for o in self.outcomes if o.status == "failed")

    def failure_lines(self) -> list[str]:
        """One human-readable line per failed *unique* cell."""
        lines = []
        seen: set[str] = set()
        for outcome in self.failures:
            if outcome.key in seen:
                continue
            seen.add(outcome.key)
            lines.append(
                f"failed {outcome.scenario} seed={outcome.seed} nv={outcome.n_valid} "
                f"mode={outcome.mode} [{outcome.key[:12]}]: {outcome.error}"
            )
        return lines

    def as_rows(self) -> list[dict]:
        """Per-cell outcome rows, in grid order."""
        return [outcome.as_row() for outcome in self.outcomes]


def _fleet_owner(worker_index: int, workers: int) -> str:
    """Stable identity of this fleet member, recorded in every lease it takes."""
    return f"{socket.gethostname()}:{os.getpid()}:{worker_index}/{workers}"


def _claim_and_compute_cell(
    spec: RunSpec,
    *,
    store_root: str,
    owner: str,
    ttl: float,
    heartbeat: float,
    recompute: bool = False,
    cell_retries: int = 0,
) -> dict:
    """Claim one cell's lease, analyse it, persist it, release the lease.

    Runs in-process or on a pool worker; always returns a result dict,
    never raises for a cell-level failure (that is the containment
    contract — one bad cell must not sink the sweep):

    * ``{"status": "cached"}`` — the cell appeared in the store before we
      could claim it (another fleet member finished it);
    * ``{"status": "lost"}`` — a live lease blocks the claim; the caller
      retries later (work-stealing tail) or leaves it to its holder;
    * ``{"status": "computed", "seconds", "n_windows", "attempts"}`` — the
      happy path;
    * ``{"status": "failed", "error", "attempts"}`` — the analysis raised
      on every allowed attempt; the lease is released so the failure is
      observable fleet-wide (another worker may retry and fail the same
      way — each run reports its own attempt).

    *cell_retries* is the per-cell retry budget: a raising analysis is
    re-run up to that many extra times **while the lease is held** (so no
    other fleet member duplicates the work), and the attempt count is
    recorded in the stored cell's meta.

    A daemon thread refreshes the lease heartbeat every *heartbeat*
    seconds while the analysis runs, so long cells never read as stale.
    ``KeyboardInterrupt``/``SystemExit`` still propagate: killing a sweep
    is not a cell failure, and the ``finally`` releases the claim.
    """
    store = ResultStore(store_root)
    if not recompute and spec.key in store:
        return {"key": spec.key, "status": "cached"}
    if not store.acquire_lease(spec.key, owner, ttl=ttl):
        info = store.lease_info(spec.key, ttl=ttl)
        return {"key": spec.key, "status": "lost",
                "holder": None if info is None else info["owner"]}
    stop = threading.Event()

    def _beat() -> None:
        while not stop.wait(heartbeat):
            if not store.refresh_lease(spec.key, owner):
                return  # lease lost (taken over); compute finishes idempotently

    beater = threading.Thread(target=_beat, name="lease-heartbeat", daemon=True)
    beater.start()
    try:
        # re-check under the lease: the previous holder may have persisted
        # the cell and died before releasing
        if not recompute and spec.key in store:
            return {"key": spec.key, "status": "cached"}
        attempts = 0
        while True:
            attempts += 1
            started = time.perf_counter()
            try:
                run = analyze_scenario(
                    spec.scenario,
                    spec.n_valid,
                    seed=spec.seed,
                    quantities=spec.quantities,
                    backend=spec.backend,
                    n_workers=spec.n_workers,
                    chunk_packets=spec.chunk_packets,
                    block_packets=spec.block_packets,
                    keep_windows=False,
                    detectors=spec.detectors,
                    mode=spec.mode,
                    sketch=spec.sketch,
                )
                seconds = time.perf_counter() - started
                n_windows = run.analysis.n_windows
                store.put(
                    spec.key,
                    run,
                    meta={"spec": spec.as_manifest(), "seconds": round(seconds, 6),
                          "n_windows": n_windows, "attempts": attempts},
                )
            except Exception as error:
                seconds = time.perf_counter() - started
                message = f"{type(error).__name__}: {error}"
                if attempts <= cell_retries:
                    _logger.warning(
                        "cell %s attempt %d/%d failed after %.3fs: %s — retrying",
                        spec.key[:12], attempts, cell_retries + 1, seconds, message,
                    )
                    continue
                _logger.warning(
                    "cell %s failed after %.3fs (%d attempt(s)): %s",
                    spec.key[:12], seconds, attempts, message,
                )
                return {"key": spec.key, "status": "failed", "error": message,
                        "seconds": seconds, "attempts": attempts}
            return {"key": spec.key, "status": "computed", "seconds": seconds,
                    "n_windows": n_windows, "attempts": attempts}
    finally:
        stop.set()
        store.release_lease(spec.key, owner)


def run_campaign(
    campaign: Campaign,
    store: Union[ResultStore, str],
    *,
    pool: str | None = None,
    pool_workers: int | None = None,
    max_cells: int | None = None,
    recompute: bool = False,
    cell_retries: int = 0,
    workers: int = 1,
    worker_index: int = 1,
    lease_ttl: float = DEFAULT_LEASE_TTL_SECONDS,
    heartbeat_seconds: float | None = None,
    poll_seconds: float | None = None,
) -> CampaignRun:
    """Run (or resume) a campaign against a result store.

    Parameters
    ----------
    campaign:
        The grid to sweep.  Its manifest is recorded in the store, so
        ``status`` and ``report`` need only the store and the name.
    store:
        A :class:`ResultStore` or the path of one (created if absent).
    pool:
        Run-level fan-out backend: ``None``/``"serial"`` computes cells one
        by one; ``"process"`` distributes independent cells across worker
        processes.  Cells whose own ``backend`` is ``"process"`` cannot run
        under a process pool (worker processes may not spawn pools of their
        own); use serial or streaming cell backends when fanning out.
    pool_workers:
        Worker count for ``pool="process"``.
    max_cells:
        Attempt at most this many missing cells, leaving the rest
        ``"skipped"`` — for smoke runs and partial sweeps; re-running the
        campaign picks up exactly the cells left behind.
    recompute:
        Ignore existing store entries and recompute every cell (the cache
        escape hatch; stored results are replaced).  Incompatible with
        ``max_cells`` — a capped recompute could never advance past the
        first cells — and with fleets (``workers > 1``), whose convergence
        test is precisely "is the key stored yet".
    cell_retries:
        Per-cell retry budget: a cell whose analysis raises is re-run up
        to this many extra times (while its lease is held) before being
        recorded as failed.  The attempt count lands in the stored cell's
        meta and in each :class:`CellOutcome`.  Default 0: fail on the
        first raise, the historical behaviour.
    workers / worker_index:
        Fleet shape: this process is worker ``worker_index`` (1-based) of
        ``workers`` sweeping the same grid against the same store.  The
        default ``1/1`` is a fleet of one and behaves exactly like the
        historical single-process sweep.  Fleet members coordinate purely
        through store leases; see the module docstring.
    lease_ttl:
        Seconds without a heartbeat after which a lease counts as stale
        and may be taken over.  Every member of one fleet should use the
        same value.
    heartbeat_seconds:
        Heartbeat period while computing a cell (default ``lease_ttl / 3``).
    poll_seconds:
        How long a worker with nothing claimable sleeps before re-checking
        the store (default ``min(1, lease_ttl / 4)``).

    Returns
    -------
    CampaignRun
        One :class:`CellOutcome` per grid cell, in deterministic grid order.
        ``status="failed"`` outcomes carry the contained per-cell error.
    """
    from repro.streaming.parallel import get_backend

    if recompute and max_cells is not None:
        # a capped recompute can never advance: the deterministic todo order
        # would re-select the same first cells on every invocation
        raise ValueError("recompute=True cannot be combined with max_cells")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if not 1 <= worker_index <= workers:
        raise ValueError(
            f"worker_index must be in 1..workers (= {workers}), got {worker_index}"
        )
    if recompute and workers > 1:
        raise ValueError(
            "recompute=True cannot run as a fleet: workers converge on 'key is "
            "stored', which recompute deliberately ignores — recompute with a "
            "single worker instead"
        )
    if cell_retries < 0:
        raise ValueError(f"cell_retries must be >= 0, got {cell_retries}")
    if lease_ttl <= 0:
        raise ValueError(f"lease_ttl must be > 0, got {lease_ttl}")
    heartbeat = lease_ttl / 3 if heartbeat_seconds is None else heartbeat_seconds
    if not 0 < heartbeat < lease_ttl:
        raise ValueError(
            f"heartbeat_seconds must be in (0, lease_ttl); got {heartbeat} vs ttl {lease_ttl}"
        )
    poll = min(1.0, lease_ttl / 4) if poll_seconds is None else poll_seconds
    if poll <= 0:
        raise ValueError(f"poll_seconds must be > 0, got {poll}")

    store = store if isinstance(store, ResultStore) else ResultStore(store)
    cells = campaign.cells()

    # one spec per unique key, in grid order (first appearance wins)
    unique_specs: list[RunSpec] = []
    seen_keys: set[str] = set()
    for spec in cells:
        if spec.key not in seen_keys:
            unique_specs.append(spec)
            seen_keys.add(spec.key)
    if recompute:
        targets = list(unique_specs)
    else:
        targets = [spec for spec in unique_specs if spec.key not in store]

    budget = None if max_cells is None else max(0, int(max_cells))

    # pool=None means serial, full stop — never the historical "process when
    # n_workers > 1" inference of get_backend(None, ...); fan-out across
    # processes must be an explicit pool="process" choice
    pool_backend = get_backend(pool or "serial", n_workers=pool_workers)
    if pool_backend.name == "process" and any(spec.backend == "process" for spec in targets):
        raise ValueError(
            "cells with backend='process' cannot run under pool='process' "
            "(pool workers may not spawn process pools); use serial or "
            "streaming cell backends when fanning out across processes"
        )
    # record the manifest only once the run is actually going to happen, so
    # a rejected invocation leaves no stray campaign in the store; warn when
    # this replaces a *different* grid recorded under the same name (the old
    # grid's cells stay in the store but fall out of status/report)
    try:
        previous = store.load_campaign(campaign.name)
    except KeyError:
        previous = None
    if previous is not None:
        old_keys = {cell["key"] for cell in previous["cells"]}
        new_keys = {spec.key for spec in cells}
        if old_keys != new_keys:
            _logger.warning(
                "campaign %r already exists in %s with a different grid "
                "(%d cells -> %d); its manifest is being replaced — results of "
                "dropped cells remain stored but unreported",
                campaign.name, store.root, len(old_keys), len(new_keys),
            )
    store.save_campaign(campaign.as_manifest())
    owner = _fleet_owner(worker_index, workers)
    _logger.info(
        "campaign %r: %d cells, %d missing (%s pool, worker %d/%d)",
        campaign.name, len(cells), len(targets), pool_backend.name,
        worker_index, workers,
    )

    claim = functools.partial(
        _claim_and_compute_cell,
        store_root=str(store.root),
        owner=owner,
        ttl=lease_ttl,
        heartbeat=heartbeat,
        recompute=recompute,
        cell_retries=cell_retries,
    )
    # key -> terminal local result ("computed" or "failed")
    attempted: dict[str, dict] = {}

    def run_round(specs: list[RunSpec]) -> bool:
        """Claim-and-compute *specs*; True when any cell reached a terminal state."""
        progress = False
        for result in pool_backend.map(claim, specs):
            if result["status"] in ("computed", "failed"):
                attempted[result["key"]] = result
                progress = True
                _logger.debug(
                    "%s cell %s in %.3fs", result["status"], result["key"][:12],
                    result.get("seconds", 0.0),
                )
            elif result["status"] == "cached":
                progress = True  # another fleet member stored it — the grid advanced
        return progress

    def still_missing(specs: list[RunSpec]) -> list[RunSpec]:
        remaining = [s for s in specs if s.key not in attempted]
        if recompute:
            return remaining
        return [s for s in remaining if s.key not in store]

    def capped(specs: list[RunSpec]) -> list[RunSpec]:
        if budget is None:
            return specs
        return specs[: max(0, budget - len(attempted))]

    # first pass: deterministic k/N sharding — a healthy fleet partitions the
    # missing keys without ever contending on a lease
    shard = [spec for i, spec in enumerate(targets) if i % workers == worker_index - 1]
    run_round(capped(still_missing(shard)))

    # work-stealing tail: sweep every key still missing (other workers'
    # shards included), taking over stale leases, until the grid converges.
    # A round with no progress means every remaining key is leased to a
    # live worker — sleep one poll and look again; its result will land in
    # the store (cached) or its lease will go stale (takeover).
    while True:
        remaining = capped(still_missing(targets))
        if not remaining:
            break
        if not run_round(remaining):
            time.sleep(poll)

    # tidy the lease area on the way out: leases whose key is now stored
    # (holder died between put and release) and TTL-stale leftovers; live
    # claims of other fleet members are untouched
    collected = store.gc_leases(ttl=lease_ttl)
    if collected:
        _logger.info("collected %d leftover lease(s) at sweep end", collected)

    outcomes = []
    first_computed: set[str] = set()
    for spec in cells:
        key = spec.key
        common = {
            "key": key,
            "scenario": spec.scenario.name,
            "seed": spec.seed,
            "n_valid": spec.n_valid,
            "mode": spec.mode,
            "backend": spec.backend,
        }
        local = attempted.get(key)
        if local is not None and local["status"] == "failed":
            outcomes.append(
                CellOutcome(status="failed", seconds=local.get("seconds"),
                            error=local["error"], attempts=local.get("attempts"),
                            **common)
            )
        elif local is not None and key not in first_computed:
            first_computed.add(key)
            outcomes.append(
                CellOutcome(
                    status="computed", seconds=local["seconds"],
                    n_windows=local["n_windows"], attempts=local.get("attempts"),
                    **common,
                )
            )
        elif key in store:
            # duplicates of a computed key, warm hits, and cells another
            # fleet member computed all resolve here
            record = store.record(key)
            outcomes.append(
                CellOutcome(status="cached", n_windows=record.get("n_windows"),
                            attempts=record.get("attempts"), **common)
            )
        else:
            outcomes.append(CellOutcome(status="skipped", **common))
    return CampaignRun(campaign=campaign, store_root=str(store.root), outcomes=outcomes)
