"""Content-addressed on-disk result store.

Every completed campaign cell (and every cached experiment table) lives in
the store under its content key (:func:`repro.campaigns.spec.content_key`):

```
store/
  store.json                  # store-format marker
  objects/<kk>/<key>.pkl.gz   # pickled payload, reproducible gzip (mtime=0)
  runs/<kk>/<key>.json        # metadata record: spec, backend, timing, version
  campaigns/<name>.json       # campaign manifests (what `status`/`report` read)
```

where ``<kk>`` is the first two hex digits of the key (a fan-out prefix so
no single directory grows unboundedly).  Payload and record are written via
same-directory temp files and ``os.replace`` — the manifest discipline of
:func:`repro.streaming.trace_io.write_json_atomic` — so a killed sweep
leaves either a complete cell or no cell, never a torn one; that atomicity
is the whole resume story.  A cell is *present* only when both its payload
and its record exist (:meth:`ResultStore.__contains__`), so a crash between
the two writes reads as "missing" and the cell is simply recomputed.

Concurrent writers (the campaign runner's worker pool) are safe by
construction: distinct cells touch distinct paths, and identical cells
replace each other with identical content.
"""

from __future__ import annotations

import gzip
import io
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterator, Mapping, Tuple, Union

from repro._util.logging import get_logger
from repro.campaigns.spec import content_key
from repro.streaming.trace_io import read_json, write_json_atomic

__all__ = ["STORE_FORMAT_VERSION", "ResultStore"]

#: On-disk store layout version, recorded in ``store.json``.
STORE_FORMAT_VERSION = 1

_logger = get_logger("campaigns.store")


def _repro_version() -> str:
    from repro import __version__

    return __version__


class ResultStore:
    """Content-addressed persistence for analysis results.

    The store maps a content key (a SHA-256 hex string naming *what* was
    computed) to a pickled payload plus a JSON metadata record.  It never
    interprets payloads; callers decide what a key means (campaign cells
    store :class:`~repro.scenarios.run.ScenarioRun` objects, cached
    experiments store plain row lists).
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / "store.json"
        if marker.exists():
            version = int(read_json(marker).get("format", -1))
            if version != STORE_FORMAT_VERSION:
                raise ValueError(
                    f"result store at {self.root} uses format {version}; "
                    f"this build reads format {STORE_FORMAT_VERSION}"
                )
        else:
            write_json_atomic(marker, {"format": STORE_FORMAT_VERSION})
        self._prune_orphaned_temp_files()

    #: Temp files younger than this are left alone at store open — they may
    #: belong to a concurrent writer mid-put; older ones are debris from a
    #: hard-killed sweep (SIGKILL skips the in-process cleanup).
    _TEMP_MAX_AGE_SECONDS = 3600.0

    def _prune_orphaned_temp_files(self) -> None:
        """Remove stale ``*.tmp`` files a hard-killed writer left behind."""
        cutoff = time.time() - self._TEMP_MAX_AGE_SECONDS
        for pattern in ("objects/*/*.tmp", "runs/*/*.tmp", "campaigns/*.tmp", "*.tmp"):
            for orphan in self.root.glob(pattern):
                try:
                    if orphan.stat().st_mtime < cutoff:
                        orphan.unlink()
                        _logger.debug("pruned orphaned temp file %s", orphan)
                except OSError:  # pragma: no cover - racing writer finished/cleaned
                    continue

    # -- paths ---------------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl.gz"

    def _record_path(self, key: str) -> Path:
        return self.root / "runs" / key[:2] / f"{key}.json"

    def campaign_path(self, name: str) -> Path:
        """Path of one campaign's manifest inside the store."""
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid campaign name {name!r}")
        return self.root / "campaigns" / f"{name}.json"

    # -- cell API ------------------------------------------------------------

    def __contains__(self, key: str) -> bool:
        """True when both the payload and the metadata record exist."""
        return self._object_path(key).is_file() and self._record_path(key).is_file()

    def keys(self) -> Iterator[str]:
        """Iterate over the keys of every complete entry, sorted."""
        objects = self.root / "objects"
        for payload in sorted(objects.glob("*/*.pkl.gz")):
            key = payload.name[: -len(".pkl.gz")]
            if key in self:
                yield key

    def get(self, key: str):
        """Load and return the payload stored under *key* (KeyError if absent)."""
        if key not in self:
            raise KeyError(f"no complete entry for key {key} in store {self.root}")
        with gzip.open(self._object_path(key), "rb") as handle:
            return pickle.load(handle)

    def record(self, key: str) -> dict:
        """The metadata record stored alongside *key*'s payload."""
        if key not in self:
            raise KeyError(f"no complete entry for key {key} in store {self.root}")
        return read_json(self._record_path(key))

    def put(self, key: str, payload, meta: Mapping | None = None) -> None:
        """Persist *payload* under *key*, atomically, payload before record.

        The gzip stream is written with ``mtime=0`` so equal payloads produce
        byte-identical objects — the store's files are as content-addressed
        as its keys.
        """
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # per-writer unique temp name: concurrent writers of the same key
        # (identical content) must replace each other, never collide
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=path.parent, prefix=path.name + ".", suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(buffer.getvalue())
            os.replace(handle.name, path)
        except BaseException:
            os.unlink(handle.name)
            raise
        write_json_atomic(
            self._record_path(key),
            {"key": key, "repro_version": _repro_version(), **dict(meta or {})},
        )

    def get_or_compute(
        self, key: str, compute: Callable[[], object], meta: Mapping | None = None
    ) -> Tuple[object, bool]:
        """Return ``(payload, was_cached)``, computing and storing on a miss."""
        if key in self:
            return self.get(key), True
        started = time.perf_counter()
        payload = compute()
        seconds = time.perf_counter() - started
        self.put(key, payload, meta={"seconds": round(seconds, 6), **dict(meta or {})})
        return payload, False

    # -- cached experiment tables ---------------------------------------------

    def cached_rows(
        self, experiment: str, params: Mapping, compute: Callable[[], list]
    ) -> Tuple[list, bool]:
        """Cache one experiment driver's row list under a content key.

        *params* must hold every result-determining argument of the driver
        (execution knobs excluded, exactly like
        :class:`~repro.campaigns.spec.RunSpec`); equal ``(experiment,
        params)`` pairs share one entry across invocations.
        """
        from repro.campaigns.spec import SPEC_FORMAT_VERSION

        # keyed on the result-semantics version (like campaign cells), not
        # the store-layout version: bumping SPEC_FORMAT_VERSION must retire
        # stale experiment rows too
        key = content_key(
            {"kind": "experiment", "format": SPEC_FORMAT_VERSION,
             "experiment": experiment, "params": dict(params)}
        )
        rows, cached = self.get_or_compute(
            key, compute, meta={"experiment": experiment, "params": dict(params)}
        )
        _logger.debug("experiment %s: %s", experiment, "cache hit" if cached else "computed")
        return rows, cached

    # -- campaign manifests ----------------------------------------------------

    def save_campaign(self, manifest: Mapping) -> Path:
        """Record a campaign manifest (name → expanded cells) in the store."""
        return write_json_atomic(self.campaign_path(str(manifest["name"])), dict(manifest))

    def load_campaign(self, name: str) -> dict:
        """Load a campaign manifest previously saved by :meth:`save_campaign`."""
        path = self.campaign_path(name)
        if not path.is_file():
            known = ", ".join(self.campaign_names()) or "none"
            raise KeyError(f"no campaign {name!r} in store {self.root} (known: {known})")
        return read_json(path)

    def campaign_names(self) -> tuple[str, ...]:
        """Names of every campaign recorded in the store, sorted."""
        campaigns = self.root / "campaigns"
        return tuple(sorted(p.stem for p in campaigns.glob("*.json")))
