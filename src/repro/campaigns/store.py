"""Content-addressed on-disk result store.

Every completed campaign cell (and every cached experiment table) lives in
the store under its content key (:func:`repro.campaigns.spec.content_key`):

```
store/
  store.json                  # store-format marker
  objects/<kk>/<key>.pkl.gz   # pickled payload, reproducible gzip (mtime=0)
  runs/<kk>/<key>.json        # metadata record: spec, backend, timing, version
  leases/<kk>/<key>.lease     # in-flight claims of a worker fleet (JSON + mtime heartbeat)
  checkpoints/<kk>/<key>/ckpt-<seq>.{pkl.gz,json}  # service job checkpoint generations
  campaigns/<name>.json       # campaign manifests (what `status`/`report` read)
```

where ``<kk>`` is the first two hex digits of the key (a fan-out prefix so
no single directory grows unboundedly).  Payload and record are written via
same-directory temp files and ``os.replace`` — the manifest discipline of
:func:`repro.streaming.trace_io.write_json_atomic` — so a killed sweep
leaves either a complete cell or no cell, never a torn one; that atomicity
is the whole resume story.  A cell is *present* only when both its payload
and its record exist **and verify** (:meth:`ResultStore.__contains__`
checks the record parses and the payload matches the byte size and SHA-256
digest the record pinned), so a crash between the two writes — or a
truncated / corrupted file from a dying disk — reads as "missing" and the
cell is simply recomputed, never crashed on.

Concurrent writers (the campaign runner's worker pool) are safe by
construction: distinct cells touch distinct paths, and identical cells
replace each other with identical content.

The ``leases/`` area makes the store double as a **work queue** for
multi-process campaign fleets: a worker claims a missing cell by creating
its lease file with ``O_CREAT | O_EXCL`` (atomic on POSIX filesystems and
on NFS v3+, the shared-filesystem case fleets care about), keeps the claim
alive by bumping the file's mtime (:meth:`ResultStore.refresh_lease`), and
releases it after persisting the cell.  A lease whose heartbeat is older
than the fleet's TTL belongs to a dead worker and may be **taken over**
(:meth:`ResultStore.acquire_lease` replaces it).  Takeover is
last-writer-wins, so two workers racing for the same stale lease can, in
the worst case, both compute the cell — a *lost-lease race*.  That costs
duplicate work, never correctness: both write byte-identical content under
the same key.  Leases are advisory for readers; presence of a cell is
always decided by payload + record alone.
"""

from __future__ import annotations

import contextlib
import gzip
import hashlib
import io
import json
import os
import pickle
import socket
import tempfile
import time
from pathlib import Path
from typing import Callable, Iterator, Mapping, Tuple, Union

from repro._util.logging import get_logger
from repro.campaigns.spec import content_key
from repro.streaming.trace_io import read_json, write_json_atomic

__all__ = ["DEFAULT_LEASE_TTL_SECONDS", "STORE_FORMAT_VERSION", "ResultStore"]

#: On-disk store layout version, recorded in ``store.json``.
STORE_FORMAT_VERSION = 1

#: Default lease heartbeat TTL: a lease whose mtime is older than this is
#: presumed to belong to a dead worker and may be taken over.  Heartbeats
#: fire every ``ttl / 3``, so a healthy worker survives two missed beats.
DEFAULT_LEASE_TTL_SECONDS = 30.0

_logger = get_logger("campaigns.store")


def _repro_version() -> str:
    from repro import __version__

    return __version__


class ResultStore:
    """Content-addressed persistence for analysis results.

    The store maps a content key (a SHA-256 hex string naming *what* was
    computed) to a pickled payload plus a JSON metadata record.  It never
    interprets payloads; callers decide what a key means (campaign cells
    store :class:`~repro.scenarios.run.ScenarioRun` objects, cached
    experiments store plain row lists).
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / "store.json"
        if marker.exists():
            version = int(read_json(marker).get("format", -1))
            if version != STORE_FORMAT_VERSION:
                raise ValueError(
                    f"result store at {self.root} uses format {version}; "
                    f"this build reads format {STORE_FORMAT_VERSION}"
                )
        else:
            write_json_atomic(marker, {"format": STORE_FORMAT_VERSION})
        # keys whose payload already passed size+digest verification in this
        # process — verification is per-content, and concurrent writers of
        # the same key write identical bytes, so a pass never goes stale
        self._verified: set = set()
        self._prune_orphaned_temp_files()
        self._prune_ancient_leases()

    #: Temp files younger than this are left alone at store open — they may
    #: belong to a concurrent writer mid-put; older ones are debris from a
    #: hard-killed sweep (SIGKILL skips the in-process cleanup).
    _TEMP_MAX_AGE_SECONDS = 3600.0

    def _prune_orphaned_temp_files(self) -> None:
        """Remove stale ``*.tmp`` files a hard-killed writer left behind."""
        cutoff = time.time() - self._TEMP_MAX_AGE_SECONDS
        for pattern in (
            "objects/*/*.tmp", "runs/*/*.tmp", "leases/*/*.tmp",
            "checkpoints/*/*/*.tmp", "campaigns/*.tmp", "*.tmp",
        ):
            for orphan in self.root.glob(pattern):
                try:
                    if orphan.stat().st_mtime < cutoff:
                        orphan.unlink()
                        _logger.debug("pruned orphaned temp file %s", orphan)
                except OSError:  # pragma: no cover - racing writer finished/cleaned
                    continue

    def _prune_ancient_leases(self) -> None:
        """Remove lease files whose heartbeat stopped over an hour ago.

        This is debris collection, not takeover: no sane fleet runs a
        heartbeat TTL anywhere near :data:`_TEMP_MAX_AGE_SECONDS`, so a
        lease this old can only belong to a worker killed long before this
        store was opened.  TTL-scale staleness is handled where it matters,
        in :meth:`acquire_lease` (takeover) and :meth:`gc_leases`.
        """
        cutoff = time.time() - self._TEMP_MAX_AGE_SECONDS
        for lease in self.root.glob("leases/*/*.lease"):
            try:
                if lease.stat().st_mtime < cutoff:
                    lease.unlink()
                    _logger.debug("pruned ancient lease %s", lease)
            except OSError:  # pragma: no cover - racing worker released it
                continue

    # -- paths ---------------------------------------------------------------

    def _object_path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.pkl.gz"

    def _record_path(self, key: str) -> Path:
        return self.root / "runs" / key[:2] / f"{key}.json"

    def _lease_path(self, key: str) -> Path:
        return self.root / "leases" / key[:2] / f"{key}.lease"

    def _checkpoint_dir(self, key: str) -> Path:
        return self.root / "checkpoints" / key[:2] / key

    def _checkpoint_paths(self, key: str, seq: int) -> Tuple[Path, Path]:
        directory = self._checkpoint_dir(key)
        return directory / f"ckpt-{int(seq):012d}.pkl.gz", directory / f"ckpt-{int(seq):012d}.json"

    def campaign_path(self, name: str) -> Path:
        """Path of one campaign's manifest inside the store."""
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid campaign name {name!r}")
        return self.root / "campaigns" / f"{name}.json"

    # -- cell API ------------------------------------------------------------

    def _read_record(self, key: str) -> dict | None:
        """The metadata record, or ``None`` when absent or unparseable.

        A record that cannot be parsed (torn or corrupted on disk) is
        indistinguishable from a missing one on purpose: the cell must read
        as absent so a resuming sweep recomputes it instead of crashing.
        """
        path = self._record_path(key)
        try:
            record = read_json(path)
        except (OSError, ValueError):
            if path.is_file():
                _logger.warning("unreadable record for key %s in %s; treating cell as missing",
                                key[:12], self.root)
            return None
        return record if isinstance(record, dict) else None

    def _verified_payload(self, key: str, record: Mapping) -> bytes | None:
        """Read the payload file, verified against its record's pins.

        Returns the raw (still-compressed) bytes when they match the size
        and SHA-256 digest the record pinned at write time, else ``None``:
        truncation is caught by the size check without reading the file,
        in-place corruption by the digest.  Records written before these
        fields existed verify by existence alone.  The single read here is
        the store's whole integrity story — callers decompress from the
        returned buffer, never from disk a second time.
        """
        path = self._object_path(key)
        expected_size = record.get("payload_bytes")
        try:
            if expected_size is not None and path.stat().st_size != int(expected_size):
                _logger.warning("payload size mismatch for key %s in %s; "
                                "treating cell as missing", key[:12], self.root)
                return None
            raw = path.read_bytes()
        except OSError:
            return None
        expected_sha = record.get("payload_sha256")
        if expected_sha is not None and key not in self._verified:
            if hashlib.sha256(raw).hexdigest() != expected_sha:
                _logger.warning("payload digest mismatch for key %s in %s; "
                                "treating cell as missing", key[:12], self.root)
                return None
        self._verified.add(key)
        return raw

    def __contains__(self, key: str) -> bool:
        """True when the payload and record exist *and* verify.

        A cell is present only when its record parses and its payload
        matches the size and SHA-256 digest the record pinned at write
        time — so a torn write, a truncation, or on-disk corruption of
        either file reads as "missing" (and is recomputed on resume),
        never crashed on.  Each payload is hashed at most once per store
        instance (repeat checks re-stat the size only), so a warm sweep
        verifies every cell exactly once.
        """
        record = self._read_record(key)
        if record is None:
            return False
        if key in self._verified:
            path = self._object_path(key)
            expected_size = record.get("payload_bytes")
            try:
                return expected_size is None or path.stat().st_size == int(expected_size)
            except OSError:
                return False
        return self._verified_payload(key, record) is not None

    def keys(self) -> Iterator[str]:
        """Iterate over the keys of every complete entry, sorted."""
        objects = self.root / "objects"
        for payload in sorted(objects.glob("*/*.pkl.gz")):
            key = payload.name[: -len(".pkl.gz")]
            if key in self:
                yield key

    def get(self, key: str):
        """Load and return the payload stored under *key*.

        Raises ``KeyError`` when the cell is absent — including when either
        file is torn or corrupted (verification failure, or a
        decompression/unpickling failure on bytes that matched their
        digest, e.g. a payload pickled by an incompatible version).  One
        disk read total: verification and decompression share the buffer.
        """
        record = self._read_record(key)
        if record is None:
            raise KeyError(f"no complete entry for key {key} in store {self.root}")
        raw = self._verified_payload(key, record)
        if raw is None:
            raise KeyError(f"no complete entry for key {key} in store {self.root}")
        try:
            with gzip.GzipFile(fileobj=io.BytesIO(raw), mode="rb") as handle:
                return pickle.load(handle)
        except Exception as error:
            # deliberately broad: the bytes already passed verification, so
            # any decode failure — zlib.error, UnpicklingError, the
            # ModuleNotFoundError/TypeError of an incompatible-version
            # pickle, ... — means the payload is unusable and the cell must
            # read as missing (recomputed), never crash the caller
            _logger.warning("undecodable payload for key %s in %s (%s); "
                            "treating cell as missing", key[:12], self.root, error)
            raise KeyError(f"undecodable payload for key {key} in store {self.root}") from error

    def record(self, key: str) -> dict:
        """The metadata record stored alongside *key*'s payload.

        Cheap by design — two stats and a JSON parse, no payload hashing —
        for presence listings like ``campaign status`` that must not read
        the whole store; callers needing full integrity use ``key in
        store`` or :meth:`get`.  Raises ``KeyError`` unless the record
        parses and the payload file exists with the pinned byte size (so
        torn and truncated cells still read as missing here; same-size
        corruption is caught at payload-read time).
        """
        record = self._read_record(key)
        if record is None:
            raise KeyError(f"no complete entry for key {key} in store {self.root}")
        expected_size = record.get("payload_bytes")
        try:
            size = self._object_path(key).stat().st_size
        except OSError:
            raise KeyError(f"no complete entry for key {key} in store {self.root}") from None
        if expected_size is not None and size != int(expected_size):
            raise KeyError(f"torn payload for key {key} in store {self.root}")
        return record

    @staticmethod
    def _dump_payload(payload) -> bytes:
        """Pickle + gzip (``mtime=0``) a payload into reproducible bytes."""
        buffer = io.BytesIO()
        with gzip.GzipFile(fileobj=buffer, mode="wb", mtime=0) as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        return buffer.getvalue()

    @staticmethod
    def _replace_bytes(path: Path, payload_bytes: bytes) -> None:
        """Write bytes to *path* via same-directory temp file + ``os.replace``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        # per-writer unique temp name: concurrent writers of the same key
        # (identical content) must replace each other, never collide
        handle = tempfile.NamedTemporaryFile(
            "wb", dir=path.parent, prefix=path.name + ".", suffix=".tmp", delete=False
        )
        try:
            with handle:
                handle.write(payload_bytes)
            os.replace(handle.name, path)
        except BaseException:
            # the temp file may already be gone (os.replace consumed it
            # before failing, or a concurrent GC swept it); a failing unlink
            # must never mask the exception that actually broke the put
            with contextlib.suppress(OSError):
                os.unlink(handle.name)
            raise

    def put(self, key: str, payload, meta: Mapping | None = None) -> None:
        """Persist *payload* under *key*, atomically, payload before record.

        The gzip stream is written with ``mtime=0`` so equal payloads produce
        byte-identical objects — the store's files are as content-addressed
        as its keys.  The record pins the payload's byte size and SHA-256
        digest, which is what lets :meth:`__contains__` verify cells.
        """
        payload_bytes = self._dump_payload(payload)
        self._replace_bytes(self._object_path(key), payload_bytes)
        write_json_atomic(
            self._record_path(key),
            {
                "key": key,
                "repro_version": _repro_version(),
                "payload_bytes": len(payload_bytes),
                "payload_sha256": hashlib.sha256(payload_bytes).hexdigest(),
                **dict(meta or {}),
            },
        )

    def get_or_compute(
        self, key: str, compute: Callable[[], object], meta: Mapping | None = None
    ) -> Tuple[object, bool]:
        """Return ``(payload, was_cached)``, computing and storing on a miss.

        "Miss" includes a stored cell that fails verification *or*
        unpickling — anything :meth:`get` refuses to return is recomputed
        and overwritten, never crashed on.
        """
        try:
            return self.get(key), True
        except KeyError:
            pass
        started = time.perf_counter()
        payload = compute()
        seconds = time.perf_counter() - started
        self.put(key, payload, meta={"seconds": round(seconds, 6), **dict(meta or {})})
        return payload, False

    # -- checkpoints: generational durability for resident jobs -----------------

    #: Checkpoint generations retained per key beyond the newest one, so a
    #: checkpoint torn by a crash mid-replace still leaves a verified older
    #: generation to fall back to.
    CHECKPOINT_KEEP = 2

    def put_checkpoint(self, key: str, payload, *, seq: int, meta: Mapping | None = None) -> None:
        """Persist one checkpoint generation under ``checkpoints/<key>/``.

        Same discipline as :meth:`put` — reproducible gzip, temp-file +
        ``os.replace``, record pinning byte size and SHA-256 — but keyed by
        a monotonically increasing *seq* so multiple generations coexist:
        :meth:`latest_checkpoint` walks them newest-first and a torn or
        corrupted newest generation falls back to the previous one.  Older
        generations beyond :data:`CHECKPOINT_KEEP` are pruned.
        """
        if int(seq) < 0:
            raise ValueError(f"checkpoint seq must be >= 0, got {seq}")
        payload_path, record_path = self._checkpoint_paths(key, seq)
        payload_bytes = self._dump_payload(payload)
        self._replace_bytes(payload_path, payload_bytes)
        write_json_atomic(
            record_path,
            {
                "key": key,
                "seq": int(seq),
                "repro_version": _repro_version(),
                "payload_bytes": len(payload_bytes),
                "payload_sha256": hashlib.sha256(payload_bytes).hexdigest(),
                **dict(meta or {}),
            },
        )
        self._prune_checkpoints(key)

    def checkpoint_seqs(self, key: str) -> tuple[int, ...]:
        """Sequence numbers of the checkpoint generations on disk, ascending."""
        directory = self._checkpoint_dir(key)
        seqs = []
        for record in directory.glob("ckpt-*.json"):
            try:
                seqs.append(int(record.stem.split("-")[-1]))
            except ValueError:  # pragma: no cover - foreign file in the area
                continue
        return tuple(sorted(seqs))

    def latest_checkpoint(self, key: str) -> Tuple[int, object] | None:
        """Newest checkpoint generation that verifies, or ``None``.

        Walks the generations newest-first; one whose record does not
        parse, whose payload fails the size/SHA-256 pins, or whose bytes do
        not unpickle is **skipped with a WARNING** and the previous
        generation is tried — a torn write can cost at most the work since
        the prior checkpoint, never the ability to resume.
        """
        for seq in reversed(self.checkpoint_seqs(key)):
            payload_path, record_path = self._checkpoint_paths(key, seq)
            try:
                record = read_json(record_path)
                if not isinstance(record, dict):
                    raise ValueError("checkpoint record is not an object")
            except (OSError, ValueError):
                _logger.warning("unreadable checkpoint record seq=%d for key %s in %s; "
                                "trying previous generation", seq, key[:12], self.root)
                continue
            try:
                raw = payload_path.read_bytes()
            except OSError:
                _logger.warning("missing checkpoint payload seq=%d for key %s in %s; "
                                "trying previous generation", seq, key[:12], self.root)
                continue
            expected_size = record.get("payload_bytes")
            expected_sha = record.get("payload_sha256")
            if (expected_size is not None and len(raw) != int(expected_size)) or (
                expected_sha is not None and hashlib.sha256(raw).hexdigest() != expected_sha
            ):
                _logger.warning("corrupted checkpoint seq=%d for key %s in %s "
                                "(size/digest mismatch); trying previous generation",
                                seq, key[:12], self.root)
                continue
            try:
                with gzip.GzipFile(fileobj=io.BytesIO(raw), mode="rb") as handle:
                    return int(seq), pickle.load(handle)
            except Exception as error:
                _logger.warning("undecodable checkpoint seq=%d for key %s in %s (%s); "
                                "trying previous generation", seq, key[:12], self.root, error)
                continue
        return None

    def _prune_checkpoints(self, key: str) -> None:
        """Drop generations older than the newest :data:`CHECKPOINT_KEEP`."""
        seqs = self.checkpoint_seqs(key)
        for seq in seqs[: -self.CHECKPOINT_KEEP]:
            payload_path, record_path = self._checkpoint_paths(key, seq)
            with contextlib.suppress(OSError):
                record_path.unlink()
            with contextlib.suppress(OSError):
                payload_path.unlink()

    # -- leases: the store as a work queue --------------------------------------

    def acquire_lease(
        self, key: str, owner: str, *, ttl: float = DEFAULT_LEASE_TTL_SECONDS
    ) -> bool:
        """Claim *key* for *owner*; True when this worker now holds the lease.

        The happy path is one atomic ``O_CREAT | O_EXCL`` create: exactly
        one worker of a fleet wins a free key.  A lease already on disk
        blocks the claim while its heartbeat (file mtime) is younger than
        *ttl* seconds; once older, the holder is presumed dead and the
        lease is **taken over** via temp-file + ``os.replace``.  Takeover
        is last-writer-wins and re-verified by ownership read-back, so two
        workers racing for the same stale lease resolve to (at most) one
        holder — modulo the documented lost-lease race, which duplicates
        work but never corrupts the store.
        """
        path = self._lease_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self._lease_payload(key, owner)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            info = self.lease_info(key, ttl=ttl)
            if info is None:
                # released between our existence check and read: retry the
                # exclusive create once rather than recursing forever
                try:
                    fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                except FileExistsError:
                    return False
            elif info["stale"]:
                _logger.info(
                    "taking over stale lease on %s (held by %s, heartbeat %.1fs ago)",
                    key[:12], info["owner"], info["age"],
                )
                handle = tempfile.NamedTemporaryFile(
                    "w", encoding="utf-8", dir=path.parent,
                    prefix=path.name + ".", suffix=".tmp", delete=False,
                )
                try:
                    with handle:
                        handle.write(payload)
                    os.replace(handle.name, path)
                except BaseException:
                    with contextlib.suppress(OSError):
                        os.unlink(handle.name)
                    raise
                # read back: if another stealer replaced after us, they won
                return self.refresh_lease(key, owner)
            else:
                return False
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return True

    @staticmethod
    def _lease_payload(key: str, owner: str) -> str:
        return json.dumps(
            {
                "key": key,
                "owner": owner,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "acquired_at": round(time.time(), 3),
            },
            sort_keys=True,
        )

    def refresh_lease(self, key: str, owner: str) -> bool:
        """Bump the heartbeat of *owner*'s lease on *key*; False if lost.

        A worker heartbeats while computing so its claim never goes stale;
        a ``False`` return means the lease vanished or was taken over —
        the worker may finish its (now possibly duplicated) compute, since
        store writes are idempotent, but must not assume exclusivity.
        """
        path = self._lease_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                lease = json.load(handle)
        except (OSError, ValueError):
            return False
        if not isinstance(lease, dict) or lease.get("owner") != owner:
            return False
        try:
            os.utime(path, None)
        except OSError:  # pragma: no cover - released in the utime window
            return False
        return True

    def release_lease(self, key: str, owner: str) -> bool:
        """Drop *owner*'s lease on *key*; a foreign or absent lease is left alone."""
        path = self._lease_path(key)
        try:
            with open(path, encoding="utf-8") as handle:
                lease = json.load(handle)
        except (OSError, ValueError):
            return False
        if not isinstance(lease, dict) or lease.get("owner") != owner:
            return False
        with contextlib.suppress(OSError):
            path.unlink()
        return True

    def lease_info(
        self, key: str, *, ttl: float = DEFAULT_LEASE_TTL_SECONDS
    ) -> dict | None:
        """The live lease on *key*, or ``None`` when the key is unclaimed.

        Returns ``{"key", "owner", "pid", "host", "age", "stale"}`` where
        ``age`` is seconds since the last heartbeat and ``stale`` is the
        *ttl* verdict.  A lease file that cannot be parsed (torn takeover,
        dying disk) still reports, with ``owner="<unreadable>"`` — it
        occupies the claim slot, so fleets must be able to see and age it.
        """
        path = self._lease_path(key)
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return None
        try:
            with open(path, encoding="utf-8") as handle:
                lease = json.load(handle)
            if not isinstance(lease, dict):
                raise ValueError("lease is not an object")
        except (OSError, ValueError):
            lease = {}
        return {
            "key": key,
            "owner": str(lease.get("owner", "<unreadable>")),
            "pid": lease.get("pid"),
            "host": str(lease.get("host", "")),
            "age": max(0.0, age),
            "stale": age > ttl,
        }

    def iter_leases(
        self, *, ttl: float = DEFAULT_LEASE_TTL_SECONDS
    ) -> Iterator[dict]:
        """Every lease currently on disk as :meth:`lease_info` dicts, sorted by key."""
        for path in sorted(self.root.glob("leases/*/*.lease")):
            info = self.lease_info(path.name[: -len(".lease")], ttl=ttl)
            if info is not None:
                yield info

    def gc_leases(self, *, ttl: float = DEFAULT_LEASE_TTL_SECONDS) -> int:
        """Sweep leases that no longer guard anything; returns the count removed.

        Two kinds are debris: a lease whose key is already **stored** (the
        worker persisted the cell, then died before releasing), and a lease
        whose heartbeat is **stale** by *ttl* (the worker died mid-compute —
        a resuming sweep would take it over anyway, this just tidies
        eagerly).  Fresh leases on missing keys are live claims and are
        never touched, so a fleet member can GC at exit without disturbing
        the rest of the fleet.
        """
        removed = 0
        for info in list(self.iter_leases(ttl=ttl)):
            if info["stale"] or info["key"] in self:
                with contextlib.suppress(OSError):
                    self._lease_path(info["key"]).unlink()
                    removed += 1
                    _logger.debug(
                        "collected %s lease on %s (owner %s)",
                        "stale" if info["stale"] else "released-late",
                        info["key"][:12], info["owner"],
                    )
        return removed

    # -- cached experiment tables ---------------------------------------------

    def cached_rows(
        self, experiment: str, params: Mapping, compute: Callable[[], list]
    ) -> Tuple[list, bool]:
        """Cache one experiment driver's row list under a content key.

        *params* must hold every result-determining argument of the driver
        (execution knobs excluded, exactly like
        :class:`~repro.campaigns.spec.RunSpec`); equal ``(experiment,
        params)`` pairs share one entry across invocations.
        """
        from repro.campaigns.spec import SPEC_FORMAT_VERSION

        # keyed on the result-semantics version (like campaign cells), not
        # the store-layout version: bumping SPEC_FORMAT_VERSION must retire
        # stale experiment rows too
        key = content_key(
            {"kind": "experiment", "format": SPEC_FORMAT_VERSION,
             "experiment": experiment, "params": dict(params)}
        )
        rows, cached = self.get_or_compute(
            key, compute, meta={"experiment": experiment, "params": dict(params)}
        )
        _logger.debug("experiment %s: %s", experiment, "cache hit" if cached else "computed")
        return rows, cached

    # -- campaign manifests ----------------------------------------------------

    def save_campaign(self, manifest: Mapping) -> Path:
        """Record a campaign manifest (name → expanded cells) in the store."""
        return write_json_atomic(self.campaign_path(str(manifest["name"])), dict(manifest))

    def load_campaign(self, name: str) -> dict:
        """Load a campaign manifest previously saved by :meth:`save_campaign`."""
        path = self.campaign_path(name)
        if not path.is_file():
            known = ", ".join(self.campaign_names()) or "none"
            raise KeyError(f"no campaign {name!r} in store {self.root} (known: {known})")
        return read_json(path)

    def campaign_names(self) -> tuple[str, ...]:
        """Names of every campaign recorded in the store, sorted."""
        campaigns = self.root / "campaigns"
        return tuple(sorted(p.stem for p in campaigns.glob("*.json")))
