"""Preferential-attachment core generators.

The PALU core is "constructed by preferential attachment" (Section III) with
a power-law degree distribution whose exponent ``α`` the paper allows to
range over ``[1.5, 3]``.  Two generators are provided:

* :func:`generate_preferential_attachment` — the classic Barabási–Albert
  growth process (each new node attaches ``m`` edges preferentially), which
  produces exponent ``α ≈ 3`` asymptotically; implemented from scratch with
  the repeated-endpoint trick so attachment is exactly proportional to
  degree.
* :func:`generate_shifted_preferential_attachment` — growth with a shifted
  linear kernel ``Π(k) ∝ k + a``.  The attachment shift tunes the asymptotic
  exponent to ``α = 3 + a/m``, and redirection-style negative shifts reach
  the ``α < 3`` regime observed in Internet data; the convenience wrapper
  accepts a target ``α`` directly.

Both return :class:`networkx.Graph` objects whose nodes are labelled
``0..n-1`` in order of arrival.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_in_range, check_positive_int

__all__ = [
    "generate_preferential_attachment",
    "generate_shifted_preferential_attachment",
    "attachment_shift_for_alpha",
]


def generate_preferential_attachment(
    n_nodes: int,
    m_edges: int = 1,
    *,
    rng: RNGLike = None,
) -> nx.Graph:
    """Barabási–Albert preferential attachment with *m_edges* per new node.

    Starts from a star on ``m_edges + 1`` nodes and grows one node at a
    time; each new node connects to ``m_edges`` distinct existing nodes
    chosen with probability proportional to their current degree.  The
    repeated-endpoint list makes that choice exact and O(1) per draw.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes", minimum=2)
    m_edges = check_positive_int(m_edges, "m_edges")
    if m_edges >= n_nodes:
        raise ValueError(f"m_edges={m_edges} must be smaller than n_nodes={n_nodes}")
    gen = as_generator(rng)

    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    # seed: a star of m_edges+1 nodes so every node has positive degree
    targets = list(range(m_edges))
    repeated: list[int] = []
    source = m_edges
    while source < n_nodes:
        graph.add_edges_from((source, t) for t in targets)
        repeated.extend(targets)
        repeated.extend([source] * m_edges)
        # choose m distinct targets proportional to degree for the next node
        targets = _sample_distinct(repeated, m_edges, gen)
        source += 1
    return graph


def _sample_distinct(repeated: list[int], m: int, gen: np.random.Generator) -> list[int]:
    """Sample *m* distinct entries from the repeated-endpoint list."""
    chosen: set[int] = set()
    n = len(repeated)
    while len(chosen) < m:
        chosen.add(repeated[int(gen.integers(0, n))])
    return list(chosen)


def attachment_shift_for_alpha(alpha: float, m_edges: int = 1) -> float:
    """Attachment shift ``a`` giving asymptotic exponent ``α`` for kernel ``k + a``.

    The shifted-linear-kernel growth process has degree exponent
    ``α = 3 + a/m``; inverting gives ``a = (α − 3)·m``.  Exponents below 3
    therefore need a negative shift, bounded below by ``a > −m`` so the
    kernel stays positive for the minimum degree ``m``.
    """
    alpha = check_in_range(alpha, "alpha", 1.5, 6.0)
    m_edges = check_positive_int(m_edges, "m_edges")
    shift = (alpha - 3.0) * m_edges
    if shift <= -m_edges:
        raise ValueError(
            f"alpha={alpha} is unreachable with m_edges={m_edges}: required shift "
            f"{shift} would make the attachment kernel non-positive"
        )
    return shift


def generate_shifted_preferential_attachment(
    n_nodes: int,
    m_edges: int = 1,
    *,
    alpha: float | None = None,
    shift: float | None = None,
    rng: RNGLike = None,
) -> nx.Graph:
    """Preferential attachment with the shifted kernel ``Π(k) ∝ k + a``.

    Exactly one of *alpha* (target asymptotic exponent, converted through
    :func:`attachment_shift_for_alpha`) or *shift* (the kernel shift ``a``
    itself) must be given.  Sampling uses an explicit degree array with
    rejection against the current maximum kernel value, which keeps the
    per-step cost low without maintaining auxiliary structures.
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes", minimum=2)
    m_edges = check_positive_int(m_edges, "m_edges")
    if m_edges >= n_nodes:
        raise ValueError(f"m_edges={m_edges} must be smaller than n_nodes={n_nodes}")
    if (alpha is None) == (shift is None):
        raise ValueError("exactly one of alpha or shift must be provided")
    if alpha is not None:
        shift = attachment_shift_for_alpha(alpha, m_edges)
    assert shift is not None
    if shift <= -m_edges:
        raise ValueError(f"shift must exceed -m_edges={-m_edges}, got {shift}")
    gen = as_generator(rng)

    degrees = np.zeros(n_nodes, dtype=np.float64)
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    # seed star
    for t in range(m_edges):
        graph.add_edge(m_edges, t)
        degrees[t] += 1
        degrees[m_edges] += 1

    for source in range(m_edges + 1, n_nodes):
        existing = source  # nodes 0..source-1 are already grown
        kernel = degrees[:existing] + shift
        kernel = np.clip(kernel, 1e-12, None)
        probabilities = kernel / kernel.sum()
        targets = gen.choice(existing, size=min(m_edges, existing), replace=False, p=probabilities)
        for t in targets:
            graph.add_edge(source, int(t))
            degrees[int(t)] += 1
            degrees[source] += 1
    return graph
