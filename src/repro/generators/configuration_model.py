"""Configuration-model graphs from prescribed degree sequences.

The PALU analysis only assumes that the core's degree distribution is the
zeta law ``d^{-α}/ζ(α)`` — the exact wiring is irrelevant to every formula
in Section IV.  The configuration model is therefore the work-horse core
generator for the large synthetic networks used by the experiments: draw a
degree sequence from the target law and pair up edge stubs uniformly at
random.  Self-loops and multi-edges produced by the pairing are discarded
(their expected number is a vanishing fraction for heavy-tailed sequences of
the sizes used here), which leaves the empirical degree distribution within
sampling noise of the target.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_integer_array
from repro.generators.degree_sequence import make_sum_even

__all__ = ["generate_configuration_model", "configuration_model_edges"]


def configuration_model_edges(degrees: np.ndarray, rng: RNGLike = None) -> np.ndarray:
    """Stub-pairing edge list for the given degree sequence.

    Returns an ``(m, 2)`` int64 array of undirected edges with self-loops
    and duplicate edges removed.  Node ``i`` receives ``degrees[i]`` stubs;
    an odd total is fixed up by :func:`make_sum_even`.
    """
    degrees = check_integer_array(degrees, "degrees", minimum=0)
    gen = as_generator(rng)
    degrees = make_sum_even(degrees, rng=gen)
    stubs = np.repeat(np.arange(degrees.size, dtype=np.int64), degrees)
    if stubs.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    gen.shuffle(stubs)
    pairs = stubs.reshape(-1, 2)
    # drop self-loops
    pairs = pairs[pairs[:, 0] != pairs[:, 1]]
    # canonical order then dedupe multi-edges
    pairs = np.sort(pairs, axis=1)
    pairs = np.unique(pairs, axis=0)
    return pairs


def generate_configuration_model(degrees: np.ndarray, rng: RNGLike = None) -> nx.Graph:
    """Simple graph sampled from the configuration model of *degrees*.

    Nodes are labelled ``0..len(degrees)-1``; nodes whose stubs were all lost
    to self-loop/duplicate removal stay in the graph with degree zero so
    callers can decide whether to treat them as isolated (unobservable).
    """
    degrees = check_integer_array(degrees, "degrees", minimum=0)
    edges = configuration_model_edges(degrees, rng=rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(int(degrees.size)))
    graph.add_edges_from(map(tuple, edges.tolist()))
    return graph
