"""Erdős–Rényi graphs and Bernoulli edge thinning.

Two distinct uses in the paper:

* the *observed* network is obtained by "retaining each edge independently
  with probability p, creating an Erdős–Rényi random subnetwork of the
  underlying network" (Section V) — that thinning operation lives in
  :mod:`repro.generators.sampling`;
* the conclusions mention combining preferential attachment with the
  Erdős–Rényi model as future work, and the tests use G(n, p) graphs as a
  non-heavy-tailed control whose degree data the power-law fitters must
  *reject*.

This module provides the classic ``G(n, p)`` generator with an edge-count
parameterisation option, vectorised over the upper triangle for moderate
``n`` and using geometric skipping for sparse large ``n``.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_fraction, check_positive_int

__all__ = ["generate_erdos_renyi", "erdos_renyi_edges"]

#: Above this node count the dense upper-triangle method would allocate too
#: much memory, so the sparse geometric-skipping sampler is used instead.
_DENSE_LIMIT = 3000


def erdos_renyi_edges(n_nodes: int, p: float, rng: RNGLike = None) -> np.ndarray:
    """Edge list of a ``G(n, p)`` graph as an ``(m, 2)`` int64 array."""
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    p = check_fraction(p, "p")
    gen = as_generator(rng)
    if p == 0.0 or n_nodes < 2:
        return np.zeros((0, 2), dtype=np.int64)
    if p == 1.0:
        i, j = np.triu_indices(n_nodes, k=1)
        return np.column_stack([i, j]).astype(np.int64)
    if n_nodes <= _DENSE_LIMIT:
        i, j = np.triu_indices(n_nodes, k=1)
        mask = gen.random(i.size) < p
        return np.column_stack([i[mask], j[mask]]).astype(np.int64)
    # sparse path: geometric skipping over the flattened upper triangle
    total_pairs = n_nodes * (n_nodes - 1) // 2
    expected = int(total_pairs * p * 1.2) + 16
    positions: list[np.ndarray] = []
    pos = -1
    drawn = 0
    while True:
        gaps = gen.geometric(p, size=max(expected - drawn, 1024))
        cumulative = pos + np.cumsum(gaps)
        inside = cumulative < total_pairs
        positions.append(cumulative[inside])
        drawn += int(inside.sum())
        if not inside.all():
            break
        pos = int(cumulative[-1])
    flat = np.concatenate(positions) if positions else np.zeros(0, dtype=np.int64)
    # invert the flattened upper-triangle index: row i starts at offset
    # i*n - i*(i+1)/2 - (i+1); solve the quadratic for the row.
    i = (
        n_nodes
        - 2
        - np.floor(np.sqrt(-8.0 * flat + 4.0 * n_nodes * (n_nodes - 1) - 7) / 2.0 - 0.5)
    ).astype(np.int64)
    j = (flat + i + 1 - i * (2 * n_nodes - i - 1) // 2).astype(np.int64)
    return np.column_stack([i, j])


def generate_erdos_renyi(n_nodes: int, p: float, rng: RNGLike = None) -> nx.Graph:
    """``G(n, p)`` graph on nodes ``0..n_nodes-1``."""
    edges = erdos_renyi_edges(n_nodes, p, rng=rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(n_nodes))
    graph.add_edges_from(map(tuple, edges.tolist()))
    return graph
