"""Generative network models: the substrate the PALU model is built from.

The paper's underlying network is assembled from three generative pieces —
a preferential-attachment core, degree-1 leaves, and Poisson star components
— and observed through Erdős–Rényi edge sampling.  This subpackage
implements each piece from scratch (plus a configuration-model alternative
for the core and a webcrawl/BFS sampler used as the contrast baseline), and
:mod:`repro.generators.palu_graph` composes them into the full PALU
underlying network.
"""

from repro.generators.configuration_model import generate_configuration_model
from repro.generators.degree_sequence import (
    sample_power_law_degrees,
    sample_zipf_mandelbrot_degrees,
)
from repro.generators.erdos_renyi import generate_erdos_renyi
from repro.generators.palu_graph import PALUGraph, generate_palu_graph
from repro.generators.poisson_stars import generate_poisson_stars
from repro.generators.preferential_attachment import (
    generate_preferential_attachment,
    generate_shifted_preferential_attachment,
)
from repro.generators.sampling import (
    node_sample,
    sample_edges,
    sample_edges_array,
    webcrawl_sample,
)

__all__ = [
    "generate_configuration_model",
    "sample_power_law_degrees",
    "sample_zipf_mandelbrot_degrees",
    "generate_erdos_renyi",
    "PALUGraph",
    "generate_palu_graph",
    "generate_poisson_stars",
    "generate_preferential_attachment",
    "generate_shifted_preferential_attachment",
    "node_sample",
    "sample_edges",
    "sample_edges_array",
    "webcrawl_sample",
]
