"""The full PALU underlying-network generator (Section III).

Composes the three pieces of the PALU underlying network into one graph:

1. a **core** on ``round(C·N)`` nodes whose degree sequence is drawn from
   the truncated zeta law ``d^{-α}`` and wired by the configuration model
   (or, optionally, grown by shifted preferential attachment),
2. **leaves**: ``round(L·N)`` degree-1 nodes, each attached to a core node
   chosen proportionally to its core degree (high-degree cores accumulate
   the "supernode leaves" of Figure 2),
3. **unattached stars**: ``U·N`` centres with ``Poisson(λ)`` leaves each
   (centres with zero leaves stay in the bookkeeping as isolated nodes but
   carry no edges).

Node ids are consecutive integers with the classes occupying disjoint
ranges, recorded in the returned :class:`PALUGraph` so experiments can check
class-level predictions (e.g. the expected class fractions of Section IV)
without re-deriving membership from the topology.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_positive_int
from repro.core.palu_model import PALUParameters
from repro.generators.configuration_model import configuration_model_edges
from repro.generators.degree_sequence import sample_power_law_degrees
from repro.generators.poisson_stars import poisson_star_edges
from repro.generators.preferential_attachment import generate_shifted_preferential_attachment

__all__ = ["PALUGraph", "generate_palu_graph"]


@dataclass(frozen=True)
class PALUGraph:
    """A PALU underlying network with class bookkeeping.

    Attributes
    ----------
    graph:
        The underlying network (isolated star centres included as nodes).
    core_nodes, leaf_nodes, star_centres, star_leaves:
        Node-id arrays for each class.
    parameters:
        The :class:`~repro.core.palu_model.PALUParameters` used to build it.
    """

    graph: nx.Graph
    core_nodes: np.ndarray
    leaf_nodes: np.ndarray
    star_centres: np.ndarray
    star_leaves: np.ndarray
    parameters: PALUParameters

    @property
    def n_nodes(self) -> int:
        """Total number of underlying nodes (including isolated centres)."""
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Total number of underlying edges."""
        return self.graph.number_of_edges()

    def class_of(self) -> dict:
        """Mapping node id → class name (``core``/``leaf``/``centre``/``star_leaf``)."""
        mapping: dict = {}
        mapping.update({int(n): "core" for n in self.core_nodes})
        mapping.update({int(n): "leaf" for n in self.leaf_nodes})
        mapping.update({int(n): "centre" for n in self.star_centres})
        mapping.update({int(n): "star_leaf" for n in self.star_leaves})
        return mapping

    def class_counts(self) -> dict:
        """Number of underlying nodes in each class."""
        return {
            "core": int(self.core_nodes.size),
            "leaves": int(self.leaf_nodes.size),
            "star_centres": int(self.star_centres.size),
            "star_leaves": int(self.star_leaves.size),
        }

    def edges_array(self) -> np.ndarray:
        """All underlying edges as an ``(m, 2)`` int64 array."""
        if self.graph.number_of_edges() == 0:
            return np.zeros((0, 2), dtype=np.int64)
        return np.asarray(list(self.graph.edges()), dtype=np.int64)


def _build_core(
    n_core: int,
    alpha: float,
    core_model: str,
    core_dmax: int,
    gen: np.random.Generator,
) -> np.ndarray:
    """Edge array of the core on node ids ``0..n_core-1``."""
    if n_core < 2:
        return np.zeros((0, 2), dtype=np.int64)
    if core_model == "configuration":
        degrees = sample_power_law_degrees(n_core, alpha, dmax=core_dmax, rng=gen)
        return configuration_model_edges(degrees, rng=gen)
    if core_model == "preferential-attachment":
        graph = generate_shifted_preferential_attachment(n_core, 1, alpha=alpha, rng=gen)
        return np.asarray(list(graph.edges()), dtype=np.int64)
    raise ValueError(
        f"unknown core_model {core_model!r}; expected 'configuration' or 'preferential-attachment'"
    )


def generate_palu_graph(
    parameters: PALUParameters,
    n_nodes: int,
    *,
    core_model: str = "configuration",
    core_dmax: int | None = None,
    rng: RNGLike = None,
    seed: RNGLike = None,
) -> PALUGraph:
    """Generate a PALU underlying network with ~*n_nodes* nodes.

    Parameters
    ----------
    parameters:
        The five PALU parameters ``(C, L, U, λ, α)``.
    n_nodes:
        Target total number of underlying nodes; the realised count differs
        slightly because star leaves are Poisson draws.
    core_model:
        ``"configuration"`` (default; zeta-law degree sequence wired by the
        configuration model — fast, exactly matching the analysis, and valid
        for any ``α``) or ``"preferential-attachment"`` (shifted-kernel
        growth — slower, matching the paper's narrative construction, and
        only able to reach exponents ``α > 2``).
    core_dmax:
        Truncation of the core degree law; defaults to ``max(1000, n_core)``.
    rng, seed:
        Seed or generator (``seed`` is an alias for ``rng``).

    Returns
    -------
    PALUGraph
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes", minimum=10)
    if seed is not None and rng is None:
        rng = seed
    gen = as_generator(rng)

    n_core = int(round(parameters.core * n_nodes))
    n_leaves = int(round(parameters.leaves * n_nodes))
    n_centres = int(round(parameters.unattached * n_nodes))

    core_dmax = int(core_dmax) if core_dmax is not None else max(1000, n_core)
    core_edges = _build_core(n_core, parameters.alpha, core_model, core_dmax, gen)

    graph = nx.Graph()
    core_nodes = np.arange(n_core, dtype=np.int64)
    graph.add_nodes_from(core_nodes.tolist())
    graph.add_edges_from(map(tuple, core_edges.tolist()))

    # leaves attach preferentially to high-degree core nodes so that
    # supernodes accumulate the "supernode leaves" of Figure 2
    leaf_nodes = np.arange(n_core, n_core + n_leaves, dtype=np.int64)
    if n_leaves > 0 and n_core > 0:
        core_degrees = np.fromiter(
            (graph.degree(int(n)) for n in core_nodes), dtype=np.float64, count=n_core
        )
        weights = core_degrees + 1.0  # +1 keeps zero-degree cores reachable
        weights /= weights.sum()
        anchors = gen.choice(n_core, size=n_leaves, replace=True, p=weights)
        graph.add_edges_from(zip(leaf_nodes.tolist(), anchors.tolist()))
    else:
        graph.add_nodes_from(leaf_nodes.tolist())

    # unattached Poisson stars, offset past core + leaves
    offset = n_core + n_leaves
    stars = poisson_star_edges(n_centres, parameters.lam, rng=gen) if n_centres > 0 else None
    if stars is not None and stars.n_nodes > 0:
        star_centres = stars.centre_ids + offset
        star_leaves = np.arange(offset + n_centres, offset + stars.n_nodes, dtype=np.int64)
        graph.add_nodes_from(star_centres.tolist())
        graph.add_nodes_from(star_leaves.tolist())
        if stars.edges.size:
            graph.add_edges_from(map(tuple, (stars.edges + offset).tolist()))
    else:
        star_centres = np.zeros(0, dtype=np.int64)
        star_leaves = np.zeros(0, dtype=np.int64)

    return PALUGraph(
        graph=graph,
        core_nodes=core_nodes,
        leaf_nodes=leaf_nodes,
        star_centres=star_centres,
        star_leaves=star_leaves,
        parameters=parameters,
    )
