"""Samplers for heavy-tailed degree sequences.

The configuration-model core (and several tests and benchmarks) need i.i.d.
draws from the zeta-law ``d^{-α}/ζ(α)`` and from the modified
Zipf–Mandelbrot law.  Both are provided here on a truncated support with
exact inverse-CDF sampling, plus a helper that "evens" a sequence so its sum
is even (a requirement of the configuration model's edge-stub pairing).
"""

from __future__ import annotations

import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_positive, check_positive_int
from repro.core.distributions import DiscretePowerLaw, ZipfMandelbrotDistribution

__all__ = [
    "sample_power_law_degrees",
    "sample_zipf_mandelbrot_degrees",
    "make_sum_even",
]


def sample_power_law_degrees(
    n: int,
    alpha: float,
    *,
    dmax: int = 100_000,
    rng: RNGLike = None,
) -> np.ndarray:
    """Draw *n* degrees from the truncated zeta law ``d^{-α}`` on ``1..dmax``.

    This is the degree law of the PALU core's underlying network.
    """
    n = check_positive_int(n, "n", minimum=0)
    alpha = check_positive(alpha, "alpha")
    dist = DiscretePowerLaw(alpha, dmax)
    return dist.sample(n, rng=rng)


def sample_zipf_mandelbrot_degrees(
    n: int,
    alpha: float,
    delta: float,
    *,
    dmax: int = 100_000,
    rng: RNGLike = None,
) -> np.ndarray:
    """Draw *n* degrees from the modified Zipf–Mandelbrot law on ``1..dmax``."""
    n = check_positive_int(n, "n", minimum=0)
    dist = ZipfMandelbrotDistribution(alpha, delta, dmax)
    return dist.sample(n, rng=rng)


def make_sum_even(degrees: np.ndarray, rng: RNGLike = None) -> np.ndarray:
    """Return a copy of *degrees* whose sum is even.

    When the sum is odd, one uniformly chosen entry is incremented by one —
    the minimal perturbation that keeps the empirical distribution intact
    while making the sequence graphical for stub pairing.
    """
    degrees = np.asarray(degrees, dtype=np.int64).copy()
    if degrees.size == 0:
        return degrees
    if int(degrees.sum()) % 2 == 1:
        gen = as_generator(rng)
        idx = int(gen.integers(0, degrees.size))
        degrees[idx] += 1
    return degrees
