"""Observation operators: how a network is *seen* by a measurement method.

The paper contrasts two ways of observing the underlying traffic network:

* **trunk-line observation** (MAWI/CAIDA style) — modelled as Erdős–Rényi
  *edge sampling*: every underlying edge appears in the observed network
  independently with probability ``p`` (Section V).  Nodes that lose all
  their edges become invisible.
* **webcrawling** (the data source behind the classic single-exponent
  power-law studies) — modelled as breadth-first exploration from one or
  more high-degree seeds, which naturally finds the connected core and its
  supernodes but never the unattached components and few of the leaves.

Both operators are provided here, plus uniform node sampling as a third
baseline.  Every operator accepts either a :class:`networkx.Graph` or an
``(m, 2)`` edge array and returns the same type it was given.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Union

import networkx as nx
import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_fraction, check_positive_int

__all__ = ["sample_edges", "sample_edges_array", "node_sample", "webcrawl_sample"]

GraphOrEdges = Union[nx.Graph, np.ndarray]


def sample_edges_array(edges: np.ndarray, p: float, rng: RNGLike = None) -> np.ndarray:
    """Bernoulli(p) thinning of an ``(m, 2)`` edge array (the window operator)."""
    p = check_fraction(p, "p")
    arr = np.asarray(edges)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array")
    if p == 1.0:
        return arr.copy()
    if p == 0.0:
        return arr[:0].copy()
    gen = as_generator(rng)
    mask = gen.random(arr.shape[0]) < p
    return arr[mask]


def sample_edges(graph: GraphOrEdges, p: float, rng: RNGLike = None, *, seed: RNGLike = None) -> GraphOrEdges:
    """Erdős–Rényi edge sampling: keep each edge independently with probability *p*.

    This is the paper's observation model for trunk-line traffic windows: the
    observed network is a random subnetwork of the underlying network, and
    the only parameter that changes with the window size is *p*.

    Nodes that keep at least one edge survive; nodes that lose every edge are
    dropped (they are unobservable).  Accepts a graph or an edge array and
    returns the matching type.
    """
    if seed is not None and rng is None:
        rng = seed
    if isinstance(graph, np.ndarray):
        return sample_edges_array(graph, p, rng=rng)
    p = check_fraction(p, "p")
    gen = as_generator(rng)
    edge_list = list(graph.edges())
    observed = nx.Graph()
    if not edge_list:
        return observed
    mask = gen.random(len(edge_list)) < p if p < 1.0 else np.ones(len(edge_list), dtype=bool)
    observed.add_edges_from(edge for edge, keep in zip(edge_list, mask) if keep)
    return observed


def node_sample(graph: nx.Graph, p: float, rng: RNGLike = None) -> nx.Graph:
    """Uniform node sampling: keep each node with probability *p*, inducing the subgraph."""
    p = check_fraction(p, "p")
    gen = as_generator(rng)
    nodes = list(graph.nodes())
    if not nodes:
        return nx.Graph()
    mask = gen.random(len(nodes)) < p if p < 1.0 else np.ones(len(nodes), dtype=bool)
    kept = [n for n, keep in zip(nodes, mask) if keep]
    return graph.subgraph(kept).copy()


def webcrawl_sample(
    graph: nx.Graph,
    *,
    n_seeds: int = 1,
    max_nodes: int | None = None,
    seeds: Iterable | None = None,
    rng: RNGLike = None,
) -> nx.Graph:
    """Breadth-first "webcrawl" observation of a network.

    Crawling starts from *seeds* (by default the *n_seeds* highest-degree
    nodes — crawls "naturally sample the supernodes", Section II) and follows
    edges breadth-first until the frontier is exhausted or *max_nodes* nodes
    have been discovered.  The returned graph is the subgraph induced on the
    discovered nodes — a connected view that systematically misses the
    unattached components and most leaves, which is exactly the bias the
    PALU model was introduced to correct.
    """
    n_seeds = check_positive_int(n_seeds, "n_seeds")
    if graph.number_of_nodes() == 0:
        return nx.Graph()
    if seeds is None:
        by_degree = sorted(graph.degree(), key=lambda kv: kv[1], reverse=True)
        seed_nodes = [node for node, _ in by_degree[:n_seeds]]
    else:
        seed_nodes = list(seeds)
        missing = [s for s in seed_nodes if s not in graph]
        if missing:
            raise ValueError(f"seed nodes not present in the graph: {missing[:5]}")
    limit = max_nodes if max_nodes is not None else graph.number_of_nodes()
    if limit < 1:
        raise ValueError("max_nodes must be >= 1")

    discovered: set = set()
    queue: deque = deque()
    for s in seed_nodes:
        if s not in discovered:
            discovered.add(s)
            queue.append(s)
    while queue and len(discovered) < limit:
        current = queue.popleft()
        for neighbor in graph.neighbors(current):
            if neighbor not in discovered:
                discovered.add(neighbor)
                queue.append(neighbor)
                if len(discovered) >= limit:
                    break
    return graph.subgraph(discovered).copy()
