"""Unattached Poisson star components (Section V).

The unattached portion of the PALU underlying network consists of ``U·N``
star components.  Each star has one central node and an independent
``Poisson(λ)`` number of non-central leaf nodes; centres that draw zero
leaves are isolated and — because an isolated node generates no traffic —
are unobservable and removed from the observed model.

:func:`generate_poisson_stars` materialises the stars as a graph (optionally
keeping the isolated centres so their existence can be studied, as the
paper's conclusions suggest); :func:`poisson_star_edges` returns just the
edge array used by the larger composite builders.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro._util.rng import RNGLike, as_generator
from repro._util.validation import check_in_range, check_positive_int

__all__ = ["PoissonStarBatch", "poisson_star_edges", "generate_poisson_stars"]


@dataclass(frozen=True)
class PoissonStarBatch:
    """Edges and bookkeeping for a batch of Poisson stars.

    Attributes
    ----------
    edges:
        ``(m, 2)`` int64 array of (centre, leaf) edges; node ids are local,
        starting at 0.
    centre_ids:
        Node ids of the star centres, including isolated ones.
    leaf_counts:
        Number of leaves drawn for each centre (aligned with *centre_ids*).
    n_nodes:
        Total number of node ids allocated (centres + leaves).
    """

    edges: np.ndarray
    centre_ids: np.ndarray
    leaf_counts: np.ndarray
    n_nodes: int

    @property
    def n_isolated(self) -> int:
        """Number of centres that drew zero leaves (invisible to traffic)."""
        return int(np.count_nonzero(self.leaf_counts == 0))

    @property
    def n_single_edge_stars(self) -> int:
        """Number of stars with exactly one leaf — the *unattached links* of Fig. 2."""
        return int(np.count_nonzero(self.leaf_counts == 1))


def poisson_star_edges(
    n_stars: int,
    lam: float,
    *,
    rng: RNGLike = None,
) -> PoissonStarBatch:
    """Generate *n_stars* independent Poisson(λ) stars.

    Node ids are assigned locally: centres first (``0..n_stars-1``), then all
    leaves consecutively.  The caller is responsible for offsetting ids when
    composing with other graph pieces.
    """
    n_stars = check_positive_int(n_stars, "n_stars", minimum=0)
    lam = check_in_range(lam, "lam", 0.0, 20.0)
    gen = as_generator(rng)
    if n_stars == 0:
        return PoissonStarBatch(
            edges=np.zeros((0, 2), dtype=np.int64),
            centre_ids=np.zeros(0, dtype=np.int64),
            leaf_counts=np.zeros(0, dtype=np.int64),
            n_nodes=0,
        )
    leaf_counts = gen.poisson(lam, size=n_stars).astype(np.int64)
    total_leaves = int(leaf_counts.sum())
    centre_ids = np.arange(n_stars, dtype=np.int64)
    leaf_ids = np.arange(n_stars, n_stars + total_leaves, dtype=np.int64)
    centres_repeated = np.repeat(centre_ids, leaf_counts)
    edges = np.column_stack([centres_repeated, leaf_ids]) if total_leaves else np.zeros((0, 2), dtype=np.int64)
    return PoissonStarBatch(
        edges=edges,
        centre_ids=centre_ids,
        leaf_counts=leaf_counts,
        n_nodes=n_stars + total_leaves,
    )


def generate_poisson_stars(
    n_stars: int,
    lam: float,
    *,
    keep_isolated: bool = False,
    rng: RNGLike = None,
) -> nx.Graph:
    """Graph of *n_stars* Poisson(λ) star components.

    Parameters
    ----------
    n_stars:
        Number of star centres to generate.
    lam:
        Mean number of non-central leaves per star (``λ ∈ [0, 20]``).
    keep_isolated:
        Keep centres that drew zero leaves as isolated nodes (default False,
        matching the observed-model convention of removing them).
    rng:
        Seed or generator.
    """
    batch = poisson_star_edges(n_stars, lam, rng=rng)
    graph = nx.Graph()
    if keep_isolated:
        graph.add_nodes_from(batch.centre_ids.tolist())
    else:
        visible = batch.centre_ids[batch.leaf_counts > 0]
        graph.add_nodes_from(visible.tolist())
    graph.add_edges_from(map(tuple, batch.edges.tolist()))
    return graph
