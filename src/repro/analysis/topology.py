"""Topological decomposition of traffic networks (Figure 2).

The paper's Figure 2 partitions an observed traffic network into:

* **supernodes** — very-high-degree hubs,
* **supernode leaves** — degree-1 nodes whose single neighbour is a supernode,
* the **core** — the remaining nodes of the giant / large connected
  component(s),
* **core leaves** — degree-1 nodes attached to non-supernode core nodes, and
* **unattached links** — small components disconnected from every large
  component (isolated edges and small stars, the bot-like traffic).

:func:`decompose_topology` performs that partition on a
:class:`networkx.Graph` (or an edge array) and returns per-class node sets
plus summary counts, which the Fig. 2 benchmark and the PALU-expectation
tests consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import networkx as nx
import numpy as np

from repro._util.validation import check_in_range, check_positive_int

__all__ = [
    "TopologyDecomposition",
    "decompose_topology",
    "find_supernodes",
    "max_degree",
    "count_unattached_links",
]


def _as_graph(graph_or_edges: nx.Graph | Sequence) -> nx.Graph:
    """Coerce an edge sequence / array into an undirected simple graph."""
    if isinstance(graph_or_edges, nx.Graph):
        return graph_or_edges
    edges = np.asarray(graph_or_edges)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array of node pairs")
    g = nx.Graph()
    g.add_edges_from(map(tuple, edges.tolist()))
    return g


def max_degree(graph_or_edges: nx.Graph | Sequence) -> int:
    """Largest degree in the network — the paper's ``dmax`` (Eq. 1)."""
    g = _as_graph(graph_or_edges)
    if g.number_of_nodes() == 0:
        return 0
    return max(d for _, d in g.degree())


def find_supernodes(
    graph_or_edges: nx.Graph | Sequence,
    *,
    quantile: float = 0.999,
    min_degree: int = 10,
) -> list:
    """Identify supernodes as nodes whose degree exceeds a high quantile.

    A node is a supernode when its degree is at least ``min_degree`` **and**
    at or above the *quantile*-th quantile of the degree distribution.  The
    defaults pick out the handful of hubs that dominate trunk traffic
    without flagging ordinary core nodes.
    """
    quantile = check_in_range(quantile, "quantile", 0.0, 1.0)
    min_degree = check_positive_int(min_degree, "min_degree")
    g = _as_graph(graph_or_edges)
    if g.number_of_nodes() == 0:
        return []
    degrees = dict(g.degree())
    values = np.fromiter(degrees.values(), dtype=np.int64)
    threshold = max(float(np.quantile(values, quantile)), float(min_degree))
    return [node for node, d in degrees.items() if d >= threshold]


@dataclass(frozen=True)
class TopologyDecomposition:
    """Partition of a traffic network into the Figure-2 classes.

    All node containers are Python sets; the counts are exposed as
    properties so the decomposition can be rendered as a one-line summary.
    """

    supernodes: frozenset
    supernode_leaves: frozenset
    core: frozenset
    core_leaves: frozenset
    unattached: frozenset
    isolated: frozenset
    n_unattached_links: int
    n_edges: int

    @property
    def n_nodes(self) -> int:
        """Total number of (observable) nodes across all classes."""
        return (
            len(self.supernodes)
            + len(self.supernode_leaves)
            + len(self.core)
            + len(self.core_leaves)
            + len(self.unattached)
        )

    def fractions(self) -> dict:
        """Node fraction per class (keys match the PALU expectation names)."""
        n = max(self.n_nodes, 1)
        return {
            "supernodes": len(self.supernodes) / n,
            "supernode_leaves": len(self.supernode_leaves) / n,
            "core": len(self.core) / n,
            "core_leaves": len(self.core_leaves) / n,
            "unattached": len(self.unattached) / n,
        }

    def leaf_fraction(self) -> float:
        """Fraction of nodes that are degree-1 leaves of a large component."""
        n = max(self.n_nodes, 1)
        return (len(self.supernode_leaves) + len(self.core_leaves)) / n

    def summary(self) -> dict:
        """Counts per class plus edge totals, for tabular reporting."""
        return {
            "n_nodes": self.n_nodes,
            "n_edges": self.n_edges,
            "n_supernodes": len(self.supernodes),
            "n_supernode_leaves": len(self.supernode_leaves),
            "n_core": len(self.core),
            "n_core_leaves": len(self.core_leaves),
            "n_unattached_nodes": len(self.unattached),
            "n_unattached_links": self.n_unattached_links,
            "n_isolated": len(self.isolated),
        }


def count_unattached_links(graph_or_edges: nx.Graph | Sequence, *, max_component_size: int = 2) -> int:
    """Number of edges living in components of at most *max_component_size* nodes.

    With the default of 2 this counts exactly the isolated source–destination
    pairs the paper calls *unattached links*.
    """
    g = _as_graph(graph_or_edges)
    count = 0
    for component in nx.connected_components(g):
        if len(component) <= max_component_size:
            count += g.subgraph(component).number_of_edges()
    return count


def decompose_topology(
    graph_or_edges: nx.Graph | Sequence,
    *,
    large_component_threshold: int | None = None,
    supernode_quantile: float = 0.999,
    supernode_min_degree: int = 10,
    include_isolated: Iterable | None = None,
) -> TopologyDecomposition:
    """Partition a traffic network into the Figure-2 topology classes.

    Parameters
    ----------
    graph_or_edges:
        A networkx graph or an ``(m, 2)`` array of undirected edges.
    large_component_threshold:
        Components with at least this many nodes count as "large" (core-
        bearing); smaller ones are classified as unattached.  Defaults to
        ``max(3, 1 + sqrt(n_nodes))`` which separates the giant component
        from bot-like debris across the scales used in the experiments.
    supernode_quantile, supernode_min_degree:
        Passed to :func:`find_supernodes`.
    include_isolated:
        Optional iterable of isolated node ids known to exist in the
        underlying network but invisible to traffic observation (the paper
        removes them from the observed model); recorded separately.

    Returns
    -------
    TopologyDecomposition
    """
    g = _as_graph(graph_or_edges)
    n_nodes = g.number_of_nodes()
    if large_component_threshold is None:
        large_component_threshold = max(3, int(1 + np.sqrt(max(n_nodes, 1))))

    supernodes: set = set()
    supernode_leaves: set = set()
    core: set = set()
    core_leaves: set = set()
    unattached: set = set()
    n_unattached_links = 0

    degrees = dict(g.degree())
    components = list(nx.connected_components(g))
    large_nodes: set = set()
    for component in components:
        if len(component) >= large_component_threshold:
            large_nodes |= component
        else:
            unattached |= component
            # "unattached links" in the paper's sense are isolated
            # source-destination pairs: components of exactly one edge
            if len(component) == 2:
                n_unattached_links += 1

    if large_nodes:
        large_sub = g.subgraph(large_nodes)
        supernodes = set(
            find_supernodes(
                large_sub,
                quantile=supernode_quantile,
                min_degree=supernode_min_degree,
            )
        )
        for node in large_nodes:
            if node in supernodes:
                continue
            if degrees[node] == 1:
                neighbor = next(iter(g.neighbors(node)))
                if neighbor in supernodes:
                    supernode_leaves.add(node)
                else:
                    core_leaves.add(node)
            else:
                core.add(node)

    isolated = frozenset(include_isolated or ())
    return TopologyDecomposition(
        supernodes=frozenset(supernodes),
        supernode_leaves=frozenset(supernode_leaves),
        core=frozenset(core),
        core_leaves=frozenset(core_leaves),
        unattached=frozenset(unattached),
        isolated=isolated,
        n_unattached_links=n_unattached_links,
        n_edges=g.number_of_edges(),
    )
