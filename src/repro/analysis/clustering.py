"""Clustering-coefficient analysis (paper future work).

The paper's conclusions list "deeper study into the degree distribution and
clustering coefficients" as follow-on work.  This module provides that study
for the reproduction's synthetic worlds:

* :func:`local_clustering` / :func:`average_clustering` — standard
  per-node and mean clustering coefficients (triangle density around a node),
  implemented directly so the library does not depend on networkx internals
  for its statistics,
* :func:`clustering_by_degree` — the degree-conditioned clustering profile
  ``C(d)``, the quantity used in the literature to distinguish
  preferential-attachment-style cores (low, slowly varying clustering) from
  clique-heavy structures, and
* :func:`clustering_summary` — one-row summary comparing the core of an
  observed PALU network with its leaves/unattached debris (which, being trees
  and stars, have clustering exactly zero — a checkable signature of the
  model).
"""

from __future__ import annotations

from typing import Mapping

import networkx as nx
import numpy as np

__all__ = [
    "local_clustering",
    "average_clustering",
    "clustering_by_degree",
    "clustering_summary",
]


def local_clustering(graph: nx.Graph) -> Mapping[int, float]:
    """Per-node clustering coefficients ``c_v = 2·T(v) / (deg(v)·(deg(v)−1))``.

    Nodes of degree 0 or 1 have coefficient 0 by convention.  Computed with a
    neighbour-set intersection per node, which is adequate for the sparse,
    heavy-tailed graphs the experiments use (the supernode cost is bounded by
    its neighbourhood's internal edge count).
    """
    neighbors = {node: set(graph.neighbors(node)) for node in graph.nodes()}
    coefficients: dict = {}
    for node, neighbor_set in neighbors.items():
        k = len(neighbor_set)
        if k < 2:
            coefficients[node] = 0.0
            continue
        links = 0
        for u in neighbor_set:
            # count each triangle edge once by ordering
            links += sum(1 for w in neighbors[u] if w in neighbor_set and w > u)
        coefficients[node] = 2.0 * links / (k * (k - 1))
    return coefficients


def average_clustering(graph: nx.Graph) -> float:
    """Mean of the per-node clustering coefficients (0 for an empty graph)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    coefficients = local_clustering(graph)
    return float(np.mean(list(coefficients.values())))


def clustering_by_degree(graph: nx.Graph, *, min_degree: int = 2) -> Mapping[int, float]:
    """Degree-conditioned clustering profile ``C(d)``.

    Returns the mean clustering coefficient of all nodes with each degree
    ``d >= min_degree`` that occurs in the graph.
    """
    coefficients = local_clustering(graph)
    by_degree: dict = {}
    for node, c in coefficients.items():
        d = graph.degree(node)
        if d < min_degree:
            continue
        by_degree.setdefault(d, []).append(c)
    return {d: float(np.mean(values)) for d, values in sorted(by_degree.items())}


def clustering_summary(graph: nx.Graph, class_of: Mapping[int, str] | None = None) -> dict:
    """Summary row of clustering statistics, optionally split by PALU class.

    Parameters
    ----------
    graph:
        The (observed or underlying) network.
    class_of:
        Optional node → class mapping (as returned by
        :meth:`repro.generators.palu_graph.PALUGraph.class_of`); when given,
        per-class mean clustering is reported.  The leaf and unattached
        classes of a PALU network are trees/stars, so their clustering must
        be exactly zero — a structural signature tested in the suite.
    """
    coefficients = local_clustering(graph)
    summary = {
        "n_nodes": graph.number_of_nodes(),
        "average_clustering": float(np.mean(list(coefficients.values()))) if coefficients else 0.0,
        "max_clustering": float(max(coefficients.values())) if coefficients else 0.0,
        "fraction_clustered": float(np.mean([c > 0 for c in coefficients.values()]))
        if coefficients
        else 0.0,
    }
    if class_of is not None:
        per_class: dict = {}
        for node, c in coefficients.items():
            per_class.setdefault(class_of.get(node, "unknown"), []).append(c)
        for name, values in sorted(per_class.items()):
            summary[f"clustering_{name}"] = float(np.mean(values))
    return summary
