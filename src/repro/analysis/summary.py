"""Tabular summaries of graphs and traffic windows.

These helpers render the quantities the paper reports prose-style (number of
valid packets, unique sources/destinations/links, leaf fraction, supernode
size, d_max, degree-1 fraction) as plain dictionaries and fixed-width text
tables so that examples and benchmark harnesses can print paper-style rows
without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import networkx as nx
import numpy as np

from repro.analysis.histogram import DegreeHistogram, degree_histogram
from repro.analysis.topology import decompose_topology

__all__ = ["NetworkSummary", "summarize_graph", "summarize_window", "format_table"]


@dataclass(frozen=True)
class NetworkSummary:
    """Headline statistics of one observed network or window."""

    n_nodes: int
    n_edges: int
    dmax: int
    degree_one_fraction: float
    leaf_fraction: float
    unattached_fraction: float
    n_supernodes: int
    mean_degree: float

    def as_row(self) -> dict:
        """Dictionary form for tabular printing."""
        return {
            "nodes": self.n_nodes,
            "edges": self.n_edges,
            "dmax": self.dmax,
            "P(d=1)": round(self.degree_one_fraction, 4),
            "leaf_frac": round(self.leaf_fraction, 4),
            "unattached_frac": round(self.unattached_fraction, 4),
            "supernodes": self.n_supernodes,
            "mean_degree": round(self.mean_degree, 3),
        }


def summarize_graph(graph: nx.Graph) -> NetworkSummary:
    """Summarise an observed network graph (Figure-2 style statistics)."""
    n_nodes = graph.number_of_nodes()
    n_edges = graph.number_of_edges()
    if n_nodes == 0:
        return NetworkSummary(0, 0, 0, 0.0, 0.0, 0.0, 0, 0.0)
    degrees = np.fromiter((d for _, d in graph.degree()), dtype=np.int64, count=n_nodes)
    hist = degree_histogram(degrees[degrees > 0]) if np.any(degrees > 0) else DegreeHistogram.from_dense([])
    decomp = decompose_topology(graph)
    fractions = decomp.fractions()
    return NetworkSummary(
        n_nodes=n_nodes,
        n_edges=n_edges,
        dmax=int(degrees.max()),
        degree_one_fraction=hist.fraction_at(1),
        leaf_fraction=decomp.leaf_fraction(),
        unattached_fraction=fractions["unattached"],
        n_supernodes=len(decomp.supernodes),
        mean_degree=float(degrees.mean()),
    )


def summarize_window(histograms: Mapping[str, DegreeHistogram]) -> dict:
    """Summarise the per-quantity histograms of one traffic window.

    *histograms* maps quantity names (``"source_packets"``, ``"source_fanout"``,
    ``"link_packets"``, ``"destination_fanin"``, ``"destination_packets"``) to
    their histograms; the result maps each to its headline statistics.
    """
    out = {}
    for name, hist in histograms.items():
        out[name] = {
            "total": hist.total,
            "distinct": int(hist.degrees.size),
            "dmax": hist.dmax,
            "P(d=1)": round(hist.fraction_at(1), 4),
        }
    return out


def format_table(rows: Sequence[Mapping[str, object]], *, float_format: str = "{:.4g}") -> str:
    """Render a list of dict rows as a fixed-width text table.

    All rows must share the same keys; column order follows the first row.
    """
    rows = list(rows)
    if not rows:
        return "(empty table)"
    columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered = [[fmt(row[c]) for c in columns] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(columns)]
    header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(r[i].ljust(widths[i]) for i in range(len(columns)))
        for r in rendered
    ]
    return "\n".join([header, separator, *body])
