"""Residual-moment sums used by the PALU ``Λ`` estimator.

Section IV-B of the paper proposes estimating the clustering parameter ``Λ``
from the residuals of the fitted power-law core:

.. math::

    \\frac{\\sum_{d\\ge 2} d\\,[f(d) - c d^{-\\alpha}]}
          {\\sum_{d\\ge 2} [f(d) - c d^{-\\alpha}]}
    \\;\\approx\\; \\frac{\\Lambda + \\Lambda^2}{e^{\\Lambda} - \\Lambda - 1}

where ``f(d)`` is the observed fraction of degree-``d`` nodes.  The functions
here compute the two residual sums and the ratio; the numerical inversion of
the right-hand side lives in :mod:`repro.core.palu_fit`.

The module also provides :class:`StreamingMoments`, a single-pass (Welford)
mean/σ accumulator over vectors whose length may grow between updates.  It
backs the out-of-core analysis engine
(:class:`repro.streaming.pipeline.StreamAnalyzer`), which folds per-window
pooled distributions into running cross-window moments instead of stacking
every window in memory.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro._util.validation import check_nonnegative, check_positive

__all__ = [
    "StreamingMoments",
    "residual_moment_sums",
    "residual_moment_ratio",
    "poisson_moment_rhs",
    "lambda_moment_rhs",
]


class StreamingMoments:
    """Single-pass mean and standard deviation of a stream of vectors.

    Implements Welford's online algorithm element-wise over 1-D vectors.
    Vectors may grow in length between updates (pooled distributions gain
    bins as larger degrees appear); earlier, shorter samples are treated as
    zero in the new trailing positions, which is exactly the zero-fill
    convention of :func:`repro.analysis.pooling.aggregate_pooled`.

    Folding is associative only in exact arithmetic; in floating point the
    result depends on update order, so every execution backend must fold in
    stream (window) order — which is what makes the serial, process, and
    streaming backends bit-identical.
    """

    def __init__(self, n_bins: int = 0) -> None:
        if n_bins < 0:
            raise ValueError("n_bins must be >= 0")
        self._count = 0
        self._mean = np.zeros(int(n_bins), dtype=np.float64)
        self._m2 = np.zeros(int(n_bins), dtype=np.float64)

    @property
    def count(self) -> int:
        """Number of vectors folded in so far."""
        return self._count

    @property
    def n_bins(self) -> int:
        """Current vector length (the longest seen so far)."""
        return int(self._mean.size)

    def update(self, values: np.ndarray) -> None:
        """Fold one sample vector into the running moments."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("StreamingMoments.update expects a 1-D vector")
        if values.size > self._mean.size:
            # zero-padding the state is exact: every earlier sample contributed
            # zero in the new trailing bins, for which mean = M2 = 0
            grown = np.zeros(values.size, dtype=np.float64)
            grown[: self._mean.size] = self._mean
            self._mean = grown
            grown2 = np.zeros(values.size, dtype=np.float64)
            grown2[: self._m2.size] = self._m2
            self._m2 = grown2
        elif values.size < self._mean.size:
            padded = np.zeros(self._mean.size, dtype=np.float64)
            padded[: values.size] = values
            values = padded
        self._count += 1
        delta = values - self._mean
        self._mean = self._mean + delta / self._count
        self._m2 = self._m2 + delta * (values - self._mean)

    def state(self) -> dict:
        """Exact internal state (count and float64 accumulators) for snapshots.

        The returned arrays are copies of the raw Welford accumulators; a
        moments object rebuilt via :meth:`from_state` continues the fold with
        bit-identical arithmetic, which is what makes service checkpoint
        recovery (:mod:`repro.service.checkpoint`) byte-exact.
        """
        return {
            "count": int(self._count),
            "mean": self._mean.copy(),
            "m2": self._m2.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "StreamingMoments":
        """Rebuild a moments accumulator from a :meth:`state` snapshot."""
        mean = np.asarray(state["mean"], dtype=np.float64)
        m2 = np.asarray(state["m2"], dtype=np.float64)
        count = int(state["count"])
        if mean.ndim != 1 or m2.ndim != 1 or mean.size != m2.size:
            raise ValueError("moments state arrays must be 1-D and equal-sized")
        if count < 0:
            raise ValueError("moments state count must be >= 0")
        moments = cls()
        moments._count = count
        moments._mean = mean.copy()
        moments._m2 = m2.copy()
        return moments

    def mean(self) -> np.ndarray:
        """Running element-wise mean."""
        return self._mean.copy()

    def std(self, *, ddof: int = 0) -> np.ndarray:
        """Running element-wise standard deviation (population by default)."""
        if self._count - ddof <= 0:
            return np.zeros(self._mean.size, dtype=np.float64)
        variance = np.maximum(self._m2 / (self._count - ddof), 0.0)
        return np.sqrt(variance)


def residual_moment_sums(
    degree_fractions: np.ndarray,
    c: float,
    alpha: float,
    *,
    d_min: int = 2,
    d_max: int | None = None,
    clip_negative: bool = True,
) -> Tuple[float, float]:
    """Return ``(Σ d·resid, Σ resid)`` for degrees ``d_min <= d <= d_max``.

    Parameters
    ----------
    degree_fractions:
        Dense vector of observed degree fractions indexed by ``d-1``
        (``degree_fractions[0]`` is the fraction of degree-1 nodes).
    c, alpha:
        Power-law core parameters fitted from the tail (Eq. 4).
    d_min:
        Smallest degree included in the sums (the paper uses 2).
    d_max:
        Largest degree included (default: the whole support).  Restricting
        the sums to the range where the Poisson residual is non-negligible
        makes the estimator far less sensitive to small errors in the fitted
        core ``(c, α)`` accumulating over thousands of tail degrees.
    clip_negative:
        The residual ``f(d) − c d^{-α}`` can dip below zero from sampling
        noise; clipping at zero (default) keeps the moment ratio inside the
        range of the analytic right-hand side.

    Returns
    -------
    (float, float)
        The weighted sum ``Σ d·resid(d)`` and the plain sum ``Σ resid(d)``
        over the selected degree range.
    """
    f = np.asarray(degree_fractions, dtype=np.float64)
    if f.ndim != 1:
        raise ValueError("degree_fractions must be 1-D")
    c = check_nonnegative(c, "c")
    alpha = check_positive(alpha, "alpha")
    if d_min < 1:
        raise ValueError("d_min must be >= 1")
    if d_max is not None and d_max < d_min:
        raise ValueError("d_max must be >= d_min")
    if f.size < d_min:
        return 0.0, 0.0
    d = np.arange(1, f.size + 1, dtype=np.float64)
    resid = f - c * d ** (-alpha)
    if clip_negative:
        resid = np.clip(resid, 0.0, None)
    sel = d >= d_min
    if d_max is not None:
        sel &= d <= d_max
    weighted = float(np.sum(d[sel] * resid[sel]))
    plain = float(np.sum(resid[sel]))
    return weighted, plain


def residual_moment_ratio(
    degree_fractions: np.ndarray,
    c: float,
    alpha: float,
    *,
    d_min: int = 2,
    d_max: int | None = None,
) -> float:
    """The empirical left-hand side ``Σ d·resid / Σ resid`` of the Λ equation.

    Returns ``nan`` when the residual mass is (numerically) zero, which the
    caller interprets as "no detectable unattached component".
    """
    weighted, plain = residual_moment_sums(degree_fractions, c, alpha, d_min=d_min, d_max=d_max)
    if plain <= 1e-15:
        return math.nan
    return weighted / plain


def poisson_moment_rhs(m: float) -> float:
    """Analytic moment ratio of a zero/one-truncated Poisson residual.

    For residuals of the exact Poisson form ``u·m^d/d!`` (``m = λp``), the
    population value of ``Σ_{d>=2} d·resid / Σ_{d>=2} resid`` is

    .. math:: g(m) = \\frac{m\\,(e^{m} - 1)}{e^{m} - m - 1}

    whose Taylor expansion at 0 is ``2 + m/3 + O(m²)`` — the limit quoted in
    the paper.  (The paper prints the numerator as ``Λ + Λ²``; that form is
    inconsistent with its own Taylor limit and diverges as ``Λ → 0``, so this
    library uses the exact expression above as the default and keeps the
    printed variant available as :func:`lambda_moment_rhs` with
    ``form="paper"`` for comparison.)
    """
    m = check_nonnegative(m, "m")
    if m < 1e-8:
        return 2.0 + m / 3.0
    em1 = math.expm1(m)
    return m * em1 / (em1 - m)


def lambda_moment_rhs(Lambda: float, *, form: str = "exact") -> float:
    """Right-hand side of the Λ moment equation (Section IV-B).

    Parameters
    ----------
    Lambda:
        Candidate value of the clustering parameter (``Λ = e·λ·p`` in the
        paper's parameterisation; for ``form="exact"`` the argument is the
        Poisson mean ``m = λ·p`` itself).
    form:
        ``"exact"`` (default) evaluates :func:`poisson_moment_rhs`;
        ``"paper"`` evaluates the literal printed expression
        ``(Λ + Λ²)/(e^Λ − Λ − 1)``.
    """
    Lambda = check_nonnegative(Lambda, "Lambda")
    if form == "exact":
        return poisson_moment_rhs(Lambda)
    if form == "paper":
        if Lambda < 1e-8:
            # the printed expression diverges like 2/Λ as Λ -> 0
            return math.inf if Lambda == 0 else (Lambda + Lambda**2) / (math.expm1(Lambda) - Lambda)
        return (Lambda + Lambda * Lambda) / (math.expm1(Lambda) - Lambda)
    raise ValueError(f"unknown form {form!r}; expected 'exact' or 'paper'")
