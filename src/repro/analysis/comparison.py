"""Goodness-of-fit measures and model comparison.

The paper selects Zipf–Mandelbrot parameters by "minimizing the differences
between the observed differential cumulative distributions" (Section II-B).
This module provides the error measures used for that minimisation and for
the model-comparison experiments:

* :func:`pooled_relative_error` — the log-space error on pooled bins used as
  the fitting objective (robust over the many decades the data span),
* :func:`ks_statistic` — Kolmogorov–Smirnov distance between an empirical
  histogram and a model distribution,
* :func:`chi_square_statistic` — Pearson χ² on pooled bins,
* :func:`log_likelihood` — multinomial log-likelihood of a model pmf, and
* :func:`compare_models` — a one-stop comparison that evaluates several
  candidate models against one observation and ranks them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.analysis.histogram import DegreeHistogram
from repro.analysis.pooling import PooledDistribution, pool_probability_vector

if TYPE_CHECKING:  # pragma: no cover - import avoided at runtime to keep analysis/core acyclic
    from repro.core.distributions import DiscreteDegreeDistribution

__all__ = [
    "pooled_relative_error",
    "ks_statistic",
    "chi_square_statistic",
    "log_likelihood",
    "FitComparison",
    "compare_models",
]

#: Probability floor used when taking logarithms of pooled bins.
_LOG_FLOOR = 1e-300


def pooled_relative_error(
    observed: PooledDistribution,
    model: PooledDistribution,
    *,
    log_space: bool = True,
    weights: np.ndarray | None = None,
) -> float:
    """Mean squared error between two pooled distributions.

    Parameters
    ----------
    observed, model:
        Pooled differential cumulative distributions.  The model is aligned
        onto the observation's bins first; bins where the observation is
        zero are ignored (they carry no information about the fit).
    log_space:
        Compare ``log10`` of the bin probabilities (default), matching how
        the paper's log-log plots weight errors evenly across decades.
    weights:
        Optional per-bin weights (e.g. inverse variance from ``σ(d_i)``).

    Returns
    -------
    float
        Mean (weighted) squared error over the informative bins.
    """
    aligned = model.align_to(observed.bin_edges)
    obs = observed.values
    mod = aligned.values
    mask = obs > 0
    if not np.any(mask):
        return 0.0
    if log_space:
        err = np.log10(np.maximum(obs[mask], _LOG_FLOOR)) - np.log10(np.maximum(mod[mask], _LOG_FLOOR))
    else:
        err = obs[mask] - mod[mask]
    if weights is not None:
        w_full = np.asarray(weights, dtype=np.float64)
        if w_full.shape != obs.shape:
            raise ValueError("weights must have one entry per observed bin")
        w = w_full[mask]
        return float(np.sum(w * err**2) / np.sum(w))
    return float(np.mean(err**2))


def ks_statistic(histogram: DegreeHistogram, model: DiscreteDegreeDistribution) -> float:
    """Kolmogorov–Smirnov distance between an empirical histogram and a model.

    Computed as ``max_d |P_emp(d) − P_model(d)|`` over the observed support.
    """
    if histogram.total == 0:
        return 0.0
    emp_cdf = histogram.cumulative()
    model_cdf = np.asarray(model.cdf(histogram.degrees), dtype=np.float64)
    return float(np.max(np.abs(emp_cdf - model_cdf)))


def chi_square_statistic(
    observed: PooledDistribution,
    model: PooledDistribution,
    *,
    min_probability: float = 1e-12,
) -> float:
    """Pearson χ² between pooled observation and pooled model.

    ``Σ_i (O_i − E_i)² / E_i`` over bins where the model probability exceeds
    *min_probability*, scaled by the number of underlying observations when
    available (``observed.total``), otherwise treated as probabilities.
    """
    aligned = model.align_to(observed.bin_edges)
    scale = observed.total if observed.total > 0 else 1.0
    obs = observed.values * scale
    exp = aligned.values * scale
    mask = aligned.values > min_probability
    if not np.any(mask):
        return float("inf")
    return float(np.sum((obs[mask] - exp[mask]) ** 2 / exp[mask]))


def log_likelihood(histogram: DegreeHistogram, model: DiscreteDegreeDistribution) -> float:
    """Multinomial log-likelihood of *histogram* under *model*.

    Degrees outside the model support (or with zero model probability)
    contribute ``-inf``, signalling an inadmissible model.
    """
    if histogram.total == 0:
        return 0.0
    pmf = np.asarray(model.pmf(histogram.degrees), dtype=np.float64)
    if np.any(pmf <= 0):
        return float("-inf")
    return float(np.dot(histogram.counts, np.log(pmf)))


@dataclass(frozen=True)
class FitComparison:
    """Result of comparing one model against one observation."""

    name: str
    n_parameters: int
    pooled_error: float
    ks: float
    chi_square: float
    log_lik: float
    aic: float

    def as_row(self) -> dict:
        """Dictionary form for tabular printing."""
        return {
            "model": self.name,
            "k": self.n_parameters,
            "pooled_log_mse": self.pooled_error,
            "ks": self.ks,
            "chi2": self.chi_square,
            "loglik": self.log_lik,
            "aic": self.aic,
        }


def compare_models(
    histogram: DegreeHistogram,
    observed_pooled: PooledDistribution,
    models: Mapping[str, DiscreteDegreeDistribution],
    *,
    n_parameters: Mapping[str, int] | None = None,
) -> Sequence[FitComparison]:
    """Evaluate several candidate models against one observation.

    Parameters
    ----------
    histogram:
        Empirical degree histogram (for KS and likelihood).
    observed_pooled:
        The pooled differential cumulative distribution of the same data
        (for the pooled log-MSE and χ² columns).
    models:
        Mapping from model name to a fitted distribution whose support covers
        ``histogram.dmax``.
    n_parameters:
        Number of free parameters per model, used for the AIC column
        (defaults to 1 for every model).

    Returns
    -------
    list of FitComparison
        Sorted by ascending pooled error (best fit first).
    """
    results = []
    for name, model in models.items():
        k = 1 if n_parameters is None else int(n_parameters.get(name, 1))
        model_pooled = pool_probability_vector(model.probabilities())
        err = pooled_relative_error(observed_pooled, model_pooled)
        ks = ks_statistic(histogram, model)
        chi2 = chi_square_statistic(observed_pooled, model_pooled)
        ll = log_likelihood(histogram, model)
        aic = 2.0 * k - 2.0 * ll if np.isfinite(ll) else float("inf")
        results.append(
            FitComparison(
                name=name,
                n_parameters=k,
                pooled_error=err,
                ks=ks,
                chi_square=chi2,
                log_lik=ll,
                aic=aic,
            )
        )
    results.sort(key=lambda r: r.pooled_error)
    return results
