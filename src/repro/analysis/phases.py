"""Phase-segmented windowed analysis and the drift statistic.

The paper pools per-window distributions under the assumption that every
window is drawn from the *same* stationary traffic graph, so pooling across
the whole trace is meaningful.  A scenario (:mod:`repro.scenarios`) breaks
that assumption on purpose: the stream moves through phases with different
substrates.  This module attributes each analysis window to the phase it
(mostly) falls in, folds per-phase pooled distributions with the same
in-order Welford fold the engine uses (so per-phase results inherit the
cross-backend bit-identity guarantee), and quantifies how much the pooled
statistics actually moved between adjacent phases:

    drift per bin  =  |Δ mean| / sqrt(σ_a² + σ_b²)

— a per-bin standardised mean difference.  Near-zero drift on a stationary
scenario and large drift across a regime change is the quantitative version
of "the paper's pooling assumption held / did not hold here".

Attribution is by window *midpoint*: window ``k`` covers valid packets
``[k·N_V, (k+1)·N_V)`` of the stream, and is assigned to the phase owning
valid packet ``k·N_V + N_V//2``.  Every window lands in exactly one phase
(the assignment is a function), which the property harness checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro._util.validation import check_positive_int
from repro.analysis.moments import StreamingMoments
from repro.analysis.pooling import PooledDistribution, pool_differential_cumulative

__all__ = ["PhaseDrift", "PhaseSegmentedAnalysis", "PhaseSegmentedAnalyzer"]


@dataclass(frozen=True)
class PhaseDrift:
    """Standardised pooled-mean drift between two adjacent phases.

    Attributes
    ----------
    phase_a / phase_b:
        The adjacent phase indices compared (``phase_b == phase_a + 1``
        among phases that received at least one window).
    per_bin:
        ``|Δmean| / sqrt(σ_a² + σ_b²)`` per binary-log bin; bins where both
        σ vanish are 0 when the means agree and ``inf`` when they differ.
    score:
        The scenario-level headline number: the mean per-bin drift, which
        is ``inf`` when any bin drifted with zero variance (a zero-variance
        mean shift is infinitely significant — typical when a phase held a
        single window) and 0 only when the phases pooled identically.
    """

    phase_a: int
    phase_b: int
    per_bin: np.ndarray
    score: float


def _pad(vector: np.ndarray, n_bins: int) -> np.ndarray:
    """Zero-pad a pooled vector up to *n_bins* (bins beyond dmax hold 0)."""
    if vector.size >= n_bins:
        return vector
    return np.concatenate([vector, np.zeros(n_bins - vector.size)])


def drift_between(a: PooledDistribution, b: PooledDistribution) -> tuple[np.ndarray, float]:
    """Per-bin standardised drift between two pooled distributions."""
    n_bins = max(a.n_bins, b.n_bins)
    mean_a, mean_b = _pad(a.values, n_bins), _pad(b.values, n_bins)
    sigma_a = _pad(a.sigma if a.sigma is not None else np.zeros(a.n_bins), n_bins)
    sigma_b = _pad(b.sigma if b.sigma is not None else np.zeros(b.n_bins), n_bins)
    delta = np.abs(mean_b - mean_a)
    scale = np.sqrt(sigma_a**2 + sigma_b**2)
    with np.errstate(divide="ignore", invalid="ignore"):
        per_bin = np.where(scale > 0, delta / np.where(scale > 0, scale, 1.0),
                           np.where(delta > 0, np.inf, 0.0))
    # a zero-variance mean shift must dominate the score, not be dropped —
    # averaging only the finite bins would report 0 drift for (e.g.) phases
    # holding a single window each, exactly when the shift is most stark
    score = float(per_bin.mean()) if per_bin.size else 0.0
    return per_bin, score


class PhaseSegmentedAnalyzer:
    """Incremental consumer folding window results into per-phase aggregates.

    Mirrors :class:`repro.streaming.pipeline.StreamAnalyzer` but keyed by
    phase: feed window results *in stream order* via :meth:`update`; each is
    attributed through *phase_of_valid_index* (any callable mapping a global
    valid-packet index to a phase index — e.g.
    :meth:`repro.scenarios.ScenarioTraceSource.phase_of_valid_index`) and
    folded into that phase's running pooled moments.  State is O(phases ×
    quantities × bins), independent of window count, so phase segmentation
    rides along with bounded-memory streaming runs for free.
    """

    def __init__(
        self,
        n_valid: int,
        n_phases: int,
        phase_of_valid_index: Callable[[int], int],
        quantities: Sequence[str],
    ) -> None:
        self.n_valid = check_positive_int(n_valid, "n_valid")
        self.n_phases = check_positive_int(n_phases, "n_phases")
        self.quantities = tuple(quantities)
        self._phase_of = phase_of_valid_index
        self._moments = [
            {q: StreamingMoments() for q in self.quantities} for _ in range(self.n_phases)
        ]
        self._totals = [{q: 0 for q in self.quantities} for _ in range(self.n_phases)]
        self._window_phase: list[int] = []

    def update(self, result, *, pooled: Mapping[str, PooledDistribution] | None = None) -> None:
        """Attribute one :class:`WindowResult` (in stream order) and fold it.

        *pooled* optionally supplies the window's already-pooled
        distributions (keyed by quantity) to share the pooling work with a
        :class:`~repro.streaming.pipeline.StreamAnalyzer` consuming the same
        stream; entries must equal
        ``pool_differential_cumulative(result.histograms[q])``.
        """
        window = len(self._window_phase)
        midpoint = window * self.n_valid + self.n_valid // 2
        phase = int(self._phase_of(midpoint))
        if not 0 <= phase < self.n_phases:
            raise ValueError(f"phase attribution returned {phase}, outside 0..{self.n_phases - 1}")
        self._window_phase.append(phase)
        for quantity in self.quantities:
            window_pooled = (
                pooled[quantity] if pooled is not None and quantity in pooled
                else pool_differential_cumulative(result.histograms[quantity])
            )
            self._moments[phase][quantity].update(window_pooled.values)
            self._totals[phase][quantity] += window_pooled.total

    def result(self) -> "PhaseSegmentedAnalysis":
        """Finalize into an immutable :class:`PhaseSegmentedAnalysis`."""
        pooled: list[dict[str, PooledDistribution] | None] = []
        for phase in range(self.n_phases):
            if not any(m.count for m in self._moments[phase].values()):
                pooled.append(None)
                continue
            per_quantity = {}
            for quantity in self.quantities:
                moments = self._moments[phase][quantity]
                edges = 2 ** np.arange(moments.n_bins, dtype=np.int64)
                per_quantity[quantity] = PooledDistribution(
                    bin_edges=edges,
                    values=moments.mean(),
                    sigma=moments.std(ddof=0),
                    total=self._totals[phase][quantity],
                )
            pooled.append(per_quantity)
        return PhaseSegmentedAnalysis(
            n_valid=self.n_valid,
            quantities=self.quantities,
            window_phase=np.asarray(self._window_phase, dtype=np.int64),
            _pooled=tuple(pooled),
        )


@dataclass(frozen=True, eq=False)
class PhaseSegmentedAnalysis:
    """Per-phase pooled distributions of one windowed run, plus drift.

    Attributes
    ----------
    n_valid:
        Window size the run used.
    quantities:
        Quantity names analysed.
    window_phase:
        Phase index of every window, in stream order — a partition: each
        window appears in exactly one phase.
    """

    n_valid: int
    quantities: tuple[str, ...]
    window_phase: np.ndarray
    _pooled: tuple[Mapping[str, PooledDistribution] | None, ...]

    @property
    def n_phases(self) -> int:
        """Number of phases the attribution covered (including empty ones)."""
        return len(self._pooled)

    @property
    def n_windows(self) -> int:
        """Total windows attributed across all phases."""
        return int(self.window_phase.size)

    def windows_in_phase(self, phase: int) -> int:
        """Number of windows attributed to one phase."""
        return int(np.count_nonzero(self.window_phase == phase))

    def pooled(self, phase: int, quantity: str) -> PooledDistribution:
        """Pooled distribution of one quantity over one phase's windows."""
        if quantity not in self.quantities:
            raise KeyError(f"quantity {quantity!r} was not analysed; available: {list(self.quantities)}")
        per_quantity = self._pooled[phase]
        if per_quantity is None:
            raise ValueError(f"phase {phase} received no complete windows; nothing to pool")
        return per_quantity[quantity]

    def occupied_phases(self) -> tuple[int, ...]:
        """Phases that received at least one window, in order."""
        return tuple(i for i, p in enumerate(self._pooled) if p is not None)

    def drift(self, quantity: str) -> tuple[PhaseDrift, ...]:
        """Drift between each pair of *adjacent occupied* phases."""
        occupied = self.occupied_phases()
        drifts = []
        for a, b in zip(occupied, occupied[1:]):
            per_bin, score = drift_between(self.pooled(a, quantity), self.pooled(b, quantity))
            drifts.append(PhaseDrift(phase_a=a, phase_b=b, per_bin=per_bin, score=score))
        return tuple(drifts)

    def max_drift(self, quantity: str) -> float:
        """Largest adjacent-phase drift score (0 for single-phase runs)."""
        drifts = self.drift(quantity)
        return max((d.score for d in drifts), default=0.0)

    def as_rows(self, quantity: str) -> list[dict]:
        """Per-phase summary rows (for tables / the CLI)."""
        rows = []
        drift_by_pair = {d.phase_b: d.score for d in self.drift(quantity)}
        for phase in range(self.n_phases):
            row: dict[str, object] = {"phase": phase, "windows": self.windows_in_phase(phase)}
            if self._pooled[phase] is not None:
                pooled = self.pooled(phase, quantity)
                row["D(d=1)"] = round(float(pooled.values[0]), 4) if pooled.n_bins else 0.0
                row["bins"] = pooled.n_bins
                row["drift_vs_prev"] = round(drift_by_pair[phase], 4) if phase in drift_by_pair else ""
            else:
                row["D(d=1)"] = ""
                row["bins"] = 0
                row["drift_vs_prev"] = ""
            rows.append(row)
        return rows
