"""Degree histograms and probability distributions.

Section II-A of the paper defines, for a network quantity ``d`` computed
from the window matrix ``A_t``:

* the histogram ``n_t(d)`` — number of nodes (or links) whose quantity
  equals ``d``,
* the probability ``p_t(d) = n_t(d) / Σ_d n_t(d)``, and
* the cumulative probability ``P_t(d) = Σ_{i<=d} p_t(i)``.

:class:`DegreeHistogram` bundles those three views with the raw degree
values so downstream pooling and fitting never have to recompute them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro._util.validation import check_integer_array

__all__ = [
    "DegreeHistogram",
    "degree_histogram",
    "probability_from_counts",
    "cumulative_probability",
]


@dataclass(frozen=True)
class DegreeHistogram:
    """Histogram of a positive-integer network quantity.

    Attributes
    ----------
    degrees:
        Sorted, unique degree values with non-zero counts.
    counts:
        Number of observations at each degree (same length as *degrees*).
    """

    degrees: np.ndarray
    counts: np.ndarray
    _dense_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        degrees = check_integer_array(self.degrees, "degrees", minimum=1)
        counts = check_integer_array(self.counts, "counts", minimum=0)
        if degrees.shape != counts.shape:
            raise ValueError("degrees and counts must have the same shape")
        if degrees.size and np.any(np.diff(degrees) <= 0):
            raise ValueError("degrees must be strictly increasing")
        object.__setattr__(self, "degrees", degrees)
        object.__setattr__(self, "counts", counts)

    # -- basic quantities ----------------------------------------------------

    @property
    def total(self) -> int:
        """Total number of observations ``Σ_d n(d)``."""
        return int(self.counts.sum())

    @property
    def dmax(self) -> int:
        """Largest observed degree (``argmax(D(d) > 0)`` in the paper, Eq. 1)."""
        return int(self.degrees[-1]) if self.degrees.size else 0

    def probability(self) -> np.ndarray:
        """Empirical probability ``p(d)`` aligned with :attr:`degrees`."""
        if self.total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / self.total

    def cumulative(self) -> np.ndarray:
        """Empirical cumulative probability ``P(d)`` aligned with :attr:`degrees`."""
        return np.cumsum(self.probability())

    def dense_counts(self, dmax: int | None = None) -> np.ndarray:
        """Counts on the dense support ``1..dmax`` (zeros where unobserved)."""
        dmax = int(dmax) if dmax is not None else self.dmax
        if dmax < 1:
            return np.zeros(0, dtype=np.int64)
        key = ("dense", dmax)
        if key not in self._dense_cache:
            dense = np.zeros(dmax, dtype=np.int64)
            mask = self.degrees <= dmax
            dense[self.degrees[mask] - 1] = self.counts[mask]
            self._dense_cache[key] = dense
        return self._dense_cache[key].copy()

    def dense_probability(self, dmax: int | None = None) -> np.ndarray:
        """Probability on the dense support ``1..dmax``."""
        dense = self.dense_counts(dmax)
        total = self.total
        if total == 0:
            return dense.astype(np.float64)
        return dense / total

    def fraction_at(self, d: int) -> float:
        """Fraction of observations with quantity exactly *d* (e.g. ``D(d=1)``)."""
        idx = np.searchsorted(self.degrees, d)
        if idx < self.degrees.size and self.degrees[idx] == d and self.total > 0:
            return float(self.counts[idx] / self.total)
        return 0.0

    def merge(self, other: "DegreeHistogram") -> "DegreeHistogram":
        """Combine two histograms by summing counts degree-by-degree."""
        dmax = max(self.dmax, other.dmax)
        if dmax < 1:
            return DegreeHistogram._from_dense_trusted(np.zeros(0, dtype=np.int64))
        # both degree vectors are unique, so direct fancy-index scatters are
        # exact; the result is identical to summing the dense count vectors
        dense = np.zeros(dmax, dtype=np.int64)
        dense[self.degrees - 1] = self.counts
        dense[other.degrees - 1] += other.counts
        return DegreeHistogram._from_dense_trusted(dense)

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def from_dense(dense_counts: Sequence[int]) -> "DegreeHistogram":
        """Build a histogram from a dense count vector indexed by ``d-1``."""
        dense = check_integer_array(dense_counts, "dense_counts", minimum=0)
        nz = np.nonzero(dense)[0]
        return DegreeHistogram(degrees=nz + 1, counts=dense[nz])

    @classmethod
    def _from_dense_trusted(cls, dense: np.ndarray) -> "DegreeHistogram":
        """Internal fast path over :meth:`from_dense` for kernel-produced counts.

        *dense* must be a 1-D non-negative integer count vector indexed by
        ``d-1`` (exactly what :meth:`from_dense` validates); the constructor
        checks are skipped because re-validating every histogram dominated
        the fused window kernel's runtime.  Produces an instance
        attribute-identical to the validated path.
        """
        nz = np.flatnonzero(dense)
        self = object.__new__(cls)
        object.__setattr__(self, "degrees", (nz + 1).astype(np.int64, copy=False))
        object.__setattr__(self, "counts", dense[nz].astype(np.int64, copy=False))
        object.__setattr__(self, "_dense_cache", {})
        return self

    @classmethod
    def _from_unique_trusted(cls, degrees: np.ndarray, counts: np.ndarray) -> "DegreeHistogram":
        """Internal fast path for ``np.unique(..., return_counts=True)`` output.

        *degrees* must already be sorted, unique, ``>= 1`` and the same
        length as *counts* — exactly what ``np.unique`` over a positive
        integer array produces, so the sketch estimators skip the
        constructor checks the same way the fused kernel does via
        :meth:`_from_dense_trusted`.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "degrees", degrees.astype(np.int64, copy=False))
        object.__setattr__(self, "counts", counts.astype(np.int64, copy=False))
        object.__setattr__(self, "_dense_cache", {})
        return self

    @staticmethod
    def from_values(values: Sequence[int]) -> "DegreeHistogram":
        """Build a histogram from raw per-node/per-link quantity values."""
        return degree_histogram(values)


def degree_histogram(values: Sequence[int]) -> DegreeHistogram:
    """Histogram the raw quantity *values* (all must be >= 1).

    Values equal to zero are rejected: the paper's quantities (packets,
    fan-in/out, link packets) are strictly positive for observed entities;
    zero-degree nodes are by construction invisible to the observatory.
    """
    arr = check_integer_array(values, "values")
    if arr.size == 0:
        return DegreeHistogram(degrees=np.zeros(0, dtype=np.int64), counts=np.zeros(0, dtype=np.int64))
    if np.any(arr < 1):
        raise ValueError("values must be >= 1; zero-degree entities are unobservable")
    degrees, counts = np.unique(arr, return_counts=True)
    return DegreeHistogram(degrees=degrees, counts=counts)


def probability_from_counts(counts: Sequence[int]) -> np.ndarray:
    """Normalise a dense count vector into a probability vector.

    An all-zero input returns an all-zero output rather than raising, which
    lets callers treat empty windows uniformly.
    """
    arr = np.asarray(counts, dtype=np.float64)
    total = arr.sum()
    if total <= 0:
        return np.zeros_like(arr)
    return arr / total


def cumulative_probability(probability: Sequence[float]) -> np.ndarray:
    """Cumulative sum of a probability vector (``P_t(d)`` in the paper)."""
    arr = np.asarray(probability, dtype=np.float64)
    return np.cumsum(arr)
