"""Binary-logarithmic pooling of degree distributions.

The paper compares every data set and every model through the *differential
cumulative probability* pooled in binary-logarithmic bins (Section II-A):

``D_t(d_i) = P_t(d_i) − P_t(d_{i−1})`` with ``d_i = 2^i``.

That is: the total probability mass falling in the half-open degree interval
``(2^{i−1}, 2^i]``.  Using the same pooling for observations and for model
curves makes the comparison consistent across data sets whose supports span
five or more orders of magnitude.

:func:`pool_differential_cumulative` pools one histogram or one model pmf;
:func:`aggregate_pooled` combines the pooled vectors of many consecutive
windows into the per-bin mean ``D(d_i)`` and standard deviation ``σ(d_i)``
reported in Figure 3's error bars.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util.validation import check_positive_int
from repro.analysis.histogram import DegreeHistogram

__all__ = [
    "PooledDistribution",
    "log2_bin_edges",
    "log2_bin_index",
    "pool_differential_cumulative",
    "pool_probability_vector",
    "aggregate_pooled",
]


def log2_bin_edges(dmax: int) -> np.ndarray:
    """Upper bin edges ``d_i = 2^i`` needed to cover degrees ``1..dmax``.

    The first edge is ``2^0 = 1`` (the bin containing only ``d = 1``) and the
    last edge is the smallest power of two ``>= dmax``.
    """
    dmax = check_positive_int(dmax, "dmax")
    n_bins = int(np.ceil(np.log2(dmax))) + 1 if dmax > 1 else 1
    return 2 ** np.arange(n_bins, dtype=np.int64)


def _log2_bin_index_unchecked(arr: np.ndarray) -> np.ndarray:
    """The binning formula of :func:`log2_bin_index`, minus the >= 1 guard.

    The single definition of the bin rule — shared by the validated public
    helper and the hot pooling path (whose degrees are already validated by
    :class:`~repro.analysis.histogram.DegreeHistogram`).
    """
    return np.ceil(np.log2(arr.astype(np.float64))).astype(np.int64)


def log2_bin_index(degrees: np.ndarray) -> np.ndarray:
    """Index ``i`` of the bin ``(2^{i-1}, 2^i]`` containing each degree.

    Degree 1 maps to bin 0, degree 2 to bin 1, degrees 3–4 to bin 2,
    degrees 5–8 to bin 3, and so on.
    """
    arr = np.asarray(degrees, dtype=np.int64)
    if np.any(arr < 1):
        raise ValueError("degrees must be >= 1")
    return _log2_bin_index_unchecked(arr)


@dataclass(frozen=True)
class PooledDistribution:
    """Differential cumulative probability pooled in binary-log bins.

    Attributes
    ----------
    bin_edges:
        Upper bin edges ``d_i = 2^i``; ``bin_edges[i]`` closes bin ``i``.
    values:
        Pooled probabilities ``D(d_i)``; same length as *bin_edges*.
    sigma:
        Per-bin standard deviation across windows, or ``None`` for a single
        window / analytic model curve.
    total:
        Number of underlying observations (0 for analytic curves).
    """

    bin_edges: np.ndarray
    values: np.ndarray
    sigma: np.ndarray | None = None
    total: int = 0

    def __post_init__(self) -> None:
        edges = np.asarray(self.bin_edges, dtype=np.int64)
        values = np.asarray(self.values, dtype=np.float64)
        if edges.ndim != 1 or values.ndim != 1 or edges.shape != values.shape:
            raise ValueError("bin_edges and values must be 1-D arrays of equal length")
        if edges.size and np.any(edges < 1):
            raise ValueError("bin edges must be >= 1")
        sigma = self.sigma
        if sigma is not None:
            sigma = np.asarray(sigma, dtype=np.float64)
            if sigma.shape != values.shape:
                raise ValueError("sigma must have the same shape as values")
        object.__setattr__(self, "bin_edges", edges)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "sigma", sigma)

    @property
    def n_bins(self) -> int:
        """Number of logarithmic bins."""
        return int(self.bin_edges.size)

    def nonzero(self) -> "PooledDistribution":
        """Restrict to bins with strictly positive pooled probability."""
        mask = self.values > 0
        return PooledDistribution(
            bin_edges=self.bin_edges[mask],
            values=self.values[mask],
            sigma=None if self.sigma is None else self.sigma[mask],
            total=self.total,
        )

    def align_to(self, edges: np.ndarray) -> "PooledDistribution":
        """Re-express this pooled vector on the given *edges* (zero-filled).

        Bins present here but absent from *edges* are dropped; bins in
        *edges* with no counterpart here get probability zero.  Used to
        compare distributions measured on windows with different ``dmax``.
        """
        edges = np.asarray(edges, dtype=np.int64)
        values = np.zeros(edges.size, dtype=np.float64)
        sigma = None if self.sigma is None else np.zeros(edges.size, dtype=np.float64)
        pos = {int(e): i for i, e in enumerate(edges)}
        for j, e in enumerate(self.bin_edges):
            i = pos.get(int(e))
            if i is not None:
                values[i] = self.values[j]
                if sigma is not None and self.sigma is not None:
                    sigma[i] = self.sigma[j]
        return PooledDistribution(bin_edges=edges, values=values, sigma=sigma, total=self.total)

    def probability_sum(self) -> float:
        """Total pooled probability (≈ 1 for a full distribution)."""
        return float(self.values.sum())

    @classmethod
    def _trusted(
        cls,
        bin_edges: np.ndarray,
        values: np.ndarray,
        sigma: np.ndarray | None,
        total: int,
    ) -> "PooledDistribution":
        """Internal fast constructor for already-validated arrays.

        The per-window pooling fold constructs one of these per quantity per
        window; skipping ``__post_init__`` re-validation for arrays the
        pooling code just built keeps the single-pass engine's fold cheap.
        Inputs must already satisfy the constructor contract (int64 edges,
        float64 values of equal length).
        """
        self = object.__new__(cls)
        object.__setattr__(self, "bin_edges", bin_edges)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "sigma", sigma)
        object.__setattr__(self, "total", total)
        return self


def pool_differential_cumulative(
    histogram: DegreeHistogram,
    *,
    n_bins: int | None = None,
) -> PooledDistribution:
    """Pool a degree histogram into the differential cumulative form.

    Parameters
    ----------
    histogram:
        Empirical degree histogram ``n_t(d)``.
    n_bins:
        Force this many bins (useful to align several windows); by default
        just enough bins to cover ``histogram.dmax``.

    Returns
    -------
    PooledDistribution
        ``D_t(d_i)`` over the bins ``d_i = 2^i``.
    """
    total = histogram.total
    if total == 0:
        edges = 2 ** np.arange(n_bins or 0, dtype=np.int64)
        return PooledDistribution(bin_edges=edges, values=np.zeros(edges.size), total=0)
    edges = log2_bin_edges(histogram.dmax)
    if n_bins is not None:
        n_bins = check_positive_int(n_bins, "n_bins")
        if n_bins < edges.size:
            raise ValueError(
                f"n_bins={n_bins} cannot cover dmax={histogram.dmax} (needs {edges.size} bins)"
            )
        edges = 2 ** np.arange(n_bins, dtype=np.int64)
    # histogram degrees are validated >= 1, so the unchecked index is safe;
    # the weighted bincount accumulates per-bin probabilities in the same
    # input order as the historical np.add.at scatter — bit-identical values
    bin_idx = _log2_bin_index_unchecked(histogram.degrees)
    values = np.bincount(bin_idx, weights=histogram.probability(), minlength=edges.size)
    return PooledDistribution._trusted(edges, values, None, total)


def pool_probability_vector(probability: Sequence[float]) -> PooledDistribution:
    """Pool a dense model pmf (indexed by ``d-1``) into binary-log bins.

    This is how analytic model curves (Zipf–Mandelbrot, PALU) are brought
    onto the same axes as pooled measurements before fitting or plotting.
    """
    p = np.asarray(probability, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("probability must be a non-empty 1-D vector")
    if np.any(p < 0):
        raise ValueError("probability entries must be non-negative")
    dmax = p.size
    edges = log2_bin_edges(dmax)
    degrees = np.arange(1, dmax + 1, dtype=np.int64)
    bin_idx = log2_bin_index(degrees)
    values = np.zeros(edges.size, dtype=np.float64)
    np.add.at(values, bin_idx, p)
    return PooledDistribution(bin_edges=edges, values=values, total=0)


def aggregate_pooled(pooled: Sequence[PooledDistribution]) -> PooledDistribution:
    """Combine pooled vectors from consecutive windows into mean ``D`` and ``σ``.

    The result spans the union of the input bin ranges; windows that do not
    reach a given bin contribute probability zero there, matching how the
    paper aggregates many consecutive equal-``N_V`` windows.
    """
    pooled = list(pooled)
    if not pooled:
        raise ValueError("aggregate_pooled requires at least one pooled distribution")
    n_bins = max(p.n_bins for p in pooled)
    edges = 2 ** np.arange(n_bins, dtype=np.int64)
    stacked = np.zeros((len(pooled), n_bins), dtype=np.float64)
    for row, p in enumerate(pooled):
        aligned = p.align_to(edges)
        stacked[row] = aligned.values
    mean = stacked.mean(axis=0)
    sigma = stacked.std(axis=0, ddof=0)
    total = int(sum(p.total for p in pooled))
    return PooledDistribution(bin_edges=edges, values=mean, sigma=sigma, total=total)
