"""Text-mode rendering of pooled distributions and fits.

The reproduction intentionally has no plotting dependency, so this module
renders the paper's log-log panels as fixed-width text: each binary-log bin
becomes one row with a bar whose length is proportional to ``log10 D(d_i)``,
optionally overlaid with the model value and the ±1σ band.  The output is
meant for terminals, logs, and EXPERIMENTS.md — a faithful, if humble,
stand-in for the Figure-3/Figure-4 axes.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.pooling import PooledDistribution

__all__ = ["render_pooled_panel", "render_series_comparison"]

#: Character used for the observation bars.
_BAR_CHAR = "█"
#: Character used to mark the model value on a bar row.
_MODEL_MARK = "│"


def _bar_position(value: float, floor: float, ceiling: float, width: int) -> int:
    """Map a probability onto a column in [0, width] on a log10 scale."""
    if value <= 0:
        return 0
    log_v = math.log10(value)
    span = ceiling - floor
    if span <= 0:
        return width
    return int(round(np.clip((log_v - floor) / span, 0.0, 1.0) * width))


def render_pooled_panel(
    observed: PooledDistribution,
    model: PooledDistribution | None = None,
    *,
    title: str = "",
    width: int = 48,
) -> str:
    """Render one Figure-3-style panel as text.

    Parameters
    ----------
    observed:
        Pooled differential cumulative observation (mean and optional σ).
    model:
        Optional pooled model curve (e.g. the fitted Zipf–Mandelbrot) drawn
        as a marker on each row; aligned onto the observation's bins.
    title:
        Panel caption printed above the axes.
    width:
        Bar width in characters.

    Returns
    -------
    str
        A multi-line text block; one row per non-empty bin.
    """
    if width < 8:
        raise ValueError("width must be at least 8 characters")
    mask = observed.values > 0
    if not np.any(mask):
        return f"{title}\n(empty distribution)"
    values = observed.values
    model_values = None
    if model is not None:
        model_values = model.align_to(observed.bin_edges).values

    positive = values[mask]
    candidates = [positive.min()]
    if model_values is not None and np.any(model_values[mask] > 0):
        candidates.append(model_values[mask][model_values[mask] > 0].min())
    floor = math.floor(math.log10(min(candidates))) - 0.25
    ceiling = 0.0  # probabilities never exceed 1

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'d_i':>9}  {'D(d_i)':>10}  " + "log10 scale " + "-" * (width - 12))
    for i in range(observed.n_bins):
        value = values[i]
        if value <= 0:
            continue
        bar_len = _bar_position(value, floor, ceiling, width)
        bar = _BAR_CHAR * bar_len
        if model_values is not None and model_values[i] > 0:
            mark = _bar_position(model_values[i], floor, ceiling, width)
            padded = list(bar.ljust(width))
            padded[min(mark, width - 1)] = _MODEL_MARK
            bar = "".join(padded).rstrip()
        sigma = ""
        if observed.sigma is not None and observed.sigma[i] > 0:
            sigma = f"  ±{observed.sigma[i]:.1e}"
        lines.append(f"{int(observed.bin_edges[i]):>9}  {value:>10.3e}  {bar}{sigma}")
    if model is not None:
        lines.append(f"(observation = {_BAR_CHAR} bars, model = {_MODEL_MARK} marker)")
    return "\n".join(lines)


def render_series_comparison(
    bin_edges: np.ndarray,
    series: Sequence[tuple],
    *,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render several pooled series side by side as a text table.

    Parameters
    ----------
    bin_edges:
        Common bin edges (``d_i = 2^i``).
    series:
        Sequence of ``(label, values)`` pairs aligned with *bin_edges*.
    title:
        Caption printed above the table.
    precision:
        Significant digits for the probabilities.

    Returns
    -------
    str
        A text table with one row per bin and one column per series, used by
        the Figure-4 harness to print the ZM reference next to the PALU(r)
        family members.
    """
    edges = np.asarray(bin_edges, dtype=np.int64)
    labels = [label for label, _ in series]
    columns = []
    for label, values in series:
        arr = np.asarray(values, dtype=np.float64)
        if arr.shape != edges.shape:
            raise ValueError(f"series {label!r} has {arr.size} values for {edges.size} bins")
        columns.append(arr)
    header = f"{'d_i':>9}  " + "  ".join(f"{label:>12}" for label in labels)
    lines = [title, header, "-" * len(header)] if title else [header, "-" * len(header)]
    for i, edge in enumerate(edges):
        row_values = "  ".join(
            f"{columns[j][i]:>12.{precision}e}" if columns[j][i] > 0 else f"{'—':>12}"
            for j in range(len(columns))
        )
        lines.append(f"{int(edge):>9}  {row_values}")
    return "\n".join(lines)
