"""Statistical analysis of observed networks and degree data.

This subpackage implements the measurement side of the paper's Section II:
degree histograms, the binary-logarithmic *pooling* of differential
cumulative probabilities, cross-window means and standard deviations, the
residual-moment sums used by the PALU ``Λ`` estimator, topological
decomposition of traffic graphs (core / supernode leaves / core leaves /
unattached links, Figure 2), and goodness-of-fit comparisons between
empirical and model distributions.
"""

from repro.analysis.clustering import (
    average_clustering,
    clustering_by_degree,
    clustering_summary,
    local_clustering,
)
from repro.analysis.comparison import (
    FitComparison,
    chi_square_statistic,
    compare_models,
    ks_statistic,
    log_likelihood,
    pooled_relative_error,
)
from repro.analysis.histogram import (
    DegreeHistogram,
    cumulative_probability,
    degree_histogram,
    probability_from_counts,
)
from repro.analysis.moments import StreamingMoments, residual_moment_ratio, residual_moment_sums
from repro.analysis.phases import PhaseDrift, PhaseSegmentedAnalysis, PhaseSegmentedAnalyzer
from repro.analysis.pooling import (
    PooledDistribution,
    aggregate_pooled,
    log2_bin_edges,
    log2_bin_index,
    pool_differential_cumulative,
)
from repro.analysis.reporting import render_pooled_panel, render_series_comparison
from repro.analysis.summary import NetworkSummary, format_table, summarize_graph, summarize_window
from repro.analysis.topology import (
    TopologyDecomposition,
    decompose_topology,
    find_supernodes,
    max_degree,
)

__all__ = [
    "average_clustering",
    "clustering_by_degree",
    "clustering_summary",
    "local_clustering",
    "FitComparison",
    "chi_square_statistic",
    "compare_models",
    "ks_statistic",
    "log_likelihood",
    "pooled_relative_error",
    "DegreeHistogram",
    "cumulative_probability",
    "degree_histogram",
    "probability_from_counts",
    "StreamingMoments",
    "residual_moment_ratio",
    "residual_moment_sums",
    "PhaseDrift",
    "PhaseSegmentedAnalysis",
    "PhaseSegmentedAnalyzer",
    "PooledDistribution",
    "aggregate_pooled",
    "log2_bin_edges",
    "log2_bin_index",
    "pool_differential_cumulative",
    "NetworkSummary",
    "format_table",
    "render_pooled_panel",
    "render_series_comparison",
    "summarize_graph",
    "summarize_window",
    "TopologyDecomposition",
    "decompose_topology",
    "find_supernodes",
    "max_degree",
]
