"""Detection riding the single-pass engine: :class:`DetectingAnalyzer`.

The PR-1 engine folds window results into a
:class:`~repro.streaming.pipeline.StreamAnalyzer` in stream order on every
execution backend.  :class:`DetectingAnalyzer` wraps that analyzer and
feeds the same in-order result stream to a set of
:class:`~repro.detect.detectors.DriftDetector`\\ s — so online change-point
detection works unchanged with the serial, process, and streaming backends,
costs one extra O(bins) pass per window, and inherits the engine's
bit-identity guarantee: the alarm sequence is identical on every backend
and invariant to chunking.

Detection is tier-agnostic: detectors score pooled vectors, never raw
windows, so wrapping a sketch-mode analyzer
(``StreamAnalyzer(..., mode="sketch")``) monitors the sketch-estimated
histograms with the same code path — drift alarms at line rate in
O(sketch) memory per window, still deterministic per sketch seed and
bit-identical across backends (pinned by ``tests/test_detect_sketch_golden.py``).

The wrapper is API-compatible with ``StreamAnalyzer`` where it matters
(``update`` / ``result`` / ``n_windows``), so it drops into any fold loop::

    analyzer = DetectingAnalyzer(StreamAnalyzer(n_valid), ("ewma", "cusum"))
    for result in backend.map(analyze_window, windows):
        analyzer.update(result)
    analysis = analyzer.result(stats={"backend": backend.name})
    analyzer.detection().alarms["cusum"]     # window indices that alarmed
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Union

from repro.analysis.pooling import PooledDistribution, pool_differential_cumulative
from repro.detect.detectors import DriftDetector, make_detectors
from repro.streaming.pipeline import StreamAnalyzer, WindowedAnalysis, WindowResult

__all__ = ["DEFAULT_DETECT_QUANTITY", "DetectionResult", "DetectingAnalyzer"]

#: Quantity the detectors monitor when the caller does not choose one: the
#: same headline quantity the scenario drift statistic reports on.  Falls
#: back to the first analysed quantity when it is not being analysed.
DEFAULT_DETECT_QUANTITY = "source_fanout"


@dataclass(frozen=True)
class DetectionResult:
    """Alarm sequences one detection pass produced.

    Attributes
    ----------
    quantity:
        The monitored quantity (detectors watch one pooled vector stream).
    n_windows:
        Windows observed by the pass.
    detectors:
        Detector names, in catalogue order.
    alarms:
        Per-detector alarm window indices, in stream order.  An alarm at
        index ``k`` means window ``k`` (0-based) was flagged as the first
        window of a new regime.
    params:
        Per-detector tuning parameters (for reports and manifests).
    """

    quantity: str
    n_windows: int
    detectors: tuple[str, ...]
    alarms: Mapping[str, tuple[int, ...]]
    params: Mapping[str, Mapping[str, float]]

    def n_alarms(self, detector: str) -> int:
        """Number of alarms one detector raised."""
        return len(self.alarms[detector])

    def as_rows(self) -> list[dict]:
        """One summary row per detector (for tables / the CLI)."""
        return [
            {
                "detector": name,
                "alarms": len(self.alarms[name]),
                "windows": " ".join(str(i) for i in self.alarms[name]) or "-",
            }
            for name in self.detectors
        ]


class DetectingAnalyzer:
    """Wrap a :class:`StreamAnalyzer` with online drift detection.

    Forwards every :meth:`update` to the wrapped analyzer, then scores the
    window's pooled vector of *quantity* through each detector.  Like the
    analyzer it wraps, it must be fed window results **in stream order** —
    which every execution backend guarantees — and keeps state O(bins)
    per detector (plus the alarm indices themselves), never O(windows).
    """

    def __init__(
        self,
        analyzer: StreamAnalyzer,
        detectors: Sequence[Union[str, DriftDetector]],
        *,
        quantity: str | None = None,
    ) -> None:
        if not detectors:
            raise ValueError("DetectingAnalyzer needs at least one detector")
        self.analyzer = analyzer
        self.detectors = make_detectors(detectors)
        if quantity is None:
            quantity = (
                DEFAULT_DETECT_QUANTITY
                if DEFAULT_DETECT_QUANTITY in analyzer.quantities
                else analyzer.quantities[0]
            )
        self.quantity = quantity
        if self.quantity not in analyzer.quantities:
            raise ValueError(
                f"monitored quantity {self.quantity!r} is not analysed; "
                f"available: {list(analyzer.quantities)}"
            )
        self._alarms: dict[str, list[int]] = {d.name: [] for d in self.detectors}

    @property
    def n_windows(self) -> int:
        """Windows folded so far (delegates to the wrapped analyzer)."""
        return self.analyzer.n_windows

    @property
    def quantities(self) -> tuple[str, ...]:
        """Quantities of the wrapped analyzer (API compatibility)."""
        return self.analyzer.quantities

    def update(
        self,
        result: WindowResult,
        *,
        pooled: Mapping[str, PooledDistribution] | None = None,
    ) -> None:
        """Fold one window result, then score it through every detector.

        *pooled* has the same sharing semantics as
        :meth:`StreamAnalyzer.update`: when the caller already pooled this
        window's histograms, detection reuses the vector instead of pooling
        again.
        """
        self.analyzer.update(result, pooled=pooled)
        window_pooled = (
            pooled[self.quantity] if pooled is not None and self.quantity in pooled
            else pool_differential_cumulative(result.histograms[self.quantity])
        )
        index = self.analyzer.n_windows - 1
        for detector in self.detectors:
            if detector.observe(window_pooled.values):
                self._alarms[detector.name].append(index)

    def snapshot(self) -> dict:
        """Exact detection state for service checkpoints.

        Captures the wrapped analyzer's fold state plus every detector's
        internal state (:meth:`~repro.detect.detectors._BaselineDetector.state`)
        and the alarm indices.  Detector instances that do not implement the
        ``state``/``restore_state`` contract cannot be checkpointed.
        """
        entries = []
        for detector in self.detectors:
            state_of = getattr(detector, "state", None)
            if state_of is None or not hasattr(detector, "restore_state"):
                raise ValueError(
                    f"detector {detector.name!r} does not implement state()/restore_state(); "
                    "cannot snapshot"
                )
            entries.append({"name": detector.name, "state": state_of()})
        return {
            "analyzer": self.analyzer.snapshot(),
            "quantity": self.quantity,
            "detectors": entries,
            "alarms": {name: list(indices) for name, indices in self._alarms.items()},
        }

    def restore(self, state: Mapping[str, object]) -> None:
        """Replace analyzer, detector, and alarm state with a snapshot.

        The wrapper must have been constructed with the same detectors (by
        name, in order) and monitored quantity as the snapshotted one.
        """
        if state["quantity"] != self.quantity:
            raise ValueError("snapshot monitors a different quantity than this analyzer")
        entries = state["detectors"]
        names = tuple(entry["name"] for entry in entries)
        if names != tuple(d.name for d in self.detectors):
            raise ValueError(
                f"snapshot detectors {names} do not match this analyzer's "
                f"{tuple(d.name for d in self.detectors)}"
            )
        self.analyzer.restore(state["analyzer"])
        for detector, entry in zip(self.detectors, entries):
            detector.restore_state(entry["state"])
        self._alarms = {name: list(indices) for name, indices in dict(state["alarms"]).items()}

    def result(self, *, stats: Mapping[str, object] | None = None) -> WindowedAnalysis:
        """Finalize the wrapped analyzer (detection does not alter it)."""
        return self.analyzer.result(stats=stats)

    def detection(self) -> DetectionResult:
        """The alarm sequences observed so far, frozen."""
        return DetectionResult(
            quantity=self.quantity,
            n_windows=self.analyzer.n_windows,
            detectors=tuple(d.name for d in self.detectors),
            alarms={name: tuple(indices) for name, indices in self._alarms.items()},
            params={d.name: dict(d.params()) for d in self.detectors},
        )

    def state_size(self) -> int:
        """Total floats retained by all detectors (O(bins), not O(windows))."""
        return sum(d.state_size() for d in self.detectors)
