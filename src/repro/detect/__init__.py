"""Online drift detection inside the single-pass streaming engine.

PR 2's scenarios broke the paper's stationarity assumption and scored the
damage *offline* — per-phase ``|Δmean|/σ`` needs the whole run and the
ground-truth phase layout.  This subpackage detects regime changes
*online*: streaming change-point detectors watch the per-window pooled
vectors as the engine folds them, in bounded (O(bins)) memory, on every
execution backend, without knowing the phase layout.

* :mod:`repro.detect.detectors` — the :class:`DriftDetector` protocol and
  the built-in implementations: :class:`EWMADetector` (per-bin EWMA
  baseline deviation), :class:`CUSUMDetector`, and
  :class:`PageHinkleyDetector` (both over a per-window
  distance-to-running-baseline statistic),
* :mod:`repro.detect.analyzer` — :class:`DetectingAnalyzer`, the wrapper
  that folds detection into any :class:`~repro.streaming.pipeline.StreamAnalyzer`
  pass, and the frozen :class:`DetectionResult`,
* :mod:`repro.detect.evaluate` — alarm↔ground-truth matching: detection
  latency, precision/recall, and false-alarm rate per scenario.

Quickstart::

    import repro

    run = repro.analyze_scenario("alpha-drift", n_valid=2_000, seed=0,
                                 detectors=("ewma", "cusum", "page-hinkley"))
    run.detection.alarms["cusum"]               # alarm window indices
    for ev in repro.evaluate_run(run):          # score vs ground truth
        print(ev.as_row())

CLI: ``repro detect list`` and ``repro detect run <scenario>``.
"""

from repro.detect.analyzer import DetectingAnalyzer, DetectionResult
from repro.detect.detectors import (
    DETECTOR_NAMES,
    CUSUMDetector,
    DriftDetector,
    EWMADetector,
    PageHinkleyDetector,
    get_detector,
    make_detectors,
)
from repro.detect.evaluate import (
    DEFAULT_MAX_LATENCY,
    DetectorEvaluation,
    evaluate_detectors,
    evaluate_run,
    match_alarms,
    true_change_windows,
)

__all__ = [
    "DEFAULT_MAX_LATENCY",
    "DETECTOR_NAMES",
    "CUSUMDetector",
    "DetectingAnalyzer",
    "DetectionResult",
    "DetectorEvaluation",
    "DriftDetector",
    "EWMADetector",
    "PageHinkleyDetector",
    "evaluate_detectors",
    "evaluate_run",
    "get_detector",
    "make_detectors",
    "match_alarms",
    "true_change_windows",
]
