"""Streaming change-point detectors over the engine's window stream.

The scenario subsystem (PR 2) scores drift *offline*: it needs the whole
run and the ground-truth phase layout in hand before the per-phase
``|Δmean|/σ`` statistic can be computed.  The detectors here are the
*online* counterpart: they watch the per-window pooled distribution
vectors as the single-pass engine folds them — in stream order, in bounded
memory — and raise an alarm when the stream appears to have left the
regime the running baseline was learned on, without knowing the phase
layout (or even that there are phases).

Every detector follows the same life cycle:

1. **Warm-up** — the first ``warmup`` windows only feed the running
   baseline (an exponentially-weighted per-bin mean of the pooled
   vectors); no alarms can fire.
2. **Watch** — each subsequent window is scored against the baseline
   *before* being folded into it, a detector-specific decision is made,
   and (when no alarm fires) the baseline absorbs the window.
3. **Alarm** — on an alarm the detector resets completely and re-enters
   warm-up, so the baseline re-learns the new regime and later regime
   changes remain detectable.

State is **O(bins)** per detector — one EWMA baseline vector plus a
handful of scalars — never O(windows): detectors are built to ride the
streaming backend over arbitrarily long traces.  All arithmetic is plain float64 in
window order, so alarm sequences inherit the engine's cross-backend
bit-identity guarantee and are invariant to ``chunk_packets``.

Thresholds are tuned on the built-in scenario catalogue: zero alarms on
``stationary`` across seeds, detection within a few windows of the phase
boundaries of ``alpha-drift`` and ``flash-crowd`` (the property harness in
``tests/test_detect_properties.py`` pins exactly that).
"""

from __future__ import annotations

from typing import Mapping, Protocol, Sequence, Union, runtime_checkable

import numpy as np

__all__ = [
    "DETECTOR_NAMES",
    "DriftDetector",
    "EWMADetector",
    "CUSUMDetector",
    "PageHinkleyDetector",
    "get_detector",
    "make_detectors",
]


@runtime_checkable
class DriftDetector(Protocol):
    """Protocol every streaming change-point detector implements.

    A detector consumes one pooled per-window vector at a time (in stream
    order) via :meth:`observe` and answers "did the stream just change
    regime?".  Implementations must keep O(bins) state, reset themselves
    after alarming, and be deterministic — identical input sequences must
    produce identical alarm sequences.
    """

    name: str

    def observe(self, values: np.ndarray) -> bool:
        """Fold one window's pooled vector; return True when an alarm fires."""
        ...

    def reset(self) -> None:
        """Forget everything and re-enter warm-up."""
        ...

    def state_size(self) -> int:
        """Number of floats currently retained (must be O(bins))."""
        ...

    def params(self) -> Mapping[str, float]:
        """The detector's tuning parameters (for reports and manifests)."""
        ...


class _EWMABaseline:
    """Exponentially-weighted per-bin mean of pooled vectors.

    The shared O(bins) building block: detectors score each incoming
    vector against this baseline, then (absent an alarm) fold the vector
    in.  Vectors may grow in length between updates (pooled distributions
    gain bins as larger degrees appear); state is zero-padded, matching the
    zero-fill convention of :class:`repro.analysis.moments.StreamingMoments`.
    """

    __slots__ = ("decay", "count", "_mean")

    def __init__(self, decay: float) -> None:
        self.decay = float(decay)
        self.count = 0
        self._mean = np.zeros(0, dtype=np.float64)

    @property
    def n_bins(self) -> int:
        return int(self._mean.size)

    def _aligned(self, values: np.ndarray) -> np.ndarray:
        """Grow the state and/or zero-pad *values* so both share one length."""
        if values.size > self._mean.size:
            grown = np.zeros(values.size, dtype=np.float64)
            grown[: self._mean.size] = self._mean
            self._mean = grown
        elif values.size < self._mean.size:
            padded = np.zeros(self._mean.size, dtype=np.float64)
            padded[: values.size] = values
            values = padded
        return values

    def update(self, values: np.ndarray) -> None:
        """Fold one vector into the EWMA mean."""
        values = self._aligned(np.asarray(values, dtype=np.float64))
        if self.count == 0:
            self._mean = values.copy()
        else:
            self._mean = self._mean + self.decay * (values - self._mean)
        self.count += 1

    def distance(self, values: np.ndarray) -> float:
        """Relative L1 distance of one vector to the baseline mean.

        ``Σ|x − m| / (Σ|m| + ε)`` — scale-free, robust to individual noisy
        bins, and cheap; the one scalar statistic every detector watches.
        """
        values = self._aligned(np.asarray(values, dtype=np.float64))
        return float(np.sum(np.abs(values - self._mean)) / (np.sum(np.abs(self._mean)) + 1e-12))

    def state_size(self) -> int:
        return int(self._mean.size)

    def state(self) -> dict:
        """Exact baseline state (count + float64 mean copy) for snapshots."""
        return {"count": int(self.count), "mean": self._mean.copy()}

    def restore(self, state: Mapping[str, object]) -> None:
        """Replace the baseline with a :meth:`state` payload."""
        mean = np.asarray(state["mean"], dtype=np.float64)
        if mean.ndim != 1:
            raise ValueError("baseline state mean must be a 1-D float64 vector")
        self.count = int(state["count"])
        self._mean = mean.copy()


class _BaselineDetector:
    """Shared warm-up / reset / bookkeeping machinery of the detectors."""

    def __init__(self, name: str, *, warmup: int, decay: float) -> None:
        if warmup < 2:
            raise ValueError(f"warmup must be >= 2 windows, got {warmup}")
        if not 0.0 < decay < 1.0:
            raise ValueError(f"decay must be in (0, 1), got {decay}")
        self.name = name
        self.warmup = int(warmup)
        self.decay = float(decay)
        self.reset()

    def reset(self) -> None:
        """Forget the baseline and all decision state; re-enter warm-up."""
        self._baseline = _EWMABaseline(self.decay)
        self._reset_decision_state()

    def _reset_decision_state(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _decide(self, values: np.ndarray) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def observe(self, values: np.ndarray) -> bool:
        """Score one pooled vector against the baseline; True on alarm.

        The vector is scored *before* it is folded into the baseline, so a
        regime-changing window cannot soften the very statistic that should
        flag it; on an alarm the detector resets and the alarming window is
        deliberately discarded (the new regime's baseline starts from the
        next window).
        """
        values = np.asarray(values, dtype=np.float64)
        if self._baseline.count < self.warmup:
            self._baseline.update(values)
            return False
        if self._decide(values):
            self.reset()
            return True
        self._baseline.update(values)
        return False

    def state_size(self) -> int:
        """Floats retained: the baseline vectors plus the decision scalars."""
        return self._baseline.state_size() + len(self._decision_scalars())

    def _decision_scalars(self) -> tuple:  # pragma: no cover - overridden
        raise NotImplementedError

    def _decision_state(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError

    def _restore_decision_state(self, state: Mapping[str, object]) -> None:  # pragma: no cover
        raise NotImplementedError

    def state(self) -> dict:
        """Exact internal state (baseline + decision variables) for snapshots.

        The complement of :meth:`params`: params say how the detector is
        tuned, state says where it is mid-stream.  A detector rebuilt with
        the same params and fed this state via :meth:`restore_state`
        produces the identical alarm sequence on the remaining stream —
        the contract service checkpoint recovery relies on.
        """
        return {"baseline": self._baseline.state(), "decision": self._decision_state()}

    def restore_state(self, state: Mapping[str, object]) -> None:
        """Replace baseline and decision state with a :meth:`state` payload."""
        self._baseline = _EWMABaseline(self.decay)
        self._baseline.restore(state["baseline"])
        self._restore_decision_state(state["decision"])

    def params(self) -> Mapping[str, float]:
        return {"warmup": self.warmup, "decay": self.decay}


class EWMADetector(_BaselineDetector):
    """EWMA baseline-deviation detector over the pooled per-bin moments.

    The control-chart member of the family: each window's deviation from
    the per-bin EWMA baseline (the relative L1 distance) is itself smoothed
    with a short EWMA (*smoothing*), and an alarm fires when the smoothed
    score exceeds *threshold*.  Smoothing is what makes a Shewhart-style
    single-window rule usable here — per-window pooled vectors are noisy,
    and a regime change elevates the deviation for several consecutive
    windows while stationary noise produces isolated spikes.

    Latency is lowest of the three on abrupt changes (flash crowds); slow
    drifts whose per-window deviation stays near the noise floor are CUSUM
    / Page–Hinkley territory.
    """

    def __init__(
        self,
        *,
        threshold: float = 0.10,
        smoothing: float = 0.3,
        warmup: int = 6,
        decay: float = 0.1,
    ) -> None:
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self.threshold = float(threshold)
        self.smoothing = float(smoothing)
        super().__init__("ewma", warmup=warmup, decay=decay)

    def _reset_decision_state(self) -> None:
        self._score = 0.0
        self._scored = False

    def _decide(self, values: np.ndarray) -> bool:
        distance = self._baseline.distance(values)
        if not self._scored:
            self._score = distance
            self._scored = True
        else:
            self._score += self.smoothing * (distance - self._score)
        return self._score > self.threshold

    def _decision_scalars(self) -> tuple:
        return (self._score, float(self._scored))

    def _decision_state(self) -> dict:
        return {"score": self._score, "scored": self._scored}

    def _restore_decision_state(self, state: Mapping[str, object]) -> None:
        self._score = float(state["score"])
        self._scored = bool(state["scored"])

    def params(self) -> Mapping[str, float]:
        return {**super().params(), "threshold": self.threshold, "smoothing": self.smoothing}


class CUSUMDetector(_BaselineDetector):
    """One-sided CUSUM over the distance-to-running-baseline statistic.

    Watches the relative L1 distance of each window to the EWMA baseline
    and accumulates its *relative excess* over the statistic's own running
    mean: ``S ← max(0, S + d/μ_d − 1 − slack)``; an alarm fires when the
    cumulative sum crosses *threshold*.  While evidence is accumulating
    (``S > 0``) the reference mean ``μ_d`` is frozen, the classic CUSUM
    discipline: the change being accumulated must not be allowed to pull
    up the reference it is measured against.  Accumulation is what
    separates CUSUM from the EWMA detector — a drift too small to alarm in
    any single window still alarms once its evidence has piled up.
    """

    def __init__(
        self,
        *,
        slack: float = 0.6,
        threshold: float = 3.0,
        stat_warmup: int = 4,
        warmup: int = 6,
        decay: float = 0.1,
    ) -> None:
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        if stat_warmup < 1:
            raise ValueError(f"stat_warmup must be >= 1, got {stat_warmup}")
        self.slack = float(slack)
        self.threshold = float(threshold)
        self.stat_warmup = int(stat_warmup)
        super().__init__("cusum", warmup=warmup, decay=decay)

    def _reset_decision_state(self) -> None:
        self._sum = 0.0
        self._stat_mean = 0.0
        self._stat_count = 0

    def _decide(self, values: np.ndarray) -> bool:
        distance = self._baseline.distance(values)
        if self._stat_count < self.stat_warmup:
            # the statistic's own reference mean needs a few observations
            # before excesses against it are meaningful; a plain average
            # weighs them equally (an EWMA seeded from the first distance
            # would be dominated by that one draw)
            self._stat_count += 1
            self._stat_mean += (distance - self._stat_mean) / self._stat_count
            return False
        self._sum = max(0.0, self._sum + distance / (self._stat_mean + 1e-12) - 1.0 - self.slack)
        if self._sum > self.threshold:
            return True
        if self._sum == 0.0:
            # update the reference only while no evidence is accumulating
            self._stat_mean += self.decay * (distance - self._stat_mean)
        self._stat_count += 1
        return False

    def _decision_scalars(self) -> tuple:
        return (self._sum, self._stat_mean, float(self._stat_count))

    def _decision_state(self) -> dict:
        return {"sum": self._sum, "stat_mean": self._stat_mean, "stat_count": self._stat_count}

    def _restore_decision_state(self, state: Mapping[str, object]) -> None:
        self._sum = float(state["sum"])
        self._stat_mean = float(state["stat_mean"])
        self._stat_count = int(state["stat_count"])

    def params(self) -> Mapping[str, float]:
        return {
            **super().params(),
            "slack": self.slack,
            "threshold": self.threshold,
            "stat_warmup": self.stat_warmup,
        }


class PageHinkleyDetector(_BaselineDetector):
    """Page–Hinkley test over the distance-to-running-baseline statistic.

    The classic sequential formulation: maintain the cumulative deviation
    of the distance statistic from its running mean,
    ``m_t = Σ (d_i − d̄_i − δ)``, track its running minimum ``M_t``, and
    alarm when ``m_t − M_t`` exceeds *threshold* — i.e. when the statistic
    has risen persistently above its historical floor.  Like CUSUM it
    accumulates evidence, but against the all-time minimum rather than a
    frozen reference mean, which makes it robust when the statistic's
    noise level is itself noisy.
    """

    def __init__(
        self,
        *,
        delta: float = 0.01,
        threshold: float = 0.15,
        warmup: int = 6,
        decay: float = 0.1,
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be >= 0, got {delta}")
        if threshold <= 0:
            raise ValueError(f"threshold must be > 0, got {threshold}")
        self.delta = float(delta)
        self.threshold = float(threshold)
        super().__init__("page-hinkley", warmup=warmup, decay=decay)

    def _reset_decision_state(self) -> None:
        self._cumulative = 0.0
        self._minimum = 0.0
        self._stat_mean = 0.0
        self._stat_count = 0

    def _decide(self, values: np.ndarray) -> bool:
        distance = self._baseline.distance(values)
        self._stat_count += 1
        # incremental mean of the distance statistic since the last reset
        self._stat_mean += (distance - self._stat_mean) / self._stat_count
        self._cumulative += distance - self._stat_mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        return (self._cumulative - self._minimum) > self.threshold

    def _decision_scalars(self) -> tuple:
        return (self._cumulative, self._minimum, self._stat_mean, float(self._stat_count))

    def _decision_state(self) -> dict:
        return {
            "cumulative": self._cumulative,
            "minimum": self._minimum,
            "stat_mean": self._stat_mean,
            "stat_count": self._stat_count,
        }

    def _restore_decision_state(self, state: Mapping[str, object]) -> None:
        self._cumulative = float(state["cumulative"])
        self._minimum = float(state["minimum"])
        self._stat_mean = float(state["stat_mean"])
        self._stat_count = int(state["stat_count"])

    def params(self) -> Mapping[str, float]:
        return {**super().params(), "delta": self.delta, "threshold": self.threshold}


_FACTORIES = {
    "ewma": EWMADetector,
    "cusum": CUSUMDetector,
    "page-hinkley": PageHinkleyDetector,
}

#: Names of the built-in detectors, in catalogue order.
DETECTOR_NAMES = tuple(_FACTORIES)


def get_detector(detector: Union[str, DriftDetector], **params) -> DriftDetector:
    """Resolve a detector name (or pass an instance through) to a detector.

    Keyword *params* override the named detector's tuned defaults; passing
    params together with an instance is an error (the instance already
    carries its configuration).
    """
    if isinstance(detector, str):
        try:
            factory = _FACTORIES[detector]
        except KeyError:
            known = ", ".join(DETECTOR_NAMES)
            raise KeyError(f"unknown detector {detector!r}; known detectors: {known}") from None
        return factory(**params)
    if params:
        raise ValueError("detector params can only be given with a detector *name*")
    if not isinstance(detector, DriftDetector):
        raise TypeError(f"not a DriftDetector: {type(detector).__name__}")
    return detector


def make_detectors(detectors: Sequence[Union[str, DriftDetector]]) -> tuple[DriftDetector, ...]:
    """Resolve a sequence of names/instances into fresh detector instances."""
    resolved = tuple(get_detector(d) for d in detectors)
    names = [d.name for d in resolved]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate detector names: {sorted(names)}")
    return resolved
