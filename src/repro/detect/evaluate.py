"""Score online detectors against scenario ground truth.

Scenarios know where their regime changes actually are — the
window→phase attribution (:class:`~repro.analysis.phases.PhaseSegmentedAnalysis`)
marks the first window of each new phase.  Detectors do not: they see only
the window stream.  This module closes the loop: it matches each detector's
alarm sequence to the true phase-boundary windows and reports

* **detection latency** — windows between a true boundary and the alarm
  that detected it,
* **precision** — fraction of alarms that detected a true boundary,
* **recall** — fraction of true boundaries that were detected,
* **false-alarm rate** — unmatched alarms per observed window.

Matching is greedy and order-preserving: alarms are walked in stream
order, and each is credited to the earliest still-undetected boundary
whose detection window ``[boundary, boundary + max_latency]`` contains it;
everything else is a false alarm.  An alarm can never be credited to a
boundary it *precedes* — detecting the future is a false alarm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence, Union

import numpy as np

from repro.detect.detectors import DETECTOR_NAMES

if TYPE_CHECKING:  # imports only for annotations: scenarios.run imports us
    from repro.scenarios.run import ScenarioRun
    from repro.scenarios.scenario import Scenario

__all__ = [
    "DEFAULT_MAX_LATENCY",
    "DetectorEvaluation",
    "true_change_windows",
    "match_alarms",
    "evaluate_run",
    "evaluate_detectors",
]

#: Default detection window: an alarm this many windows (or fewer) after a
#: true boundary counts as detecting it.  Roughly one detector warm-up.
DEFAULT_MAX_LATENCY = 8


def true_change_windows(window_phase: np.ndarray) -> tuple[int, ...]:
    """Ground-truth change points: the first window of each new phase.

    *window_phase* is the per-window phase attribution in stream order
    (:attr:`PhaseSegmentedAnalysis.window_phase`); a change at index ``k``
    means window ``k`` is the first window attributed to a different phase
    than window ``k − 1``.
    """
    window_phase = np.asarray(window_phase)
    if window_phase.size == 0:
        return ()
    return tuple(int(i) for i in np.flatnonzero(np.diff(window_phase)) + 1)


@dataclass(frozen=True)
class DetectorEvaluation:
    """One detector's score against one run's ground truth.

    Attributes
    ----------
    detector:
        Detector name.
    n_windows:
        Windows in the run (the denominator of the false-alarm rate).
    boundaries:
        True phase-boundary window indices.
    alarms:
        The detector's alarm window indices.
    latencies:
        Detection latency (windows) of each *detected* boundary, in
        boundary order; boundaries that went undetected contribute nothing.
    n_false:
        Alarms not credited to any boundary.
    max_latency:
        The detection-window length used for matching.
    """

    detector: str
    n_windows: int
    boundaries: tuple[int, ...]
    alarms: tuple[int, ...]
    latencies: tuple[int, ...]
    n_false: int
    max_latency: int

    @property
    def n_detected(self) -> int:
        """True boundaries that received an alarm within the window."""
        return len(self.latencies)

    @property
    def precision(self) -> float:
        """Fraction of alarms that detected a boundary (1.0 when no alarms)."""
        return self.n_detected / len(self.alarms) if self.alarms else 1.0

    @property
    def recall(self) -> float:
        """Fraction of boundaries detected (1.0 when there were none)."""
        return self.n_detected / len(self.boundaries) if self.boundaries else 1.0

    @property
    def false_alarm_rate(self) -> float:
        """Unmatched alarms per observed window."""
        return self.n_false / self.n_windows if self.n_windows else 0.0

    @property
    def mean_latency(self) -> float:
        """Mean detection latency in windows (``nan`` when nothing detected)."""
        return float(np.mean(self.latencies)) if self.latencies else float("nan")

    def as_row(self) -> dict:
        """Flat summary row for tables / the CLI."""
        return {
            "detector": self.detector,
            "boundaries": len(self.boundaries),
            "detected": self.n_detected,
            "alarms": len(self.alarms),
            "false": self.n_false,
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "false/window": round(self.false_alarm_rate, 4),
            "latency": "-" if not self.latencies else round(self.mean_latency, 2),
        }


def match_alarms(
    alarms: Sequence[int],
    boundaries: Sequence[int],
    *,
    max_latency: int = DEFAULT_MAX_LATENCY,
) -> tuple[dict[int, int], tuple[int, ...]]:
    """Greedily match alarms to boundaries within the detection window.

    Returns ``(matched, false_alarms)`` where *matched* maps each detected
    boundary to the alarm index that detected it (the earliest alarm inside
    ``[boundary, boundary + max_latency]``), and *false_alarms* lists the
    unmatched alarm indices in order.
    """
    if max_latency < 0:
        raise ValueError(f"max_latency must be >= 0, got {max_latency}")
    matched: dict[int, int] = {}
    false_alarms: list[int] = []
    pending = [b for b in sorted(boundaries)]
    for alarm in sorted(alarms):
        hit = None
        for boundary in pending:
            if boundary <= alarm <= boundary + max_latency:
                hit = boundary
                break
            if boundary > alarm:
                break
        if hit is None:
            false_alarms.append(int(alarm))
        else:
            matched[int(hit)] = int(alarm)
            pending.remove(hit)
    return matched, tuple(false_alarms)


def evaluate_run(
    run: "ScenarioRun", *, max_latency: int = DEFAULT_MAX_LATENCY
) -> tuple[DetectorEvaluation, ...]:
    """Score every detector of a detecting scenario run against its truth.

    *run* must have been produced with detection enabled
    (``analyze_scenario(..., detectors=...)``); the ground truth is its own
    window→phase attribution, which the detectors never saw.
    """
    if run.detection is None:
        raise ValueError(
            "run carries no detection result; pass detectors= to analyze_scenario"
        )
    boundaries = true_change_windows(run.phases.window_phase)
    evaluations = []
    for name in run.detection.detectors:
        alarms = run.detection.alarms[name]
        matched, false_alarms = match_alarms(alarms, boundaries, max_latency=max_latency)
        latencies = tuple(matched[b] - b for b in sorted(matched))
        evaluations.append(
            DetectorEvaluation(
                detector=name,
                n_windows=run.detection.n_windows,
                boundaries=boundaries,
                alarms=alarms,
                latencies=latencies,
                n_false=len(false_alarms),
                max_latency=int(max_latency),
            )
        )
    return tuple(evaluations)


def evaluate_detectors(
    scenario: Union[str, "Scenario"],
    n_valid: int,
    *,
    seed=0,
    detectors: Sequence[str] = DETECTOR_NAMES,
    quantity: str | None = None,
    max_latency: int = DEFAULT_MAX_LATENCY,
    **kwargs,
) -> tuple["ScenarioRun", tuple[DetectorEvaluation, ...]]:
    """Run one scenario with detection and score it in one call.

    Thin convenience over :func:`repro.scenarios.run.analyze_scenario`
    (to which *kwargs* — backend, chunk_packets, … — are forwarded)
    followed by :func:`evaluate_run`.
    """
    from repro.scenarios.run import analyze_scenario

    run = analyze_scenario(
        scenario, n_valid, seed=seed, detectors=detectors, detect_quantity=quantity, **kwargs
    )
    return run, evaluate_run(run, max_latency=max_latency)
