"""Resident streaming-analysis service: ``repro serve``.

Everything else in the reproduction is a one-shot run; this package makes
the engine a *resident process*.  A :class:`~repro.service.server.ServiceDaemon`
accepts newline-delimited JSON packet batches over an asyncio HTTP front
end and folds them incrementally through the exact same window-fold loop
(:func:`repro.streaming.pipeline.fold_windows`) that one-shot analyses and
campaign workers drive — so a daemon fed a scenario's packets in arbitrary
batches produces pooled output and alarm sequences **bit-identical** to
:func:`repro.scenarios.run.analyze_scenario` over the same stream.

The pieces:

* :mod:`repro.service.config` — declarative, versioned job configs
  (typed dataclass sections, ``version`` field, ``as_dict``/``from_dict``
  round-trip, all validation at load time with path-qualified errors);
* :mod:`repro.service.engine` — :class:`~repro.service.engine.JobEngine`,
  the push-driven incremental fold behind each job;
* :mod:`repro.service.jobs` — the in-daemon job registry and per-job
  status counters;
* :mod:`repro.service.server` — the asyncio HTTP daemon: ``/status``,
  job submission, batch ingestion (sequence-numbered and back-pressured),
  fault containment, and a graceful SIGTERM drain that flushes results to
  a :class:`~repro.campaigns.store.ResultStore`;
* :mod:`repro.service.checkpoint` — crash-safe durability: periodic
  atomic snapshots of each engine's exact fold state and ``--resume``
  recovery that, combined with idempotent replay of unacked batches,
  reproduces the uninterrupted run bit for bit.
"""

from repro.service.checkpoint import CheckpointPolicy, JobCheckpointer, resume_job
from repro.service.config import (
    JOB_CONFIG_VERSION,
    DetectionSection,
    JobConfig,
    JobConfigError,
    LimitsSection,
    SketchSection,
    SourceSection,
    StoreSection,
    WindowSection,
    load_job_config,
)
from repro.service.engine import SNAPSHOT_FORMAT, JobEngine, packet_batch_from_json
from repro.service.jobs import Job, JobRegistry
from repro.service.server import ServiceDaemon, serve

__all__ = [
    "JOB_CONFIG_VERSION",
    "SNAPSHOT_FORMAT",
    "CheckpointPolicy",
    "DetectionSection",
    "Job",
    "JobCheckpointer",
    "JobConfig",
    "JobConfigError",
    "JobEngine",
    "JobRegistry",
    "LimitsSection",
    "ServiceDaemon",
    "SketchSection",
    "SourceSection",
    "StoreSection",
    "WindowSection",
    "load_job_config",
    "packet_batch_from_json",
    "resume_job",
    "serve",
]
