"""The incremental analysis engine behind one resident service job.

:class:`JobEngine` is the push-driven face of the single-pass engine: a
:class:`~repro.streaming.window.PushWindower` cuts arbitrary incoming
packet batches into exactly the windows a one-shot run would cut, and
every completed window goes through
:func:`repro.streaming.pipeline.fold_windows` — the *same* fold loop
:func:`~repro.streaming.pipeline.analyze_trace`,
:func:`~repro.scenarios.run.analyze_scenario`, and every campaign worker
drive.  Nothing here re-implements analysis; the daemon is one more caller
of the engine, which is why an incrementally-fed job reproduces the
one-shot pooled vectors and alarm sequences **bit for bit**
(``tests/test_service_properties.py``).

Batch validation (:func:`packet_batch_from_json`) happens entirely before
any fold: a malformed batch raises :class:`BatchError` and leaves the
engine's analyzer state untouched, so the next valid batch folds cleanly —
the containment contract the fault-injection suite pins.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from repro.detect.analyzer import DetectingAnalyzer
from repro.service.config import JobConfig
from repro.streaming.packet import PacketTrace
from repro.streaming.parallel import get_backend
from repro.streaming.pipeline import StreamAnalyzer, WindowedAnalysis, fold_windows
from repro.streaming.window import PushWindower

__all__ = [
    "BatchError",
    "JobEngine",
    "MAX_ENDPOINT_ID",
    "SNAPSHOT_FORMAT",
    "packet_batch_from_json",
]

#: Version of the :meth:`JobEngine.snapshot` payload layout.  Bump on any
#: incompatible change; :meth:`JobEngine.restore` refuses other versions so
#: a daemon never resumes from state it would misinterpret.
SNAPSHOT_FORMAT = 1

#: Largest endpoint id a service batch may carry.  Ids are stored as int64
#: and packed into ``(src << 32) | dst`` keys by the fused kernel; the
#: service rejects anything outside ``[0, 2**32)`` up front instead of
#: silently taking the slow fallback path on attacker-controlled input.
MAX_ENDPOINT_ID = 2**32 - 1


class BatchError(ValueError):
    """A packet batch failed validation; nothing was folded."""


def _batch_column(batch: Mapping, name: str, n: int | None) -> np.ndarray:
    """One required id column of a JSON batch, validated to int64 in range."""
    if name not in batch:
        raise BatchError(f"batch is missing the {name!r} column")
    try:
        column = np.asarray(batch[name])
    except (TypeError, ValueError) as error:
        raise BatchError(f"batch column {name!r} is not array-like: {error}") from error
    if column.ndim != 1:
        raise BatchError(f"batch column {name!r} must be 1-D, got shape {column.shape}")
    if n is not None and column.size != n:
        raise BatchError(
            f"batch column {name!r} has {column.size} entries but 'src' has {n}"
        )
    if column.size and not np.issubdtype(column.dtype, np.integer):
        # JSON numbers arrive as int64 when integral; floats/strings are
        # malformed input, not something to round
        raise BatchError(f"batch column {name!r} must be integers, got dtype {column.dtype}")
    if column.size:
        low, high = int(column.min()), int(column.max())
        if low < 0 or high > MAX_ENDPOINT_ID:
            raise BatchError(
                f"batch column {name!r} has out-of-range ids (min {low}, max {high}); "
                f"ids must be in [0, {MAX_ENDPOINT_ID}]"
            )
    return column.astype(np.int64, copy=False)


def packet_batch_from_json(batch: Mapping) -> PacketTrace:
    """Validate one decoded JSON batch and build its :class:`PacketTrace`.

    A batch is an object with integer id columns ``src`` and ``dst`` (equal
    length, ids in ``[0, 2**32)``) and optional ``time`` (numbers),
    ``size`` (integers), and ``valid`` (booleans) columns of the same
    length.  Every failure mode raises :class:`BatchError` with a message
    naming the offending column — and, critically, raises **before** any
    analyzer state could change.
    """
    if not isinstance(batch, Mapping):
        raise BatchError(f"batch must be a JSON object, got {type(batch).__name__}")
    unknown = sorted(set(batch) - {"src", "dst", "time", "size", "valid"})
    if unknown:
        raise BatchError(f"unknown batch column(s) {unknown}; valid: src dst time size valid")
    src = _batch_column(batch, "src", None)
    dst = _batch_column(batch, "dst", int(src.size))
    n = int(src.size)
    if n == 0:
        raise BatchError("batch is empty (src has no entries)")
    optional: dict = {}
    for name in ("time", "size", "valid"):
        if name not in batch or batch[name] is None:
            continue
        try:
            column = np.asarray(batch[name])
        except (TypeError, ValueError) as error:
            raise BatchError(f"batch column {name!r} is not array-like: {error}") from error
        if column.ndim != 1 or column.size != n:
            raise BatchError(f"batch column {name!r} must be 1-D of length {n}")
        if name == "valid":
            if column.dtype != np.bool_:
                raise BatchError(f"batch column 'valid' must be booleans, got dtype {column.dtype}")
        elif not np.issubdtype(column.dtype, np.number):
            raise BatchError(f"batch column {name!r} must be numbers, got dtype {column.dtype}")
        optional[name] = column
    try:
        return PacketTrace.from_arrays(src, dst, **optional)
    except (TypeError, ValueError) as error:  # pragma: no cover - belt and braces
        raise BatchError(f"batch does not form a valid packet trace: {error}") from error


class JobEngine:
    """Push-driven incremental analysis for one job config.

    Feed validated :class:`PacketTrace` batches via :meth:`ingest`; complete
    windows are cut by a :class:`PushWindower` (bit-identical to one-shot
    windowing for any re-batching) and folded through
    :func:`fold_windows` into a :class:`StreamAnalyzer` — wrapped in a
    :class:`DetectingAnalyzer` when the job config asks for detection.
    All state is O(bins + one window buffer); a job can ingest forever.
    """

    def __init__(self, config: JobConfig) -> None:
        self.config = config
        window = config.window
        self._sketch = config.sketch_config()
        analyzer = StreamAnalyzer(
            window.n_valid,
            window.quantities,
            keep_windows=False,
            mode=window.mode,
            sketch=self._sketch,
        )
        self.folder: Union[StreamAnalyzer, DetectingAnalyzer] = analyzer
        if config.detection.detectors:
            self.folder = DetectingAnalyzer(
                analyzer, config.detection.detectors, quantity=config.detection.quantity
            )
        self._windower = PushWindower(window.n_valid)
        self._backend = get_backend("serial")
        self.packets_ingested = 0
        self.batches_ingested = 0
        #: Highest ingest sequence number folded and acknowledged.  The
        #: server advances it once per successful ingest request (explicit
        #: client ``seq`` or implicit increment) and the checkpoint layer
        #: persists it, which is what lets a feeder replay unacked batches
        #: idempotently after a crash.
        self.acked_seq = 0

    @property
    def windows_folded(self) -> int:
        """Complete windows analysed and folded so far."""
        return self.folder.n_windows

    @property
    def packets_buffered(self) -> int:
        """Packets held toward the next incomplete window."""
        return self._windower.buffered_packets

    @property
    def alarms_raised(self) -> int:
        """Total detector alarms so far (0 when the job runs no detectors)."""
        if isinstance(self.folder, DetectingAnalyzer):
            return sum(len(a) for a in self.folder.detection().alarms.values())
        return 0

    def ingest(self, chunk: PacketTrace) -> int:
        """Fold one packet batch; return how many windows it completed.

        The batch joins the window buffer; every window it completes is
        analysed and folded through the shared fold loop immediately.
        Packets short of a window stay buffered for the next batch (or the
        shutdown drain).
        """
        windows = self._windower.push(chunk)
        self.packets_ingested += chunk.n_packets
        self.batches_ingested += 1
        if windows:
            fold_windows(
                self._backend, windows, self.folder,
                mode=self.config.window.mode, sketch=self._sketch,
            )
        return len(windows)

    def snapshot(self) -> dict:
        """Exact full fold state of this job, for durable checkpoints.

        Covers everything :meth:`ingest` mutates — the windower's residual
        packet buffer, the analyzer's merged histograms and Welford moments,
        per-detector internal state and alarm indices, the ingest counters,
        and :attr:`acked_seq`.  Serialized values are copies of the live
        float64/int64 arrays (lossless exact bytes), so an engine restored
        from this snapshot and fed the remaining batches produces pooled
        vectors and alarm sequences ``tobytes()``-identical to one that was
        never interrupted.
        """
        return {
            "format": SNAPSHOT_FORMAT,
            "config_hash": self.config.config_hash(),
            "acked_seq": int(self.acked_seq),
            "packets_ingested": int(self.packets_ingested),
            "batches_ingested": int(self.batches_ingested),
            "windower": self._windower.snapshot(),
            "folder": {
                "kind": "detecting" if isinstance(self.folder, DetectingAnalyzer) else "stream",
                "state": self.folder.snapshot(),
            },
        }

    def restore(self, snapshot: Mapping) -> None:
        """Replace this engine's state with a :meth:`snapshot` payload.

        The engine must have been constructed from the same job config (the
        snapshot pins the config's content hash) — restore loads numeric
        state into the already-validated structure, it never rebuilds
        analyzers from untrusted data.
        """
        if int(snapshot.get("format", -1)) != SNAPSHOT_FORMAT:
            raise ValueError(
                f"snapshot format {snapshot.get('format')!r} is not supported "
                f"(this build reads format {SNAPSHOT_FORMAT})"
            )
        if snapshot.get("config_hash") != self.config.config_hash():
            raise ValueError(
                "snapshot was taken under a different job config "
                f"(hash {str(snapshot.get('config_hash'))[:12]}... != "
                f"{self.config.config_hash()[:12]}...)"
            )
        folder = snapshot["folder"]
        expected_kind = "detecting" if isinstance(self.folder, DetectingAnalyzer) else "stream"
        if folder.get("kind") != expected_kind:
            raise ValueError(
                f"snapshot folder kind {folder.get('kind')!r} does not match "
                f"this job's {expected_kind!r} analyzer"
            )
        self.folder.restore(folder["state"])
        self._windower.restore(snapshot["windower"])
        self.acked_seq = int(snapshot["acked_seq"])
        self.packets_ingested = int(snapshot["packets_ingested"])
        self.batches_ingested = int(snapshot["batches_ingested"])

    def result(self) -> WindowedAnalysis:
        """Finalize the folded windows into a :class:`WindowedAnalysis`.

        Raises ``ValueError`` when no complete window has been folded yet
        (same contract as the one-shot engine).  The engine stays usable —
        finalizing is a read, not a stop.
        """
        return self.folder.result(
            stats={
                "backend": "service",
                "n_chunks": self._windower.n_chunks,
                "max_buffered_packets": self._windower.max_buffered_packets,
            }
        )

    def detection(self):
        """The job's :class:`~repro.detect.analyzer.DetectionResult` so far.

        ``None`` when the job config requested no detectors.
        """
        if isinstance(self.folder, DetectingAnalyzer):
            return self.folder.detection()
        return None
