"""The resident daemon behind ``repro serve``: asyncio HTTP front end.

:class:`ServiceDaemon` is a deliberately small HTTP/1.1 server built on
``asyncio.start_server`` (stdlib only, one connection handled per task).
It accepts newline-delimited JSON packet batches, validates each batch
*fully* before folding anything, and drives every job's
:class:`~repro.service.engine.JobEngine` — which is the same window-fold
loop every one-shot analysis uses.

Routes
------
``GET /status``
    Daemon-level status: every job's counters, uptime, config hash.
``GET /status/<job>``
    One job's status entry.
``POST /jobs``
    Submit a job config (JSON body); replies with the job's config hash.
``POST /ingest/<job>``
    Newline-delimited JSON packet batches.  All lines are parsed and
    validated before the first fold, so a malformed line folds nothing.
``POST /jobs/<job>/flush``
    Finalize the job's current analysis into the daemon's
    :class:`~repro.campaigns.store.ResultStore`.

Fault containment is the point: every bad request — malformed JSON,
out-of-range ids, an oversized batch, a client that disconnects
mid-stream, an unknown config ``version`` — produces a structured JSON
error (``{"error": {"code", "message"}}``) or a dropped connection, never
a dead daemon and never a corrupted analyzer
(``tests/test_service_faults.py``).  On SIGTERM the daemon stops
accepting work, lets in-flight requests drain, flushes every job's result
to the store, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro._util.logging import get_logger
from repro.campaigns.store import ResultStore
from repro.service.config import JobConfig, JobConfigError
from repro.service.engine import BatchError, packet_batch_from_json
from repro.service.jobs import JobRegistry

__all__ = ["DEFAULT_MAX_BATCH_BYTES", "ServiceDaemon", "serve"]

_logger = get_logger("service.server")

#: Default cap on one request body; a larger ``Content-Length`` gets a 413
#: structured error without the body ever being read.
DEFAULT_MAX_BATCH_BYTES = 8 * 1024 * 1024

_MAX_HEADER_BYTES = 16 * 1024


class _HttpError(Exception):
    """A request failure that maps to one structured error response."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ServiceDaemon:
    """A resident streaming-analysis daemon over asyncio HTTP.

    Parameters
    ----------
    configs:
        Job configs to register at startup (more may arrive via
        ``POST /jobs``).
    host, port:
        Bind address; ``port=0`` binds an ephemeral port, reported via
        :attr:`port` once the server is up.
    store:
        The :class:`ResultStore` results are flushed into on shutdown and
        on ``POST /jobs/<job>/flush``; ``None`` disables flushing.
    max_batch_bytes:
        Request-body cap; oversized requests get a structured 413.
    """

    def __init__(
        self,
        configs: Iterable[JobConfig] = (),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store: ResultStore | None = None,
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
    ) -> None:
        self.host = host
        self.port = port
        self.store = store
        self.max_batch_bytes = int(max_batch_bytes)
        self.registry = JobRegistry()
        for config in configs:
            self.registry.add(config)
        self.requests_served = 0
        self.requests_failed = 0
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------ http

    def _respond(self, status: int, body: dict) -> bytes:
        payload = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        return head.encode("ascii") + payload

    def _error_body(self, error: _HttpError) -> dict:
        return {"error": {"code": error.code, "message": error.message}}

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request: ``(method, path, body)``.

        Raises :class:`_HttpError` on protocol violations and
        ``asyncio.IncompleteReadError`` when the client disconnects before
        delivering the promised body — the caller drops the connection and
        no job state changes.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as error:
            raise _HttpError(400, "bad_request", "request head too large") from error
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(400, "bad_request", "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "bad_request", f"malformed request line: {lines[0]!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if method == "POST":
            if "content-length" not in headers:
                raise _HttpError(411, "length_required", "POST requires Content-Length")
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "bad_request", "invalid Content-Length") from None
            if length < 0:
                raise _HttpError(400, "bad_request", "invalid Content-Length")
            if length > self.max_batch_bytes:
                raise _HttpError(
                    413,
                    "batch_too_large",
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_batch_bytes}-byte limit",
                )
            # a client that disconnects mid-body raises IncompleteReadError
            # here — before any parsing or folding
            body = await reader.readexactly(length)
        return method, path, body

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        """Serve one connection: one request, one response, close."""
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                self.requests_failed += 1
                writer.write(self._respond(error.status, self._error_body(error)))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                # mid-stream disconnect: nothing parsed, nothing folded
                self.requests_failed += 1
                _logger.info("client disconnected mid-request; dropped")
                return
            try:
                status, response = self._route(method, path, body)
                self.requests_served += 1
            except _HttpError as error:
                self.requests_failed += 1
                status, response = error.status, self._error_body(error)
            except Exception as error:  # noqa: BLE001 - daemon must survive
                self.requests_failed += 1
                _logger.exception("unexpected error serving %s %s", method, path)
                status, response = 500, {
                    "error": {"code": "internal", "message": f"{type(error).__name__}: {error}"}
                }
            writer.write(self._respond(status, response))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # ---------------------------------------------------------------- routes

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Dispatch one parsed request to its handler."""
        segments = [s for s in path.split("?")[0].split("/") if s]
        if method == "GET" and segments == ["status"]:
            return 200, self._status()
        if method == "GET" and len(segments) == 2 and segments[0] == "status":
            return 200, self._job(segments[1]).status()
        if method == "POST" and segments == ["jobs"]:
            return self._submit(body)
        if method == "POST" and len(segments) == 2 and segments[0] == "ingest":
            return self._ingest(segments[1], body)
        if (
            method == "POST"
            and len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "flush"
        ):
            return self._flush_one(segments[1])
        if method not in ("GET", "POST"):
            raise _HttpError(405, "method_not_allowed", f"unsupported method {method!r}")
        raise _HttpError(404, "not_found", f"no route for {method} {path}")

    def _status(self) -> dict:
        body = self.registry.status()
        body["requests_served"] = self.requests_served
        body["requests_failed"] = self.requests_failed
        body["store"] = str(self.store.root) if self.store is not None else None
        return body

    def _job(self, name: str):
        try:
            return self.registry.get(name)
        except KeyError:
            raise _HttpError(404, "unknown_job", f"no such job: {name!r}") from None

    def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, "bad_json", f"job config is not valid JSON: {error}") from None
        if not isinstance(data, Mapping):
            raise _HttpError(400, "bad_config", "job config must be a JSON object")
        try:
            config = JobConfig.from_dict(data)
        except JobConfigError as error:
            raise _HttpError(400, "bad_config", str(error)) from None
        try:
            job = self.registry.add(config)
        except ValueError as error:
            raise _HttpError(400, "duplicate_job", str(error)) from None
        return 200, {"job": job.name, "config_hash": job.config_hash}

    def _ingest(self, name: str, body: bytes) -> tuple[int, dict]:
        job = self._job(name)
        lines = [line for line in body.split(b"\n") if line.strip()]
        if not lines:
            job.errors += 1
            raise _HttpError(400, "empty_batch", "request body carried no batch lines")
        # parse and validate EVERY line before folding ANY: a malformed
        # line N must not leave lines < N already folded
        traces = []
        for i, line in enumerate(lines, start=1):
            try:
                obj = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                job.errors += 1
                raise _HttpError(
                    400, "bad_json", f"batch line {i} is not valid JSON: {error}"
                ) from None
            try:
                traces.append(packet_batch_from_json(obj))
            except BatchError as error:
                job.errors += 1
                raise _HttpError(400, "bad_batch", f"batch line {i}: {error}") from None
        windows = sum(job.engine.ingest(trace) for trace in traces)
        return 200, {
            "job": job.name,
            "batches": len(traces),
            "windows_folded_now": windows,
            "windows_folded": job.engine.windows_folded,
            "packets_buffered": job.engine.packets_buffered,
            "alarms_raised": job.engine.alarms_raised,
        }

    def _flush_one(self, name: str) -> tuple[int, dict]:
        job = self._job(name)
        if self.store is None:
            raise _HttpError(400, "no_store", "daemon was started without a result store")
        payload = job.flush_payload()
        if payload is None:
            raise _HttpError(
                400, "no_windows", f"job {name!r} has folded no complete window yet"
            )
        self.store.put(
            job.config_hash, payload, meta={"kind": "service_job", "job": job.name}
        )
        return 200, {"job": job.name, "stored": job.config_hash}

    # ------------------------------------------------------------- lifecycle

    def request_shutdown(self) -> None:
        """Ask the daemon to drain and exit; safe to call from any thread."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the server socket is bound (for test harnesses)."""
        return self._ready.wait(timeout)

    async def run_async(self, *, install_signal_handlers: bool = False) -> int:
        """Serve until shutdown is requested; drain, flush, return 0."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self._shutdown.set)
        server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_HEADER_BYTES
        )
        self.port = server.sockets[0].getsockname()[1]
        _logger.info(
            "repro serve listening on %s:%d (%d job(s))",
            self.host, self.port, len(self.registry),
        )
        self._ready.set()
        async with server:
            await self._shutdown.wait()
            # stop accepting, then let in-flight handlers drain before the
            # flush below snapshots job state
            server.close()
            await server.wait_closed()
        if self.store is not None:
            keys = self.registry.flush(self.store)
            _logger.info("flushed %d job result(s) on shutdown", len(keys))
        _logger.info("repro serve exiting cleanly")
        return 0

    def run(self, *, install_signal_handlers: bool = False) -> int:
        """Blocking entry point: ``asyncio.run`` around :meth:`run_async`."""
        return asyncio.run(self.run_async(install_signal_handlers=install_signal_handlers))


def serve(
    configs: Sequence[JobConfig],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    store_root: str | Path | None = None,
    max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
) -> int:
    """Run the daemon in the foreground until SIGTERM/SIGINT; return 0.

    This is the function ``repro serve`` calls: it builds the
    :class:`ServiceDaemon`, opens the :class:`ResultStore` when
    *store_root* is given, installs signal handlers, and blocks.  On
    SIGTERM the daemon drains in-flight requests, flushes every job's
    result to the store, and this function returns 0.
    """
    store = ResultStore(store_root) if store_root is not None else None
    daemon = ServiceDaemon(
        configs, host=host, port=port, store=store, max_batch_bytes=max_batch_bytes
    )
    return daemon.run(install_signal_handlers=True)
