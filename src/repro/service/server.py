"""The resident daemon behind ``repro serve``: asyncio HTTP front end.

:class:`ServiceDaemon` is a deliberately small HTTP/1.1 server built on
``asyncio.start_server`` (stdlib only, one connection handled per task).
It accepts newline-delimited JSON packet batches, validates each batch
*fully* before folding anything, and drives every job's
:class:`~repro.service.engine.JobEngine` — which is the same window-fold
loop every one-shot analysis uses.

Routes
------
``GET /status``
    Daemon-level status: every job's counters, uptime, config hash.
``GET /status/<job>``
    One job's status entry.
``POST /jobs``
    Submit a job config (JSON body); replies with the job's config hash.
``POST /ingest/<job>[?seq=N]``
    Newline-delimited JSON packet batches.  All lines are parsed and
    validated before the first fold, so a malformed line folds nothing.
    An optional ``seq`` sequence number makes ingest idempotent: a
    request at or below the job's acked sequence is acknowledged without
    re-folding (crash replay), a request that skips ahead gets a 409, and
    every success reports ``acked_seq``.  A job whose unfolded buffer
    exceeds its back-pressure limit answers 429 with ``Retry-After``.
``POST /jobs/<job>/flush``
    Finalize the job's current analysis into the daemon's
    :class:`~repro.campaigns.store.ResultStore` (and pin a checkpoint).

Fault containment is the point: every bad request — malformed JSON,
out-of-range ids, an oversized batch, a client that disconnects
mid-stream, an unknown config ``version`` — produces a structured JSON
error (``{"error": {"code", "message"}}``) or a dropped connection, never
a dead daemon and never a corrupted analyzer
(``tests/test_service_faults.py``).  Durability extends that contract to
crashes: with a checkpoint cadence armed the daemon periodically persists
each engine's exact fold state through
:mod:`repro.service.checkpoint`, and ``--resume`` restores it so replayed
unacked batches reproduce the uninterrupted run bit for bit
(``tests/test_service_checkpoint.py``).  On SIGTERM the daemon stops
accepting work, lets in-flight requests drain, flushes every job's result
to the store, checkpoints, and exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
from pathlib import Path
from typing import Iterable, Mapping, Sequence
from urllib.parse import parse_qs

from repro._util.logging import get_logger
from repro.campaigns.store import ResultStore
from repro.service.checkpoint import CheckpointPolicy, JobCheckpointer, resume_job
from repro.service.config import JobConfig, JobConfigError
from repro.service.engine import BatchError, packet_batch_from_json
from repro.service.jobs import JobRegistry

__all__ = ["DEFAULT_MAX_BATCH_BYTES", "ServiceDaemon", "serve"]

_logger = get_logger("service.server")

#: Default cap on one request body; a larger ``Content-Length`` gets a 413
#: structured error without the body ever being read.
DEFAULT_MAX_BATCH_BYTES = 8 * 1024 * 1024

_MAX_HEADER_BYTES = 16 * 1024


class _HttpError(Exception):
    """A request failure that maps to one structured error response."""

    def __init__(
        self, status: int, code: str, message: str, *, headers: Mapping[str, str] | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.headers = dict(headers or {})


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ServiceDaemon:
    """A resident streaming-analysis daemon over asyncio HTTP.

    Parameters
    ----------
    configs:
        Job configs to register at startup (more may arrive via
        ``POST /jobs``).
    host, port:
        Bind address; ``port=0`` binds an ephemeral port, reported via
        :attr:`port` once the server is up.
    store:
        The :class:`ResultStore` results are flushed into on shutdown and
        on ``POST /jobs/<job>/flush``; ``None`` disables flushing.
    max_batch_bytes:
        Request-body cap; oversized requests get a structured 413.
    max_buffered_packets:
        Daemon-wide ingest back-pressure default: a job whose buffered
        (unfolded) packets reach this limit answers ingests with a
        structured 429 + ``Retry-After`` until the buffer drains.  A job
        config's ``limits.max_buffered_packets`` overrides it per job;
        ``None`` means unlimited.
    checkpoint_policy:
        When to write durable job checkpoints
        (:class:`~repro.service.checkpoint.CheckpointPolicy`); requires a
        *store*.  ``None`` disables periodic checkpoints (explicit flushes
        and graceful shutdown still write one when a store is present).
    resume:
        Restore each job from its newest valid checkpoint at registration
        time (including jobs submitted later via ``POST /jobs``); requires
        a *store*.
    """

    def __init__(
        self,
        configs: Iterable[JobConfig] = (),
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        store: ResultStore | None = None,
        max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
        max_buffered_packets: int | None = None,
        checkpoint_policy: CheckpointPolicy | None = None,
        resume: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.store = store
        self.max_batch_bytes = int(max_batch_bytes)
        if max_buffered_packets is not None and int(max_buffered_packets) < 1:
            raise ValueError(f"max_buffered_packets must be >= 1, got {max_buffered_packets}")
        self.max_buffered_packets = (
            int(max_buffered_packets) if max_buffered_packets is not None else None
        )
        if store is None and (checkpoint_policy is not None or resume):
            raise ValueError("checkpointing/resume requires a result store (--store)")
        self._resume = bool(resume)
        self._checkpointer = (
            JobCheckpointer(store, checkpoint_policy or CheckpointPolicy())
            if store is not None
            else None
        )
        self.registry = JobRegistry()
        for config in configs:
            job = self.registry.add(config)
            if self._resume:
                resume_job(store, job)
        self.requests_served = 0
        self.requests_failed = 0
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()

    # ------------------------------------------------------------------ http

    def _respond(
        self, status: int, body: dict, headers: Mapping[str, str] | None = None
    ) -> bytes:
        payload = json.dumps(body).encode("utf-8")
        extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            f"Connection: close\r\n\r\n"
        )
        return head.encode("ascii") + payload

    def _error_body(self, error: _HttpError) -> dict:
        return {"error": {"code": error.code, "message": error.message}}

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request: ``(method, path, body)``.

        Raises :class:`_HttpError` on protocol violations and
        ``asyncio.IncompleteReadError`` when the client disconnects before
        delivering the promised body — the caller drops the connection and
        no job state changes.
        """
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError as error:
            raise _HttpError(400, "bad_request", "request head too large") from error
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(400, "bad_request", "request head too large")
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "bad_request", f"malformed request line: {lines[0]!r}")
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        if method == "POST":
            if "content-length" not in headers:
                raise _HttpError(411, "length_required", "POST requires Content-Length")
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise _HttpError(400, "bad_request", "invalid Content-Length") from None
            if length < 0:
                raise _HttpError(400, "bad_request", "invalid Content-Length")
            if length > self.max_batch_bytes:
                raise _HttpError(
                    413,
                    "batch_too_large",
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_batch_bytes}-byte limit",
                )
            # a client that disconnects mid-body raises IncompleteReadError
            # here — before any parsing or folding
            body = await reader.readexactly(length)
        return method, path, body

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        """Serve one connection: one request, one response, close."""
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as error:
                self.requests_failed += 1
                writer.write(self._respond(error.status, self._error_body(error), error.headers))
                await writer.drain()
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                # mid-stream disconnect: nothing parsed, nothing folded
                self.requests_failed += 1
                _logger.info("client disconnected mid-request; dropped")
                return
            headers: Mapping[str, str] | None = None
            try:
                status, response = self._route(method, path, body)
                self.requests_served += 1
            except _HttpError as error:
                self.requests_failed += 1
                status, response, headers = error.status, self._error_body(error), error.headers
            except Exception as error:  # noqa: BLE001 - daemon must survive
                self.requests_failed += 1
                _logger.exception("unexpected error serving %s %s", method, path)
                status, response = 500, {
                    "error": {"code": "internal", "message": f"{type(error).__name__}: {error}"}
                }
            writer.write(self._respond(status, response, headers))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    # ---------------------------------------------------------------- routes

    def _route(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Dispatch one parsed request to its handler."""
        path, _, query = path.partition("?")
        segments = [s for s in path.split("/") if s]
        if method == "GET" and segments == ["status"]:
            return 200, self._status()
        if method == "GET" and len(segments) == 2 and segments[0] == "status":
            return 200, self._job(segments[1]).status()
        if method == "POST" and segments == ["jobs"]:
            return self._submit(body)
        if method == "POST" and len(segments) == 2 and segments[0] == "ingest":
            return self._ingest(segments[1], body, query)
        if (
            method == "POST"
            and len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "flush"
        ):
            return self._flush_one(segments[1])
        if method not in ("GET", "POST"):
            raise _HttpError(405, "method_not_allowed", f"unsupported method {method!r}")
        raise _HttpError(404, "not_found", f"no route for {method} {path}")

    def _status(self) -> dict:
        body = self.registry.status()
        body["requests_served"] = self.requests_served
        body["requests_failed"] = self.requests_failed
        body["store"] = str(self.store.root) if self.store is not None else None
        return body

    def _job(self, name: str):
        try:
            return self.registry.get(name)
        except KeyError:
            raise _HttpError(404, "unknown_job", f"no such job: {name!r}") from None

    def _submit(self, body: bytes) -> tuple[int, dict]:
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(400, "bad_json", f"job config is not valid JSON: {error}") from None
        if not isinstance(data, Mapping):
            raise _HttpError(400, "bad_config", "job config must be a JSON object")
        try:
            config = JobConfig.from_dict(data)
        except JobConfigError as error:
            raise _HttpError(400, "bad_config", str(error)) from None
        try:
            job = self.registry.add(config)
        except ValueError as error:
            raise _HttpError(400, "duplicate_job", str(error)) from None
        if self._resume:
            resume_job(self.store, job)
        return 200, {"job": job.name, "config_hash": job.config_hash}

    @staticmethod
    def _parse_seq(query: str) -> int | None:
        """The ``seq=N`` ingest sequence number, or ``None`` when absent."""
        seq_values = parse_qs(query).get("seq")
        if not seq_values:
            return None
        try:
            seq = int(seq_values[-1])
        except ValueError:
            raise _HttpError(
                400, "bad_seq", f"seq must be a positive integer, got {seq_values[-1]!r}"
            ) from None
        if seq < 1:
            raise _HttpError(400, "bad_seq", f"seq must be >= 1, got {seq}")
        return seq

    def _buffer_limit(self, job) -> int | None:
        """The job's effective back-pressure limit (job config over daemon default)."""
        per_job = job.config.limits.max_buffered_packets
        return per_job if per_job is not None else self.max_buffered_packets

    def _ingest(self, name: str, body: bytes, query: str = "") -> tuple[int, dict]:
        job = self._job(name)
        seq = self._parse_seq(query)
        engine = job.engine
        if seq is not None:
            if seq <= engine.acked_seq:
                # already folded (e.g. a crash-replay of an acked batch):
                # acknowledge without touching any state — the no-op that
                # makes replay-from-1 idempotent
                return 200, {
                    "job": job.name,
                    "duplicate": True,
                    "acked_seq": engine.acked_seq,
                    "batches": 0,
                    "windows_folded_now": 0,
                    "windows_folded": engine.windows_folded,
                    "packets_buffered": engine.packets_buffered,
                    "alarms_raised": engine.alarms_raised,
                }
            if seq > engine.acked_seq + 1:
                raise _HttpError(
                    409,
                    "sequence_gap",
                    f"seq {seq} skips ahead of acked seq {engine.acked_seq}; "
                    f"replay from {engine.acked_seq + 1}",
                )
        limit = self._buffer_limit(job)
        if limit is not None and engine.packets_buffered >= limit:
            raise _HttpError(
                429,
                "backpressure",
                f"job {name!r} has {engine.packets_buffered} packets buffered "
                f"(limit {limit}); retry after the fold catches up",
                headers={"Retry-After": "1"},
            )
        lines = [line for line in body.split(b"\n") if line.strip()]
        if not lines:
            job.errors += 1
            raise _HttpError(400, "empty_batch", "request body carried no batch lines")
        # parse and validate EVERY line before folding ANY: a malformed
        # line N must not leave lines < N already folded
        traces = []
        for i, line in enumerate(lines, start=1):
            try:
                obj = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                job.errors += 1
                raise _HttpError(
                    400, "bad_json", f"batch line {i} is not valid JSON: {error}"
                ) from None
            try:
                traces.append(packet_batch_from_json(obj))
            except BatchError as error:
                job.errors += 1
                raise _HttpError(400, "bad_batch", f"batch line {i}: {error}") from None
        windows = sum(engine.ingest(trace) for trace in traces)
        # the request folded in full; advance the acked sequence number and
        # (maybe) checkpoint — both only ever at request boundaries, so a
        # checkpoint can never capture a half-applied request
        engine.acked_seq = seq if seq is not None else engine.acked_seq + 1
        if self._checkpointer is not None:
            self._checkpointer.maybe_checkpoint(job)
        return 200, {
            "job": job.name,
            "batches": len(traces),
            "acked_seq": engine.acked_seq,
            "windows_folded_now": windows,
            "windows_folded": engine.windows_folded,
            "packets_buffered": engine.packets_buffered,
            "alarms_raised": engine.alarms_raised,
        }

    def _flush_one(self, name: str) -> tuple[int, dict]:
        job = self._job(name)
        if self.store is None:
            raise _HttpError(400, "no_store", "daemon was started without a result store")
        payload = job.flush_payload()
        if payload is None:
            raise _HttpError(
                400, "no_windows", f"job {name!r} has folded no complete window yet"
            )
        self.store.put(
            job.config_hash, payload, meta={"kind": "service_job", "job": job.name}
        )
        if self._checkpointer is not None:
            # every explicit flush also pins a checkpoint, so "flushed" is
            # always a state the daemon can resume past
            self._checkpointer.checkpoint(job)
        return 200, {"job": job.name, "stored": job.config_hash}

    # ------------------------------------------------------------- lifecycle

    def request_shutdown(self) -> None:
        """Ask the daemon to drain and exit; safe to call from any thread."""
        loop, event = self._loop, self._shutdown
        if loop is None or event is None:
            return
        loop.call_soon_threadsafe(event.set)

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until the server socket is bound (for test harnesses)."""
        return self._ready.wait(timeout)

    async def run_async(self, *, install_signal_handlers: bool = False) -> int:
        """Serve until shutdown is requested; drain, flush, return 0."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self._shutdown.set)
        server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=_MAX_HEADER_BYTES
        )
        self.port = server.sockets[0].getsockname()[1]
        _logger.info(
            "repro serve listening on %s:%d (%d job(s))",
            self.host, self.port, len(self.registry),
        )
        self._ready.set()
        async with server:
            await self._shutdown.wait()
            # stop accepting, then let in-flight handlers drain before the
            # flush below snapshots job state
            server.close()
            await server.wait_closed()
        if self.store is not None:
            keys = self.registry.flush(self.store)
            _logger.info("flushed %d job result(s) on shutdown", len(keys))
            if self._checkpointer is not None:
                # pin a final checkpoint per job so a --resume restart of
                # the same store starts exactly where this run stopped
                for job in self.registry:
                    self._checkpointer.checkpoint(job)
        _logger.info("repro serve exiting cleanly")
        return 0

    def run(self, *, install_signal_handlers: bool = False) -> int:
        """Blocking entry point: ``asyncio.run`` around :meth:`run_async`."""
        return asyncio.run(self.run_async(install_signal_handlers=install_signal_handlers))


def serve(
    configs: Sequence[JobConfig],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    store_root: str | Path | None = None,
    max_batch_bytes: int = DEFAULT_MAX_BATCH_BYTES,
    max_buffered_packets: int | None = None,
    checkpoint_every: int | None = None,
    checkpoint_seconds: float | None = None,
    resume: bool = False,
) -> int:
    """Run the daemon in the foreground until SIGTERM/SIGINT; return 0.

    This is the function ``repro serve`` calls: it builds the
    :class:`ServiceDaemon`, opens the :class:`ResultStore` when
    *store_root* is given, installs signal handlers, and blocks.
    *checkpoint_every* / *checkpoint_seconds* arm the periodic checkpoint
    cadence and *resume* restores jobs from their newest valid checkpoint
    at startup (both need *store_root*).  On SIGTERM the daemon drains
    in-flight requests, flushes every job's result to the store,
    checkpoints, and this function returns 0.
    """
    store = ResultStore(store_root) if store_root is not None else None
    policy = None
    if checkpoint_every is not None or checkpoint_seconds is not None:
        policy = CheckpointPolicy(
            every_batches=checkpoint_every, every_seconds=checkpoint_seconds
        )
    daemon = ServiceDaemon(
        configs,
        host=host,
        port=port,
        store=store,
        max_batch_bytes=max_batch_bytes,
        max_buffered_packets=max_buffered_packets,
        checkpoint_policy=policy,
        resume=resume,
    )
    return daemon.run(install_signal_handlers=True)
