"""The daemon's job table: named engines with uptime, status, and flush.

A :class:`Job` pairs one :class:`~repro.service.engine.JobEngine` with the
bookkeeping the ``/status`` endpoint reports — monotonic uptime, batch and
error counters, the job-config hash.  The :class:`JobRegistry` is the
daemon's single mutable table of jobs; on graceful shutdown it flushes
every job's finalized result into a
:class:`~repro.campaigns.store.ResultStore` under the job's config hash,
so a drained daemon leaves the same kind of content-addressed artifact a
campaign worker would.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro._util.logging import get_logger
from repro.campaigns.store import ResultStore
from repro.service.config import JobConfig
from repro.service.engine import JobEngine

__all__ = ["Job", "JobRegistry"]

_logger = get_logger("service.jobs")


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    if hasattr(value, "tolist"):
        return value.tolist()
    if hasattr(value, "item"):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


class Job:
    """One resident analysis job: an engine plus its status bookkeeping."""

    def __init__(self, config: JobConfig) -> None:
        self.config = config
        self.engine = JobEngine(config)
        self.config_hash = config.config_hash()
        self.started = time.monotonic()
        self.errors = 0
        #: Acked sequence number the job resumed from (``None`` = cold start).
        self.resumed_from_seq: int | None = None
        self.checkpoints_written = 0
        self.checkpoint_failures = 0

    @property
    def name(self) -> str:
        """The job's (registry-unique) name."""
        return self.config.name

    def reset_engine(self) -> None:
        """Rebuild the engine fresh (used when a checkpoint fails to restore)."""
        self.engine = JobEngine(self.config)
        self.resumed_from_seq = None

    def status(self) -> dict:
        """The job's ``/status`` entry: counters, uptime, config hash."""
        engine = self.engine
        return {
            "name": self.name,
            "config_hash": self.config_hash,
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "windows_folded": engine.windows_folded,
            "packets_buffered": engine.packets_buffered,
            "packets_ingested": engine.packets_ingested,
            "batches_ingested": engine.batches_ingested,
            "alarms_raised": engine.alarms_raised,
            "errors": self.errors,
            "mode": self.config.window.mode,
            "detectors": list(self.config.detection.detectors),
            "acked_seq": engine.acked_seq,
            "resumed_from_seq": self.resumed_from_seq,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_failures": self.checkpoint_failures,
        }

    def flush_payload(self) -> dict | None:
        """The job's storable result payload, or ``None`` before any window.

        The payload carries the finalized pooled analysis (JSON-safe), the
        detection summary when the job ran detectors, and the full job
        config — everything needed to interpret the artifact offline.
        """
        if self.engine.windows_folded == 0:
            return None
        analysis = self.engine.result()
        pooled_out = {}
        for name in analysis.quantities:
            pooled = analysis.pooled(name)
            pooled_out[name] = {
                "bin_edges": _jsonable(pooled.bin_edges),
                "values": _jsonable(pooled.values),
                "sigma": _jsonable(pooled.sigma),
                "total": _jsonable(pooled.total),
            }
        payload = {
            "service_job": self.config.as_dict(),
            "config_hash": self.config_hash,
            "n_windows": analysis.n_windows,
            "pooled": pooled_out,
            "status": self.status(),
        }
        detection = self.engine.detection()
        if detection is not None:
            payload["detection"] = {
                "quantity": detection.quantity,
                "alarms": {
                    name: [_jsonable(i) for i in alarms]
                    for name, alarms in detection.alarms.items()
                },
            }
        return payload


class JobRegistry:
    """The daemon's table of live jobs, keyed by unique job name."""

    def __init__(self) -> None:
        self._jobs: dict[str, Job] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(self._jobs.values())

    def __contains__(self, name: str) -> bool:
        return name in self._jobs

    def add(self, config: JobConfig) -> Job:
        """Register a new job; duplicate names raise ``ValueError``."""
        if config.name in self._jobs:
            raise ValueError(f"job {config.name!r} already exists")
        job = Job(config)
        self._jobs[config.name] = job
        _logger.info("registered job %r (config %s)", job.name, job.config_hash[:12])
        return job

    def get(self, name: str) -> Job:
        """Look up a job by name; unknown names raise ``KeyError``."""
        if name not in self._jobs:
            raise KeyError(f"no such job: {name!r}")
        return self._jobs[name]

    def status(self) -> dict:
        """The registry-level ``/status`` body: one entry per job."""
        return {"n_jobs": len(self._jobs), "jobs": [job.status() for job in self]}

    def flush(self, store: ResultStore) -> list[str]:
        """Flush every job with ≥1 folded window into *store*.

        Each payload is stored under the job's config hash (content key of
        the job config), so re-running an identical job config overwrites
        its own slot and nothing else.  Returns the stored keys.
        """
        keys: list[str] = []
        for job in self:
            payload = job.flush_payload()
            if payload is None:
                _logger.info("job %r folded no windows; nothing to flush", job.name)
                continue
            store.put(
                job.config_hash,
                payload,
                meta={"kind": "service_job", "job": job.name},
            )
            keys.append(job.config_hash)
            _logger.info("flushed job %r -> %s", job.name, job.config_hash[:12])
        return keys
