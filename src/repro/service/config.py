"""Declarative, versioned job configurations for the service daemon.

A *job config* describes one resident analysis job the daemon runs: the
windowing and analysis tier, optional online detection, an optional
declared packet source (used by ``repro jobs feed`` and recorded in the
config hash), and where to flush results on shutdown.  The design follows
the nested typed-section pattern of streaming-job frameworks (one frozen
dataclass per concern, a top-level ``version`` field, a lossless
``as_dict()``/``from_dict()`` round-trip) with this repo's registration-time
validation discipline: **everything** a run would need is checked when the
config is built, and every error is path-qualified
(``job 'x': window.n_valid: ...``) so a malformed config fails at submit
time with an actionable message, never mid-stream.

``JobConfig.config_hash()`` is a SHA-256 over the canonical dict form —
the job's identity for the ``/status`` endpoint and its content key in the
result store, reusing the same hashing primitive as campaign cells.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Mapping, Union

from repro.detect.detectors import DETECTOR_NAMES
from repro.streaming.aggregates import QUANTITY_NAMES
from repro.streaming.pipeline import MODE_NAMES
from repro.streaming.sketch import SketchConfig

__all__ = [
    "JOB_CONFIG_VERSION",
    "DetectionSection",
    "JobConfig",
    "JobConfigError",
    "LimitsSection",
    "SketchSection",
    "SourceSection",
    "StoreSection",
    "WindowSection",
    "load_job_config",
]

#: Version of the job-config schema this build reads and writes.  A config
#: carrying any other ``version`` is rejected at load time — the daemon
#: never guesses at the meaning of fields from another era.
JOB_CONFIG_VERSION = 1


class JobConfigError(ValueError):
    """A job config failed validation; the message is path-qualified."""


def _fail(path: str, message: str) -> "JobConfigError":
    return JobConfigError(f"{path}: {message}")


def _check_int(value, path: str, *, minimum: int | None = None) -> int:
    """*value* as a plain int (bools rejected), optionally floor-checked."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(path, f"expected an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _fail(path, f"must be >= {minimum}, got {value}")
    return int(value)


def _check_names(values, path: str, valid: tuple, what: str) -> tuple:
    """*values* as a tuple of known names drawn from *valid*."""
    if isinstance(values, str) or not isinstance(values, (list, tuple)):
        raise _fail(path, f"expected a list of {what} names, got {values!r}")
    names = tuple(values)
    unknown = [name for name in names if name not in valid]
    if unknown:
        raise _fail(path, f"unknown {what}(s) {unknown}; valid: {list(valid)}")
    return names


@dataclass(frozen=True)
class WindowSection:
    """Windowing and analysis-tier knobs of one job.

    Mirrors the corresponding :func:`repro.streaming.pipeline.analyze_trace`
    parameters: window size ``N_V`` in valid packets, the Figure-1
    quantities to histogram, and the per-window tier (``"exact"`` or
    ``"sketch"``).
    """

    n_valid: int = 5_000
    quantities: tuple = tuple(QUANTITY_NAMES)
    mode: str = "exact"

    def validate(self, path: str = "window") -> None:
        """Raise a path-qualified :class:`JobConfigError` on any bad field."""
        _check_int(self.n_valid, f"{path}.n_valid", minimum=1)
        quantities = _check_names(
            self.quantities, f"{path}.quantities", tuple(QUANTITY_NAMES), "quantity"
        )
        if not quantities:
            raise _fail(f"{path}.quantities", "must name at least one quantity")
        if self.mode not in MODE_NAMES:
            raise _fail(f"{path}.mode", f"unknown mode {self.mode!r}; valid: {list(MODE_NAMES)}")


@dataclass(frozen=True)
class SketchSection:
    """Sketch-tier accuracy knobs (meaningful only when ``window.mode="sketch"``).

    ``None`` fields fall back to the
    :data:`~repro.streaming.sketch.DEFAULT_SKETCH_CONFIG` defaults.
    """

    epsilon: float | None = None
    delta: float | None = None
    seed: int | None = None

    def overrides(self) -> dict:
        """The non-default knobs as a kwargs dict for :class:`SketchConfig`."""
        out = {}
        for name in ("epsilon", "delta", "seed"):
            value = getattr(self, name)
            if value is not None:
                out[name] = value
        return out

    def to_sketch_config(self) -> SketchConfig | None:
        """The implied :class:`SketchConfig`, or ``None`` when untouched."""
        overrides = self.overrides()
        return SketchConfig(**overrides) if overrides else None

    def validate(self, path: str = "sketch") -> None:
        """Raise a path-qualified :class:`JobConfigError` on any bad field."""
        if self.epsilon is not None and not isinstance(self.epsilon, (int, float)):
            raise _fail(f"{path}.epsilon", f"expected a number, got {self.epsilon!r}")
        if self.delta is not None and not isinstance(self.delta, (int, float)):
            raise _fail(f"{path}.delta", f"expected a number, got {self.delta!r}")
        if self.seed is not None:
            _check_int(self.seed, f"{path}.seed")
        try:
            self.to_sketch_config()
        except (TypeError, ValueError) as error:
            raise _fail(path, str(error)) from error


@dataclass(frozen=True)
class DetectionSection:
    """Online drift detection riding the job's fold (empty = no detection)."""

    detectors: tuple = ()
    quantity: str | None = None

    def validate(self, path: str = "detection") -> None:
        """Raise a path-qualified :class:`JobConfigError` on any bad field."""
        _check_names(self.detectors, f"{path}.detectors", tuple(DETECTOR_NAMES), "detector")
        if self.quantity is not None:
            if not self.detectors:
                raise _fail(f"{path}.quantity", "was given but detectors is empty")
            if self.quantity not in QUANTITY_NAMES:
                raise _fail(
                    f"{path}.quantity",
                    f"unknown quantity {self.quantity!r}; valid: {list(QUANTITY_NAMES)}",
                )


@dataclass(frozen=True)
class SourceSection:
    """The packet source this job *expects* (declarative, not enforced).

    The daemon folds whatever batches clients send; this section documents
    the intended feed so ``repro jobs feed`` can generate it and so the
    job's config hash pins what the stored result claims to be.  A ``None``
    scenario means "live traffic" — any well-formed batches.
    """

    scenario: str | None = None
    seed: int = 0
    block_packets: int | None = None

    def validate(self, path: str = "source") -> None:
        """Raise a path-qualified :class:`JobConfigError` on any bad field."""
        if self.scenario is not None:
            from repro.scenarios import get_scenario

            if not isinstance(self.scenario, str):
                raise _fail(f"{path}.scenario", f"expected a name, got {self.scenario!r}")
            try:
                get_scenario(self.scenario)
            except KeyError as error:
                raise _fail(f"{path}.scenario", str(error.args[0])) from error
        _check_int(self.seed, f"{path}.seed")
        if self.block_packets is not None:
            _check_int(self.block_packets, f"{path}.block_packets", minimum=1)


@dataclass(frozen=True)
class StoreSection:
    """Where the job's final analysis is flushed on finish/shutdown.

    ``root=None`` keeps results in memory only (they are returned by the
    finish endpoint but lost when the daemon exits).
    """

    root: str | None = None

    def validate(self, path: str = "store") -> None:
        """Raise a path-qualified :class:`JobConfigError` on any bad field."""
        if self.root is not None and not isinstance(self.root, str):
            raise _fail(f"{path}.root", f"expected a path string, got {self.root!r}")


@dataclass(frozen=True)
class LimitsSection:
    """Per-job ingest back-pressure limits.

    ``max_buffered_packets`` caps how many packets may sit buffered toward
    the next incomplete window before the daemon answers ingests with
    HTTP 429 (``Retry-After``) instead of growing without bound.  ``None``
    defers to the daemon-wide ``--max-buffered-packets`` default (which may
    itself be unlimited).
    """

    max_buffered_packets: int | None = None

    def validate(self, path: str = "limits") -> None:
        """Raise a path-qualified :class:`JobConfigError` on any bad field."""
        if self.max_buffered_packets is not None:
            _check_int(self.max_buffered_packets, f"{path}.max_buffered_packets", minimum=1)


#: ``section name -> section type`` of the nested config layout.
_SECTIONS = {
    "window": WindowSection,
    "sketch": SketchSection,
    "detection": DetectionSection,
    "source": SourceSection,
    "store": StoreSection,
    "limits": LimitsSection,
}


@dataclass(frozen=True)
class JobConfig:
    """One resident analysis job, fully validated at construction.

    The top-level object of the job-config schema: a ``name`` (the job's
    URL path segment on the daemon), the schema ``version``, and one typed
    section per concern.  Construction runs every section's ``validate``
    with the job name woven into the error path, so a bad config can never
    reach a running engine.
    """

    name: str
    version: int = JOB_CONFIG_VERSION
    window: WindowSection = field(default_factory=WindowSection)
    sketch: SketchSection = field(default_factory=SketchSection)
    detection: DetectionSection = field(default_factory=DetectionSection)
    source: SourceSection = field(default_factory=SourceSection)
    store: StoreSection = field(default_factory=StoreSection)
    limits: LimitsSection = field(default_factory=LimitsSection)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise JobConfigError(f"job name must be a non-empty string, got {self.name!r}")
        if not all(c.isalnum() or c in "._-" for c in self.name):
            raise JobConfigError(
                f"job {self.name!r}: name may only contain letters, digits, '.', '_', '-' "
                "(it becomes a URL path segment)"
            )
        prefix = f"job {self.name!r}"
        if self.version != JOB_CONFIG_VERSION:
            raise _fail(
                f"{prefix}: version",
                f"unsupported job-config version {self.version!r}; "
                f"this build reads version {JOB_CONFIG_VERSION}",
            )
        for section_name, section_type in _SECTIONS.items():
            section = getattr(self, section_name)
            if not isinstance(section, section_type):
                raise _fail(
                    f"{prefix}: {section_name}",
                    f"expected a {section_type.__name__}, got {type(section).__name__}",
                )
            section.validate(f"{prefix}: {section_name}")
        if self.window.mode != "sketch" and self.sketch.overrides():
            raise _fail(
                f"{prefix}: sketch",
                "sketch knobs were supplied but window.mode is 'exact'",
            )
        # normalise list-built sections so as_dict/from_dict round-trips and
        # equal configs hash equally regardless of sequence type
        object.__setattr__(
            self, "window",
            WindowSection(self.window.n_valid, tuple(self.window.quantities), self.window.mode),
        )
        object.__setattr__(
            self, "detection",
            DetectionSection(tuple(dict.fromkeys(self.detection.detectors)), self.detection.quantity),
        )

    def as_dict(self) -> dict:
        """The config as plain JSON-serialisable data (lossless round-trip).

        ``JobConfig.from_dict(config.as_dict()) == config`` always holds;
        tuples become lists under JSON and are re-normalised on the way in.
        """
        data = asdict(self)
        data["window"]["quantities"] = list(self.window.quantities)
        data["detection"]["detectors"] = list(self.detection.detectors)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobConfig":
        """Build and validate a config from plain data (strict about keys).

        Unknown top-level or section keys are rejected with the offending
        path — a typoed knob must never be silently ignored.
        """
        if not isinstance(data, Mapping):
            raise JobConfigError(f"job config must be a JSON object, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise JobConfigError(f"unknown job-config key(s) {unknown}; valid: {sorted(known)}")
        if "name" not in data:
            raise JobConfigError("job config must carry a 'name'")
        kwargs: dict = {}
        for key in ("name", "version"):
            if key in data:
                kwargs[key] = data[key]
        for section_name, section_type in _SECTIONS.items():
            if section_name not in data:
                continue
            section_data = data[section_name]
            if not isinstance(section_data, Mapping):
                raise _fail(section_name, f"expected an object, got {section_data!r}")
            section_fields = {f.name for f in fields(section_type)}
            bad = sorted(set(section_data) - section_fields)
            if bad:
                raise _fail(
                    f"{section_name}.{bad[0]}",
                    f"unknown key (valid: {sorted(section_fields)})",
                )
            values = dict(section_data)
            if section_name == "window" and isinstance(values.get("quantities"), list):
                values["quantities"] = tuple(values["quantities"])
            if section_name == "detection" and isinstance(values.get("detectors"), list):
                values["detectors"] = tuple(values["detectors"])
            kwargs[section_name] = section_type(**values)
        return cls(**kwargs)

    def config_hash(self) -> str:
        """SHA-256 content key of the canonical config (the job's identity)."""
        from repro.campaigns.spec import content_key

        return content_key({"service_job": self.as_dict()})

    def sketch_config(self) -> SketchConfig | None:
        """The job's :class:`SketchConfig` (``None`` in exact mode)."""
        if self.window.mode != "sketch":
            return None
        return self.sketch.to_sketch_config() or SketchConfig()


def load_job_config(path: Union[str, os.PathLike]) -> JobConfig:
    """Read and validate a job-config JSON file.

    Raises :class:`JobConfigError` with the file path woven in when the
    file is missing, is not valid JSON, or fails schema validation.
    """
    file = Path(path)
    try:
        text = file.read_text(encoding="utf-8")
    except OSError as error:
        raise JobConfigError(f"cannot read job config {file}: {error.strerror or error}") from error
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise JobConfigError(f"job config {file} is not valid JSON: {error}") from error
    try:
        return JobConfig.from_dict(data)
    except JobConfigError as error:
        raise JobConfigError(f"job config {file}: {error}") from None
